"""Setuptools shim for editable installs in offline environments.

The project metadata lives in ``pyproject.toml``; this file only exists so
``pip install -e .`` works without network access (no build isolation and no
``wheel`` dependency are required for the legacy develop path).
"""

from setuptools import setup

setup()

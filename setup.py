"""Setuptools shim for editable installs in offline environments.

The project metadata lives in ``pyproject.toml``; this file only exists so
``pip install -e .`` works without network access (no build isolation and no
``wheel`` dependency are required for the legacy develop path).
"""

from setuptools import setup

setup(
    extras_require={
        # The compiled kernel tier prefers numba when importable and
        # otherwise compiles its C translation unit with the system cc;
        # both degrade to verified pure-numpy fallbacks (see
        # src/repro/native/README.md), so the extra is genuinely optional.
        "native": ["numba"],
    }
)

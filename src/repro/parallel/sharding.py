"""Deterministic dataset sharding and the shard-compression task unit.

Two decisions make sharded compression reproducible regardless of how it is
executed:

1. **Shard contents** depend only on ``(n, n_shards)`` and — when the
   partition is randomised — on one dedicated child of the root seed: the
   host draws a single permutation and lays the dataset out in shard order,
   so shard ``i`` is always the contiguous slice ``bounds[i]``.  Contiguous
   slices are what lets the process backend ship shards as offsets into one
   shared-memory block.
2. **Shard randomness** is spawn-keyed: shard ``i`` compresses under the
   child sequence ``keyed_seed_sequence(root, KEY_SHARD, i)``, a pure
   function of the user seed and the shard index.

Together these mean every executor backend at every worker count produces
bit-identical shard coresets, the same contract discipline as the golden
quadtree cells (PR 1) and the pruned-Lloyd equivalence (PR 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro import observability as _obs
from repro.core.base import CoresetConstruction
from repro.core.coreset import Coreset
from repro.parallel.executor import ArrayPayload
from repro.utils.rng import keyed_seed_sequence
from repro.utils.validation import check_integer

#: Namespaces for :func:`repro.utils.rng.keyed_seed_sequence` derivation.
#: Frozen constants — changing them changes every sharded coreset.
KEY_PARTITION = 0  #: the shard-assignment permutation
KEY_SHARD = 1  #: per-shard compression randomness (keyed by shard index)
KEY_FINAL = 2  #: the host-side final re-compression
KEY_STREAM_LEAF = 3  #: streaming leaf compressions (keyed by block index)
KEY_STREAM_REDUCE = 4  #: streaming reduce compressions (keyed by reduce index)
KEY_STREAM_QUERY = 5  #: windowed-stream query/final compressions (keyed by query index)


def shard_bounds(n: int, n_shards: int) -> List[Tuple[int, int]]:
    """Split ``range(n)`` into at most ``n_shards`` contiguous, non-empty slices.

    Sizes follow :func:`numpy.array_split` semantics (the first ``n mod
    n_shards`` shards get one extra row) so no shard exceeds
    ``ceil(n / n_shards)`` — the memory bound the MapReduce analysis assumes
    per worker.  When ``n < n_shards`` the empty tail shards are dropped.
    """
    n = check_integer(n, name="n")
    n_shards = check_integer(n_shards, name="n_shards")
    n_shards = min(n_shards, n)
    base, extra = divmod(n, n_shards)
    bounds: List[Tuple[int, int]] = []
    start = 0
    for index in range(n_shards):
        stop = start + base + (1 if index < extra else 0)
        bounds.append((start, stop))
        start = stop
    return bounds


@dataclass(frozen=True)
class ShardTask:
    """One unit of work: compress ``payload.points[start:stop]`` to ``m`` points.

    The task ships only offsets, the (tiny) sampler configuration, and a
    spawn-keyed seed — never the point block itself.  ``m`` is clamped to the
    slice length at execution time, mirroring the per-worker clamp of the
    MapReduce aggregator.
    """

    index: int
    start: int
    stop: int
    m: int
    sampler: CoresetConstruction
    seed: np.random.SeedSequence
    spread: Optional[float] = None
    cost_bound: Optional[float] = None
    #: Observability label only — which pipeline stage this compression
    #: serves ("shard", "leaf", "reduce", "final").  Never feeds the
    #: computation, so traced and untraced runs stay bit-identical.
    stage: str = "shard"


def compress_shard(payload: ArrayPayload, task: ShardTask) -> Coreset:
    """Task function executed by any backend (module-level: picklable by reference).

    The span below is the one instrumentation point that covers every
    compression the executor runs — shard map tasks, streaming leaves, and
    offloaded reduces — host- or worker-side alike (worker-side spans ride
    back through the piggyback protocol in ``executor.py``).
    """
    with _obs.span(
        f"compress.{task.stage}", index=task.index, rows=task.stop - task.start, m=task.m
    ):
        points = payload.points[task.start : task.stop]
        weights = payload.weights[task.start : task.stop]
        return task.sampler.sample(
            points,
            min(task.m, points.shape[0]),
            weights=weights,
            seed=task.seed,
            spread=task.spread,
            cost_bound=task.cost_bound,
        )


def merge_payload(coresets: Sequence[Coreset]) -> ArrayPayload:
    """Concatenate coreset messages into one reduce-task payload.

    The arrays are byte-identical to what
    :func:`repro.core.coreset.merge_coresets` would produce (same
    concatenation, same order), so a reduce task compressing
    ``payload.points[0:n]`` computes exactly what the host-side fold would —
    the property the overlapped-reduce equivalence suite pins.  The payload
    is *small* (a few coreset-sized messages), which is what lets reduces
    ride the executor without re-publishing the dataset.
    """
    return ArrayPayload(
        points=np.concatenate([coreset.points for coreset in coresets], axis=0),
        weights=np.concatenate([coreset.weights for coreset in coresets], axis=0),
    )


def shard_seed(root: np.random.SeedSequence, index: int) -> np.random.SeedSequence:
    """The spawn-keyed child sequence shard ``index`` compresses under."""
    return keyed_seed_sequence(root, KEY_SHARD, index)

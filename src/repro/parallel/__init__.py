"""Parallel execution engine: pluggable executors and sharded construction.

The subsystem has three layers:

* :mod:`repro.parallel.executor` — the :class:`Executor` contract and its
  serial / thread / shared-memory process backends;
* :mod:`repro.parallel.sharding` — deterministic partitioning and the
  spawn-keyed per-shard seed derivation;
* :mod:`repro.parallel.sharded` — :class:`ShardedCoresetBuilder`, the
  multi-core front door that the MapReduce aggregator, the streaming
  pipeline, and the CLI plug into.

The invariant every consumer relies on: the executor choice changes
wall-clock time only — coresets are bit-identical across backends and
worker counts for a fixed seed.
"""

from repro.parallel.executor import (
    BACKENDS,
    ArrayPayload,
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    resolve_executor,
)
from repro.parallel.sharded import ShardedBuildResult, ShardedCoresetBuilder
from repro.parallel.sharding import ShardTask, compress_shard, shard_bounds

__all__ = [
    "BACKENDS",
    "ArrayPayload",
    "Executor",
    "ProcessExecutor",
    "SerialExecutor",
    "ThreadExecutor",
    "resolve_executor",
    "ShardedBuildResult",
    "ShardedCoresetBuilder",
    "ShardTask",
    "compress_shard",
    "shard_bounds",
]

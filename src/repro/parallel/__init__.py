"""Parallel execution engine: pluggable executors and sharded construction.

The subsystem has three layers:

* :mod:`repro.parallel.executor` — the synchronous :class:`Executor` and
  asynchronous :class:`AsyncExecutor` contracts with their serial / thread /
  shared-memory process backends (the process backends ship shards as
  offsets into shared memory; the async process backend keeps a persistent
  pool with attach-once segment reuse);
* :mod:`repro.parallel.sharding` — deterministic partitioning and the
  spawn-keyed per-shard seed derivation;
* :mod:`repro.parallel.sharded` — :class:`ShardedCoresetBuilder`, the
  multi-core front door that the MapReduce aggregator, the streaming
  pipeline, and the CLI plug into.

The invariant every consumer relies on: the executor choice changes
wall-clock time only — coresets are bit-identical across backends, worker
counts, completion orders, and prefetch depths for a fixed seed.  See
``README.md`` in this package for the seed protocol that makes overlapped
execution safe.
"""

from repro.parallel.executor import (
    BACKENDS,
    ArrayPayload,
    AsyncExecutor,
    Executor,
    ProcessAsyncExecutor,
    ProcessExecutor,
    SerialAsyncExecutor,
    SerialExecutor,
    ThreadAsyncExecutor,
    ThreadExecutor,
    chain_future,
    resolve_async_executor,
    resolve_executor,
    submit_when_ready,
)
from repro.parallel.sharded import ShardedBuildResult, ShardedCoresetBuilder
from repro.parallel.sharding import ShardTask, compress_shard, merge_payload, shard_bounds

__all__ = [
    "BACKENDS",
    "ArrayPayload",
    "AsyncExecutor",
    "Executor",
    "ProcessAsyncExecutor",
    "ProcessExecutor",
    "SerialAsyncExecutor",
    "SerialExecutor",
    "ThreadAsyncExecutor",
    "ThreadExecutor",
    "chain_future",
    "resolve_async_executor",
    "resolve_executor",
    "submit_when_ready",
    "ShardedBuildResult",
    "ShardedCoresetBuilder",
    "ShardTask",
    "compress_shard",
    "merge_payload",
    "shard_bounds",
]

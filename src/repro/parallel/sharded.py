"""Sharded coreset construction on top of the pluggable executors.

This is the library's multi-core entry point for static datasets: partition
deterministically, compress every shard concurrently with any black-box
:class:`~repro.core.base.CoresetConstruction`, merge-reduce the messages.
By the composition property (Section 2.3 of the paper) the union of the
shard coresets is a coreset of the full dataset, and because both the shard
contents and the per-shard randomness are pure functions of the user seed
(see :mod:`repro.parallel.sharding`), the result is **bit-identical across
every backend and worker count** — the equivalence suite pins this.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro import observability as _obs
from repro.core.base import CoresetConstruction
from repro.core.coreset import Coreset, merge_coresets
from repro.observability import ExecutionDiagnostics
from repro.parallel.executor import (
    ArrayPayload,
    AsyncExecutor,
    Executor,
    resolve_executor,
)
from repro.parallel.sharding import (
    KEY_FINAL,
    KEY_PARTITION,
    ShardTask,
    compress_shard,
    shard_bounds,
    shard_seed,
)
from repro.utils.rng import SeedLike, as_generator, as_seed_sequence, keyed_seed_sequence
from repro.utils.validation import check_integer, check_points, check_weights


@dataclass
class ShardedBuildResult:
    """Outcome and bookkeeping of one sharded construction.

    Attributes
    ----------
    coreset:
        The host-side compression (the union of the shard messages, or its
        re-compression when ``final_coreset_size`` is set).
    shard_coresets:
        The per-shard messages, in shard order.
    shard_sizes / message_sizes:
        Points received / sent by each shard.
    communication:
        Total floats shipped to the host (``sum(message_size * (d + 1))``),
        the quantity the MapReduce cost model charges for.
    backend / workers:
        Which executor ran the shard compressions.  Diagnostics only — by
        construction they never influence the coreset.
    metadata:
        Free-form diagnostics (sampler name, shard count, ...).  Pure
        functions of the build configuration — the equivalence suite
        compares them across backends.
    diagnostics:
        Mode-*dependent* execution diagnostics
        (:class:`~repro.observability.ExecutionDiagnostics`, dict-style
        access preserved): whether the final re-compression was offloaded
        to the pool or ran on the host (``reduces_offloaded`` /
        ``host_reduces``), the host-thread seconds it cost, and the
        high-water mark of landed-but-unassembled shard messages on the
        async path.  Deliberately separate from ``metadata`` so backend
        equivalence stays byte-exact.
    """

    coreset: Coreset
    shard_coresets: List[Coreset]
    shard_sizes: List[int]
    message_sizes: List[int]
    communication: int
    backend: str
    workers: int
    metadata: Dict[str, Union[float, str]] = field(default_factory=dict)
    diagnostics: ExecutionDiagnostics = field(default_factory=ExecutionDiagnostics)


class ShardedCoresetBuilder:
    """Compress a dataset shard-by-shard under any executor backend.

    Parameters
    ----------
    sampler:
        Any :class:`~repro.core.base.CoresetConstruction`; used per shard
        and (optionally) for the host's final re-compression.
    n_shards:
        Number of shards the dataset is partitioned into.  This — not the
        worker count — is what keys the result: fixing ``n_shards`` and the
        seed fixes the coreset no matter how many workers execute it.
    coreset_size_per_shard:
        Message size each shard produces (clamped to the shard size).
    final_coreset_size:
        Optional size of the host-side re-compression; ``None`` keeps the
        plain union.
    shuffle:
        Randomly permute points across shards (the random-shard model of
        Section 2.3) using a dedicated child of the seed.  ``False`` shards
        the input in its given order — the right choice for memory-mapped
        inputs, where a permutation would materialise the dataset.
    seed:
        Root randomness; every stochastic choice derives from it through
        spawn-style keys (:func:`repro.utils.rng.keyed_seed_sequence`).

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core import SensitivitySampling
    >>> from repro.parallel import ShardedCoresetBuilder
    >>> data = np.random.default_rng(0).normal(size=(2000, 8))
    >>> builder = ShardedCoresetBuilder(
    ...     sampler=SensitivitySampling(k=10, seed=0),
    ...     n_shards=4,
    ...     coreset_size_per_shard=100,
    ...     seed=0,
    ... )
    >>> builder.build(data).coreset.size
    400
    """

    def __init__(
        self,
        sampler: CoresetConstruction,
        *,
        n_shards: int,
        coreset_size_per_shard: int,
        final_coreset_size: Optional[int] = None,
        shuffle: bool = True,
        seed: SeedLike = None,
    ) -> None:
        self.sampler = sampler
        self.n_shards = check_integer(n_shards, name="n_shards")
        self.coreset_size_per_shard = check_integer(
            coreset_size_per_shard, name="coreset_size_per_shard"
        )
        self.final_coreset_size = (
            None
            if final_coreset_size is None
            else check_integer(final_coreset_size, name="final_coreset_size")
        )
        self.shuffle = bool(shuffle)
        self.seed = seed

    # ------------------------------------------------------------------
    def build(
        self,
        points: np.ndarray,
        *,
        weights: Optional[np.ndarray] = None,
        executor: Union[None, str, Executor] = None,
        spread: Optional[float] = None,
    ) -> ShardedBuildResult:
        """Partition, compress every shard under ``executor``, and merge.

        Parameters
        ----------
        points / weights:
            The dataset; weights default to one per point.
        executor:
            ``None`` (serial), a backend name, an
            :class:`~repro.parallel.executor.Executor`, or an
            :class:`~repro.parallel.executor.AsyncExecutor` instance.  An
            async executor overlaps the host-side fold with the still-running
            shard compressions (see :meth:`_collect_async`).  Changes only
            wall-clock, never the coreset.
        spread:
            Optional precomputed spread estimate forwarded to every shard's
            sampler (the PR 2 sharing hook): one host-side estimate can
            serve all shards since only its logarithm is consumed.
        """
        points = check_points(points)
        weights = check_weights(weights, points.shape[0])
        owns_executor = not isinstance(executor, (Executor, AsyncExecutor))
        if not isinstance(executor, AsyncExecutor):
            executor = resolve_executor(executor)
        root = as_seed_sequence(self.seed)

        n = points.shape[0]
        if self.shuffle:
            # One host-side permutation lays the data out in shard order, so
            # every shard is a contiguous slice of the shared block.
            order = as_generator(keyed_seed_sequence(root, KEY_PARTITION)).permutation(n)
            shard_points = np.ascontiguousarray(points[order])
            shard_weights = np.ascontiguousarray(weights[order])
        else:
            shard_points = points
            shard_weights = weights

        bounds = shard_bounds(n, self.n_shards)
        tasks = [
            ShardTask(
                index=index,
                start=start,
                stop=stop,
                m=self.coreset_size_per_shard,
                sampler=self.sampler,
                seed=shard_seed(root, index),
                spread=spread,
            )
            for index, (start, stop) in enumerate(bounds)
        ]
        payload = ArrayPayload(points=shard_points, weights=shard_weights)
        method = f"sharded[{self.sampler.name}]"
        diagnostics = ExecutionDiagnostics()
        try:
            with _obs.span("sharded.build", n=n, shards=len(bounds)):
                if isinstance(executor, AsyncExecutor):
                    with _obs.span("sharded.collect", shards=len(tasks)):
                        shard_coresets, union, high_water = self._collect_async(
                            executor, tasks, payload
                        )
                    union.method = method
                    diagnostics.pending_high_water = float(high_water)
                    _obs.gauge_set("sharded.pending_high_water", float(high_water))
                else:
                    with _obs.span("sharded.map", shards=len(tasks)):
                        shard_coresets = executor.map(compress_shard, tasks, payload=payload)
                    union = merge_coresets(shard_coresets, method=method)

                if self.final_coreset_size is not None and union.size > self.final_coreset_size:
                    final_seed = keyed_seed_sequence(root, KEY_FINAL)
                    if isinstance(executor, AsyncExecutor):
                        # Ship the (small) union as a reduce task instead of
                        # blocking the host thread — same sampler, seed, and
                        # hints, so the bytes cannot differ.
                        final_task = ShardTask(
                            index=len(tasks),
                            start=0,
                            stop=union.size,
                            m=self.final_coreset_size,
                            sampler=self.sampler,
                            seed=final_seed,
                            spread=spread,
                            stage="final",
                        )
                        final_payload = ArrayPayload(points=union.points, weights=union.weights)
                        with _obs.span("sharded.final_reduce", offloaded=True):
                            coreset = executor.submit(
                                compress_shard, final_task, payload=final_payload
                            ).result()
                        diagnostics.reduces_offloaded = 1.0
                        _obs.counter_add("sharded.reduces_offloaded", 1.0)
                    else:
                        started = time.perf_counter()
                        with _obs.span("sharded.final_reduce", offloaded=False):
                            coreset = self.sampler.sample(
                                union.points,
                                self.final_coreset_size,
                                weights=union.weights,
                                seed=final_seed,
                                spread=spread,
                            )
                        diagnostics.host_reduce_seconds = time.perf_counter() - started
                        diagnostics.host_reduces = 1.0
                        _obs.counter_add("sharded.host_reduces", 1.0)
                    coreset.method = method
                else:
                    coreset = union
        finally:
            if owns_executor:
                executor.close()

        message_sizes = [message.size for message in shard_coresets]
        communication = sum(size * (points.shape[1] + 1) for size in message_sizes)
        backend = executor.name
        if isinstance(executor, AsyncExecutor):
            backend = f"async+{executor.name}"
        return ShardedBuildResult(
            coreset=coreset,
            shard_coresets=shard_coresets,
            shard_sizes=[stop - start for start, stop in bounds],
            message_sizes=message_sizes,
            communication=int(communication),
            backend=backend,
            workers=executor.workers,
            metadata={
                "sampler": self.sampler.name,
                "n_shards": float(len(bounds)),
                "shuffle": float(self.shuffle),
            },
            diagnostics=diagnostics,
        )

    @staticmethod
    def _collect_async(
        executor: AsyncExecutor,
        tasks: List[ShardTask],
        payload: ArrayPayload,
    ) -> Tuple[List[Coreset], Coreset, int]:
        """Collect shard messages as they complete, assembling the union live.

        Shard compressions finish in whatever order the pool schedules them;
        ``map_unordered`` hands each one to the host the moment it lands
        (unpickled off the worker immediately, never buffered behind a
        slower earlier shard).  Instead of a post-loop ``merge_coresets``
        concatenation, the union is a *preallocated* buffer — capacity is
        known up front because shard ``i`` sends exactly ``min(m, stop -
        start)`` points — and every landed message is copied into its slot
        while straggler shards are still running, so the host-side union
        cost overlaps the pool.  Should a sampler ever return fewer points
        than its slot (no in-tree sampler does), the buffer is rebuilt by
        the classical concatenation — same bytes, one extra copy.  Because
        slots are keyed by shard index and each shard's randomness is
        spawn-keyed by that index, completion order cannot influence a
        single byte of the result.

        Returns the messages in shard order, the union coreset, and the
        high-water mark of landed-but-unassembled messages (diagnostics).
        """
        expected = [min(task.m, task.stop - task.start) for task in tasks]
        offsets = np.concatenate([[0], np.cumsum(expected)])
        capacity = int(offsets[-1])
        dimension = payload.points.shape[1]
        union_points = np.empty((capacity, dimension), dtype=np.float64)
        union_weights = np.empty(capacity, dtype=np.float64)
        exact = True

        landed: List[Optional[Coreset]] = [None] * len(tasks)
        ordered: List[Coreset] = []
        landed_count = 0
        high_water = 0
        for index, message in executor.map_unordered(compress_shard, tasks, payload=payload):
            landed[index] = message
            landed_count += 1
            if exact and message.size == expected[index]:
                start, stop = int(offsets[index]), int(offsets[index + 1])
                union_points[start:stop] = message.points
                union_weights[start:stop] = message.weights
            else:
                exact = False
            while len(ordered) < len(landed) and landed[len(ordered)] is not None:
                ordered.append(landed[len(ordered)])
            high_water = max(high_water, landed_count - len(ordered))
        if exact:
            union = Coreset(points=union_points, weights=union_weights)
        else:
            union = merge_coresets(ordered)
        return ordered, union, high_water

"""Pluggable execution backends for embarrassingly parallel coreset work.

The paper's Section 2.3 observation — coresets of disjoint shards compose by
union — makes compression *embarrassingly parallel*: every unit of work is a
pure function of ``(a slice of the dataset, a task description)``.  The
:class:`Executor` abstraction encodes exactly that contract and nothing
more, so the sharded builder, the MapReduce aggregator, and the streaming
merge-&-reduce tree can all fan work out without caring how it runs:

* :class:`SerialExecutor` — runs tasks in a loop on the calling thread; the
  default everywhere, and the reference the other backends must match
  bit-for-bit.
* :class:`ThreadExecutor` — a :class:`concurrent.futures.ThreadPoolExecutor`
  pool; cheap to start and useful when the work releases the GIL (BLAS-heavy
  samplers) or is I/O bound (memory-mapped streams).
* :class:`ProcessExecutor` — a :mod:`multiprocessing` pool that publishes
  the dataset **once** through :mod:`multiprocessing.shared_memory`; tasks
  carry only ``(start, stop)`` offsets into the shared block, so no point
  data is pickled per task and the per-task overhead is independent of the
  shard size.  This is the backend that actually uses multiple cores.

Determinism is the design center: executors never touch randomness.  Every
task arrives with its own spawn-keyed seed (see
:func:`repro.utils.rng.keyed_seed_sequence`), results are returned in task
order, and the task functions are pure, so every backend at every worker
count produces bit-identical outputs.
"""

from __future__ import annotations

import abc
import multiprocessing
from concurrent.futures import ThreadPoolExecutor as _FuturesThreadPool
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Any, Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.utils.validation import check_integer

#: Backend names accepted by :func:`resolve_executor` (and the CLI).
BACKENDS = ("serial", "thread", "process")


@dataclass
class ArrayPayload:
    """The read-only dataset a batch of tasks slices into.

    Serial and thread backends hand the arrays to the task function as-is;
    the process backend copies them into shared memory once per ``map`` call
    and reconstructs zero-copy views inside every worker.
    """

    points: np.ndarray
    weights: np.ndarray


#: Task functions are module-level callables ``fn(payload, task) -> result``
#: so the process backend can pickle the *reference* (never the data).
TaskFunction = Callable[[Optional[ArrayPayload], Any], Any]


class Executor(abc.ABC):
    """Run a batch of pure tasks and return their results in task order."""

    name: str = "abstract"

    def __init__(self, *, workers: int = 1) -> None:
        self.workers = check_integer(workers, name="workers")

    @abc.abstractmethod
    def map(
        self,
        fn: TaskFunction,
        tasks: Sequence[Any],
        *,
        payload: Optional[ArrayPayload] = None,
    ) -> List[Any]:
        """Evaluate ``fn(payload, task)`` for every task, preserving order."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(backend={self.name!r}, workers={self.workers})"


class SerialExecutor(Executor):
    """The in-process reference backend: a plain loop, one worker."""

    name = "serial"

    def __init__(self) -> None:
        super().__init__(workers=1)

    def map(
        self,
        fn: TaskFunction,
        tasks: Sequence[Any],
        *,
        payload: Optional[ArrayPayload] = None,
    ) -> List[Any]:
        return [fn(payload, task) for task in tasks]


class ThreadExecutor(Executor):
    """A thread-pool backend sharing the caller's address space.

    Task functions receive the payload arrays directly (no copy).  The GIL
    serialises pure-Python sections, so speedups come only from NumPy/BLAS
    sections that release it — the backend's main value is exercising the
    executor contract cheaply and overlapping I/O on memory-mapped data.
    """

    name = "thread"

    def map(
        self,
        fn: TaskFunction,
        tasks: Sequence[Any],
        *,
        payload: Optional[ArrayPayload] = None,
    ) -> List[Any]:
        if not tasks:
            return []
        with _FuturesThreadPool(max_workers=min(self.workers, len(tasks))) as pool:
            return list(pool.map(lambda task: fn(payload, task), tasks))


# ---------------------------------------------------------------------------
# Process backend: shared-memory publication + pool workers.
# ---------------------------------------------------------------------------

#: Descriptor of one shared array: (segment name, shape, dtype string).
_ArrayDescriptor = Tuple[str, Tuple[int, ...], str]

#: Set by the pool initializer inside every worker process.
_WORKER_PAYLOAD: Optional[ArrayPayload] = None

#: The worker's attached segments.  They MUST outlive the payload views:
#: dropping the last reference to an attached ``SharedMemory`` runs its
#: ``__del__``/``close`` and tears down the mapping under the live views,
#: killing the worker on first access.
_WORKER_SEGMENTS: List[shared_memory.SharedMemory] = []


def _attach_payload(descriptors: Optional[Tuple[_ArrayDescriptor, _ArrayDescriptor]]) -> None:
    """Pool initializer: rebuild zero-copy payload views inside a worker.

    Pool workers inherit the parent's resource-tracker process, so the
    attach-time registration below lands in the same cache the parent's
    create-time registration already populated (a set: re-adding is a
    no-op) and the parent's ``unlink`` retires it exactly once.  Workers
    must therefore do no tracker bookkeeping of their own — an explicit
    ``unregister`` here would retire the *parent's* entry early.
    """
    global _WORKER_PAYLOAD
    if descriptors is None:
        _WORKER_PAYLOAD = None
        return
    views = []
    for name, shape, dtype in descriptors:
        segment = shared_memory.SharedMemory(name=name)
        _WORKER_SEGMENTS.append(segment)
        views.append(np.ndarray(shape, dtype=np.dtype(dtype), buffer=segment.buf))
    _WORKER_PAYLOAD = ArrayPayload(points=views[0], weights=views[1])


def _call_task(item: Tuple[TaskFunction, Any]) -> Any:
    """Worker-side trampoline: apply the pickled function reference."""
    fn, task = item
    return fn(_WORKER_PAYLOAD, task)


def _publish_array(array: np.ndarray) -> Tuple[shared_memory.SharedMemory, _ArrayDescriptor]:
    """Copy ``array`` into a fresh shared-memory segment (once per map)."""
    array = np.ascontiguousarray(array)
    segment = shared_memory.SharedMemory(create=True, size=max(1, array.nbytes))
    if array.nbytes:
        np.ndarray(array.shape, dtype=array.dtype, buffer=segment.buf)[:] = array
    return segment, (segment.name, array.shape, array.dtype.str)


class ProcessExecutor(Executor):
    """A process-pool backend that ships shards via shared memory.

    Per ``map`` call the payload arrays are copied into
    :class:`multiprocessing.shared_memory.SharedMemory` exactly once; the
    pool initializer attaches every worker to the segments and tasks carry
    only offsets, so the bytes pickled per task are a few hundred regardless
    of shard size.  Results (coresets, whose size is independent of ``n`` by
    the paper's composition argument) are pickled back to the host.

    Parameters
    ----------
    workers:
        Number of worker processes.
    context:
        :mod:`multiprocessing` start-method name; defaults to ``"fork"``
        where available (cheap start-up) and ``"spawn"`` elsewhere.  Task
        functions must be module-level (picklable by reference) either way.
    """

    name = "process"

    def __init__(self, *, workers: int, context: Optional[str] = None) -> None:
        super().__init__(workers=workers)
        if context is None:
            context = "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
        self.context = context

    def map(
        self,
        fn: TaskFunction,
        tasks: Sequence[Any],
        *,
        payload: Optional[ArrayPayload] = None,
    ) -> List[Any]:
        if not tasks:
            return []
        ctx = multiprocessing.get_context(self.context)
        segments: List[shared_memory.SharedMemory] = []
        descriptors = None
        if payload is not None:
            published = [_publish_array(payload.points), _publish_array(payload.weights)]
            segments = [segment for segment, _ in published]
            descriptors = tuple(descriptor for _, descriptor in published)
        try:
            with ctx.Pool(
                processes=min(self.workers, len(tasks)),
                initializer=_attach_payload,
                initargs=(descriptors,),
            ) as pool:
                return pool.map(_call_task, [(fn, task) for task in tasks], chunksize=1)
        finally:
            for segment in segments:
                segment.close()
                segment.unlink()


def resolve_executor(
    executor: Union[None, str, Executor],
    *,
    workers: int = 1,
) -> Executor:
    """Normalise an executor argument: ``None``/name/instance → instance.

    ``None`` and ``"serial"`` give the serial reference backend; a backend
    name builds it with ``workers`` workers; an :class:`Executor` instance is
    passed through unchanged (its own worker count wins).
    """
    if executor is None:
        return SerialExecutor()
    if isinstance(executor, Executor):
        return executor
    if executor == "serial":
        return SerialExecutor()
    if executor == "thread":
        return ThreadExecutor(workers=workers)
    if executor == "process":
        return ProcessExecutor(workers=workers)
    raise ValueError(
        f"unknown executor backend {executor!r}; expected one of {', '.join(BACKENDS)}"
    )

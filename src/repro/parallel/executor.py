"""Pluggable execution backends for embarrassingly parallel coreset work.

The paper's Section 2.3 observation — coresets of disjoint shards compose by
union — makes compression *embarrassingly parallel*: every unit of work is a
pure function of ``(a slice of the dataset, a task description)``.  Two
contracts encode exactly that and nothing more:

* :class:`Executor` — the synchronous contract (``map`` blocks until every
  task returned, results in task order).  Backends:
  :class:`SerialExecutor` (the bit-for-bit reference),
  :class:`ThreadExecutor`, and :class:`ProcessExecutor` (shared-memory
  process pool — the backend that actually uses multiple cores).
* :class:`AsyncExecutor` — the overlapped contract (``submit`` returns a
  :class:`concurrent.futures.Future`; ``map_unordered`` yields results as
  they complete under a bounded in-flight window).  Backends:
  :class:`SerialAsyncExecutor`, :class:`ThreadAsyncExecutor`, and
  :class:`ProcessAsyncExecutor` (a **long-lived** pool whose workers attach
  each shared-memory segment once and reuse it across calls).

Determinism is the design center: executors never touch randomness.  Every
task arrives with its own spawn-keyed seed (see
:func:`repro.utils.rng.keyed_seed_sequence`) and the task functions are
pure, so every backend at every worker count — and, for the async contract,
every completion order and window size — produces bit-identical outputs.
The consumers (sharded builder, merge-&-reduce tree) are responsible for
*folding* results in a completion-order-independent way; the equivalence
suite (``tests/test_async_equivalence.py``) pins the combination.

Segment lifetime (the process backends)
---------------------------------------
The fresh-pool path publishes the payload into brand-new shared-memory
segments per ``map`` call and unlinks them when the call returns; workers
attach in the pool initializer and keep the attachment alive for the pool's
(short) lifetime.  The persistent-pool path instead *leases* segments from a
free list owned by the executor: a publication holds its segments until the
last task referencing it completes, then returns them to the free list for
the next call to overwrite — so a long stream of small ``map`` calls touches
a constant number of segments.  Workers attach **once per segment name**
(:data:`_WORKER_SEGMENT_CACHE`) and close every cached attachment through a
:class:`multiprocessing.util.Finalize` hook when the pool shuts down;
the parent unlinks every segment it ever created in
:meth:`ProcessAsyncExecutor.close`.  Pool workers share the parent's
resource-tracker process, so the attach-time registration lands in the same
cache the create-time registration populated (re-adding is a no-op) and the
parent's ``unlink`` retires each name exactly once — workers must do no
tracker bookkeeping of their own.
"""

from __future__ import annotations

import abc
import itertools
import multiprocessing
import threading
import time
from concurrent.futures import FIRST_COMPLETED
from concurrent.futures import Future
from concurrent.futures import ProcessPoolExecutor as _FuturesProcessPool
from concurrent.futures import ThreadPoolExecutor as _FuturesThreadPool
from concurrent.futures import wait as _wait_futures
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro import observability as _obs
from repro.utils.validation import check_integer

#: Backend names accepted by :func:`resolve_executor`,
#: :func:`resolve_async_executor`, and the CLI.
BACKENDS = ("serial", "thread", "process")


@dataclass
class ArrayPayload:
    """The read-only dataset a batch of tasks slices into.

    Serial and thread backends hand the arrays to the task function as-is;
    the process backends copy them into shared memory (once per ``map`` /
    ``submit_many`` call) and reconstruct zero-copy views inside every
    worker.
    """

    points: np.ndarray
    weights: np.ndarray


#: Task functions are module-level callables ``fn(payload, task) -> result``
#: so the process backend can pickle the *reference* (never the data).
TaskFunction = Callable[[Optional[ArrayPayload], Any], Any]


class Executor(abc.ABC):
    """Run a batch of pure tasks and return their results in task order."""

    name: str = "abstract"

    def __init__(self, *, workers: int = 1) -> None:
        self.workers = check_integer(workers, name="workers")

    @abc.abstractmethod
    def map(
        self,
        fn: TaskFunction,
        tasks: Sequence[Any],
        *,
        payload: Optional[ArrayPayload] = None,
    ) -> List[Any]:
        """Evaluate ``fn(payload, task)`` for every task, preserving order."""

    def close(self) -> None:
        """Release any long-lived resources (pools, shared segments)."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(backend={self.name!r}, workers={self.workers})"


class SerialExecutor(Executor):
    """The in-process reference backend: a plain loop, one worker."""

    name = "serial"

    def __init__(self) -> None:
        super().__init__(workers=1)

    def map(
        self,
        fn: TaskFunction,
        tasks: Sequence[Any],
        *,
        payload: Optional[ArrayPayload] = None,
    ) -> List[Any]:
        return [fn(payload, task) for task in tasks]


class ThreadExecutor(Executor):
    """A thread-pool backend sharing the caller's address space.

    Task functions receive the payload arrays directly (no copy).  The GIL
    serialises pure-Python sections, so speedups come only from NumPy/BLAS
    sections that release it — the backend's main value is exercising the
    executor contract cheaply and overlapping I/O on memory-mapped data.
    """

    name = "thread"

    def map(
        self,
        fn: TaskFunction,
        tasks: Sequence[Any],
        *,
        payload: Optional[ArrayPayload] = None,
    ) -> List[Any]:
        if not tasks:
            return []
        with _FuturesThreadPool(max_workers=min(self.workers, len(tasks))) as pool:
            return list(pool.map(lambda task: fn(payload, task), tasks))


# ---------------------------------------------------------------------------
# Process backends: shared-memory publication + pool workers.
# ---------------------------------------------------------------------------

#: Descriptor of one shared array: (segment name, shape, dtype string).
_ArrayDescriptor = Tuple[str, Tuple[int, ...], str]

#: Set by the pool initializer inside every fresh-pool worker.
_WORKER_PAYLOAD: Optional[ArrayPayload] = None

#: The fresh-pool worker's attached segments.  They MUST outlive the payload
#: views: dropping the last reference to an attached ``SharedMemory`` runs
#: its ``__del__``/``close`` and tears down the mapping under the live
#: views, killing the worker on first access.  The pool is per-``map`` on
#: this path, so the attachments live exactly as long as the call.
_WORKER_SEGMENTS: List[shared_memory.SharedMemory] = []

#: The persistent-pool worker's attach-once cache, keyed by segment name.
#: The parent reuses (and rewrites) the same segments across calls, so the
#: cache stays bounded by the number of distinct segments the parent ever
#: created (a handful); it is closed by a ``multiprocessing.util.Finalize``
#: hook when the worker exits at pool shutdown.
_WORKER_SEGMENT_CACHE: Dict[str, shared_memory.SharedMemory] = {}


def _attach_payload(descriptors: Optional[Tuple[_ArrayDescriptor, _ArrayDescriptor]]) -> None:
    """Fresh-pool initializer: rebuild zero-copy payload views in a worker.

    Pool workers inherit the parent's resource-tracker process, so the
    attach-time registration below lands in the same cache the parent's
    create-time registration already populated (a set: re-adding is a
    no-op) and the parent's ``unlink`` retires it exactly once.  Workers
    must therefore do no tracker bookkeeping of their own — an explicit
    ``unregister`` here would retire the *parent's* entry early.
    """
    global _WORKER_PAYLOAD
    if descriptors is None:
        _WORKER_PAYLOAD = None
        return
    views = []
    for name, shape, dtype in descriptors:
        segment = shared_memory.SharedMemory(name=name)
        _WORKER_SEGMENTS.append(segment)
        views.append(np.ndarray(shape, dtype=np.dtype(dtype), buffer=segment.buf))
    _WORKER_PAYLOAD = ArrayPayload(points=views[0], weights=views[1])


def _call_task(item: Tuple[TaskFunction, Any]) -> Any:
    """Fresh-pool worker-side trampoline: apply the pickled function reference."""
    fn, task = item
    return fn(_WORKER_PAYLOAD, task)


@dataclass
class _TracedResult:
    """A task result with a piggybacked worker-side trace summary.

    The wrapper exists only between the worker trampoline and the host-side
    unwrap (``_unwrap_traced`` / the fresh-pool absorb loop); consumers of
    the executor API never see it, so the values they fold are byte-exact
    with an untraced run.
    """

    result: Any
    summary: Optional[dict]


def _call_traced_task(item: Tuple[TaskFunction, Any]) -> _TracedResult:
    """Fresh-pool trampoline that captures worker-side spans/counters."""
    fn, task = item
    with _obs.worker_capture() as capture:
        result = fn(_WORKER_PAYLOAD, task)
    return _TracedResult(result, capture.summary)


def _unwrap_traced(inner: Future) -> Future:
    """Future adapter: absorb the piggybacked summary, expose the bare result."""
    outer: Future = Future()

    def _copy(done: Future) -> None:
        error = done.exception()
        if error is not None:
            outer.set_exception(error)
            return
        value = done.result()
        if isinstance(value, _TracedResult):
            _obs.absorb_summary(value.summary)
            outer.set_result(value.result)
        else:
            outer.set_result(value)

    inner.add_done_callback(_copy)
    return outer


def _publish_array(array: np.ndarray) -> Tuple[shared_memory.SharedMemory, _ArrayDescriptor]:
    """Copy ``array`` into a fresh shared-memory segment (once per map)."""
    array = np.ascontiguousarray(array)
    segment = shared_memory.SharedMemory(create=True, size=max(1, array.nbytes))
    if array.nbytes:
        np.ndarray(array.shape, dtype=array.dtype, buffer=segment.buf)[:] = array
    return segment, (segment.name, array.shape, array.dtype.str)


def _close_worker_segment_cache() -> None:
    """Persistent-pool worker exit hook: close every cached attachment."""
    for segment in _WORKER_SEGMENT_CACHE.values():
        try:
            segment.close()
        except BufferError:  # pragma: no cover - a view outlived its task
            pass
    _WORKER_SEGMENT_CACHE.clear()


def _init_persistent_worker() -> None:
    """Persistent-pool initializer: arrange segment close at worker exit.

    ``atexit`` handlers do not run in multiprocessing children (they exit
    through ``os._exit``); ``multiprocessing.util.Finalize`` hooks do — the
    child's ``_bootstrap`` runs them on the way out — so this is the
    mechanism that makes "explicit close on pool shutdown" real.
    """
    from multiprocessing import util

    util.Finalize(None, _close_worker_segment_cache, exitpriority=10)


def _worker_warmup(delay: float) -> None:
    """Persistent-pool warm-up task: nap briefly so the pool cannot satisfy
    a burst of warm-up submissions with one worker and is forced to spawn
    its full complement (see :meth:`ProcessAsyncExecutor.prepare`)."""
    time.sleep(delay)


def _run_persistent_task(
    fn: TaskFunction,
    task: Any,
    descriptors: Optional[Tuple[_ArrayDescriptor, _ArrayDescriptor]],
) -> Any:
    """Persistent-pool worker-side trampoline: attach-once, then apply.

    Descriptors travel with every task (a few hundred bytes); the segment
    attachment is cached by name, so re-publication into a reused segment
    costs the worker nothing.  Views are rebuilt per task because the same
    segment may carry a different shape on the next lease.
    """
    if descriptors is None:
        return fn(None, task)
    views = []
    for name, shape, dtype in descriptors:
        segment = _WORKER_SEGMENT_CACHE.get(name)
        if segment is None:
            segment = shared_memory.SharedMemory(name=name)
            _WORKER_SEGMENT_CACHE[name] = segment
        views.append(np.ndarray(shape, dtype=np.dtype(dtype), buffer=segment.buf))
    return fn(ArrayPayload(points=views[0], weights=views[1]), task)


def _run_traced_persistent_task(
    fn: TaskFunction,
    task: Any,
    descriptors: Optional[Tuple[_ArrayDescriptor, _ArrayDescriptor]],
) -> _TracedResult:
    """Persistent-pool trampoline that captures worker-side spans/counters.

    Selected host-side at submission time (only while tracing is active),
    so workers need no tracing state of their own: the capture installs a
    private recorder for the duration of the task and the summary rides
    back on the result.
    """
    with _obs.worker_capture() as capture:
        result = _run_persistent_task(fn, task, descriptors)
    return _TracedResult(result, capture.summary)


class _Publication:
    """One payload published into leased segments, refcounted by task.

    The segments MUST NOT return to the owner's free list (where the next
    ``submit_many`` would overwrite them) until every task that references
    them has completed; each future's done-callback decrements the count and
    the last one releases.  ``wait_released`` lets the synchronous ``map``
    wrapper make the release deterministic — done-callbacks can otherwise
    fire marginally *after* ``Future.result`` returns.
    """

    def __init__(
        self,
        owner: "ProcessAsyncExecutor",
        segments: List[shared_memory.SharedMemory],
        descriptors: Tuple[_ArrayDescriptor, ...],
        references: int,
    ) -> None:
        self._owner = owner
        self._segments = segments
        self.descriptors = descriptors
        self._references = references
        self._drained = False
        self._lock = threading.Lock()
        self._released = threading.Event()

    def release_one(self, _future: Optional[Future] = None) -> None:
        self.release_many(1)

    def release_many(self, count: int) -> None:
        if count <= 0:
            return
        with self._lock:
            self._references -= count
            drained = self._references <= 0 and not self._drained
            if drained:
                self._drained = True
        if drained:
            self._owner._reclaim(self._segments)
            self._released.set()

    def wait_released(self, timeout: Optional[float] = None) -> bool:
        return self._released.wait(timeout)


class ProcessExecutor(Executor):
    """A process-pool backend that ships shards via shared memory.

    The payload arrays are copied into
    :class:`multiprocessing.shared_memory.SharedMemory` once per ``map``
    call; workers attach to the segments and tasks carry only offsets, so
    the bytes pickled per task are a few hundred regardless of shard size.
    Results (coresets, whose size is independent of ``n`` by the paper's
    composition argument) are pickled back to the host.

    By default ``map`` routes through one **persistent**
    :class:`ProcessAsyncExecutor` pool owned by this executor: worker
    start-up is paid once, and shared-memory segments are leased from a free
    list instead of created per call — the behaviour a streaming pipeline
    issuing one ``map`` per batch wants.  Call :meth:`close` (or use the
    executor as a context manager) to shut the pool down and unlink the
    pooled segments; dropping the last reference does the same.

    Parameters
    ----------
    workers:
        Number of worker processes.
    context:
        :mod:`multiprocessing` start-method name; defaults to ``"fork"``
        where available (cheap start-up) and ``"spawn"`` elsewhere.  Task
        functions must be module-level (picklable by reference) either way.
    fresh_pool:
        Escape hatch restoring the historical start-a-pool-per-``map``
        behaviour (simple, nothing persists between calls).  The old
        *default* of silently re-creating pools inside a streaming loop is
        deprecated — opt in explicitly if a workload really wants pool
        isolation per call.
    """

    name = "process"

    def __init__(
        self,
        *,
        workers: int,
        context: Optional[str] = None,
        fresh_pool: bool = False,
    ) -> None:
        super().__init__(workers=workers)
        if context is None:
            context = "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
        self.context = context
        self.fresh_pool = bool(fresh_pool)
        self._persistent: Optional["ProcessAsyncExecutor"] = None
        self._closed = False

    def map(
        self,
        fn: TaskFunction,
        tasks: Sequence[Any],
        *,
        payload: Optional[ArrayPayload] = None,
    ) -> List[Any]:
        if self._closed:
            raise RuntimeError("executor is closed")
        if not tasks:
            return []
        if self.fresh_pool:
            return self._map_fresh_pool(fn, tasks, payload=payload)
        if self._persistent is None:
            self._persistent = ProcessAsyncExecutor(workers=self.workers, context=self.context)
        return self._persistent.map(fn, tasks, payload=payload)

    def close(self) -> None:
        self._closed = True
        if self._persistent is not None:
            self._persistent.close()
            self._persistent = None

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass

    def _map_fresh_pool(
        self,
        fn: TaskFunction,
        tasks: Sequence[Any],
        *,
        payload: Optional[ArrayPayload] = None,
    ) -> List[Any]:
        ctx = multiprocessing.get_context(self.context)
        segments: List[shared_memory.SharedMemory] = []
        descriptors = None
        if payload is not None:
            published = [_publish_array(payload.points), _publish_array(payload.weights)]
            segments = [segment for segment, _ in published]
            descriptors = tuple(descriptor for _, descriptor in published)
        traced = _obs.tracing_active()
        try:
            with ctx.Pool(
                processes=min(self.workers, len(tasks)),
                initializer=_attach_payload,
                initargs=(descriptors,),
            ) as pool:
                call = _call_traced_task if traced else _call_task
                results = pool.map(call, [(fn, task) for task in tasks], chunksize=1)
            if traced:
                for value in results:
                    if isinstance(value, _TracedResult):
                        _obs.absorb_summary(value.summary)
                results = [
                    value.result if isinstance(value, _TracedResult) else value
                    for value in results
                ]
            return results
        finally:
            for segment in segments:
                segment.close()
                segment.unlink()


def resolve_executor(
    executor: Union[None, str, Executor],
    *,
    workers: int = 1,
) -> Executor:
    """Normalise an executor argument: ``None``/name/instance → instance.

    ``None`` and ``"serial"`` give the serial reference backend; a backend
    name builds it with ``workers`` workers; an :class:`Executor` instance is
    passed through unchanged (its own worker count wins).
    """
    if executor is None:
        return SerialExecutor()
    if isinstance(executor, Executor):
        return executor
    if executor == "serial":
        return SerialExecutor()
    if executor == "thread":
        return ThreadExecutor(workers=workers)
    if executor == "process":
        return ProcessExecutor(workers=workers)
    raise ValueError(
        f"unknown executor backend {executor!r}; expected one of {', '.join(BACKENDS)}"
    )


# ---------------------------------------------------------------------------
# The asynchronous contract: futures, unordered completion, bounded windows.
# ---------------------------------------------------------------------------


class AsyncExecutor(abc.ABC):
    """Run pure tasks asynchronously: ``submit`` returns a future.

    The contract adds *overlap* to the :class:`Executor` guarantees without
    touching determinism: every stochastic input (seed, spread hint) is
    fixed by the caller **before** submission, so completion order can only
    change wall-clock time, never bytes.  Consumers that fold results must
    do so in an order-independent way (collect by task index, fold in task
    order) — the pattern :class:`~repro.parallel.sharded.ShardedCoresetBuilder`
    and :class:`~repro.streaming.merge_reduce.MergeReduceTree` implement and
    the equivalence suite pins.

    Backends implement two hooks: :meth:`_publish` (make a payload visible
    to the workers, refcounted by the number of tasks that will slice it)
    and :meth:`_submit_task` (schedule one task, returning a
    :class:`concurrent.futures.Future`).  Everything else — ``submit``,
    ``submit_many``, ordered ``map``, windowed ``map_unordered`` — is
    derived here, so a test double only needs the two hooks.
    """

    name: str = "abstract"

    def __init__(self, *, workers: int = 1) -> None:
        self.workers = check_integer(workers, name="workers")

    # ------------------------------------------------------------- hooks
    @abc.abstractmethod
    def _publish(self, payload: Optional[ArrayPayload], references: int) -> Any:
        """Make ``payload`` visible to workers; returns a backend handle."""

    @abc.abstractmethod
    def _submit_task(self, fn: TaskFunction, task: Any, handle: Any) -> Future:
        """Schedule one task against a published payload handle."""

    def _finalize_publication(self, handle: Any) -> None:
        """Synchronisation point after all of a publication's results landed."""

    def _discard_unsubmitted(self, handle: Any, count: int) -> None:
        """Forfeit publication references for tasks that were never submitted.

        A windowed :meth:`map_unordered` can exit early — the consumer
        breaks, or a task raises — with part of its backlog unsubmitted;
        those tasks will never complete, so a refcounting backend must
        retire their references here or the publication stays pinned until
        :meth:`close`.
        """

    def prepare(self) -> None:
        """Eagerly acquire worker resources (a no-op for in-process backends).

        Callers that are about to start helper threads (the streaming
        pipeline's prefetch reader) call this first so that process
        backends fork their workers while the interpreter is still
        single-threaded — forking a multi-threaded process is the classic
        :mod:`multiprocessing` hazard.
        """

    # ---------------------------------------------------------- interface
    def submit(
        self,
        fn: TaskFunction,
        task: Any,
        *,
        payload: Optional[ArrayPayload] = None,
    ) -> Future:
        """Schedule ``fn(payload, task)``; the future resolves to its result."""
        return self.submit_many(fn, [task], payload=payload)[0]

    def _submit_batch(
        self,
        fn: TaskFunction,
        tasks: List[Any],
        payload: Optional[ArrayPayload],
    ) -> Tuple[Any, List[Future]]:
        """One publication, one future per task — the shared submission path."""
        handle = self._publish(payload, len(tasks))
        _obs.counter_add("executor.tasks_submitted", float(len(tasks)))
        return handle, [self._submit_task(fn, task, handle) for task in tasks]

    def submit_many(
        self,
        fn: TaskFunction,
        tasks: Sequence[Any],
        *,
        payload: Optional[ArrayPayload] = None,
    ) -> List[Future]:
        """Schedule a batch of tasks sharing one payload publication."""
        tasks = list(tasks)
        if not tasks:
            return []
        _, futures = self._submit_batch(fn, tasks, payload)
        return futures

    def map(
        self,
        fn: TaskFunction,
        tasks: Sequence[Any],
        *,
        payload: Optional[ArrayPayload] = None,
    ) -> List[Any]:
        """Blocking convenience wrapper: results in task order.

        This is the :class:`Executor` contract on the async machinery, which
        is what lets the synchronous :class:`ProcessExecutor` route its
        ``map`` through the persistent pool.
        """
        tasks = list(tasks)
        if not tasks:
            return []
        handle, futures = self._submit_batch(fn, tasks, payload)
        try:
            results = [future.result() for future in futures]
        finally:
            self._finalize_publication(handle)
        return results

    def map_unordered(
        self,
        fn: TaskFunction,
        tasks: Sequence[Any],
        *,
        payload: Optional[ArrayPayload] = None,
        window: Optional[int] = None,
    ) -> Iterator[Tuple[int, Any]]:
        """Yield ``(task_index, result)`` pairs as tasks complete.

        At most ``window`` tasks are in flight at a time (``None`` submits
        everything up front); the payload is published once for the whole
        call either way.  The window bounds memory — both the host-side
        result backlog and, for the process backend, how long a publication
        pins its leased segments — without affecting results: indices let
        the caller fold in task order regardless of completion order.
        """
        tasks = list(tasks)
        if not tasks:
            return
        limit = len(tasks) if window is None else max(1, check_integer(window, name="window"))
        handle = self._publish(payload, len(tasks))
        submitted = 0
        try:
            backlog = iter(enumerate(tasks))
            pending: Dict[Future, int] = {}
            for index, task in itertools.islice(backlog, limit):
                pending[self._submit_task(fn, task, handle)] = index
                submitted += 1
            _obs.counter_add("executor.tasks_submitted", float(submitted))
            _obs.gauge_set("executor.queue_depth", float(len(pending)))
            while pending:
                done, _ = _wait_futures(set(pending), return_when=FIRST_COMPLETED)
                for future in done:
                    index = pending.pop(future)
                    for next_index, next_task in itertools.islice(backlog, 1):
                        pending[self._submit_task(fn, next_task, handle)] = next_index
                        submitted += 1
                        _obs.counter_add("executor.tasks_submitted", 1.0)
                    _obs.gauge_set("executor.queue_depth", float(len(pending)))
                    yield index, future.result()
        finally:
            # On early exit (consumer break, task exception) the unsubmitted
            # backlog would otherwise pin the publication forever.
            self._discard_unsubmitted(handle, len(tasks) - submitted)
            self._finalize_publication(handle)

    def close(self) -> None:
        """Shut down pools and release every published resource."""

    def __enter__(self) -> "AsyncExecutor":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(backend={self.name!r}, workers={self.workers})"


def chain_future(source: Future, target: Future) -> None:
    """Propagate ``source``'s outcome (result or exception) into ``target``.

    The building block of dependency-chained submission: a consumer can hand
    out ``target`` immediately and let the backend resolve ``source``
    whenever it schedules the work.
    """

    def _copy(done: Future) -> None:
        error = done.exception()
        if error is not None:
            target.set_exception(error)
        else:
            target.set_result(done.result())

    source.add_done_callback(_copy)


def submit_when_ready(
    executor: "AsyncExecutor",
    fn: TaskFunction,
    dependencies: Sequence[Any],
    build: Callable[[List[Any]], Tuple[Any, Optional[ArrayPayload]]],
) -> Future:
    """Submit a task the moment its (possibly future-valued) inputs exist.

    This is the *reduce-task path*: a reduction consumes the outputs of
    earlier tasks — small, coreset-sized messages, never the original
    dataset — so it cannot be submitted up front with the leaf batch, but
    it also must not make the host block on its inputs.  ``dependencies``
    may mix plain values and :class:`~concurrent.futures.Future` objects;
    when the last future lands, ``build(resolved_values)`` is called to
    produce ``(task, payload)`` and the task is submitted to ``executor``.
    The returned future resolves to the task's result.

    Three properties make this safe:

    * **Submission order is irrelevant.**  The caller fixes every stochastic
      input (seed, hints) inside ``task`` *before* calling this function, so
      whether the submission happens now (inputs already resolved — it then
      runs synchronously on the calling thread for the serial backend) or
      later from a completion callback changes wall-clock only.
    * **Executor submission is thread-safe.**  The barrier callback may fire
      on a worker/completion thread; every backend's ``submit`` path takes
      its own locks (pool creation, segment leasing) and
      ``concurrent.futures`` pools accept cross-thread submissions.
    * **Failures propagate, never orphan.**  If an input future fails, the
      task is never submitted (no publication is created, so refcounting
      backends pin nothing) and the input's exception resolves the returned
      future; if ``build`` or the submission itself raises, likewise.
    """
    result: Future = Future()

    def _launch() -> None:
        try:
            resolved = [
                value.result() if isinstance(value, Future) else value
                for value in dependencies
            ]
            task, payload = build(resolved)
            inner = executor.submit(fn, task, payload=payload)
        except BaseException as error:  # noqa: BLE001 - mirrored into the future
            result.set_exception(error)
            return
        chain_future(inner, result)

    waiting = [value for value in dependencies if isinstance(value, Future)]
    if not waiting:
        _launch()
        return result

    barrier = threading.Lock()
    remaining = [len(waiting)]

    def _dependency_done(_: Future) -> None:
        with barrier:
            remaining[0] -= 1
            ready = remaining[0] == 0
        if ready:
            _launch()

    for value in waiting:
        value.add_done_callback(_dependency_done)
    return result


class SerialAsyncExecutor(AsyncExecutor):
    """The async reference backend: tasks run inline at submission time.

    Futures are returned already resolved, so this backend exhibits the
    *degenerate* completion order (submission order) — the other end of the
    spectrum from the jittered test double — while sharing every code path
    of the async consumers.
    """

    name = "serial"

    def __init__(self) -> None:
        super().__init__(workers=1)

    def _publish(self, payload: Optional[ArrayPayload], references: int) -> Any:
        return payload

    def _submit_task(self, fn: TaskFunction, task: Any, handle: Any) -> Future:
        future: Future = Future()
        try:
            future.set_result(fn(handle, task))
        except BaseException as error:  # noqa: BLE001 - mirrored into the future
            future.set_exception(error)
        return future


class ThreadAsyncExecutor(AsyncExecutor):
    """A persistent thread-pool async backend (payload shared by reference).

    The pool outlives individual calls, so a stream of small batches pays
    thread start-up once.  As with :class:`ThreadExecutor`, speedups come
    from GIL-releasing NumPy sections and I/O overlap — reading the next
    memory-mapped batch while the current one compresses is exactly the
    streaming pipeline's use of this backend.
    """

    name = "thread"

    def __init__(self, *, workers: int) -> None:
        super().__init__(workers=workers)
        self._pool: Optional[_FuturesThreadPool] = None
        self._lock = threading.Lock()
        self._closed = False

    def _ensure_pool(self) -> _FuturesThreadPool:
        with self._lock:
            if self._closed:
                raise RuntimeError("executor is closed")
            if self._pool is None:
                self._pool = _FuturesThreadPool(
                    max_workers=self.workers, thread_name_prefix="repro-async"
                )
            return self._pool

    def _publish(self, payload: Optional[ArrayPayload], references: int) -> Any:
        return payload

    def _submit_task(self, fn: TaskFunction, task: Any, handle: Any) -> Future:
        return self._ensure_pool().submit(fn, handle, task)

    def close(self) -> None:
        with self._lock:
            self._closed = True
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass


class ProcessAsyncExecutor(AsyncExecutor):
    """A persistent shared-memory process pool with segment reuse.

    The pool is created lazily on first submission and lives until
    :meth:`close`; publications lease segments from a free list (creating
    one only when no pooled segment is large enough), overwrite them with
    the new payload bytes, and return them to the list once the last task
    referencing them completes.  Workers attach each segment name exactly
    once and reuse the mapping for every later lease of that segment, so a
    long run of small calls settles into a steady state with **zero**
    segment creation, attachment, or unlinking per call — the property the
    pool-reuse stress test pins via the resource-tracker-visible names in
    ``/dev/shm``.

    Parameters
    ----------
    workers:
        Number of worker processes.
    context:
        :mod:`multiprocessing` start-method name; defaults to ``"fork"``
        where available and ``"spawn"`` elsewhere.
    """

    name = "process"

    def __init__(self, *, workers: int, context: Optional[str] = None) -> None:
        super().__init__(workers=workers)
        if context is None:
            context = "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
        self.context = context
        self._pool: Optional[_FuturesProcessPool] = None
        self._lock = threading.Lock()
        self._closed = False
        self._free: List[shared_memory.SharedMemory] = []
        self._segments: Dict[str, shared_memory.SharedMemory] = {}

    # ------------------------------------------------------------ segments
    def _lease_locked(self, nbytes: int) -> shared_memory.SharedMemory:
        """Take the smallest adequate free segment, or create a new one."""
        best: Optional[int] = None
        for index, segment in enumerate(self._free):
            if segment.size >= max(1, nbytes) and (
                best is None or segment.size < self._free[best].size
            ):
                best = index
        if best is not None:
            return self._free.pop(best)
        segment = shared_memory.SharedMemory(create=True, size=max(1, nbytes))
        self._segments[segment.name] = segment
        return segment

    def _reclaim(self, segments: List[shared_memory.SharedMemory]) -> None:
        """Return drained publication segments to the free list."""
        with self._lock:
            if self._closed:
                return
            self._free.extend(segments)

    def _write_array(
        self, array: np.ndarray
    ) -> Tuple[shared_memory.SharedMemory, _ArrayDescriptor]:
        array = np.ascontiguousarray(array)
        with self._lock:
            if self._closed:
                raise RuntimeError("executor is closed")
            segment = self._lease_locked(array.nbytes)
        if array.nbytes:
            view = np.ndarray(array.shape, dtype=array.dtype, buffer=segment.buf)
            view[:] = array
            del view
        return segment, (segment.name, array.shape, array.dtype.str)

    # ---------------------------------------------------------------- pool
    def _ensure_pool(self) -> _FuturesProcessPool:
        with self._lock:
            if self._closed:
                raise RuntimeError("executor is closed")
            if self._pool is None:
                # Start the parent's resource tracker *before* the pool can
                # fork: a worker forked while no tracker exists (possible
                # when the first submission precedes the first publication,
                # e.g. the prepare() warm-up) would lazily start its own
                # private tracker on first attach-register — one that never
                # sees the parent's unregister and falsely reports leaked
                # segments at exit.
                try:
                    from multiprocessing import resource_tracker

                    resource_tracker.ensure_running()
                except (ImportError, AttributeError):  # pragma: no cover
                    pass
                self._pool = _FuturesProcessPool(
                    max_workers=self.workers,
                    mp_context=multiprocessing.get_context(self.context),
                    initializer=_init_persistent_worker,
                )
            return self._pool

    # --------------------------------------------------------------- hooks
    def _publish(self, payload: Optional[ArrayPayload], references: int) -> Optional[_Publication]:
        if payload is None:
            return None
        with _obs.span("executor.publish", backend=self.name) as publish_span:
            published = [self._write_array(payload.points), self._write_array(payload.weights)]
            publish_span.annotate(
                nbytes=int(payload.points.nbytes) + int(payload.weights.nbytes),
                references=references,
            )
        if _obs.tracing_active():
            with self._lock:
                _obs.gauge_set("executor.segments_live", float(len(self._segments)))
                _obs.gauge_set("executor.segments_free", float(len(self._free)))
        return _Publication(
            self,
            [segment for segment, _ in published],
            tuple(descriptor for _, descriptor in published),
            references,
        )

    def _submit_task(self, fn: TaskFunction, task: Any, handle: Optional[_Publication]) -> Future:
        pool = self._ensure_pool()
        descriptors = None if handle is None else handle.descriptors
        # Tracing is decided host-side at submission time: workers carry no
        # tracing state, so an untraced run ships the plain trampoline and
        # pays nothing.
        if _obs.tracing_active():
            inner = pool.submit(_run_traced_persistent_task, fn, task, descriptors)
            future = _unwrap_traced(inner)
        else:
            inner = pool.submit(_run_persistent_task, fn, task, descriptors)
            future = inner
        if handle is not None:
            inner.add_done_callback(handle.release_one)
        return future

    def _finalize_publication(self, handle: Optional[_Publication]) -> None:
        # Done-callbacks may fire marginally after Future.result returns;
        # waiting here makes segment reuse deterministic for the next call.
        if handle is not None:
            handle.wait_released(timeout=60.0)

    def _discard_unsubmitted(self, handle: Optional[_Publication], count: int) -> None:
        if handle is not None:
            handle.release_many(count)

    def prepare(self) -> None:
        """Best-effort pre-start of the full worker complement.

        :class:`concurrent.futures.ProcessPoolExecutor` spawns workers
        lazily, one per submission that finds no idle worker — so under the
        default ``fork`` context a later submission can fork *after* the
        caller has started helper threads.  Submitting ``workers`` brief
        warm-up naps here forces the spawns to happen now, while the
        process is still single-threaded.
        """
        pool = self._ensure_pool()
        for future in [pool.submit(_worker_warmup, 0.02) for _ in range(self.workers)]:
            future.result()

    def close(self) -> None:
        """Shut the pool down, close worker attachments, unlink every segment."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            pool, self._pool = self._pool, None
            segments = list(self._segments.values())
            self._segments.clear()
            self._free.clear()
        if pool is not None:
            # wait=True drains outstanding tasks, and worker exit runs the
            # Finalize hook that closes the worker-side attachment cache.
            pool.shutdown(wait=True)
        for segment in segments:
            try:
                segment.close()
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already retired
                pass

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass


def resolve_async_executor(
    executor: Union[None, str, Executor, AsyncExecutor],
    *,
    workers: int = 1,
) -> AsyncExecutor:
    """Normalise an async-executor argument to an :class:`AsyncExecutor`.

    ``None`` and ``"serial"`` give the inline reference backend; a backend
    name builds the persistent pool variant with ``workers`` workers; an
    :class:`AsyncExecutor` instance passes through unchanged.  A synchronous
    :class:`Executor` instance is *promoted* to its async sibling (same
    backend, same worker count) — the caller owns the returned executor and
    should :meth:`~AsyncExecutor.close` it.
    """
    if executor is None or executor == "serial":
        return SerialAsyncExecutor()
    if isinstance(executor, AsyncExecutor):
        return executor
    if isinstance(executor, ProcessExecutor):
        return ProcessAsyncExecutor(workers=executor.workers, context=executor.context)
    if isinstance(executor, ThreadExecutor):
        return ThreadAsyncExecutor(workers=executor.workers)
    if isinstance(executor, SerialExecutor):
        return SerialAsyncExecutor()
    if executor == "thread":
        return ThreadAsyncExecutor(workers=workers)
    if executor == "process":
        return ProcessAsyncExecutor(workers=workers)
    raise ValueError(
        f"unknown executor backend {executor!r}; expected one of {', '.join(BACKENDS)}"
    )

"""Low-overhead hierarchical span recorder and counters/gauges registry.

The module keeps exactly one *active* recorder per process.  By default it
is a shared no-op singleton, so every instrumentation point in the hot
paths costs one global lookup plus one no-op method call — well inside
measurement noise for the tracked bench workloads.  ``start_tracing()``
swaps in a real :class:`TraceRecorder`; ``stop_tracing()`` swaps the no-op
back.

Design points:

* **Spans** are recorded on close as flat :class:`SpanRecord` rows in a
  ring buffer (``collections.deque(maxlen=...)``), so a runaway trace can
  never exhaust memory — the oldest spans fall off and ``dropped_spans``
  counts them.  Nesting depth and parent names come from a per-thread
  stack, so thread-pool workers interleave without locking.
* **Clocks**: monotonic wall time via ``time.perf_counter()`` (on Linux a
  system-wide monotonic clock, so worker-process timestamps merge onto the
  host timeline directly) and process CPU time via ``time.process_time()``.
* **Counters** accumulate (``counter_add``), **gauges** record the latest
  value plus a high-water mark (``gauge_set``).  Both live behind one lock;
  they are touched at stage granularity, never per point.
* **Cross-process aggregation**: a pool task runs under
  ``worker_capture()``, which installs a private recorder for the duration
  of the task and yields a compact picklable summary.  The host absorbs the
  summary with :meth:`TraceRecorder.absorb`, tagging every span with the
  worker's pid so the merged timeline keeps worker identity.  The executor
  seam (see ``repro/parallel/executor.py``) piggybacks the summary on the
  task result and strips it before any consumer sees the value, which is
  how mode-compared statistics stay byte-exact.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = [
    "SpanRecord",
    "TraceRecorder",
    "NullRecorder",
    "get_recorder",
    "tracing_active",
    "span",
    "counter_add",
    "gauge_set",
    "start_tracing",
    "stop_tracing",
    "tracing",
    "worker_capture",
    "absorb_summary",
]

DEFAULT_RING_LIMIT = 200_000

# Compact wire format for one span inside a worker summary (a plain tuple
# keeps the pickled payload small): (name, category, start, duration,
# cpu_duration, tid, depth, args-or-None).
_SpanTuple = Tuple[str, str, float, float, float, int, int, Optional[dict]]


@dataclass(frozen=True)
class SpanRecord:
    """One closed span.  ``start`` is ``time.perf_counter()`` seconds."""

    name: str
    category: str
    start: float
    duration: float
    cpu_duration: float
    pid: int
    tid: int
    depth: int
    args: Optional[dict] = None


class _SpanContext:
    """Context manager for one live span on the enabled recorder."""

    __slots__ = ("_recorder", "_name", "_category", "_args", "_start", "_cpu", "_depth")

    def __init__(self, recorder: "TraceRecorder", name: str, category: str, args: Optional[dict]):
        self._recorder = recorder
        self._name = name
        self._category = category
        self._args = args

    def annotate(self, **kwargs: Any) -> None:
        """Attach arguments discovered mid-span (e.g. loop totals)."""

        if self._args is None:
            self._args = {}
        self._args.update(kwargs)

    def __enter__(self) -> "_SpanContext":
        stack = self._recorder._stack()
        self._depth = len(stack)
        stack.append(self._name)
        self._cpu = time.process_time()
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        end = time.perf_counter()
        cpu_end = time.process_time()
        recorder = self._recorder
        recorder._stack().pop()
        recorder._append(
            SpanRecord(
                name=self._name,
                category=self._category,
                start=self._start,
                duration=end - self._start,
                cpu_duration=cpu_end - self._cpu,
                pid=recorder.pid,
                tid=threading.get_ident(),
                depth=self._depth,
                args=self._args,
            )
        )


class _NullSpan:
    """Shared, reusable no-op span: the entire disabled-mode cost."""

    __slots__ = ()

    def annotate(self, **kwargs: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullRecorder:
    """Recorder installed by default: every operation is a no-op."""

    __slots__ = ()

    active = False

    def span(self, name: str, category: str = "repro", **args: Any) -> _NullSpan:
        return _NULL_SPAN

    def counter_add(self, name: str, value: float = 1.0) -> None:
        pass

    def gauge_set(self, name: str, value: float) -> None:
        pass

    def absorb(self, summary: Optional[dict]) -> None:
        pass


class TraceRecorder:
    """Ring-buffer-bounded span recorder plus counters/gauges registry."""

    active = True

    def __init__(self, ring_limit: int = DEFAULT_RING_LIMIT):
        self.ring_limit = int(ring_limit)
        self.pid = os.getpid()
        self.spans: "deque[SpanRecord]" = deque(maxlen=self.ring_limit)
        self.dropped_spans = 0
        self._local = threading.local()
        self._lock = threading.Lock()
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._gauge_high: Dict[str, float] = {}

    # -- span API ---------------------------------------------------------

    def span(self, name: str, category: str = "repro", **args: Any) -> _SpanContext:
        return _SpanContext(self, name, category, args if args else None)

    def _stack(self) -> List[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _append(self, record: SpanRecord) -> None:
        if len(self.spans) == self.ring_limit:
            self.dropped_spans += 1
        self.spans.append(record)

    # -- counters / gauges ------------------------------------------------

    def counter_add(self, name: str, value: float = 1.0) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0.0) + value

    def gauge_set(self, name: str, value: float) -> None:
        value = float(value)
        with self._lock:
            self._gauges[name] = value
            if value > self._gauge_high.get(name, float("-inf")):
                self._gauge_high[name] = value

    def counters(self) -> Dict[str, float]:
        with self._lock:
            return dict(self._counters)

    def gauges(self) -> Dict[str, float]:
        with self._lock:
            return dict(self._gauges)

    def gauge_high_water(self) -> Dict[str, float]:
        with self._lock:
            return dict(self._gauge_high)

    # -- cross-process aggregation ---------------------------------------

    def summary(self) -> Optional[dict]:
        """Compact picklable summary for piggybacking on a task result."""

        spans: List[_SpanTuple] = [
            (r.name, r.category, r.start, r.duration, r.cpu_duration, r.tid, r.depth, r.args)
            for r in self.spans
        ]
        counters = self.counters()
        gauges = self.gauges()
        if not spans and not counters and not gauges:
            return None
        return {
            "pid": self.pid,
            "spans": spans,
            "counters": counters,
            "gauges": gauges,
            "dropped": self.dropped_spans,
        }

    def absorb(self, summary: Optional[dict]) -> None:
        """Merge a worker summary produced by :meth:`summary`.

        Spans keep the worker's pid/tid; counters sum; gauges keep the
        maximum observed value (they are high-water style by the time they
        cross the process boundary).
        """

        if not summary:
            return
        pid = int(summary.get("pid", 0))
        for name, category, start, duration, cpu, tid, depth, args in summary.get("spans", ()):
            self._append(
                SpanRecord(
                    name=name,
                    category=category,
                    start=start,
                    duration=duration,
                    cpu_duration=cpu,
                    pid=pid,
                    tid=tid,
                    depth=depth,
                    args=args,
                )
            )
        with self._lock:
            for name, value in summary.get("counters", {}).items():
                self._counters[name] = self._counters.get(name, 0.0) + value
            for name, value in summary.get("gauges", {}).items():
                if value > self._gauges.get(name, float("-inf")):
                    self._gauges[name] = value
                if value > self._gauge_high.get(name, float("-inf")):
                    self._gauge_high[name] = value
            self.dropped_spans += int(summary.get("dropped", 0))

    # -- snapshots --------------------------------------------------------

    def metrics(self) -> Dict[str, Any]:
        """Flat metrics dict: counters, gauges, and per-name span rollups."""

        rollup: Dict[str, Dict[str, float]] = {}
        for record in list(self.spans):
            agg = rollup.setdefault(
                record.name, {"count": 0.0, "wall_seconds": 0.0, "cpu_seconds": 0.0}
            )
            agg["count"] += 1.0
            agg["wall_seconds"] += record.duration
            agg["cpu_seconds"] += record.cpu_duration
        return {
            "counters": self.counters(),
            "gauges": self.gauges(),
            "gauge_high_water": self.gauge_high_water(),
            "spans": rollup,
            "dropped_spans": self.dropped_spans,
        }


# -- module-level active recorder ----------------------------------------

_NULL = NullRecorder()
_ACTIVE: Any = _NULL
_SWAP_LOCK = threading.Lock()


def get_recorder() -> Any:
    """The active recorder: a ``TraceRecorder`` or the no-op singleton."""

    return _ACTIVE


def tracing_active() -> bool:
    return _ACTIVE is not _NULL


def span(name: str, category: str = "repro", **args: Any) -> Any:
    """Open a span on the active recorder (no-op context when disabled)."""

    return _ACTIVE.span(name, category, **args)


def counter_add(name: str, value: float = 1.0) -> None:
    _ACTIVE.counter_add(name, value)


def gauge_set(name: str, value: float) -> None:
    _ACTIVE.gauge_set(name, value)


def absorb_summary(summary: Optional[dict]) -> None:
    _ACTIVE.absorb(summary)


def start_tracing(ring_limit: int = DEFAULT_RING_LIMIT) -> TraceRecorder:
    """Install and return a fresh recorder (replacing any active one)."""

    global _ACTIVE
    recorder = TraceRecorder(ring_limit=ring_limit)
    with _SWAP_LOCK:
        _ACTIVE = recorder
    return recorder


def stop_tracing() -> Optional[TraceRecorder]:
    """Restore the no-op recorder; returns the recorder that was active."""

    global _ACTIVE
    with _SWAP_LOCK:
        previous = _ACTIVE
        _ACTIVE = _NULL
    return previous if isinstance(previous, TraceRecorder) else None


@contextmanager
def tracing(ring_limit: int = DEFAULT_RING_LIMIT) -> Iterator[TraceRecorder]:
    """``with tracing() as rec:`` — enable for a block, restore on exit."""

    recorder = start_tracing(ring_limit=ring_limit)
    try:
        yield recorder
    finally:
        global _ACTIVE
        with _SWAP_LOCK:
            if _ACTIVE is recorder:
                _ACTIVE = _NULL


class _WorkerCapture:
    def __init__(self, recorder: TraceRecorder):
        self._recorder = recorder
        self.summary: Optional[dict] = None


@contextmanager
def worker_capture(ring_limit: int = DEFAULT_RING_LIMIT) -> Iterator[_WorkerCapture]:
    """Capture spans/counters recorded while a pool task runs.

    Installs a private recorder for the duration of the block and exposes
    the compact summary on exit.  Pool workers execute one task at a time,
    so the global swap is safe there; the previous recorder (normally the
    worker's no-op) is restored afterwards.
    """

    global _ACTIVE
    recorder = TraceRecorder(ring_limit=ring_limit)
    with _SWAP_LOCK:
        previous = _ACTIVE
        _ACTIVE = recorder
    capture = _WorkerCapture(recorder)
    try:
        yield capture
    finally:
        with _SWAP_LOCK:
            if _ACTIVE is recorder:
                _ACTIVE = previous
        capture.summary = recorder.summary()

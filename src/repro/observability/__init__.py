"""Unified tracing & metrics for the coreset pipeline.

See ``README.md`` in this directory for the span/counter API, the
worker-side aggregation protocol, and the add-an-instrumentation-point
recipe.  The fast path: ``from repro.observability import span`` and wrap
a stage in ``with span("layer.stage"):`` — a no-op unless tracing was
enabled with ``start_tracing()`` / ``tracing()`` / ``compress --trace``.
"""

from .diagnostics import ExecutionDiagnostics
from .export import (
    chrome_trace_events,
    trace_payload,
    validate_chrome_trace,
    write_chrome_trace,
)
from .tracer import (
    DEFAULT_RING_LIMIT,
    NullRecorder,
    SpanRecord,
    TraceRecorder,
    absorb_summary,
    counter_add,
    gauge_set,
    get_recorder,
    span,
    start_tracing,
    stop_tracing,
    tracing,
    tracing_active,
    worker_capture,
)

__all__ = [
    "ExecutionDiagnostics",
    "chrome_trace_events",
    "trace_payload",
    "validate_chrome_trace",
    "write_chrome_trace",
    "DEFAULT_RING_LIMIT",
    "NullRecorder",
    "SpanRecord",
    "TraceRecorder",
    "absorb_summary",
    "counter_add",
    "gauge_set",
    "get_recorder",
    "span",
    "start_tracing",
    "stop_tracing",
    "tracing",
    "tracing_active",
    "worker_capture",
]

"""Exporters for recorded traces.

``chrome_trace_events`` turns the flat :class:`SpanRecord` rows into Chrome
trace-event JSON (the ``{"traceEvents": [...]}`` container format), which
loads directly in Perfetto (https://ui.perfetto.dev) and chrome://tracing.
Every span becomes a matched B/E duration-event pair on its ``(pid, tid)``
track; worker-process spans absorbed via the piggyback protocol land on
their own pid track, so the merged timeline shows host and worker work
side by side.

``validate_chrome_trace`` is the schema check used by the test suite and
``make trace-smoke``: required keys on every event, globally monotone
``ts``, and properly matched/nested B/E pairs per track.
"""

from __future__ import annotations

import heapq
import json
from typing import Any, Dict, Iterable, List, Optional, Tuple

from .tracer import SpanRecord, TraceRecorder

__all__ = [
    "chrome_trace_events",
    "trace_payload",
    "write_chrome_trace",
    "validate_chrome_trace",
]

_REQUIRED_EVENT_KEYS = ("name", "cat", "ph", "ts", "pid", "tid")


def _track_walk(
    records: List[SpanRecord], time_origin: float
) -> List[Tuple[float, Dict[str, Any]]]:
    """Rebuild one track's properly nested B/E event sequence.

    Records arrive in close order (post-order per thread: children close
    before their parent), so a depth-guided stack sweep recovers the span
    tree and emits the pre/post boundary walk — matched B/E pairs nested
    exactly as the spans were on the live stack, immune to timestamp ties
    between siblings and zero-duration spans.  Ring-buffer drops only
    remove subtree prefixes, which the relative-depth pops tolerate.
    """

    stack: List[Tuple[int, List[Tuple[float, Dict[str, Any]]]]] = []
    for r in records:
        children: List[List[Tuple[float, Dict[str, Any]]]] = []
        while stack and stack[-1][0] > r.depth:
            children.insert(0, stack.pop()[1])
        begin: Dict[str, Any] = {
            "name": r.name,
            "cat": r.category,
            "ph": "B",
            "ts": (r.start - time_origin) * 1e6,
            "pid": r.pid,
            "tid": r.tid,
        }
        if r.args:
            begin["args"] = dict(r.args)
        end: Dict[str, Any] = {
            "name": r.name,
            "cat": r.category,
            "ph": "E",
            "ts": (r.start + r.duration - time_origin) * 1e6,
            "pid": r.pid,
            "tid": r.tid,
        }
        subtree = [(begin["ts"], begin)]
        for child in children:
            subtree.extend(child)
        subtree.append((end["ts"], end))
        stack.append((r.depth, subtree))
    walk: List[Tuple[float, Dict[str, Any]]] = []
    for _, subtree in stack:
        walk.extend(subtree)
    return walk


def chrome_trace_events(
    records: Iterable[SpanRecord], *, time_origin: Optional[float] = None
) -> List[Dict[str, Any]]:
    """Convert span records to a globally ts-sorted list of B/E events.

    ``ts`` is microseconds relative to ``time_origin`` (default: the
    earliest span start), so traces open at t=0 instead of hours into the
    machine's monotonic clock.  Per-track event order is reconstructed
    from record order (never re-sorted), so B/E pairs stay matched even
    under timestamp ties; tracks are then merged by timestamp, which
    keeps ``ts`` globally non-decreasing.
    """

    records = list(records)
    if not records:
        return []
    if time_origin is None:
        time_origin = min(r.start for r in records)

    tracks: Dict[Tuple[int, int], List[SpanRecord]] = {}
    for r in records:
        tracks.setdefault((r.pid, r.tid), []).append(r)

    walks = [_track_walk(track_records, time_origin) for track_records in tracks.values()]
    merged = heapq.merge(*walks, key=lambda item: item[0])
    return [event for _, event in merged]


def trace_payload(recorder: TraceRecorder, *, metadata: Optional[dict] = None) -> Dict[str, Any]:
    """Full Chrome-trace JSON payload: events plus a metrics sidecar."""

    payload: Dict[str, Any] = {
        "traceEvents": chrome_trace_events(list(recorder.spans)),
        "displayTimeUnit": "ms",
        "otherData": {
            "metrics": recorder.metrics(),
        },
    }
    if metadata:
        payload["otherData"].update(metadata)
    return payload


def write_chrome_trace(
    path: str, recorder: TraceRecorder, *, metadata: Optional[dict] = None
) -> Dict[str, Any]:
    """Serialize the recorder to ``path`` and return the payload."""

    payload = trace_payload(recorder, metadata=metadata)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=None, separators=(",", ":"))
    return payload


def validate_chrome_trace(payload: Any) -> int:
    """Validate a Chrome-trace payload; returns the number of events.

    Raises ``ValueError`` on the first violation: missing container or
    required event keys, non-monotone ``ts``, or unmatched / misnested
    B/E pairs on any ``(pid, tid)`` track.
    """

    if not isinstance(payload, dict) or "traceEvents" not in payload:
        raise ValueError("trace payload must be a dict with a 'traceEvents' list")
    events = payload["traceEvents"]
    if not isinstance(events, list):
        raise ValueError("'traceEvents' must be a list")

    last_ts = float("-inf")
    stacks: Dict[Any, List[str]] = {}
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"event #{index} is not an object")
        ph = event.get("ph")
        if ph == "M":  # metadata events carry no timeline semantics
            continue
        for key in _REQUIRED_EVENT_KEYS:
            if key not in event:
                raise ValueError(f"event #{index} missing required key {key!r}")
        ts = event["ts"]
        if not isinstance(ts, (int, float)):
            raise ValueError(f"event #{index} has non-numeric ts")
        if ts < last_ts:
            raise ValueError(f"event #{index} breaks ts monotonicity ({ts} < {last_ts})")
        last_ts = ts
        track = (event["pid"], event["tid"])
        stack = stacks.setdefault(track, [])
        if ph == "B":
            stack.append(event["name"])
        elif ph == "E":
            if not stack:
                raise ValueError(f"event #{index}: E without matching B on track {track}")
            opened = stack.pop()
            if opened != event["name"]:
                raise ValueError(
                    f"event #{index}: E for {event['name']!r} closes span {opened!r}"
                )
        else:
            raise ValueError(f"event #{index} has unsupported phase {ph!r}")
    for track, stack in stacks.items():
        if stack:
            raise ValueError(f"track {track} left unclosed spans: {stack}")
    return len(events)

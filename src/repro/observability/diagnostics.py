"""Unified typed diagnostics for the streaming and sharded build paths.

Before this module, execution diagnostics rode two ad-hoc dict channels —
``StreamingCoresetPipeline.last_diagnostics`` and
``ShardedBuildResult.diagnostics`` — with overlapping but undocumented key
sets.  :class:`ExecutionDiagnostics` is the single typed carrier for both.
It is deliberately **mode-dependent** data: wall-clock and scheduling
counters that legitimately differ across {serial, thread, process} ×
{sync, async} runs.  Mode-invariant statistics (coreset bytes, reduction
counts compared across backends) stay on their own channels so the
equivalence suites keep comparing byte-exact values — see
``parallel/README.md``.

Documented keys:

``reductions``
    Total merge-reduce fold count (streaming pipeline only).
``spread_refreshes`` / ``cost_bound_refreshes``
    How often the shared spread / Algorithm-2 crude-cost caches were
    recomputed from the refresh signal (streaming pipeline only).
``reduces_offloaded``
    Reduce compressions shipped to the async pool instead of folded on
    the host.
``host_reduces`` / ``host_reduce_seconds``
    Folds the host performed itself, and the wall-clock they took.
``pending_high_water``
    Maximum number of in-flight pool tasks observed.
``blocks_seen``
    Stream blocks ingested (streaming pipeline only).
``blocks_expired``
    Blocks retired from a windowed stream's live window (zero for
    non-windowed runs).
``drift_events``
    Drift-detector firings that invalidated the shared hint caches
    (windowed streaming only).

The class supports read-only dict-style access (``diag["host_reduces"]``,
``.get``, ``in``, iteration) so existing equivalence suites and CLI code
keep working unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, Dict, Iterator, Optional

__all__ = ["ExecutionDiagnostics"]


@dataclass
class ExecutionDiagnostics:
    """Mode-dependent execution diagnostics with dict-compatible access."""

    reductions: float = 0.0
    spread_refreshes: float = 0.0
    cost_bound_refreshes: float = 0.0
    reduces_offloaded: float = 0.0
    host_reduces: float = 0.0
    host_reduce_seconds: float = 0.0
    pending_high_water: float = 0.0
    blocks_seen: float = 0.0
    blocks_expired: float = 0.0
    drift_events: float = 0.0
    # Keys set by callers that predate a typed field land here so dict
    # access never silently narrows what a channel can carry.
    extra: Dict[str, float] = field(default_factory=dict)

    _FIELD_NAMES = (
        "reductions",
        "spread_refreshes",
        "cost_bound_refreshes",
        "reduces_offloaded",
        "host_reduces",
        "host_reduce_seconds",
        "pending_high_water",
        "blocks_seen",
        "blocks_expired",
        "drift_events",
    )

    @classmethod
    def from_mapping(cls, mapping: Optional[Dict[str, float]]) -> "ExecutionDiagnostics":
        diag = cls()
        if mapping:
            for key, value in mapping.items():
                if key in cls._FIELD_NAMES:
                    setattr(diag, key, float(value))
                else:
                    diag.extra[key] = float(value)
        return diag

    def as_dict(self) -> Dict[str, float]:
        out = {name: getattr(self, name) for name in self._FIELD_NAMES}
        out.update(self.extra)
        return out

    # -- read-only mapping protocol --------------------------------------

    def __getitem__(self, key: str) -> float:
        if key in self._FIELD_NAMES:
            return getattr(self, key)
        return self.extra[key]

    def get(self, key: str, default: Any = None) -> Any:
        try:
            return self[key]
        except KeyError:
            return default

    def __contains__(self, key: object) -> bool:
        return key in self._FIELD_NAMES or key in self.extra

    def __iter__(self) -> Iterator[str]:
        yield from self._FIELD_NAMES
        yield from self.extra

    def __len__(self) -> int:
        return len(self._FIELD_NAMES) + len(self.extra)

    def keys(self):
        return self.as_dict().keys()

    def values(self):
        return self.as_dict().values()

    def items(self):
        return self.as_dict().items()

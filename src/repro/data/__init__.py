"""Dataset generators: the paper's artificial datasets and realistic stand-ins.

:mod:`repro.data.synthetic` builds the four artificial datasets of
Section 5.2 (c-outlier, geometric, Gaussian mixture, benchmark) plus the
high-spread dataset of Table 1.  :mod:`repro.data.realistic` builds synthetic
stand-ins for the seven real-world datasets of Table 3, matching their
documented shape and the cluster-structure characteristics the paper's
results hinge on (see the substitution note in DESIGN.md).
:mod:`repro.data.registry` exposes both families behind a single name-based
lookup used by the experiment harnesses.
"""

from repro.data.registry import DATASET_BUILDERS, load_dataset, list_datasets
from repro.data.synthetic import (
    Dataset,
    add_uniform_jitter,
    benchmark_dataset,
    c_outlier_dataset,
    drifting_mixture,
    gaussian_mixture,
    geometric_dataset,
    high_spread_dataset,
)
from repro.data.realistic import (
    adult_like,
    census_like,
    covtype_like,
    mnist_like,
    song_like,
    star_like,
    taxi_like,
)

__all__ = [
    "DATASET_BUILDERS",
    "load_dataset",
    "list_datasets",
    "Dataset",
    "add_uniform_jitter",
    "benchmark_dataset",
    "c_outlier_dataset",
    "drifting_mixture",
    "gaussian_mixture",
    "geometric_dataset",
    "high_spread_dataset",
    "adult_like",
    "census_like",
    "covtype_like",
    "mnist_like",
    "song_like",
    "star_like",
    "taxi_like",
]

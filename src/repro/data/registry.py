"""Name-based dataset lookup used by the experiment harnesses.

The paper's tables index their rows by dataset name; the harnesses do the
same and resolve the names through :func:`load_dataset`, which dispatches to
the synthetic generators or the realistic stand-ins with a uniform
``(scale, seed)`` interface.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.config import ExperimentScale
from repro.data import realistic, synthetic
from repro.data.synthetic import Dataset
from repro.utils.rng import SeedLike


def _build_synthetic(name: str, scale: ExperimentScale, seed: SeedLike, **overrides) -> Dataset:
    n = overrides.pop("n", scale.synthetic_n)
    d = overrides.pop("d", scale.synthetic_d)
    if name == "c_outlier":
        return synthetic.c_outlier_dataset(n, d, seed=seed, **overrides)
    if name == "geometric":
        return synthetic.geometric_dataset(n, d, k=scale.k_small, seed=seed, **overrides)
    if name == "gaussian":
        n_clusters = overrides.pop("n_clusters", max(5, scale.k_small // 2))
        return synthetic.gaussian_mixture(n, d, n_clusters=n_clusters, seed=seed, **overrides)
    if name == "benchmark":
        return synthetic.benchmark_dataset(k=scale.k_small, d=d, n=n, seed=seed, **overrides)
    if name == "high_spread":
        return synthetic.high_spread_dataset(n, seed=seed, **overrides)
    raise KeyError(name)


def _build_realistic(name: str, scale: ExperimentScale, seed: SeedLike, **overrides) -> Dataset:
    fraction = overrides.pop("fraction", scale.dataset_fraction)
    builder = {
        "adult": realistic.adult_like,
        "mnist": realistic.mnist_like,
        "star": realistic.star_like,
        "song": realistic.song_like,
        "covtype": realistic.covtype_like,
        "taxi": realistic.taxi_like,
        "census": realistic.census_like,
    }[name]
    return builder(fraction, seed=seed, **overrides)


#: Names of the artificial datasets (Section 5.2 of the paper).
SYNTHETIC_DATASETS: List[str] = ["c_outlier", "geometric", "gaussian", "benchmark", "high_spread"]
#: Names of the realistic stand-ins (Table 3 of the paper).
REALISTIC_DATASETS: List[str] = ["adult", "mnist", "star", "song", "covtype", "taxi", "census"]

DATASET_BUILDERS: Dict[str, Callable[..., Dataset]] = {
    **{name: _build_synthetic for name in SYNTHETIC_DATASETS},
    **{name: _build_realistic for name in REALISTIC_DATASETS},
}


def list_datasets(*, include_synthetic: bool = True, include_realistic: bool = True) -> List[str]:
    """Names of the datasets the registry can build."""
    names: List[str] = []
    if include_synthetic:
        names.extend(SYNTHETIC_DATASETS)
    if include_realistic:
        names.extend(REALISTIC_DATASETS)
    return names


def load_dataset(
    name: str,
    *,
    scale: Optional[ExperimentScale] = None,
    seed: SeedLike = 0,
    **overrides,
) -> Dataset:
    """Build the dataset registered under ``name``.

    Parameters
    ----------
    name:
        One of :func:`list_datasets`.
    scale:
        Experiment scale controlling sizes; defaults to the quick scale (or
        the paper scale when ``REPRO_FULL_SCALE`` is set).
    seed:
        Randomness for the generator.
    overrides:
        Forwarded to the underlying generator (for example ``gamma=3.0`` for
        the Gaussian mixture, or ``r=40`` for the high-spread dataset).
    """
    key = name.lower()
    if key not in DATASET_BUILDERS:
        raise KeyError(f"unknown dataset {name!r}; available: {', '.join(list_datasets())}")
    if scale is None:
        scale = ExperimentScale.from_environment()
    return DATASET_BUILDERS[key](key, scale, seed, **overrides)

"""The paper's artificial datasets (Section 5.2) and the Table 1 spread dataset.

Each generator is "constructed to emphasize strengths and weaknesses of the
various sampling schemas":

* **c-outlier** — ``n - c`` points at one location and ``c`` points far away;
  trivial for anything that reads the data, fatal for uniform sampling.
* **geometric** — ``c*k`` points on the first simplex vertex, ``c*k/r`` on the
  second, and so on; many regions of interest with geometrically decaying
  mass.
* **Gaussian mixture** — scattered Gaussian clusters whose sizes diverge
  exponentially with the imbalance parameter ``gamma``.
* **benchmark** — the coreset stress-test of Schwiegelshohn and
  Sheikh-Omar [57]: every reasonable k-means solution has the same cost but
  the solutions are maximally far apart, punishing constructions that lean
  on one particular approximate solution.
* **high-spread** — the Table 1 construction whose spread ``Delta`` grows
  with a parameter ``r``, demonstrating the ``log Delta`` runtime dependency
  of quadtree methods.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.config import DEFAULT_JITTER, DEFAULT_SYNTHETIC_D, DEFAULT_SYNTHETIC_N
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_integer, check_points


@dataclass
class Dataset:
    """A generated dataset together with its provenance.

    Attributes
    ----------
    name:
        Registry name ("c_outlier", "gaussian", "adult", ...).
    points:
        Array of shape ``(n, d)``.
    labels:
        Ground-truth cluster labels when the generator knows them, else
        ``None``.  They are only used for diagnostics, never by the
        algorithms.
    parameters:
        The generator arguments, recorded for experiment provenance.
    """

    name: str
    points: np.ndarray
    labels: Optional[np.ndarray] = None
    parameters: Dict[str, float] = field(default_factory=dict)

    @property
    def n(self) -> int:
        """Number of points."""
        return int(self.points.shape[0])

    @property
    def d(self) -> int:
        """Number of features."""
        return int(self.points.shape[1])


def add_uniform_jitter(
    points: np.ndarray,
    *,
    amplitude: float = DEFAULT_JITTER,
    seed: SeedLike = None,
) -> np.ndarray:
    """Add the paper's uniform noise ``0 <= eta_i <= amplitude`` per dimension.

    Section 5.2: "In all real and artificial datasets, we add random uniform
    noise ... in order to make all points unique."
    """
    points = check_points(points)
    generator = as_generator(seed)
    return points + generator.uniform(0.0, amplitude, size=points.shape)


# --------------------------------------------------------------------- c-outlier
def c_outlier_dataset(
    n: int = DEFAULT_SYNTHETIC_N,
    d: int = DEFAULT_SYNTHETIC_D,
    *,
    n_outliers: int = 5,
    outlier_distance: float = 1_000.0,
    jitter: float = DEFAULT_JITTER,
    seed: SeedLike = None,
) -> Dataset:
    """``n - c`` points at the origin and ``c`` points a large distance away.

    Parameters
    ----------
    n, d:
        Dataset size and dimensionality.
    n_outliers:
        The ``c`` of the paper's description.  The default is deliberately
        tiny so that a uniform sample of the paper's default size
        (``m = 40k``) misses the outlier cluster with substantial
        probability — the failure mode the dataset exists to expose.
    outlier_distance:
        How far (in every coordinate of the first axis) the outliers sit.
    jitter:
        Amplitude of the uniqueness jitter.
    seed:
        Randomness source.
    """
    n = check_integer(n, name="n")
    d = check_integer(d, name="d")
    n_outliers = check_integer(n_outliers, name="n_outliers", minimum=1)
    if n_outliers >= n:
        raise ValueError("n_outliers must be smaller than n")
    generator = as_generator(seed)
    points = np.zeros((n, d), dtype=np.float64)
    points[:n_outliers, 0] = outlier_distance
    labels = np.zeros(n, dtype=np.int64)
    labels[:n_outliers] = 1
    points = add_uniform_jitter(points, amplitude=jitter, seed=generator)
    return Dataset(
        name="c_outlier",
        points=points,
        labels=labels,
        parameters={"n": n, "d": d, "n_outliers": n_outliers, "outlier_distance": outlier_distance},
    )


# --------------------------------------------------------------------- geometric
def geometric_dataset(
    n: int = DEFAULT_SYNTHETIC_N,
    d: int = DEFAULT_SYNTHETIC_D,
    *,
    k: int = 100,
    c: int = 100,
    ratio: float = 2.0,
    scale: float = 100.0,
    jitter: float = DEFAULT_JITTER,
    seed: SeedLike = None,
) -> Dataset:
    """Simplex vertices with geometrically decaying masses.

    Places ``c*k`` points at the first unit vector, ``c*k / r`` at the second,
    ``c*k / r^2`` at the third, and so on for ``log_r(c*k)`` rounds (the
    paper's description with ``c = 100`` and ``r = 2`` by default).  If fewer
    than ``n`` points are produced, the remainder is assigned to the heaviest
    vertex so the dataset always has exactly ``n`` rows.
    """
    n = check_integer(n, name="n")
    d = check_integer(d, name="d")
    if ratio <= 1.0:
        raise ValueError(f"ratio must exceed 1, got {ratio}")
    generator = as_generator(seed)
    rounds = max(1, int(math.floor(math.log(c * k, ratio))))
    rounds = min(rounds, d)  # one simplex vertex per dimension is available
    sizes = []
    mass = float(c * k)
    for _ in range(rounds):
        sizes.append(max(1, int(round(mass))))
        mass /= ratio
    total = sum(sizes)
    if total > n:
        # Trim proportionally, preserving at least one point per vertex.
        scale_factor = n / total
        sizes = [max(1, int(s * scale_factor)) for s in sizes]
        total = sum(sizes)
    sizes[0] += n - total

    points = np.zeros((n, d), dtype=np.float64)
    labels = np.zeros(n, dtype=np.int64)
    cursor = 0
    for vertex, size in enumerate(sizes):
        points[cursor : cursor + size, vertex] = scale
        labels[cursor : cursor + size] = vertex
        cursor += size
    points = add_uniform_jitter(points, amplitude=jitter, seed=generator)
    return Dataset(
        name="geometric",
        points=points,
        labels=labels,
        parameters={"n": n, "d": d, "k": k, "c": c, "ratio": ratio, "rounds": len(sizes)},
    )


# --------------------------------------------------------------- Gaussian mixture
def gaussian_mixture(
    n: int = DEFAULT_SYNTHETIC_N,
    d: int = DEFAULT_SYNTHETIC_D,
    *,
    n_clusters: int = 50,
    gamma: float = 1.0,
    cluster_spread: float = 1.0,
    center_box: float = 100.0,
    jitter: float = DEFAULT_JITTER,
    seed: SeedLike = None,
) -> Dataset:
    """Scattered Gaussian clusters of exponentially diverging sizes.

    Cluster sizes follow the paper's sequential recipe: the ``(i+1)``-st
    cluster has size ``(n - sum_of_previous) / (kappa - i) * exp(gamma * rho)``
    with ``rho`` uniform in ``[-0.5, 0.5]``; ``gamma = 0`` gives balanced
    clusters and larger ``gamma`` makes the sizes diverge exponentially
    (Table 7 sweeps ``gamma`` from 0 to 5).
    """
    n = check_integer(n, name="n")
    d = check_integer(d, name="d")
    n_clusters = check_integer(n_clusters, name="n_clusters")
    generator = as_generator(seed)

    sizes = []
    remaining = n
    for index in range(n_clusters):
        clusters_left = n_clusters - index
        if clusters_left == 1:
            size = remaining
        else:
            rho = generator.uniform(-0.5, 0.5)
            size = int(round(remaining / clusters_left * math.exp(gamma * rho)))
            size = max(1, min(size, remaining - (clusters_left - 1)))
        sizes.append(size)
        remaining -= size
    centers = generator.uniform(-center_box, center_box, size=(n_clusters, d))

    blocks = []
    labels = np.empty(n, dtype=np.int64)
    cursor = 0
    for index, size in enumerate(sizes):
        blocks.append(centers[index] + generator.normal(scale=cluster_spread, size=(size, d)))
        labels[cursor : cursor + size] = index
        cursor += size
    points = np.concatenate(blocks, axis=0)
    points = add_uniform_jitter(points, amplitude=jitter, seed=generator)
    return Dataset(
        name="gaussian",
        points=points,
        labels=labels,
        parameters={
            "n": n,
            "d": d,
            "n_clusters": n_clusters,
            "gamma": gamma,
            "cluster_spread": cluster_spread,
        },
    )


# ------------------------------------------------------------- drifting mixture
def drifting_mixture(
    n: int = DEFAULT_SYNTHETIC_N,
    d: int = DEFAULT_SYNTHETIC_D,
    *,
    n_clusters: int = 5,
    drift_at: float = 0.5,
    shift: float = 2.0,
    cluster_spread: float = 1.0,
    center_box: float = 100.0,
    jitter: float = DEFAULT_JITTER,
    seed: SeedLike = None,
) -> Dataset:
    """A Gaussian mixture whose centers jump partway through the row order.

    The windowed-streaming drift scenario: rows are ordered by *arrival*,
    the first ``round(n * drift_at)`` rows drawn from a mixture of
    ``n_clusters`` Gaussians, the rest from the same mixture translated by
    ``shift * center_box`` in every coordinate.  Within each phase the
    cluster assignment is uniform, so any contiguous block of rows is a
    fair sample of its phase and the per-block mean moves only at the
    drift row — exactly the signal a
    :class:`~repro.streaming.window.DriftDetector` must fire on (and must
    stay silent before).  ``parameters["drift_row"]`` records where the
    jump happens; labels encode ``cluster + n_clusters * phase``.
    """
    n = check_integer(n, name="n")
    d = check_integer(d, name="d")
    n_clusters = check_integer(n_clusters, name="n_clusters")
    if not 0.0 < drift_at < 1.0:
        raise ValueError(f"drift_at must lie strictly between 0 and 1, got {drift_at}")
    generator = as_generator(seed)
    n_post = max(1, n - max(1, int(round(n * drift_at))))
    n_pre = n - n_post
    if n_pre < 1:
        raise ValueError(f"n={n} is too small to hold both phases")
    centers = generator.uniform(-center_box, center_box, size=(n_clusters, d))
    labels = np.empty(n, dtype=np.int64)
    segments = []
    cursor = 0
    for phase, (size, offset) in enumerate([(n_pre, 0.0), (n_post, shift * center_box)]):
        assignment = generator.integers(0, n_clusters, size=size)
        segments.append(
            centers[assignment]
            + offset
            + generator.normal(scale=cluster_spread, size=(size, d))
        )
        labels[cursor : cursor + size] = assignment + phase * n_clusters
        cursor += size
    points = np.concatenate(segments, axis=0)
    points = add_uniform_jitter(points, amplitude=jitter, seed=generator)
    return Dataset(
        name="drifting",
        points=points,
        labels=labels,
        parameters={
            "n": n,
            "d": d,
            "n_clusters": n_clusters,
            "drift_at": drift_at,
            "drift_row": n_pre,
            "shift": shift,
            "cluster_spread": cluster_spread,
        },
    )


# -------------------------------------------------------------------- benchmark
def _single_benchmark_instance(
    k: int,
    d: int,
    generator: np.random.Generator,
    *,
    scale: float,
    offset_box: float,
) -> np.ndarray:
    """One benchmark sub-instance in the spirit of [57].

    The construction places ``k`` groups, each consisting of a point at a
    simplex vertex and a mirrored partner, so that picking either member of
    every group yields a k-means solution of identical cost — the optimal
    solutions are therefore numerous and maximally spread out in solution
    space.  A random offset decorrelates the sub-instances.
    """
    dims = max(k, 2)
    base = np.zeros((2 * k, dims), dtype=np.float64)
    for group in range(k):
        base[2 * group, group % dims] = scale
        base[2 * group + 1, group % dims] = -scale
    if dims < d:
        padded = np.zeros((2 * k, d), dtype=np.float64)
        padded[:, :dims] = base
        base = padded
    else:
        base = base[:, :d]
    offset = generator.uniform(-offset_box, offset_box, size=(1, d))
    return base + offset


def benchmark_dataset(
    k: int = 100,
    d: int = DEFAULT_SYNTHETIC_D,
    *,
    n: int = DEFAULT_SYNTHETIC_N,
    c1: float = 2.0,
    c2: float = 2.0,
    scale: float = 50.0,
    offset_box: float = 500.0,
    jitter: float = DEFAULT_JITTER,
    seed: SeedLike = None,
) -> Dataset:
    """The benchmark stress-test of [57], as parameterised in the paper.

    Three sub-instances of sizes ``k1 = k / c1``, ``k2 = (k - k1) / c2`` and
    ``k3 = k - k1 - k2`` are generated and combined after random offsets, so
    the *structure* of the dataset is fully determined by the number of
    centers ``k``.  Every group location is replicated so the dataset has
    approximately ``n`` rows (each replica receives the uniqueness jitter),
    which keeps the instance hard for solution-dependent samplers while
    giving it a realistic size.
    """
    k = check_integer(k, name="k")
    d = check_integer(d, name="d")
    n = check_integer(n, name="n")
    generator = as_generator(seed)
    k1 = max(1, int(round(k / c1)))
    k2 = max(1, int(round((k - k1) / c2)))
    k3 = max(1, k - k1 - k2)
    pieces = [
        _single_benchmark_instance(size, d, generator, scale=scale, offset_box=offset_box)
        for size in (k1, k2, k3)
    ]
    locations = np.concatenate(pieces, axis=0)
    replication = max(1, n // locations.shape[0])
    points = np.repeat(locations, replication, axis=0)
    points = add_uniform_jitter(points, amplitude=jitter, seed=generator)
    return Dataset(
        name="benchmark",
        points=points,
        labels=None,
        parameters={"k": k, "d": d, "k1": k1, "k2": k2, "k3": k3, "replication": replication},
    )


# ------------------------------------------------------------------ high spread
def high_spread_dataset(
    n: int = DEFAULT_SYNTHETIC_N,
    *,
    r: int = 20,
    background_fraction: float = 0.9,
    jitter: float = 0.0,
    seed: SeedLike = None,
) -> Dataset:
    """The Table 1 dataset whose spread grows with ``r``.

    ``n - n'`` points are uniform in the square ``[-1, 1]^2``; the remaining
    ``n'`` points form ``n'/r`` copies of the geometric sequence
    ``(x, 1), (x, 0.5), ..., (x, 0.5^r)`` (each copy at a different ``x``), so
    ``log Delta`` grows linearly with ``r`` while the dataset size stays
    fixed.
    """
    n = check_integer(n, name="n")
    r = check_integer(r, name="r")
    generator = as_generator(seed)
    n_background = int(n * background_fraction)
    n_sequence = n - n_background
    copies = max(1, n_sequence // r)
    sequence_points = []
    for copy in range(copies):
        x = generator.uniform(-1.0, 1.0)
        exponents = np.arange(r, dtype=np.float64)
        ys = 0.5**exponents
        block = np.stack([np.full(r, x), ys], axis=1)
        sequence_points.append(block)
    sequence = np.concatenate(sequence_points, axis=0)[:n_sequence]
    if sequence.shape[0] < n_sequence:
        padding = generator.uniform(-1.0, 1.0, size=(n_sequence - sequence.shape[0], 2))
        sequence = np.concatenate([sequence, padding], axis=0)
    background = generator.uniform(-1.0, 1.0, size=(n_background, 2))
    points = np.concatenate([background, sequence], axis=0)
    if jitter > 0:
        points = add_uniform_jitter(points, amplitude=jitter, seed=generator)
    return Dataset(
        name="high_spread",
        points=points,
        labels=None,
        parameters={"n": n, "r": r, "background_fraction": background_fraction},
    )

"""Synthetic stand-ins for the paper's seven real-world datasets (Table 3).

No network access is available in this environment, so the UCI / MNIST /
Porto-taxi files cannot be downloaded.  Each generator below produces a
dataset matching the documented shape of the original (scaled by a
``fraction`` so the quick harness stays fast) and — more importantly — the
*cluster-structure characteristic* that the paper identifies as driving each
dataset's behaviour:

=========  ======  ====  =========================================================
Dataset    n       d     Characteristic reproduced
=========  ======  ====  =========================================================
Adult       48842    14  balanced, low-variance mixed features — every sampler fine
MNIST       60000   784  high-dimensional, moderately imbalanced clusters
Star       138500     3  a huge dark background plus a tiny bright cluster
Song       515345    90  heavy-tailed feature scales, moderate imbalance
Cover Type 581012    54  several dominant classes plus small ones
Taxi       754539     2  2-D start locations: many clusters of wildly varying size
Census    2458285    68  very large, fairly balanced blocks
=========  ======  ====  =========================================================

The Star and Taxi stand-ins are the two on which uniform sampling must fail
(Table 2 / Table 4): Star because the interesting pixels are a vanishing
fraction of the data, Taxi because tiny faraway pickup clusters carry a
disproportionate share of the k-means cost.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.data.synthetic import Dataset, add_uniform_jitter
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_positive


#: Documented sizes of the original datasets (Table 3 of the paper).
REAL_DATASET_SHAPES = {
    "adult": (48_842, 14),
    "mnist": (60_000, 784),
    "star": (138_500, 3),
    "song": (515_345, 90),
    "covtype": (581_012, 54),
    "taxi": (754_539, 2),
    "census": (2_458_285, 68),
}


def _scaled_n(name: str, fraction: float) -> int:
    """Scaled number of points for a stand-in (at least 2000)."""
    full_n, _ = REAL_DATASET_SHAPES[name]
    return max(2_000, int(full_n * fraction))


def _balanced_blobs(
    n: int,
    d: int,
    n_clusters: int,
    generator: np.random.Generator,
    *,
    center_box: float,
    spread: float,
    imbalance: float = 0.0,
) -> np.ndarray:
    """Gaussian blobs with a controllable (log-normal) size imbalance."""
    raw = np.exp(generator.normal(scale=imbalance, size=n_clusters)) if imbalance > 0 else np.ones(n_clusters)
    sizes = np.maximum(1, np.round(raw / raw.sum() * n).astype(int))
    sizes[0] += n - sizes.sum()
    centers = generator.uniform(-center_box, center_box, size=(n_clusters, d))
    blocks = [
        centers[index] + generator.normal(scale=spread, size=(size, d))
        for index, size in enumerate(sizes)
    ]
    return np.concatenate(blocks, axis=0)


# ----------------------------------------------------------------------- adult
def adult_like(fraction: float = 1.0, *, seed: SeedLike = None) -> Dataset:
    """Stand-in for the UCI Adult census-income dataset (48842 x 14).

    Mixed integer-coded categorical columns and a few numeric columns with
    balanced, low-variance clusters: the easy case on which all samplers
    achieve distortion close to one.
    """
    check_positive(fraction, name="fraction")
    generator = as_generator(seed)
    n = _scaled_n("adult", fraction)
    d = REAL_DATASET_SHAPES["adult"][1]
    numeric = _balanced_blobs(n, 6, 12, generator, center_box=40.0, spread=8.0)
    categorical = generator.integers(0, 12, size=(n, d - 6)).astype(np.float64)
    points = np.concatenate([numeric, categorical], axis=1)
    points = add_uniform_jitter(points, seed=generator)
    return Dataset(name="adult", points=points, parameters={"fraction": fraction})


# ----------------------------------------------------------------------- mnist
def mnist_like(fraction: float = 1.0, *, seed: SeedLike = None, d: int = 784) -> Dataset:
    """Stand-in for MNIST (60000 x 784).

    High-dimensional points on a handful of low-dimensional "digit"
    manifolds of moderately different sizes, with most coordinates near zero
    — mimicking the sparse pixel structure that makes MNIST benefit from
    dimension reduction (the only dataset on which the paper applies it).
    """
    check_positive(fraction, name="fraction")
    generator = as_generator(seed)
    n = _scaled_n("mnist", fraction)
    n_digits = 10
    latent_dim = 16
    sizes = np.maximum(1, np.round(generator.dirichlet(np.full(n_digits, 8.0)) * n).astype(int))
    sizes[0] += n - sizes.sum()
    blocks = []
    for size in sizes:
        basis = generator.normal(scale=1.0, size=(latent_dim, d))
        mean = np.clip(generator.normal(loc=30.0, scale=20.0, size=d), 0.0, 255.0)
        latent = generator.normal(scale=3.0, size=(size, latent_dim))
        block = np.clip(mean + latent @ basis, 0.0, 255.0)
        blocks.append(block)
    points = np.concatenate(blocks, axis=0)
    points = add_uniform_jitter(points, seed=generator)
    return Dataset(name="mnist", points=points, parameters={"fraction": fraction, "d": d})


# ------------------------------------------------------------------------ star
def star_like(fraction: float = 1.0, *, seed: SeedLike = None) -> Dataset:
    """Stand-in for the shooting-star image (138500 x 3 pixel values).

    Almost every pixel is dark (values near zero) while a tiny cluster of
    pixels is bright white; uniform sampling routinely misses the bright
    cluster, which is why the paper reports an 8.5x distortion blow-up for
    it on this dataset.
    """
    check_positive(fraction, name="fraction")
    generator = as_generator(seed)
    n = _scaled_n("star", fraction)
    n_bright = max(20, int(0.002 * n))
    dark = np.abs(generator.normal(scale=4.0, size=(n - n_bright, 3)))
    bright = 250.0 + generator.normal(scale=3.0, size=(n_bright, 3))
    points = np.concatenate([dark, bright], axis=0)
    points = add_uniform_jitter(points, seed=generator)
    return Dataset(name="star", points=points, parameters={"fraction": fraction, "n_bright": n_bright})


# ------------------------------------------------------------------------ song
def song_like(fraction: float = 1.0, *, seed: SeedLike = None) -> Dataset:
    """Stand-in for the Million Song Dataset audio features (515345 x 90).

    Heavy-tailed feature scales (the original mixes timbre averages and
    covariances spanning orders of magnitude) with moderate cluster
    imbalance.
    """
    check_positive(fraction, name="fraction")
    generator = as_generator(seed)
    n = _scaled_n("song", fraction)
    d = REAL_DATASET_SHAPES["song"][1]
    base = _balanced_blobs(n, d, 30, generator, center_box=10.0, spread=2.0, imbalance=0.8)
    feature_scales = np.exp(generator.normal(scale=1.5, size=d))
    points = base * feature_scales[None, :]
    points = add_uniform_jitter(points, seed=generator)
    return Dataset(name="song", points=points, parameters={"fraction": fraction})


# -------------------------------------------------------------------- covtype
def covtype_like(fraction: float = 1.0, *, seed: SeedLike = None) -> Dataset:
    """Stand-in for the Forest Cover Type dataset (581012 x 54).

    A few dominant cover types plus several small ones, with a mix of
    continuous terrain features and binary indicator columns.
    """
    check_positive(fraction, name="fraction")
    generator = as_generator(seed)
    n = _scaled_n("covtype", fraction)
    continuous = _balanced_blobs(n, 10, 7, generator, center_box=200.0, spread=30.0, imbalance=1.2)
    binary = (generator.random(size=(n, 44)) < 0.08).astype(np.float64)
    points = np.concatenate([continuous, binary], axis=1)
    points = add_uniform_jitter(points, seed=generator)
    return Dataset(name="covtype", points=points, parameters={"fraction": fraction})


# ------------------------------------------------------------------------ taxi
def taxi_like(fraction: float = 1.0, *, seed: SeedLike = None) -> Dataset:
    """Stand-in for the Porto taxi start locations (754539 x 2).

    Many 2-D clusters of wildly varying size: a dense city core containing
    most rides, medium suburban clusters, and a scattering of tiny faraway
    pickup spots.  The tiny remote clusters carry a large share of the
    k-means cost, so uniform sampling fails catastrophically here (the
    ~600x distortion ratio of Table 2).
    """
    check_positive(fraction, name="fraction")
    generator = as_generator(seed)
    n = _scaled_n("taxi", fraction)
    n_core = int(0.85 * n)
    n_suburb = int(0.14 * n)
    n_remote = n - n_core - n_suburb
    core = generator.normal(loc=[0.0, 0.0], scale=0.02, size=(n_core, 2))
    suburb_centers = generator.uniform(-0.5, 0.5, size=(25, 2))
    suburb_assignment = generator.integers(0, 25, size=n_suburb)
    suburb = suburb_centers[suburb_assignment] + generator.normal(scale=0.01, size=(n_suburb, 2))
    remote_centers = generator.uniform(-40.0, 40.0, size=(max(5, n_remote // 4), 2))
    remote_assignment = generator.integers(0, remote_centers.shape[0], size=n_remote)
    remote = remote_centers[remote_assignment] + generator.normal(scale=0.005, size=(n_remote, 2))
    points = np.concatenate([core, suburb, remote], axis=0)
    points = add_uniform_jitter(points, amplitude=1e-5, seed=generator)
    return Dataset(name="taxi", points=points, parameters={"fraction": fraction, "n_remote": n_remote})


# ---------------------------------------------------------------------- census
def census_like(fraction: float = 1.0, *, seed: SeedLike = None) -> Dataset:
    """Stand-in for the 1990 US Census dataset (2458285 x 68).

    Very large, integer-coded demographic attributes forming fairly balanced
    blocks — another easy case for every sampler.
    """
    check_positive(fraction, name="fraction")
    generator = as_generator(seed)
    n = _scaled_n("census", fraction)
    d = REAL_DATASET_SHAPES["census"][1]
    blobs = _balanced_blobs(n, d, 40, generator, center_box=8.0, spread=1.5, imbalance=0.3)
    points = np.round(np.abs(blobs))
    points = add_uniform_jitter(points, seed=generator)
    return Dataset(name="census", points=points, parameters={"fraction": fraction})

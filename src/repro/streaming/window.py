"""Windowed and decaying stream semantics for the merge-&-reduce tree.

The paper's streaming experiments (Section 5.4) only ever *add* blocks, but
real traffic expires: a dashboard wants the coreset of the last hour, a
recommender wants old behaviour to fade.  This module extends the
merge-&-reduce tree with exactly that scenario axis:

* a :class:`WindowPolicy` decides, per bucket, whether it has *expired*
  (sliding count window) or how strongly it is *down-weighted* (exponential
  time decay) relative to the newest block;
* :class:`WindowedMergeReduceTree` stamps every bucket with its
  ``[start, stop)`` block-index range and its timestamp span, retires or
  decays buckets before folds, and answers non-destructive :meth:`queries
  <WindowedMergeReduceTree.query>` for the *current* window without
  stopping ingestion;
* a :class:`DriftDetector` watches the per-block mean and fires the
  bounding-box refresh signal (the PR 2/5 hook) when the incoming
  distribution moves, so the shared spread / cost-bound caches are never
  served stale across a drift.

Bucket-expiry protocol
----------------------
A sliding count window must reproduce the window's input-point multiset
*exactly* (pinned by ``reference/naive_window.py``), and any bucket merging
two or more blocks eventually straddles the expiry boundary — so expiring
policies declare ``merges = False`` and the tree keeps one **unmerged leaf
bucket per live block** in a FIFO deque (``O(window * coreset_size)``
memory instead of the non-windowed tree's ``O(log b * coreset_size)`` — the
price of exact expiry).  Decay policies never expire anything, declare
``merges = True``, and keep the binary-counter carry chain: at every fold
the older bucket's weights are scaled by the *relative* decay between the
two buckets' newest timestamps, and survivors are scaled down to "now" at
query time.  The relative scheme keeps every factor in ``(0, 1]`` (no
overflow for arbitrarily long streams) and telescopes to the same total
factor a from-scratch recompute applies, up to float rounding.

Compressions whose input already fits in ``coreset_size`` are kept verbatim
(a point set of at most ``m`` points is a 0-coreset of itself): this is
what preserves per-point decayed weights across folds — resampling would
flatten them — and what lets the oracle suite compare retained multisets
bit-for-bit in lossless configurations.

Determinism matches the non-windowed tree's contract: under
``spawn_seeds=True`` every stochastic input (leaf seeds keyed by block
index, fold seeds keyed by fold index, query seeds keyed by query index,
hints fixed during the host walk) is a pure function of the block sequence,
so sync and async executors produce bit-identical coresets.  Reduce and
query compressions always run on the host thread — the overlap machinery
only ships leaf compressions (``overlap_reduces`` is ignored).
"""

from __future__ import annotations

import abc
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Deque, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro import observability as _obs
from repro.core.coreset import Coreset, merge_coresets, trivial_coreset
from repro.core.spread_reduction import crude_cost_upper_bound
from repro.geometry.quadtree import compute_spread
from repro.parallel.executor import ArrayPayload, AsyncExecutor, Executor, resolve_executor
from repro.parallel.sharding import KEY_STREAM_QUERY, ShardTask, compress_shard
from repro.streaming.merge_reduce import MergeReduceTree
from repro.streaming.stream import Block
from repro.utils.rng import keyed_seed_sequence, random_seed_from

__all__ = [
    "DriftDetector",
    "ExponentialDecay",
    "SlidingCountWindow",
    "WindowPolicy",
    "WindowedMergeReduceTree",
]


class WindowPolicy(abc.ABC):
    """Decides which buckets are live and how strongly they count.

    Attributes
    ----------
    name:
        Short identifier used in coreset ``method`` strings and CLI output.
    expires:
        Whether buckets ever retire.  Expiring policies force unmerged
        per-block buckets (see the module docstring's expiry protocol).
    merges:
        Whether the binary-counter carry chain may merge equal-span
        buckets.  Mutually exclusive with exact expiry: a merged bucket
        cannot retire one of its blocks without recomputation.
    """

    name: str = "window"
    expires: bool = False
    merges: bool = True

    def expired(self, start: int, stop: int, now: int) -> bool:
        """True when the bucket covering blocks ``[start, stop)`` is fully
        outside the window anchored at block index ``now``."""
        return False

    def decay(self, then: float, now: float) -> float:
        """Weight multiplier for mass stamped ``then``, observed at ``now``.

        Must be multiplicative over intermediate stamps
        (``decay(a, c) == decay(a, b) * decay(b, c)`` up to rounding) — the
        tree applies it incrementally at folds and once more at query time.
        """
        return 1.0


@dataclass(frozen=True)
class SlidingCountWindow(WindowPolicy):
    """Keep exactly the last ``blocks`` blocks; older buckets retire whole."""

    blocks: int = 8

    name = "sliding"
    expires = True
    merges = False

    def __post_init__(self) -> None:
        if int(self.blocks) < 1:
            raise ValueError(f"window must cover at least one block, got {self.blocks}")
        object.__setattr__(self, "blocks", int(self.blocks))

    def expired(self, start: int, stop: int, now: int) -> bool:
        # `stop` is past-the-end: the newest block of the bucket is
        # `stop - 1`, and the window anchored at `now` covers
        # [now - blocks + 1, now].
        return stop - 1 < now - self.blocks + 1


@dataclass(frozen=True)
class ExponentialDecay(WindowPolicy):
    """Halve the weight of past mass every ``half_life`` timestamp units.

    Nothing ever expires, so the binary-counter merge hierarchy is kept;
    old blocks simply fade.  Timestamps default to block indices, making
    ``half_life`` "number of blocks until half weight" unless the caller
    stamps blocks explicitly.
    """

    half_life: float = 8.0

    name = "decay"
    expires = False
    merges = True

    def __post_init__(self) -> None:
        if not float(self.half_life) > 0:
            raise ValueError(f"half_life must be positive, got {self.half_life}")
        object.__setattr__(self, "half_life", float(self.half_life))

    def decay(self, then: float, now: float) -> float:
        return float(0.5 ** ((now - then) / self.half_life))


@dataclass
class DriftDetector:
    """Flags a distribution shift from the stream of per-block means.

    The detector anchors a reference mean and fires when a block's mean
    moves further than ``threshold`` times the current window's bounding-box
    diagonal away from it (re-anchoring on fire).  The diagonal is the right
    yardstick here because it is exactly the quantity the spread /
    cost-bound caches were computed under — a mean excursion comparable to
    it means those caches describe a distribution that is no longer
    arriving.
    """

    threshold: float = 0.25

    def __post_init__(self) -> None:
        if not float(self.threshold) > 0:
            raise ValueError(f"threshold must be positive, got {self.threshold}")
        self._reference: Optional[np.ndarray] = None

    def observe(self, mean: np.ndarray, scale: float) -> bool:
        """Feed one block mean; returns True when drift fired."""
        mean = np.asarray(mean, dtype=np.float64)
        if self._reference is None or not scale > 0:
            self._reference = mean
            return False
        if float(np.linalg.norm(mean - self._reference)) > self.threshold * float(scale):
            self._reference = mean
            return True
        return False


@dataclass
class _Bucket:
    """One stamped compression held (or in flight) in the windowed tree."""

    value: Union[None, Coreset, Future]
    start: int  #: first block index covered (inclusive)
    stop: int  #: past-the-end block index
    oldest_time: float
    newest_time: float
    spread: Optional[float]
    cost_bound: Optional[float]

    @property
    def span(self) -> int:
        return self.stop - self.start


@dataclass
class WindowedMergeReduceTree(MergeReduceTree):
    """A merge-&-reduce tree whose buckets expire or decay under a policy.

    Accepts every :class:`MergeReduceTree` parameter plus:

    Parameters
    ----------
    window:
        The :class:`WindowPolicy` (required).  :class:`SlidingCountWindow`
        retires whole buckets and disables merging (see the module
        docstring's expiry protocol); :class:`ExponentialDecay` keeps the
        carry chain and down-weights old buckets at folds and queries.
    drift_threshold:
        When set, a :class:`DriftDetector` with this threshold watches the
        per-block means and — on firing — invalidates the shared spread /
        cost-bound caches so the next compression re-estimates them from
        the post-drift data.  ``None`` disables detection.

    Attributes
    ----------
    blocks_expired / drift_events / last_drift_block:
        Mode-invariant window diagnostics: blocks retired from the window,
        drift-detector firings, and the block index of the latest firing
        (``-1`` when none fired).

    Reduce and query compressions always run on the host thread;
    ``overlap_reduces`` is accepted for signature compatibility but
    ignored.  ``levels`` stays empty — live state is the stamped bucket
    deque, inspectable through :meth:`live_ranges`.
    """

    window: Optional[WindowPolicy] = None
    drift_threshold: Optional[float] = None
    blocks_expired: int = 0
    drift_events: int = 0
    last_drift_block: int = -1

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.window is None:
            raise ValueError("WindowedMergeReduceTree requires a window policy")
        if self.window.expires and self.window.merges:
            raise ValueError(
                f"policy {self.window.name!r} both expires and merges: a merged "
                "bucket cannot retire exactly (see the bucket-expiry protocol)"
            )
        self._detector = (
            DriftDetector(threshold=self.drift_threshold)
            if self.drift_threshold is not None
            else None
        )
        #: Settled live buckets, oldest first.  ``self._pending`` (inherited
        #: deque) holds in-flight buckets instead of the parent's tuples.
        self._buckets: Deque[_Bucket] = deque()
        #: Per-block bounding boxes of the live window (expiring policies
        #: only) as ``(block_index, low, high)`` — the window's box is their
        #: running union, recomputed when blocks retire.
        self._live_boxes: Deque[Tuple[int, np.ndarray, np.ndarray]] = deque()
        self._now_index: int = -1
        self._now_time: Optional[float] = None
        self._queries: int = 0

    # ------------------------------------------------------------ host walk
    def _walk(self, points: np.ndarray, timestamp: Optional[float]) -> _Bucket:
        """Advance the window to one arriving block: stamp, expire, observe.

        Everything stochastic a later compression consumes — the hint
        values, the expiry decisions, the seed indices — is fixed here, in
        arrival order, before any work is (possibly asynchronously)
        scheduled.
        """
        index = self.blocks_seen
        stamp = float(index) if timestamp is None else float(timestamp)
        if self._now_time is not None and stamp < self._now_time:
            raise ValueError(
                f"timestamps must be non-decreasing: got {stamp} after {self._now_time}"
            )
        self.blocks_seen += 1
        _obs.counter_add("stream.blocks", 1.0)
        self._now_index = index
        self._now_time = stamp
        self._expire_settled()
        if points.shape[0]:
            if self.window.expires:
                self._live_boxes.append((index, points.min(axis=0), points.max(axis=0)))
                self._expire_boxes()
            else:
                self._observe(points)
            if self._detector is not None:
                self._observe_drift(points, index)
        spread, cost_bound = self._stream_hints(points)
        return _Bucket(
            value=None,
            start=index,
            stop=index + 1,
            oldest_time=stamp,
            newest_time=stamp,
            spread=spread,
            cost_bound=cost_bound,
        )

    def _expire_settled(self) -> None:
        """Retire settled buckets that fell out of the window."""
        if not self.window.expires:
            return
        while self._buckets and self.window.expired(
            self._buckets[0].start, self._buckets[0].stop, self._now_index
        ):
            bucket = self._buckets.popleft()
            self._count_expired(bucket)

    def _expire_boxes(self) -> None:
        """Drop retired per-block boxes and refresh the window's union box."""
        changed = False
        while self._live_boxes and self.window.expired(
            self._live_boxes[0][0], self._live_boxes[0][0] + 1, self._now_index
        ):
            self._live_boxes.popleft()
            changed = True
        if changed or self._bounds_low is None:
            if self._live_boxes:
                self._bounds_low = np.minimum.reduce([low for _, low, _ in self._live_boxes])
                self._bounds_high = np.maximum.reduce([high for _, _, high in self._live_boxes])
            else:
                self._bounds_low = None
                self._bounds_high = None
        else:
            _, low, high = self._live_boxes[-1]
            self._bounds_low = np.minimum(self._bounds_low, low)
            self._bounds_high = np.maximum(self._bounds_high, high)

    def _count_expired(self, bucket: _Bucket) -> None:
        self.blocks_expired += bucket.span
        _obs.counter_add("stream.blocks_expired", float(bucket.span))

    def _observe_drift(self, points: np.ndarray, index: int) -> None:
        if self._bounds_low is None:
            return
        diameter = float(np.linalg.norm(self._bounds_high - self._bounds_low))
        if self._detector.observe(points.mean(axis=0), diameter):
            self.drift_events += 1
            self.last_drift_block = index
            # Fire the refresh signal: the next _stream_hints call sees the
            # caches empty and re-estimates from the post-drift block.
            self._cached_spread = None
            self._cached_cost_bound = None
            _obs.counter_add("stream.drift_events", 1.0)

    def _stream_hints(
        self, points: np.ndarray
    ) -> Tuple[Optional[float], Optional[float]]:
        """Window-aware twin of the parent's shared hint caches.

        Same staleness signal plus two window-specific triggers: a drift
        firing empties the caches (handled in :meth:`_observe_drift`), and a
        *shrinking* box — impossible for the append-only tree, routine once
        blocks expire — also forces a refresh, since a spread measured on a
        much larger window overestimates the live one.
        """
        if not self.share_stream_state:
            return None, None
        if self._bounds_low is None or points.shape[0] < 2:
            return None, None
        diameter = float(np.linalg.norm(self._bounds_high - self._bounds_low))
        self._compressions_since_refresh += 1
        wants_bound = self._wants_cost_bound()
        stale = (
            self._cached_spread is None
            or (wants_bound and self._cached_cost_bound is None)
            or diameter > self.spread_refresh_factor * self._cached_diameter
            or diameter * self.spread_refresh_factor < self._cached_diameter
            or self._compressions_since_refresh > self.spread_refresh_interval
        )
        if stale:
            with _obs.span("stream.hint_refresh", rows=int(points.shape[0])):
                self._cached_spread = compute_spread(points, seed=self._spread_generator)
                self._cached_diameter = diameter
                self._compressions_since_refresh = 0
                self.spread_refreshes += 1
                _obs.counter_add("stream.spread_refreshes", 1.0)
                if wants_bound:
                    self._cached_cost_bound = crude_cost_upper_bound(
                        points,
                        int(self.sampler.k),
                        spread=self._cached_spread,
                        seed=self._spread_generator,
                    ).upper_bound
                    self.cost_bound_refreshes += 1
                    _obs.counter_add("stream.cost_bound_refreshes", 1.0)
                else:
                    self._cached_cost_bound = None
        return self._cached_spread, self._cached_cost_bound if wants_bound else None

    # -------------------------------------------------------------- settling
    def _settle(self, bucket: _Bucket) -> None:
        """Fold one (possibly in-flight) bucket into the live window.

        A bucket that expired while still in flight is dropped without
        resolving into the window — but its future is still awaited so a
        failed compression surfaces instead of vanishing with the data.
        """
        if self.window.expired(bucket.start, bucket.stop, self._now_index):
            if isinstance(bucket.value, Future):
                with _obs.span("stream.pending_wait", folded=False):
                    bucket.value.result()
            self._count_expired(bucket)
            return
        if isinstance(bucket.value, Future):
            with _obs.span("stream.pending_wait", folded=False):
                bucket.value = bucket.value.result()
        if self.window.merges:
            self._carry(bucket)
        else:
            self._buckets.append(bucket)

    def _carry(self, bucket: _Bucket) -> None:
        """Binary-counter carry over the bucket deque (decay policies)."""
        while self._buckets and self._buckets[-1].span == bucket.span:
            partner = self._buckets.pop()
            bucket = self._fold_buckets(partner, bucket)
        self._buckets.append(bucket)

    def _decayed(self, coreset: Coreset, then: float, now: float) -> Coreset:
        factor = self.window.decay(then, now)
        if factor == 1.0:
            return coreset
        return Coreset(
            points=coreset.points,
            weights=coreset.weights * factor,
            indices=coreset.indices,
            method=coreset.method,
        )

    def _fold_buckets(self, older: _Bucket, newer: _Bucket) -> _Bucket:
        """Merge two settled buckets, decaying the older one to the newer's
        timestamp, and re-compress only when the union outgrows ``m``."""
        merged = merge_coresets(
            [self._decayed(older.value, older.newest_time, newer.newest_time), newer.value]
        )
        if merged.size > self.coreset_size:
            seed = (
                self._reduce_seed(self.reductions)
                if self.spawn_seeds
                else random_seed_from(self._generator)
            )
            started = time.perf_counter()
            with _obs.span("stream.host_reduce", rows=int(merged.size)):
                value = self.sampler.sample(
                    merged.points,
                    self.coreset_size,
                    weights=merged.weights,
                    seed=seed,
                    spread=newer.spread,
                    cost_bound=newer.cost_bound,
                )
            self.host_reduce_seconds += time.perf_counter() - started
            self.host_reduces += 1
            self.reductions += 1
            _obs.counter_add("stream.host_reduces", 1.0)
        else:
            value = merged
        return _Bucket(
            value=value,
            start=older.start,
            stop=newer.stop,
            oldest_time=older.oldest_time,
            newest_time=newer.newest_time,
            spread=newer.spread,
            cost_bound=newer.cost_bound,
        )

    def _drain_pending(self, limit: Optional[int]) -> None:
        target = 0 if limit is None else max(0, int(limit))
        while len(self._pending) > target:
            self._settle(self._pending.popleft())

    # ------------------------------------------------------------- ingestion
    def add_block(
        self,
        points: np.ndarray,
        weights: Optional[np.ndarray] = None,
        timestamp: Optional[float] = None,
    ) -> None:
        """Consume one block, stamped with ``timestamp`` (block index default)."""
        if self.spawn_seeds:
            self.add_blocks(
                [(points, weights)],
                timestamps=None if timestamp is None else [timestamp],
            )
            return
        points = np.asarray(points, dtype=np.float64)
        if weights is None:
            weights = np.ones(points.shape[0], dtype=np.float64)
        bucket = self._walk(points, timestamp)
        bucket.value = self._leaf_value(
            points, weights, bucket, seed=None if points.shape[0] <= self.coreset_size else random_seed_from(self._generator)
        )
        self._settle(bucket)

    def _leaf_value(
        self, points: np.ndarray, weights: np.ndarray, bucket: _Bucket, *, seed
    ) -> Coreset:
        if points.shape[0] <= self.coreset_size:
            # Already fits: keep the block verbatim (it is a 0-coreset of
            # itself) so per-point weights survive folds unflattened.
            return trivial_coreset(points, weights)
        with _obs.span("stream.leaf_compress", rows=int(points.shape[0])):
            return self.sampler.sample(
                points,
                self.coreset_size,
                weights=weights,
                seed=seed,
                spread=bucket.spread,
                cost_bound=bucket.cost_bound,
            )

    def add_blocks(
        self,
        blocks: Iterable[Union[Block, "Future"]],
        *,
        executor: Union[None, str, Executor, AsyncExecutor] = None,
        timestamps: Optional[Sequence[float]] = None,
    ) -> None:
        """Consume a batch of blocks, compressing oversized leaves concurrently.

        Same contract as the parent: requires ``spawn_seeds=True``, the host
        walks the batch in arrival order (stamping, expiring, hint caching,
        seed assignment), then fans the fully determined leaf compressions
        out.  Blocks that already fit in ``coreset_size`` become identity
        buckets on the host — there is nothing to compress.  With an
        :class:`AsyncExecutor` the in-flight buckets are settled lazily down
        to :attr:`pending_limit`; settling always happens in arrival order,
        so every scheduling produces the identical window.
        """
        if not self.spawn_seeds:
            raise ValueError(
                "add_blocks requires spawn_seeds=True: concurrent leaf compression "
                "is only deterministic under spawn-keyed seed derivation"
            )
        prepared: List[Tuple[np.ndarray, np.ndarray, _Bucket]] = []
        for position, block in enumerate(blocks):
            if isinstance(block, Future):
                block = block.result()
            points, weights = block
            points = np.asarray(points, dtype=np.float64)
            if weights is None:
                weights = np.ones(points.shape[0], dtype=np.float64)
            timestamp = None if timestamps is None else timestamps[position]
            prepared.append((points, weights, self._walk(points, timestamp)))
        if not prepared:
            return
        tasks = []
        compressed: List[Tuple[np.ndarray, np.ndarray]] = []
        start = 0
        for points, weights, bucket in prepared:
            if points.shape[0] <= self.coreset_size:
                bucket.value = trivial_coreset(points, weights)
                continue
            stop = start + points.shape[0]
            tasks.append(
                ShardTask(
                    index=len(tasks),
                    start=start,
                    stop=stop,
                    m=self.coreset_size,
                    sampler=self.sampler,
                    seed=self._leaf_seed(bucket.start),
                    spread=bucket.spread,
                    cost_bound=bucket.cost_bound,
                    stage="leaf",
                )
            )
            compressed.append((points, weights))
            start = stop
        payload = None
        if tasks:
            if len(compressed) == 1:
                payload = ArrayPayload(points=compressed[0][0], weights=compressed[0][1])
            else:
                payload = ArrayPayload(
                    points=np.concatenate([points for points, _ in compressed], axis=0),
                    weights=np.concatenate([weights for _, weights in compressed], axis=0),
                )
        if isinstance(executor, AsyncExecutor):
            futures = iter(
                executor.submit_many(compress_shard, tasks, payload=payload) if tasks else ()
            )
            for _, _, bucket in prepared:
                if bucket.value is None:
                    bucket.value = next(futures)
                self._pending.append(bucket)
            self.pending_high_water = max(self.pending_high_water, len(self._pending))
            _obs.gauge_set("stream.pending_high_water", float(self.pending_high_water))
            self._drain_pending(self.pending_limit)
            return
        self.flush()  # earlier async batches must settle before this one
        if tasks:
            owns_executor = not isinstance(executor, Executor)
            resolved = resolve_executor(executor)
            try:
                leaves = iter(resolved.map(compress_shard, tasks, payload=payload))
            finally:
                if owns_executor:
                    resolved.close()
        else:
            leaves = iter(())
        for _, _, bucket in prepared:
            if bucket.value is None:
                bucket.value = next(leaves)
            self._settle(bucket)

    # --------------------------------------------------------------- queries
    def live_ranges(self) -> List[Tuple[int, int]]:
        """``[start, stop)`` block ranges of the live buckets, oldest first.

        Includes in-flight buckets that have not expired; this is the
        bookkeeping surface the oracle-equivalence suite checks against a
        from-scratch window recompute.
        """
        ranges = [(bucket.start, bucket.stop) for bucket in self._buckets]
        ranges.extend(
            (bucket.start, bucket.stop)
            for bucket in self._pending
            if not self.window.expired(bucket.start, bucket.stop, self._now_index)
        )
        return sorted(ranges)

    @property
    def buckets_live(self) -> int:
        """Number of live buckets (settled + unexpired in-flight)."""
        return len(self.live_ranges())

    def _query_seed(self):
        if self.spawn_seeds:
            return keyed_seed_sequence(self._spawn_root, KEY_STREAM_QUERY, self._queries)
        return random_seed_from(self._generator)

    def query(self) -> Coreset:
        """The coreset of the *current* window, without stopping ingestion.

        Settles everything in flight, decays each surviving bucket to the
        newest timestamp, merges, and re-compresses only if the union
        outgrows ``coreset_size``.  Under ``spawn_seeds=True`` the result is
        a pure function of the block sequence and the number of earlier
        queries (query seeds are keyed by query index), so interleaved
        queries stay bit-identical across executors.
        """
        self.flush()
        if not self._buckets:
            raise ValueError("the window is empty: no live blocks to query")
        now = self._now_time
        survivors = [
            self._decayed(bucket.value, bucket.newest_time, now) for bucket in self._buckets
        ]
        combined = merge_coresets(survivors) if len(survivors) > 1 else survivors[0]
        seed = self._query_seed()  # drawn unconditionally: the seed stream
        self._queries += 1  # must not depend on the current window's size
        if combined.size > self.coreset_size:
            share = self.share_stream_state
            started = time.perf_counter()
            with _obs.span("stream.host_reduce", rows=int(combined.size)):
                final = self.sampler.sample(
                    combined.points,
                    self.coreset_size,
                    weights=combined.weights,
                    seed=seed,
                    spread=self._cached_spread if share else None,
                    cost_bound=(
                        self._cached_cost_bound
                        if share and self._wants_cost_bound()
                        else None
                    ),
                )
            self.host_reduce_seconds += time.perf_counter() - started
            self.host_reduces += 1
            self.reductions += 1
            _obs.counter_add("stream.host_reduces", 1.0)
        else:
            final = combined
        final.method = f"windowed_merge_reduce[{self.window.name}][{self.sampler.name}]"
        return final

    def finalize(self) -> Coreset:
        """End the stream and return the final window's coreset."""
        with _obs.span("stream.finalize"):
            return self.query()

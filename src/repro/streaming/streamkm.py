"""StreamKM++: k-means++-driven coreset trees for the streaming k-means task.

StreamKM++ [1] maintains a merge-&-reduce bucket structure whose *reduce*
step is a "coreset tree": representatives are selected by D²-sampling
(k-means++ style) and every input point donates its weight to its nearest
representative.  The resulting compression is a quantisation of the input —
good for seeding Lloyd's algorithm, but (as the paper's Table 9 shows) not a
strong coreset at the sample sizes sensitivity sampling needs, because the
construction's theoretical coreset size is logarithmic in ``n`` and
exponential in ``d``.

The implementation exposes both interfaces used in the paper's experiments:

* the static :class:`~repro.core.base.CoresetConstruction` interface (build
  one coreset of the full dataset), and
* the streaming interface (``insert_block`` / ``to_coreset``), which runs
  the same reduction inside a merge-&-reduce tree.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.clustering.kmeans_pp import kmeans_plus_plus
from repro.core.base import CoresetConstruction
from repro.core.coreset import Coreset
from repro.geometry.distances import squared_point_to_set_distances
from repro.utils.rng import SeedLike, as_generator, random_seed_from
from repro.utils.validation import check_integer, check_points, check_weights


class StreamKMPlusPlus(CoresetConstruction):
    """StreamKM++ coreset-tree reduction.

    Parameters
    ----------
    coreset_size:
        Number of representatives kept by every reduction.
    z:
        Cost exponent; StreamKM++ targets k-means, so 2 is the paper's (and
        the default) choice.
    seed:
        Default randomness source.
    """

    name = "streamkm++"

    def __init__(self, coreset_size: int, *, z: int = 2, seed: SeedLike = None) -> None:
        super().__init__(z=z, seed=seed)
        self.coreset_size = check_integer(coreset_size, name="coreset_size")
        self._buckets: list[Coreset] = []
        self._generator = as_generator(seed)

    # -------------------------------------------------------------- reduce
    def _coreset_tree_reduce(
        self,
        points: np.ndarray,
        weights: np.ndarray,
        m: int,
        seed: SeedLike,
    ) -> Coreset:
        """One coreset-tree reduction: D²-sample ``m`` representatives, re-weight.

        Every input point is assigned to its nearest representative and the
        representative's weight is the total weight assigned to it, so the
        compression preserves the input's total weight exactly.
        """
        generator = as_generator(seed)
        m = min(m, points.shape[0])
        seeding = kmeans_plus_plus(points, m, weights=weights, z=self.z, seed=generator)
        representatives = seeding.centers
        _, assignment = squared_point_to_set_distances(points, representatives)
        representative_weights = np.bincount(
            assignment, weights=weights, minlength=representatives.shape[0]
        )
        occupied = representative_weights > 0
        return Coreset(
            points=representatives[occupied],
            weights=representative_weights[occupied],
            indices=None,
            method=self.name,
        )

    # --------------------------------------------- CoresetConstruction API
    def _sample(
        self,
        points: np.ndarray,
        weights: np.ndarray,
        m: int,
        seed: SeedLike,
    ) -> Coreset:
        return self._coreset_tree_reduce(points, weights, m, seed)

    # ----------------------------------------------------------- streaming
    def insert_block(self, points: np.ndarray, weights: Optional[np.ndarray] = None) -> None:
        """Absorb one block of the stream into the bucket structure."""
        points = check_points(points)
        weights = check_weights(weights, points.shape[0])
        current = self._coreset_tree_reduce(
            points, weights, self.coreset_size, random_seed_from(self._generator)
        )
        self._buckets.append(current)
        # Merge buckets pairwise whenever two of comparable size exist, which
        # keeps at most O(log(blocks)) buckets alive.
        while len(self._buckets) >= 2 and self._buckets[-1].size >= self._buckets[-2].size:
            right = self._buckets.pop()
            left = self._buckets.pop()
            merged_points = np.concatenate([left.points, right.points], axis=0)
            merged_weights = np.concatenate([left.weights, right.weights], axis=0)
            self._buckets.append(
                self._coreset_tree_reduce(
                    merged_points,
                    merged_weights,
                    self.coreset_size,
                    random_seed_from(self._generator),
                )
            )

    def to_coreset(self) -> Coreset:
        """Collapse the surviving buckets into the final compression."""
        if not self._buckets:
            raise ValueError("no points have been inserted")
        if len(self._buckets) == 1:
            final = self._buckets[0]
        else:
            merged_points = np.concatenate([bucket.points for bucket in self._buckets], axis=0)
            merged_weights = np.concatenate([bucket.weights for bucket in self._buckets], axis=0)
            final = self._coreset_tree_reduce(
                merged_points,
                merged_weights,
                self.coreset_size,
                random_seed_from(self._generator),
            )
        final.method = self.name
        return final

    def reset(self) -> None:
        """Forget all absorbed blocks."""
        self._buckets = []

"""StreamKM++: k-means++-driven coreset trees for the streaming k-means task.

StreamKM++ [1] maintains a merge-&-reduce bucket structure whose *reduce*
step is a "coreset tree": representatives are selected by D²-sampling
(k-means++ style) and every input point donates its weight to its nearest
representative.  The resulting compression is a quantisation of the input —
good for seeding Lloyd's algorithm, but (as the paper's Table 9 shows) not a
strong coreset at the sample sizes sensitivity sampling needs, because the
construction's theoretical coreset size is logarithmic in ``n`` and
exponential in ``d``.

The implementation exposes both interfaces used in the paper's experiments:

* the static :class:`~repro.core.base.CoresetConstruction` interface (build
  one coreset of the full dataset), and
* the streaming interface (``insert_block`` / ``to_coreset``), which runs
  the same reduction inside a merge-&-reduce tree.

Execution notes
---------------
The D²-selection loop draws its representatives in *batches* through
:func:`~repro.utils.rng.weighted_index_draws` instead of rebuilding a
cumulative mass vector per draw: the D² mass of every point is non-increasing
as representatives are added, so a batch drawn against a stale mass envelope
can be thinned by rejection (accept index ``i`` with probability
``current_mass[i] / envelope[i]``) while preserving the k-means++ selection
law *exactly*.  The nearest-representative assignment that re-weighting needs
is maintained incrementally during selection, so the reduction no longer pays
a second full ``(n, m)`` distance block after seeding.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.base import CoresetConstruction
from repro.core.coreset import Coreset
from repro.geometry.distances import update_nearest_with_new_center
from repro.utils.rng import SeedLike, as_generator, random_seed_from, weighted_index_draws
from repro.utils.validation import check_integer, check_points, check_weights

#: Number of candidate draws taken against one mass envelope.  At refresh the
#: envelope equals the current mass, so every batch accepts at least one
#: candidate and the loop always terminates.
_DRAW_BATCH = 64


class StreamKMPlusPlus(CoresetConstruction):
    """StreamKM++ coreset-tree reduction.

    Parameters
    ----------
    coreset_size:
        Number of representatives kept by every reduction.
    z:
        Cost exponent; StreamKM++ targets k-means, so 2 is the paper's (and
        the default) choice.
    seed:
        Default randomness source.
    """

    name = "streamkm++"

    def __init__(self, coreset_size: int, *, z: int = 2, seed: SeedLike = None) -> None:
        super().__init__(z=z, seed=seed)
        self.coreset_size = check_integer(coreset_size, name="coreset_size")
        self._buckets: list[Coreset] = []
        self._generator = as_generator(seed)

    # -------------------------------------------------------------- reduce
    def _selection_mass(self, best_squared: np.ndarray, weights: np.ndarray) -> np.ndarray:
        """Per-point D^z selection mass against the representatives chosen so far."""
        if self.z == 2:
            return weights * best_squared
        return weights * np.sqrt(best_squared)

    def _dsquared_select(
        self,
        points: np.ndarray,
        weights: np.ndarray,
        m: int,
        generator: np.random.Generator,
    ) -> tuple:
        """Select ``m`` representatives by exact D²-sampling with batched draws.

        Returns ``(indices, assignment)`` where ``assignment`` maps every
        input point to its nearest selected representative (maintained
        incrementally, one rank-1 distance update per accepted center).

        Draws are batched against a mass *envelope*: the selection mass only
        shrinks as representatives are added, so a candidate drawn from a
        stale envelope is accepted with probability ``current / envelope``
        (strict inequality, so zero-mass points — exact duplicates of chosen
        representatives — are never accepted), which reproduces the
        sequential k-means++ law exactly while amortising the cumulative-sum
        and probability-vector work over many draws.
        """
        n = points.shape[0]
        indices = np.empty(m, dtype=np.int64)
        first = -1
        total_weight = float(weights.sum())
        if total_weight > 0:
            draws = weighted_index_draws(generator, weights, 1)
            if draws is not None:
                first = int(draws[0])
        if first < 0:
            first = int(generator.integers(0, n))
        indices[0] = first
        best_squared, assignment = update_nearest_with_new_center(
            points, points[first], None, None, 0
        )
        count = 1
        while count < m:
            envelope = self._selection_mass(best_squared, weights)
            candidates = weighted_index_draws(generator, envelope, _DRAW_BATCH)
            if candidates is None:
                # Every remaining point coincides with a representative; fill
                # the open slots uniformly (the classical degenerate case).
                while count < m:
                    chosen = int(generator.integers(0, n))
                    indices[count] = chosen
                    best_squared, assignment = update_nearest_with_new_center(
                        points, points[chosen], best_squared, assignment, count
                    )
                    count += 1
                break
            acceptance = generator.random(_DRAW_BATCH)
            for candidate, u in zip(candidates, acceptance):
                candidate = int(candidate)
                current = weights[candidate] * (
                    best_squared[candidate]
                    if self.z == 2
                    else float(np.sqrt(best_squared[candidate]))
                )
                if u * envelope[candidate] < current:
                    indices[count] = candidate
                    best_squared, assignment = update_nearest_with_new_center(
                        points, points[candidate], best_squared, assignment, count
                    )
                    count += 1
                    if count == m:
                        break
        return indices, assignment

    def _coreset_tree_reduce(
        self,
        points: np.ndarray,
        weights: np.ndarray,
        m: int,
        seed: SeedLike,
    ) -> Coreset:
        """One coreset-tree reduction: D²-sample ``m`` representatives, re-weight.

        Every input point is assigned to its nearest representative and the
        representative's weight is the total weight assigned to it, so the
        compression preserves the input's total weight exactly.
        """
        generator = as_generator(seed)
        m = min(m, points.shape[0])
        indices, assignment = self._dsquared_select(points, weights, m, generator)
        representatives = points[indices]
        representative_weights = np.bincount(assignment, weights=weights, minlength=m)
        occupied = representative_weights > 0
        return Coreset(
            points=representatives[occupied],
            weights=representative_weights[occupied],
            indices=None,
            method=self.name,
        )

    # --------------------------------------------- CoresetConstruction API
    def _sample(
        self,
        points: np.ndarray,
        weights: np.ndarray,
        m: int,
        seed: SeedLike,
        spread: Optional[float] = None,
        cost_bound: Optional[float] = None,
    ) -> Coreset:
        return self._coreset_tree_reduce(points, weights, m, seed)

    # ----------------------------------------------------------- streaming
    def insert_block(self, points: np.ndarray, weights: Optional[np.ndarray] = None) -> None:
        """Absorb one block of the stream into the bucket structure."""
        points = check_points(points)
        weights = check_weights(weights, points.shape[0])
        current = self._coreset_tree_reduce(
            points, weights, self.coreset_size, random_seed_from(self._generator)
        )
        self._buckets.append(current)
        # Merge buckets pairwise whenever two of comparable size exist, which
        # keeps at most O(log(blocks)) buckets alive.
        while len(self._buckets) >= 2 and self._buckets[-1].size >= self._buckets[-2].size:
            right = self._buckets.pop()
            left = self._buckets.pop()
            merged_points = np.concatenate([left.points, right.points], axis=0)
            merged_weights = np.concatenate([left.weights, right.weights], axis=0)
            self._buckets.append(
                self._coreset_tree_reduce(
                    merged_points,
                    merged_weights,
                    self.coreset_size,
                    random_seed_from(self._generator),
                )
            )

    def to_coreset(self) -> Coreset:
        """Collapse the surviving buckets into the final compression."""
        if not self._buckets:
            raise ValueError("no points have been inserted")
        if len(self._buckets) == 1:
            final = self._buckets[0]
        else:
            merged_points = np.concatenate([bucket.points for bucket in self._buckets], axis=0)
            merged_weights = np.concatenate([bucket.weights for bucket in self._buckets], axis=0)
            final = self._coreset_tree_reduce(
                merged_points,
                merged_weights,
                self.coreset_size,
                random_seed_from(self._generator),
            )
        final.method = self.name
        return final

    def reset(self) -> None:
        """Forget all absorbed blocks."""
        self._buckets = []

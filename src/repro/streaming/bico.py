"""BICO: BIRCH-style clustering-feature trees for k-means coresets.

BICO [38] marries the SIGMOD test-of-time winning BIRCH [58] data structure
with coreset reasoning: the stream is absorbed into a bounded number of
*clustering features* (CFs) — sufficient statistics ``(weight, linear sum,
squared sum)`` of a group of nearby points — and the coreset consists of one
weighted point (the CF centroid) per feature.  A global error threshold ``T``
controls how much k-means cost may be hidden inside a single feature; when
the number of features exceeds the budget, ``T`` doubles and the features are
rebuilt, exactly as in BIRCH.

The paper evaluates BICO as a state-of-the-art streaming competitor and
finds that it "performs consistently poorly on the coreset distortion
metric" (Table 6) while remaining a reasonable quantiser.  This
implementation processes points in vectorised blocks rather than strictly
one at a time — a standard engineering change that preserves the insertion
rule (merge into the nearest feature if the cost increase stays below ``T``,
otherwise open a new feature) while keeping the numpy implementation fast.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.base import CoresetConstruction
from repro.core.coreset import Coreset
from repro.geometry.distances import squared_point_to_set_distances
from repro.utils.rng import SeedLike
from repro.utils.validation import check_integer, check_points, check_weights


@dataclass
class ClusteringFeature:
    """Sufficient statistics of a group of points (a BIRCH/BICO node).

    Attributes
    ----------
    weight:
        Total weight of the absorbed points.
    linear_sum:
        Component-wise weighted sum of the absorbed points.
    squared_sum:
        Weighted sum of squared norms of the absorbed points.
    """

    weight: float
    linear_sum: np.ndarray
    squared_sum: float

    @property
    def centroid(self) -> np.ndarray:
        """Weighted mean of the absorbed points."""
        return self.linear_sum / self.weight

    @property
    def internal_cost(self) -> float:
        """k-means cost hidden inside the feature (SSE around its centroid)."""
        return max(0.0, self.squared_sum - float(self.linear_sum @ self.linear_sum) / self.weight)

    def merge_cost(self, point: np.ndarray, weight: float) -> float:
        """Increase in internal cost caused by absorbing ``point``.

        Uses the standard identity ``delta = w * W / (w + W) * ||p - c||^2``
        where ``W`` is the feature weight and ``c`` its centroid.
        """
        delta = point - self.centroid
        return float(weight * self.weight / (weight + self.weight) * (delta @ delta))

    def absorb(self, point: np.ndarray, weight: float) -> None:
        """Add a weighted point to the feature."""
        self.weight += weight
        self.linear_sum = self.linear_sum + weight * point
        self.squared_sum += weight * float(point @ point)

    @classmethod
    def from_point(cls, point: np.ndarray, weight: float) -> "ClusteringFeature":
        """Create a feature holding a single weighted point."""
        point = np.asarray(point, dtype=np.float64)
        return cls(weight=float(weight), linear_sum=weight * point, squared_sum=weight * float(point @ point))


class BicoCoreset(CoresetConstruction):
    """BICO streaming coreset construction.

    Parameters
    ----------
    coreset_size:
        Maximum number of clustering features (and therefore coreset points).
    block_size:
        Number of stream points processed per vectorised insertion step.
    z:
        Recorded for bookkeeping; BICO targets k-means (``z = 2``) only, as
        in the paper.
    seed:
        Unused by the deterministic insertion rule but kept for interface
        compatibility.
    """

    name = "bico"

    def __init__(
        self,
        coreset_size: int,
        *,
        block_size: int = 2048,
        z: int = 2,
        seed: SeedLike = None,
    ) -> None:
        super().__init__(z=z, seed=seed)
        self.coreset_size = check_integer(coreset_size, name="coreset_size")
        self.block_size = check_integer(block_size, name="block_size")
        self.reset()

    # --------------------------------------------------------------- state
    def reset(self) -> None:
        """Forget all absorbed points and restart with an empty feature set."""
        self.features: List[ClusteringFeature] = []
        self.threshold: float = 0.0
        self.points_seen: int = 0
        self.rebuilds: int = 0

    def _centroid_matrix(self) -> np.ndarray:
        return np.stack([feature.centroid for feature in self.features], axis=0)

    def _feature_weights(self) -> np.ndarray:
        return np.array([feature.weight for feature in self.features], dtype=np.float64)

    # ----------------------------------------------------------- insertion
    def insert_block(self, points: np.ndarray, weights: Optional[np.ndarray] = None) -> None:
        """Absorb a block of (weighted) points into the feature set."""
        points = check_points(points)
        weights = check_weights(weights, points.shape[0])
        for start in range(0, points.shape[0], self.block_size):
            stop = min(start + self.block_size, points.shape[0])
            self._insert_chunk(points[start:stop], weights[start:stop])
        self.points_seen += points.shape[0]

    def _insert_chunk(self, points: np.ndarray, weights: np.ndarray) -> None:
        if not self.features:
            self.features.append(ClusteringFeature.from_point(points[0], weights[0]))
            points = points[1:]
            weights = weights[1:]
            if points.shape[0] == 0:
                return
        centroids = self._centroid_matrix()
        feature_weights = self._feature_weights()
        squared, nearest = squared_point_to_set_distances(points, centroids)
        merge_costs = weights * feature_weights[nearest] / (weights + feature_weights[nearest]) * squared
        absorb = merge_costs <= self.threshold
        for index in np.flatnonzero(absorb):
            self.features[int(nearest[index])].absorb(points[index], float(weights[index]))
        for index in np.flatnonzero(~absorb):
            self.features.append(ClusteringFeature.from_point(points[index], float(weights[index])))
        if len(self.features) > self.coreset_size:
            self._rebuild()

    def _rebuild(self) -> None:
        """Double the threshold and re-insert the feature centroids.

        Mirrors BIRCH's rebuilding step: the features' centroids (with their
        accumulated weights) are treated as a weighted dataset and absorbed
        into a fresh structure under the relaxed threshold, shrinking the
        feature count while preserving total weight and linear sums.
        """
        while len(self.features) > self.coreset_size:
            self.threshold = self._next_threshold()
            old_features = self.features
            self.features = []
            self.rebuilds += 1
            for feature in old_features:
                self._reinsert_feature(feature)

    def _next_threshold(self) -> float:
        if self.threshold > 0:
            return 2.0 * self.threshold
        # First overflow: seed the threshold with the smallest pairwise merge
        # cost among current centroids so at least one merge becomes possible.
        centroids = self._centroid_matrix()
        weights = self._feature_weights()
        squared, nearest = squared_point_to_set_distances(
            centroids, centroids + 1e-18  # avoid the trivial zero self-distance
        )
        # Exclude self matches by recomputing against all-but-self for small sets.
        best = np.inf
        for i in range(len(self.features)):
            others = np.delete(centroids, i, axis=0)
            other_weights = np.delete(weights, i)
            deltas = others - centroids[i]
            distances = np.einsum("ij,ij->i", deltas, deltas)
            costs = weights[i] * other_weights / (weights[i] + other_weights) * distances
            best = min(best, float(costs.min()) if costs.size else np.inf)
        if not np.isfinite(best) or best <= 0:
            best = 1e-12
        return best

    def _reinsert_feature(self, feature: ClusteringFeature) -> None:
        centroid = feature.centroid
        if not self.features:
            self.features.append(feature)
            return
        centroids = self._centroid_matrix()
        deltas = centroids - centroid
        squared = np.einsum("ij,ij->i", deltas, deltas)
        nearest = int(np.argmin(squared))
        target = self.features[nearest]
        merge_cost = (
            feature.weight * target.weight / (feature.weight + target.weight) * float(squared[nearest])
        )
        if merge_cost <= self.threshold:
            target.weight += feature.weight
            target.linear_sum = target.linear_sum + feature.linear_sum
            target.squared_sum += feature.squared_sum
        else:
            self.features.append(feature)

    # -------------------------------------------------------------- output
    def to_coreset(self) -> Coreset:
        """Return the current compression: one weighted centroid per feature."""
        if not self.features:
            raise ValueError("no points have been inserted")
        points = self._centroid_matrix()
        weights = self._feature_weights()
        return Coreset(
            points=points,
            weights=weights,
            indices=None,
            method=self.name,
            metadata={
                "threshold": self.threshold,
                "rebuilds": float(self.rebuilds),
                "points_seen": float(self.points_seen),
            },
        )

    # --------------------------------------------- CoresetConstruction API
    def _sample(
        self,
        points: np.ndarray,
        weights: np.ndarray,
        m: int,
        seed: SeedLike,
        spread: Optional[float] = None,
        cost_bound: Optional[float] = None,
    ) -> Coreset:
        """Static-setting interface: stream the whole dataset through BICO."""
        instance = BicoCoreset(coreset_size=m, block_size=self.block_size, z=self.z, seed=seed)
        instance.insert_block(points, weights)
        return instance.to_coreset()

"""Streaming compression: merge-&-reduce, BICO, and StreamKM++.

The paper's streaming experiments (Section 5.4, Tables 5-6, Figure 5) feed
the data in blocks and maintain a compression whose size is independent of
the stream length.  Three mechanisms are provided:

* :class:`~repro.streaming.merge_reduce.StreamingCoresetPipeline` — the
  merge-&-reduce framework of Bentley and Saxe [11] / Har-Peled and
  Mazumdar [40], which turns *any* black-box sampler from
  :mod:`repro.core` into a streaming algorithm.
* :class:`~repro.streaming.bico.BicoCoreset` — BICO [38], a BIRCH-style
  clustering-feature tree producing k-means coresets in a stream.
* :class:`~repro.streaming.streamkm.StreamKMPlusPlus` — StreamKM++ [1], a
  coreset tree driven by k-means++ style D²-sampling.

Beyond the paper, :mod:`repro.streaming.window` adds windowed and decaying
stream semantics (sliding count window, exponential time decay, drift
detection) on top of the merge-&-reduce tree — see ``streaming/README.md``
for the bucket-expiry protocol.
"""

from repro.streaming.bico import BicoCoreset, ClusteringFeature
from repro.streaming.merge_reduce import MergeReduceTree, StreamingCoresetPipeline
from repro.streaming.stream import DataStream, block_size_plan, iterate_blocks
from repro.streaming.streamkm import StreamKMPlusPlus
from repro.streaming.window import (
    DriftDetector,
    ExponentialDecay,
    SlidingCountWindow,
    WindowPolicy,
    WindowedMergeReduceTree,
)

__all__ = [
    "BicoCoreset",
    "ClusteringFeature",
    "MergeReduceTree",
    "StreamingCoresetPipeline",
    "DataStream",
    "DriftDetector",
    "ExponentialDecay",
    "SlidingCountWindow",
    "WindowPolicy",
    "WindowedMergeReduceTree",
    "block_size_plan",
    "iterate_blocks",
    "StreamKMPlusPlus",
]

"""Merge-&-reduce: turning any sampler into a streaming coreset algorithm.

The classical framework of Bentley and Saxe [11], first applied to
clustering coresets by Har-Peled and Mazumdar [40], maintains at most one
compression per level of a binary tree over the blocks seen so far:

* every arriving block is compressed to ``m`` points (a *leaf* coreset);
* whenever two compressions of the same level exist, their union (which is a
  coreset of the union of their inputs, by the composition property) is
  re-compressed to ``m`` points and promoted one level up;
* at the end of the stream the surviving per-level compressions — the
  pattern the paper's footnote 10 illustrates as ``[[1], [2], [3,4],
  [5,6,7,8]]`` for eight blocks — are concatenated and compressed one final
  time.

Errors compound along the ``O(log b)`` levels, which is why the theory asks
for larger samples in the stream; Section 5.4 of the paper observes that in
practice the accelerated samplers do *at least as well* under composition,
and the harness built on this module reproduces that comparison.
"""

from __future__ import annotations

import queue
import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterable, Iterator, List, Optional, Tuple, Union

import numpy as np

from repro import observability as _obs
from repro.core.base import CoresetConstruction
from repro.core.coreset import Coreset, merge_coresets
from repro.observability import ExecutionDiagnostics
from repro.core.spread_reduction import crude_cost_upper_bound
from repro.geometry.quadtree import compute_spread
from repro.parallel.executor import (
    ArrayPayload,
    AsyncExecutor,
    Executor,
    resolve_async_executor,
    resolve_executor,
    submit_when_ready,
)
from repro.parallel.sharding import (
    KEY_STREAM_LEAF,
    KEY_STREAM_REDUCE,
    ShardTask,
    compress_shard,
    merge_payload,
)
from repro.streaming.stream import Block, DataStream
from repro.utils.rng import (
    SeedLike,
    as_generator,
    as_seed_sequence,
    keyed_seed_sequence,
    random_seed_from,
)
from repro.utils.validation import check_integer


@dataclass
class MergeReduceTree:
    """Online merge-&-reduce state.

    Parameters
    ----------
    sampler:
        Any :class:`~repro.core.base.CoresetConstruction`; it is used both
        for the leaf compressions and for every reduction step.
    coreset_size:
        Target size ``m`` of every compression held by the tree.
    seed:
        Randomness; every compression receives a fresh seed derived from it.
    share_stream_state:
        Share per-stream work across compressions (default).  The tree keeps
        a running bounding box of everything it has seen and a cached spread
        estimate; every compression receives the cached value through the
        sampler's ``spread`` hook instead of re-estimating it from scratch
        (the dominant fixed cost of a :class:`~repro.core.fast_coreset.FastCoreset`
        fit on a small block).  Because only the *logarithm* of the spread is
        consumed downstream, the cache is refreshed only when the bounding
        box diagonal grows past ``spread_refresh_factor`` times its size at
        the previous estimate.  Disabling the flag restores the exact
        per-block-estimate behaviour (used as the baseline by the perf
        harness and the distortion-parity tests).
    cache_cost_bound:
        Also cache the Algorithm-2 crude cost upper bound behind the *same*
        refresh signal (default).  For samplers that declare
        ``consumes_cost_bound`` (a :class:`~repro.core.fast_coreset.FastCoreset`
        with spread reduction enabled), every compression then skips its
        per-call dyadic binary search; the bound is recomputed together
        with the spread whenever the bounding box grows or the staleness
        interval expires — a refresh resets both caches at once.  The
        bound, like the spread, only steers grid granularities whose
        guarantees tolerate polynomial slack, so a bound measured on an
        earlier block of the same stream remains valid between refreshes.
        Ignored when ``share_stream_state`` is disabled.
    spread_refresh_factor:
        Bounding-box growth ratio that triggers a fresh estimate.
    spread_refresh_interval:
        Hard cap on staleness: a fresh estimate is taken at least every this
        many compressions even when the bounding box is stable.  The box
        cannot see the spread grow through *shrinking minimum distances*
        (e.g. near-duplicate points arriving late in the stream inside the
        established box), so the periodic resync bounds how long such a
        stream can run on an underestimate; at the default interval the
        amortised cost of the (blocked) estimate stays negligible.
    spawn_seeds:
        Seed-derivation mode.  ``False`` (default) draws one seed per
        compression from a sequential generator — the historical behaviour,
        reproduced bit-for-bit.  ``True`` derives spawn-keyed seeds instead:
        leaf ``i`` compresses under the child sequence keyed by the block
        index, reduce ``j`` under the child keyed by the reduction index, so
        the final coreset is a pure function of the seed and the block
        sequence — independent of batching, executor backend, and worker
        count.  This is the mode :meth:`add_blocks` (concurrent leaf
        compression) requires, and what the streaming pipeline enables when
        it is given an executor.
    pending_limit:
        Bound on the number of *unfolded* leaf futures the tree may hold
        when driven by an :class:`~repro.parallel.executor.AsyncExecutor`
        (the overlap window).  ``None`` folds everything a batch submitted
        before :meth:`add_blocks` returns — no overlap across batches.  The
        limit changes memory and wall-clock only: folds always happen in
        arrival order, so the coreset is independent of it.
    overlap_reduces:
        Route *reduce* compressions through the async executor as well
        (default).  The carry chain becomes future-aware: level slots may
        hold in-flight futures, the host only walks carry logic, and each
        reduce (``merge + sampler.sample``) is submitted the moment both of
        its inputs exist — from a completion callback when an input is
        still in flight.  Legal because reduce seeds are a pure function of
        the reduce *index* (:meth:`_reduce_seed`), which the host assigns
        during the walk in arrival order, never of scheduling; the result
        is therefore bit-identical to the synchronous fold.  ``False``
        restores the PR-4 behaviour (only leaves overlap; every reduce runs
        on the host thread when its leaf folds).  Ignored on the
        synchronous paths.

    Attributes
    ----------
    levels:
        ``levels[l]`` holds the at-most-one compression currently stored at
        level ``l`` — a :class:`~repro.core.coreset.Coreset`, or an
        in-flight :class:`~concurrent.futures.Future` resolving to one
        when reduces are overlapped.
    reductions:
        Number of reduce operations performed so far (diagnostics).
    spread_refreshes:
        Number of spread estimates actually computed (diagnostics; at most
        one per compression, exactly one for a stationary stream).
    reduces_offloaded / host_reduces / host_reduce_seconds:
        Where reduce compressions ran: submitted to the executor vs run on
        the host thread, and the host-thread seconds they cost (includes
        the final re-compression, which always runs on the host).  The
        offload split depends on the execution mode — it is *not* part of
        the mode-invariant statistics.
    pending_high_water:
        Highest number of in-flight leaf futures ever queued (diagnostics;
        bounded by ``pending_limit`` plus one batch).
    """

    sampler: CoresetConstruction
    coreset_size: int
    seed: SeedLike = None
    share_stream_state: bool = True
    cache_cost_bound: bool = True
    spread_refresh_factor: float = 2.0
    spread_refresh_interval: int = 32
    levels: Dict[int, Union[Coreset, Future]] = field(default_factory=dict)
    reductions: int = 0
    blocks_seen: int = 0
    spread_refreshes: int = 0
    cost_bound_refreshes: int = 0
    spawn_seeds: bool = False
    pending_limit: Optional[int] = None
    overlap_reduces: bool = True
    reduces_offloaded: int = 0
    host_reduces: int = 0
    host_reduce_seconds: float = 0.0
    pending_high_water: int = 0

    def __post_init__(self) -> None:
        self.coreset_size = check_integer(self.coreset_size, name="coreset_size")
        #: Leaf compressions submitted to an async executor but not yet
        #: drained, as ``(future, spread_hint, cost_bound_hint, folded)`` in
        #: arrival order.  ``folded`` marks entries whose carry walk already
        #: happened (overlapped-reduce mode) — draining them is pure
        #: backpressure, not a fold.
        self._pending: Deque[Tuple[Future, Optional[float], Optional[float], bool]] = deque()
        self._generator = as_generator(self.seed)
        # The shared-state caches draw from their own derived generator
        # (seeded here unconditionally) so that toggling
        # ``share_stream_state`` never shifts the per-compression seed
        # stream: with a hint-agnostic sampler the two modes produce
        # identical coresets.
        self._spread_generator = as_generator(random_seed_from(self._generator))
        self._spawn_root = as_seed_sequence(self.seed) if self.spawn_seeds else None
        self._bounds_low: Optional[np.ndarray] = None
        self._bounds_high: Optional[np.ndarray] = None
        self._cached_spread: Optional[float] = None
        self._cached_cost_bound: Optional[float] = None
        self._cached_diameter: float = 0.0
        self._compressions_since_refresh: int = 0

    # ------------------------------------------------------------------
    def _observe(self, points: np.ndarray) -> None:
        """Fold one raw block into the running bounding box of the stream."""
        low = points.min(axis=0)
        high = points.max(axis=0)
        if self._bounds_low is None:
            self._bounds_low = low
            self._bounds_high = high
        else:
            self._bounds_low = np.minimum(self._bounds_low, low)
            self._bounds_high = np.maximum(self._bounds_high, high)

    def _wants_cost_bound(self) -> bool:
        return (
            self.cache_cost_bound
            and bool(getattr(self.sampler, "consumes_cost_bound", False))
            and getattr(self.sampler, "k", None) is not None
        )

    def _stream_hints(
        self, points: np.ndarray
    ) -> Tuple[Optional[float], Optional[float]]:
        """Cached (spread, crude cost bound), refreshed on bounding-box growth.

        The two caches share one staleness signal: whenever the bounding box
        diagonal outgrows the configured factor (or the refresh interval
        expires) *both* are recomputed from the triggering block — spread
        first, then the Algorithm-2 bound off that fresh spread, drawing
        from the dedicated cache generator in that fixed order.
        """
        if not self.share_stream_state:
            return None, None
        if self._bounds_low is None or points.shape[0] < 2:
            return None, None
        diameter = float(np.linalg.norm(self._bounds_high - self._bounds_low))
        self._compressions_since_refresh += 1
        wants_bound = self._wants_cost_bound()
        stale = (
            self._cached_spread is None
            or (wants_bound and self._cached_cost_bound is None)
            or diameter > self.spread_refresh_factor * self._cached_diameter
            or self._compressions_since_refresh > self.spread_refresh_interval
        )
        if stale:
            with _obs.span("stream.hint_refresh", rows=int(points.shape[0])):
                self._cached_spread = compute_spread(points, seed=self._spread_generator)
                self._cached_diameter = diameter
                self._compressions_since_refresh = 0
                self.spread_refreshes += 1
                _obs.counter_add("stream.spread_refreshes", 1.0)
                if wants_bound:
                    self._cached_cost_bound = crude_cost_upper_bound(
                        points,
                        int(self.sampler.k),
                        spread=self._cached_spread,
                        seed=self._spread_generator,
                    ).upper_bound
                    self.cost_bound_refreshes += 1
                    _obs.counter_add("stream.cost_bound_refreshes", 1.0)
                else:
                    self._cached_cost_bound = None
        return self._cached_spread, self._cached_cost_bound if wants_bound else None

    def _compress(self, points: np.ndarray, weights: np.ndarray) -> Coreset:
        """Compress a weighted point set to at most ``coreset_size`` points."""
        m = min(self.coreset_size, points.shape[0])
        spread, cost_bound = self._stream_hints(points)
        return self.sampler.sample(
            points,
            m,
            weights=weights,
            seed=random_seed_from(self._generator),
            spread=spread,
            cost_bound=cost_bound,
        )

    # ---------------------------------------------------- spawn-keyed mode
    def _leaf_seed(self, block_index: int) -> np.random.SeedSequence:
        return keyed_seed_sequence(self._spawn_root, KEY_STREAM_LEAF, block_index)

    def _reduce_seed(self, reduce_index: int) -> np.random.SeedSequence:
        return keyed_seed_sequence(self._spawn_root, KEY_STREAM_REDUCE, reduce_index)

    @staticmethod
    def _resolve(value: Union[Coreset, Future]) -> Coreset:
        return value.result() if isinstance(value, Future) else value

    def _fold(
        self,
        current: Coreset,
        spread_hint: Optional[float],
        cost_bound_hint: Optional[float] = None,
    ) -> None:
        """Carry-propagate one leaf up the tree (spawn-keyed reduce seeds).

        Reduce compressions reuse the spread and cost-bound hints of the
        leaf that triggered them (they compress a merge of coresets *of
        blocks already observed*, so the hints are equally valid) — a
        deliberate choice that keeps every stochastic input a pure function
        of the block sequence, never of how leaves were batched across
        executor workers.
        """
        level = 0
        while level in self.levels:
            partner = self._resolve(self.levels.pop(level))
            merged = merge_coresets([partner, current])
            m = min(self.coreset_size, merged.points.shape[0])
            started = time.perf_counter()
            with _obs.span("stream.host_reduce", level=level, rows=int(merged.points.shape[0])):
                current = self.sampler.sample(
                    merged.points,
                    m,
                    weights=merged.weights,
                    seed=self._reduce_seed(self.reductions),
                    spread=spread_hint,
                    cost_bound=cost_bound_hint,
                )
            self.host_reduce_seconds += time.perf_counter() - started
            self.host_reduces += 1
            self.reductions += 1
            _obs.counter_add("stream.host_reduces", 1.0)
            level += 1
        self.levels[level] = current

    def _submit_reduce(
        self,
        partner: Union[Coreset, Future],
        current: Union[Coreset, Future],
        reduce_index: int,
        spread_hint: Optional[float],
        cost_bound_hint: Optional[float],
        executor: AsyncExecutor,
    ) -> Future:
        """Ship one reduce compression to the pool, inputs possibly in flight.

        The seed, size cap, and hints are captured *now*, during the host's
        carry walk — the submission that eventually happens (from whichever
        completion callback resolves the last input) has no stochastic
        freedom left.  The payload is the two coreset messages concatenated
        exactly as :func:`~repro.core.coreset.merge_coresets` would, in
        ``[partner, current]`` order, so ``compress_shard`` over the whole
        payload computes byte-for-byte what the host fold computes.
        """
        seed = self._reduce_seed(reduce_index)
        sampler = self.sampler
        size_cap = self.coreset_size

        def _build(resolved: List[Coreset]) -> Tuple[ShardTask, ArrayPayload]:
            payload = merge_payload(resolved)
            n = payload.points.shape[0]
            task = ShardTask(
                index=reduce_index,
                start=0,
                stop=n,
                m=min(size_cap, n),
                sampler=sampler,
                seed=seed,
                spread=spread_hint,
                cost_bound=cost_bound_hint,
                stage="reduce",
            )
            return task, payload

        return submit_when_ready(executor, compress_shard, [partner, current], _build)

    def _fold_async(
        self,
        current: Union[Coreset, Future],
        spread_hint: Optional[float],
        cost_bound_hint: Optional[float],
        executor: AsyncExecutor,
    ) -> None:
        """The future-aware carry chain: walk levels, offload every reduce.

        Identical carry logic to :meth:`_fold` — same partner pops, same
        reduce-index assignment in arrival order — but the compressions
        themselves become pool tasks chained on their inputs' futures, so
        the host never blocks.  Bit-identity follows because every
        stochastic input (seed, hints, size cap, merge order) is fixed here,
        before any scheduling happens.
        """
        level = 0
        while level in self.levels:
            partner = self.levels.pop(level)
            current = self._submit_reduce(
                partner, current, self.reductions, spread_hint, cost_bound_hint, executor
            )
            self.reductions += 1
            self.reduces_offloaded += 1
            _obs.counter_add("stream.reduces_offloaded", 1.0)
            level += 1
        self.levels[level] = current

    def add_blocks(
        self,
        blocks: Iterable[Union[Block, "Future"]],
        *,
        executor: Union[None, str, Executor, AsyncExecutor] = None,
    ) -> None:
        """Consume a batch of blocks, compressing the leaves concurrently.

        Requires ``spawn_seeds=True``.  The host walks the batch in arrival
        order — updating the bounding box, the spread cache, and the leaf
        seed assignment exactly as the one-block-at-a-time path would — then
        fans the (now fully determined) leaf compressions out to the
        executor and folds the results back in arrival order.  The batch is
        stacked into one payload so the process backend ships each leaf as
        offsets into shared memory rather than pickled blocks.

        Items of ``blocks`` may be :class:`concurrent.futures.Future`
        objects resolving to ``(points, weights)`` — the shape an
        asynchronous reader produces — and are resolved in arrival order,
        so the stream's identity (and therefore every derived seed) is
        unchanged.

        With a synchronous :class:`~repro.parallel.executor.Executor` the
        call blocks until the whole batch is folded.  With an
        :class:`~repro.parallel.executor.AsyncExecutor` the leaf futures
        are enqueued instead and folded lazily — immediately down to
        :attr:`pending_limit` outstanding futures (all of them when the
        limit is ``None``), the rest by later calls or :meth:`flush` /
        :meth:`finalize`.  Folds always happen in arrival order, so every
        scheduling produces the identical tree.
        """
        if not self.spawn_seeds:
            raise ValueError(
                "add_blocks requires spawn_seeds=True: concurrent leaf compression "
                "is only deterministic under spawn-keyed seed derivation"
            )
        prepared = []
        for block in blocks:
            if isinstance(block, Future):
                block = block.result()
            points, weights = block
            points = np.asarray(points, dtype=np.float64)
            if weights is None:
                weights = np.ones(points.shape[0], dtype=np.float64)
            leaf_index = self.blocks_seen
            self.blocks_seen += 1
            _obs.counter_add("stream.blocks", 1.0)
            if self.share_stream_state and points.shape[0]:
                self._observe(points)
            spread, cost_bound = self._stream_hints(points)
            prepared.append(
                (points, weights, spread, cost_bound, self._leaf_seed(leaf_index))
            )
        if not prepared:
            return
        tasks = []
        start = 0
        for index, (points, _, spread, cost_bound, seed) in enumerate(prepared):
            stop = start + points.shape[0]
            tasks.append(
                ShardTask(
                    index=index,
                    start=start,
                    stop=stop,
                    m=self.coreset_size,
                    sampler=self.sampler,
                    seed=seed,
                    spread=spread,
                    cost_bound=cost_bound,
                    stage="leaf",
                )
            )
            start = stop
        if len(prepared) == 1:
            # Single-block batch (the common `add_block`-sized case): the
            # block already *is* the payload — skip the concatenate copy.
            payload = ArrayPayload(points=prepared[0][0], weights=prepared[0][1])
        else:
            payload = ArrayPayload(
                points=np.concatenate([points for points, *_ in prepared], axis=0),
                weights=np.concatenate([weights for _, weights, *_ in prepared], axis=0),
            )
        hints = [(spread, cost_bound) for _, _, spread, cost_bound, _ in prepared]
        if isinstance(executor, AsyncExecutor):
            futures = executor.submit_many(compress_shard, tasks, payload=payload)
            if self.overlap_reduces:
                # Walk the carry chain now, offloading each reduce; the
                # queue entry only throttles in-flight leaves (folded=True).
                for future, (spread, cost_bound) in zip(futures, hints):
                    self._fold_async(future, spread, cost_bound, executor)
                    self._pending.append((future, spread, cost_bound, True))
            else:
                self._pending.extend(
                    (future, spread, cost_bound, False)
                    for future, (spread, cost_bound) in zip(futures, hints)
                )
            self.pending_high_water = max(self.pending_high_water, len(self._pending))
            _obs.gauge_set("stream.pending_high_water", float(self.pending_high_water))
            self._drain_pending(self.pending_limit)
            return
        self.flush()  # earlier async batches must fold before this one
        owns_executor = not isinstance(executor, Executor)
        executor = resolve_executor(executor)
        try:
            leaves = executor.map(compress_shard, tasks, payload=payload)
        finally:
            if owns_executor:
                executor.close()
        for leaf, (spread, cost_bound) in zip(leaves, hints):
            self._fold(leaf, spread, cost_bound)

    def _drain_pending(self, limit: Optional[int]) -> None:
        """Drain queued leaf futures (oldest first) down to ``limit``.

        Unfolded entries are folded on the host; already-folded entries
        (overlapped-reduce mode) are merely awaited — the drain is the
        backpressure that bounds in-flight leaf memory either way.
        """
        target = 0 if limit is None else max(0, int(limit))
        while len(self._pending) > target:
            future, spread, cost_bound, folded = self._pending.popleft()
            if folded:
                with _obs.span("stream.pending_wait", folded=True):
                    future.result()
            else:
                with _obs.span("stream.pending_wait", folded=False):
                    leaf = future.result()
                self._fold(leaf, spread, cost_bound)

    def flush(self) -> None:
        """Settle every compression still in flight (arrival order).

        After this returns no callback of ours will touch the executor
        again — the level slots may still hold futures, but they are
        *settled* ones, so the caller may safely close the pool before
        :meth:`finalize`.  Errors are kept in the futures and surface on
        resolution (``Future.exception()`` observes without raising).
        """
        self._drain_pending(None)
        for value in self.levels.values():
            if isinstance(value, Future):
                value.exception()

    # ------------------------------------------------------------------
    def add_block(self, points: np.ndarray, weights: Optional[np.ndarray] = None) -> None:
        """Consume one block of the stream."""
        if self.spawn_seeds:
            self.add_blocks([(points, weights)])
            return
        if weights is None:
            weights = np.ones(points.shape[0], dtype=np.float64)
        self.blocks_seen += 1
        _obs.counter_add("stream.blocks", 1.0)
        if self.share_stream_state and points.shape[0]:
            self._observe(points)
        with _obs.span("stream.leaf_compress", rows=int(points.shape[0])):
            current = self._compress(points, weights)
        level = 0
        # Carry-propagation: merging two level-l compressions yields a
        # level-(l+1) compression, exactly like binary addition.
        while level in self.levels:
            partner = self.levels.pop(level)
            merged = merge_coresets([partner, current])
            started = time.perf_counter()
            with _obs.span("stream.host_reduce", level=level, rows=int(merged.points.shape[0])):
                current = self._compress(merged.points, merged.weights)
            self.host_reduce_seconds += time.perf_counter() - started
            self.host_reduces += 1
            self.reductions += 1
            _obs.counter_add("stream.host_reduces", 1.0)
            level += 1
        self.levels[level] = current

    def finalize(self) -> Coreset:
        """Concatenate the surviving per-level compressions and reduce once more."""
        with _obs.span("stream.finalize"):
            self.flush()
            if not self.levels:
                raise ValueError("no blocks were added to the merge-&-reduce tree")
            survivors = [self._resolve(self.levels[level]) for level in sorted(self.levels)]
            if len(survivors) == 1:
                combined = survivors[0]
            else:
                combined = merge_coresets(survivors)
            if combined.size > self.coreset_size:
                started = time.perf_counter()
                if self.spawn_seeds:
                    share = self.share_stream_state
                    final = self.sampler.sample(
                        combined.points,
                        min(self.coreset_size, combined.points.shape[0]),
                        weights=combined.weights,
                        seed=self._reduce_seed(self.reductions),
                        spread=self._cached_spread if share else None,
                        cost_bound=(
                            self._cached_cost_bound
                            if share and self._wants_cost_bound()
                            else None
                        ),
                    )
                else:
                    final = self._compress(combined.points, combined.weights)
                self.host_reduce_seconds += time.perf_counter() - started
                self.host_reduces += 1
                self.reductions += 1
                _obs.counter_add("stream.host_reduces", 1.0)
            else:
                final = combined
        final.method = f"merge_reduce[{self.sampler.name}]"
        return final


def _iterate_prefetched(stream: Iterable[Block], depth: int) -> Iterator[Block]:
    """Yield the stream's blocks while a background thread reads ahead.

    Up to ``depth`` blocks are buffered: the reader thread pulls the next
    blocks from ``stream`` (for a memory-mapped :class:`DataStream` this is
    where the disk pages are touched) while the consumer compresses the
    current one — the double-buffering that lets the async pipeline overlap
    I/O with compute.  Arrival *order* is exactly the stream's, so every
    seed the tree derives is unchanged.
    """
    depth = max(1, check_integer(depth, name="depth"))
    buffered: "queue.Queue" = queue.Queue(maxsize=depth)
    sentinel = object()
    stop = threading.Event()
    failure: List[BaseException] = []

    def _reader() -> None:
        try:
            for block in stream:
                while not stop.is_set():
                    try:
                        buffered.put(block, timeout=0.1)
                        break
                    except queue.Full:
                        continue
                if stop.is_set():
                    return
        except BaseException as error:  # noqa: BLE001 - re-raised by the consumer
            failure.append(error)
        finally:
            while not stop.is_set():
                try:
                    buffered.put(sentinel, timeout=0.1)
                    break
                except queue.Full:
                    continue

    thread = threading.Thread(target=_reader, name="repro-prefetch", daemon=True)
    thread.start()
    try:
        while True:
            with _obs.span("stream.prefetch_wait"):
                item = buffered.get()
            if item is sentinel:
                break
            yield item
        if failure:
            raise failure[0]
    finally:
        stop.set()
        thread.join()


@dataclass
class StreamingCoresetPipeline:
    """End-to-end streaming compression with a black-box sampler.

    Parameters
    ----------
    executor:
        ``None`` (default) consumes the stream one block at a time with the
        historical sequential seed stream.  A backend name or an
        :class:`~repro.parallel.executor.Executor` switches the tree to
        spawn-keyed seeds and compresses arriving leaves concurrently in
        batches; an :class:`~repro.parallel.executor.AsyncExecutor` (or any
        executor combined with ``prefetch_batches``) additionally *overlaps*
        the batches — reading batch ``i+1`` from disk while batch ``i``
        compresses in the pool.  In all spawn-keyed modes the resulting
        coreset is bit-identical across backends, worker counts, batch
        sizes, prefetch depths, and completion orders (but differs from the
        sequential stream's, whose seeds depend on draw order).
    batch_size:
        Number of blocks buffered per concurrent batch; defaults to the
        executor's worker count.  Affects wall-clock only, never the result.
    prefetch_batches:
        Depth of the read-ahead window in *batches* (double-buffering is
        ``1``; the default async depth is 2).  Setting it switches the
        pipeline to the asynchronous overlapped path even when ``executor``
        is a name or a synchronous instance (which is then promoted to its
        async sibling for the duration of the run).  ``None`` with a
        synchronous executor keeps the blocking per-batch behaviour.
        Affects wall-clock and memory only, never the result.
    overlap_reduces:
        On the asynchronous path, also route reduce compressions through
        the pool (default; see :class:`MergeReduceTree`).  Affects where
        work runs, never the result.  Ignored when a ``window`` is set —
        the windowed tree keeps every fold on the host.
    window:
        Optional :class:`~repro.streaming.window.WindowPolicy` switching
        the pipeline to a
        :class:`~repro.streaming.window.WindowedMergeReduceTree`: a
        :class:`~repro.streaming.window.SlidingCountWindow` keeps only the
        last ``N`` blocks, an
        :class:`~repro.streaming.window.ExponentialDecay` fades old blocks
        by half-life.  The final coreset then summarises the *window*, not
        the whole stream.
    drift_threshold:
        Forwarded to the windowed tree's drift detector (see
        :class:`~repro.streaming.window.WindowedMergeReduceTree`); only
        meaningful together with ``window``.

    Attributes
    ----------
    last_diagnostics:
        Mode-dependent diagnostics of the most recent :meth:`run` /
        :meth:`run_with_statistics` call (reduce offload split, host-reduce
        seconds, pending high-water mark).  Kept separate from the returned
        statistics, which stay mode-invariant by contract.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core import UniformSampling
    >>> from repro.streaming import DataStream, StreamingCoresetPipeline
    >>> data = np.random.default_rng(0).normal(size=(1000, 5))
    >>> stream = DataStream(points=data, block_size=100)
    >>> pipeline = StreamingCoresetPipeline(sampler=UniformSampling(seed=0), coreset_size=50)
    >>> coreset = pipeline.run(stream)
    >>> coreset.size <= 50
    True
    """

    sampler: CoresetConstruction
    coreset_size: int
    seed: SeedLike = None
    share_stream_state: bool = True
    cache_cost_bound: bool = True
    executor: Union[None, str, Executor, AsyncExecutor] = None
    batch_size: Optional[int] = None
    prefetch_batches: Optional[int] = None
    overlap_reduces: bool = True
    window: Optional["WindowPolicy"] = None
    drift_threshold: Optional[float] = None
    last_diagnostics: ExecutionDiagnostics = field(
        default_factory=ExecutionDiagnostics, init=False, repr=False
    )

    def _tree(self) -> MergeReduceTree:
        spawn_seeds = self.executor is not None or self.prefetch_batches is not None
        if self.window is not None:
            # Imported here: window.py subclasses MergeReduceTree, so the
            # module-level import would be circular.
            from repro.streaming.window import WindowedMergeReduceTree

            return WindowedMergeReduceTree(
                sampler=self.sampler,
                coreset_size=self.coreset_size,
                seed=self.seed,
                share_stream_state=self.share_stream_state,
                cache_cost_bound=self.cache_cost_bound,
                spawn_seeds=spawn_seeds,
                window=self.window,
                drift_threshold=self.drift_threshold,
            )
        return MergeReduceTree(
            sampler=self.sampler,
            coreset_size=self.coreset_size,
            seed=self.seed,
            share_stream_state=self.share_stream_state,
            cache_cost_bound=self.cache_cost_bound,
            spawn_seeds=spawn_seeds,
            overlap_reduces=self.overlap_reduces,
        )

    def _record_diagnostics(self, tree: MergeReduceTree) -> None:
        self.last_diagnostics = ExecutionDiagnostics(
            reductions=float(tree.reductions),
            spread_refreshes=float(tree.spread_refreshes),
            cost_bound_refreshes=float(tree.cost_bound_refreshes),
            reduces_offloaded=float(tree.reduces_offloaded),
            host_reduces=float(tree.host_reduces),
            host_reduce_seconds=tree.host_reduce_seconds,
            pending_high_water=float(tree.pending_high_water),
            blocks_seen=float(tree.blocks_seen),
            blocks_expired=float(getattr(tree, "blocks_expired", 0)),
            drift_events=float(getattr(tree, "drift_events", 0)),
        )

    def _consume(self, tree: MergeReduceTree, stream: Iterable[Block]) -> None:
        if self.executor is None and self.prefetch_batches is None:
            for points, weights in stream:
                tree.add_block(points, weights)
            return
        if self.prefetch_batches is not None or isinstance(self.executor, AsyncExecutor):
            self._consume_async(tree, stream)
            return
        owns_executor = not isinstance(self.executor, Executor)
        executor = resolve_executor(self.executor)
        try:
            batch_size = (
                self.batch_size if self.batch_size is not None else max(1, executor.workers)
            )
            batch: List[Block] = []
            for block in stream:
                batch.append(block)
                if len(batch) >= batch_size:
                    tree.add_blocks(batch, executor=executor)
                    batch = []
            if batch:
                tree.add_blocks(batch, executor=executor)
        finally:
            if owns_executor:
                executor.close()

    def _consume_async(self, tree: MergeReduceTree, stream: Iterable[Block]) -> None:
        """The overlapped path: prefetch reads, async leaves, lazy folds."""
        executor = resolve_async_executor(self.executor, workers=1)
        owns_executor = executor is not self.executor
        depth = 2 if self.prefetch_batches is None else max(1, int(self.prefetch_batches))
        batch_size = self.batch_size if self.batch_size is not None else max(1, executor.workers)
        batch_size = max(1, batch_size)
        # The overlap window: leaves from up to `depth` batches may be in
        # flight while the reader thread buffers the same span of blocks.
        tree.pending_limit = depth * batch_size
        try:
            # Process backends fork their workers now, before the prefetch
            # reader thread exists (fork + threads do not mix).
            executor.prepare()
            batch: List[Block] = []
            for block in _iterate_prefetched(stream, depth * batch_size):
                batch.append(block)
                if len(batch) >= batch_size:
                    tree.add_blocks(batch, executor=executor)
                    batch = []
            if batch:
                tree.add_blocks(batch, executor=executor)
            tree.flush()
        finally:
            tree.pending_limit = None
            if owns_executor:
                executor.close()

    def run(self, stream: Iterable[Block]) -> Coreset:
        """Process every block of ``stream`` and return the final compression."""
        tree = self._tree()
        self._consume(tree, stream)
        coreset = tree.finalize()
        self._record_diagnostics(tree)
        return coreset

    def run_with_statistics(self, stream: Iterable[Block]) -> Tuple[Coreset, Dict[str, float]]:
        """Run and also report tree statistics (blocks, reductions, total weight).

        The returned statistics are mode-invariant (identical across
        backends and worker counts); the mode-*dependent* diagnostics land
        on :attr:`last_diagnostics` instead.
        """
        tree = self._tree()
        self._consume(tree, stream)
        coreset = tree.finalize()
        self._record_diagnostics(tree)
        statistics = {
            "blocks": float(tree.blocks_seen),
            "reductions": float(tree.reductions),
            "coreset_size": float(coreset.size),
            "total_weight": coreset.total_weight,
            "spread_refreshes": float(tree.spread_refreshes),
            "cost_bound_refreshes": float(tree.cost_bound_refreshes),
            "blocks_expired": float(getattr(tree, "blocks_expired", 0)),
            "drift_events": float(getattr(tree, "drift_events", 0)),
        }
        return coreset, statistics


def stream_dataset(
    points: np.ndarray,
    sampler: CoresetConstruction,
    coreset_size: int,
    *,
    n_blocks: int = 16,
    weights: Optional[np.ndarray] = None,
    seed: SeedLike = None,
    share_stream_state: bool = True,
    window: Optional["WindowPolicy"] = None,
    drift_threshold: Optional[float] = None,
) -> Coreset:
    """Convenience wrapper: stream an in-memory dataset through merge-&-reduce.

    This is the exact setup of the paper's streaming experiments (Table 5 /
    Figure 5): the dataset is split into ``n_blocks`` blocks and compressed
    with the given sampler under composition.  With a ``window`` policy the
    result summarises only the live window of the stream (sliding count
    window) or its decay-weighted history (exponential decay).
    """
    stream = DataStream.with_block_count(points, n_blocks, weights=weights)
    pipeline = StreamingCoresetPipeline(
        sampler=sampler,
        coreset_size=coreset_size,
        seed=seed,
        share_stream_state=share_stream_state,
        window=window,
        drift_threshold=drift_threshold,
    )
    return pipeline.run(stream)


def level_pattern(n_blocks: int) -> List[List[int]]:
    """The block-grouping pattern held by the tree after ``n_blocks`` blocks.

    :class:`MergeReduceTree` behaves like a binary counter, so after
    ``n_blocks`` blocks it holds one surviving compression per set bit of
    ``n_blocks``: for seven blocks the groups cover ``[[7], [5, 6],
    [1, 2, 3, 4]]`` (most recent first), which is the same "one coreset per
    level" invariant the paper's footnote 10 illustrates.  Exposed for the
    unit tests that pin down the tree's shape.
    """
    n_blocks = check_integer(n_blocks, name="n_blocks")
    groups: List[List[int]] = []
    position = n_blocks
    remaining = n_blocks
    bit = 0
    while remaining > 0:
        size = 1 << bit
        if remaining & size:
            groups.append(list(range(position - size + 1, position + 1)))
            position -= size
            remaining -= size
        bit += 1
    return groups

"""Merge-&-reduce: turning any sampler into a streaming coreset algorithm.

The classical framework of Bentley and Saxe [11], first applied to
clustering coresets by Har-Peled and Mazumdar [40], maintains at most one
compression per level of a binary tree over the blocks seen so far:

* every arriving block is compressed to ``m`` points (a *leaf* coreset);
* whenever two compressions of the same level exist, their union (which is a
  coreset of the union of their inputs, by the composition property) is
  re-compressed to ``m`` points and promoted one level up;
* at the end of the stream the surviving per-level compressions — the
  pattern the paper's footnote 10 illustrates as ``[[1], [2], [3,4],
  [5,6,7,8]]`` for eight blocks — are concatenated and compressed one final
  time.

Errors compound along the ``O(log b)`` levels, which is why the theory asks
for larger samples in the stream; Section 5.4 of the paper observes that in
practice the accelerated samplers do *at least as well* under composition,
and the harness built on this module reproduces that comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.core.base import CoresetConstruction
from repro.core.coreset import Coreset, merge_coresets
from repro.streaming.stream import Block, DataStream
from repro.utils.rng import SeedLike, as_generator, random_seed_from
from repro.utils.validation import check_integer


@dataclass
class MergeReduceTree:
    """Online merge-&-reduce state.

    Parameters
    ----------
    sampler:
        Any :class:`~repro.core.base.CoresetConstruction`; it is used both
        for the leaf compressions and for every reduction step.
    coreset_size:
        Target size ``m`` of every compression held by the tree.
    seed:
        Randomness; every compression receives a fresh seed derived from it.

    Attributes
    ----------
    levels:
        ``levels[l]`` holds the at-most-one compression currently stored at
        level ``l``.
    reductions:
        Number of reduce operations performed so far (diagnostics).
    """

    sampler: CoresetConstruction
    coreset_size: int
    seed: SeedLike = None
    levels: Dict[int, Coreset] = field(default_factory=dict)
    reductions: int = 0
    blocks_seen: int = 0

    def __post_init__(self) -> None:
        self.coreset_size = check_integer(self.coreset_size, name="coreset_size")
        self._generator = as_generator(self.seed)

    # ------------------------------------------------------------------
    def _compress(self, points: np.ndarray, weights: np.ndarray) -> Coreset:
        """Compress a weighted point set to at most ``coreset_size`` points."""
        m = min(self.coreset_size, points.shape[0])
        return self.sampler.sample(
            points, m, weights=weights, seed=random_seed_from(self._generator)
        )

    def add_block(self, points: np.ndarray, weights: Optional[np.ndarray] = None) -> None:
        """Consume one block of the stream."""
        if weights is None:
            weights = np.ones(points.shape[0], dtype=np.float64)
        self.blocks_seen += 1
        current = self._compress(points, weights)
        level = 0
        # Carry-propagation: merging two level-l compressions yields a
        # level-(l+1) compression, exactly like binary addition.
        while level in self.levels:
            partner = self.levels.pop(level)
            merged = merge_coresets([partner, current])
            current = self._compress(merged.points, merged.weights)
            self.reductions += 1
            level += 1
        self.levels[level] = current

    def finalize(self) -> Coreset:
        """Concatenate the surviving per-level compressions and reduce once more."""
        if not self.levels:
            raise ValueError("no blocks were added to the merge-&-reduce tree")
        survivors = [self.levels[level] for level in sorted(self.levels)]
        if len(survivors) == 1:
            combined = survivors[0]
        else:
            combined = merge_coresets(survivors)
        if combined.size > self.coreset_size:
            final = self._compress(combined.points, combined.weights)
            self.reductions += 1
        else:
            final = combined
        final.method = f"merge_reduce[{self.sampler.name}]"
        return final


@dataclass
class StreamingCoresetPipeline:
    """End-to-end streaming compression with a black-box sampler.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core import UniformSampling
    >>> from repro.streaming import DataStream, StreamingCoresetPipeline
    >>> data = np.random.default_rng(0).normal(size=(1000, 5))
    >>> stream = DataStream(points=data, block_size=100)
    >>> pipeline = StreamingCoresetPipeline(sampler=UniformSampling(seed=0), coreset_size=50)
    >>> coreset = pipeline.run(stream)
    >>> coreset.size <= 50
    True
    """

    sampler: CoresetConstruction
    coreset_size: int
    seed: SeedLike = None

    def run(self, stream: Iterable[Block]) -> Coreset:
        """Process every block of ``stream`` and return the final compression."""
        tree = MergeReduceTree(
            sampler=self.sampler, coreset_size=self.coreset_size, seed=self.seed
        )
        for points, weights in stream:
            tree.add_block(points, weights)
        return tree.finalize()

    def run_with_statistics(self, stream: Iterable[Block]) -> Tuple[Coreset, Dict[str, float]]:
        """Run and also report tree statistics (blocks, reductions, total weight)."""
        tree = MergeReduceTree(
            sampler=self.sampler, coreset_size=self.coreset_size, seed=self.seed
        )
        for points, weights in stream:
            tree.add_block(points, weights)
        coreset = tree.finalize()
        statistics = {
            "blocks": float(tree.blocks_seen),
            "reductions": float(tree.reductions),
            "coreset_size": float(coreset.size),
            "total_weight": coreset.total_weight,
        }
        return coreset, statistics


def stream_dataset(
    points: np.ndarray,
    sampler: CoresetConstruction,
    coreset_size: int,
    *,
    n_blocks: int = 16,
    weights: Optional[np.ndarray] = None,
    seed: SeedLike = None,
) -> Coreset:
    """Convenience wrapper: stream an in-memory dataset through merge-&-reduce.

    This is the exact setup of the paper's streaming experiments (Table 5 /
    Figure 5): the dataset is split into ``n_blocks`` blocks and compressed
    with the given sampler under composition.
    """
    stream = DataStream.with_block_count(points, n_blocks, weights=weights)
    pipeline = StreamingCoresetPipeline(sampler=sampler, coreset_size=coreset_size, seed=seed)
    return pipeline.run(stream)


def level_pattern(n_blocks: int) -> List[List[int]]:
    """The block-grouping pattern held by the tree after ``n_blocks`` blocks.

    :class:`MergeReduceTree` behaves like a binary counter, so after
    ``n_blocks`` blocks it holds one surviving compression per set bit of
    ``n_blocks``: for seven blocks the groups cover ``[[7], [5, 6],
    [1, 2, 3, 4]]`` (most recent first), which is the same "one coreset per
    level" invariant the paper's footnote 10 illustrates.  Exposed for the
    unit tests that pin down the tree's shape.
    """
    n_blocks = check_integer(n_blocks, name="n_blocks")
    groups: List[List[int]] = []
    position = n_blocks
    remaining = n_blocks
    bit = 0
    while remaining > 0:
        size = 1 << bit
        if remaining & size:
            groups.append(list(range(position - size + 1, position + 1)))
            position -= size
            remaining -= size
        bit += 1
    return groups

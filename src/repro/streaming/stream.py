"""A minimal data-stream abstraction.

The streaming experiments of the paper partition the input into ``b`` blocks
and present them one at a time (Section 5.4).  :class:`DataStream` models
exactly that: an iterator over ``(points, weights)`` blocks that never
requires the consumer to hold the full dataset, which is what the
merge-&-reduce pipeline, BICO, and StreamKM++ consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

import numpy as np

from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_integer, check_points, check_weights


Block = Tuple[np.ndarray, np.ndarray]


def iterate_blocks(
    points: np.ndarray,
    block_size: int,
    *,
    weights: Optional[np.ndarray] = None,
    shuffle: bool = False,
    seed: SeedLike = None,
) -> Iterator[Block]:
    """Yield ``(points, weights)`` blocks of at most ``block_size`` rows.

    Parameters
    ----------
    points:
        The full dataset of shape ``(n, d)``.
    block_size:
        Maximum number of rows per block.
    weights:
        Optional per-point weights carried along with each block.
    shuffle:
        Randomly permute the rows before splitting — used to check that the
        streaming results do not depend on a favourable arrival order.
    seed:
        Randomness for the shuffle.
    """
    points = check_points(points)
    n = points.shape[0]
    block_size = check_integer(block_size, name="block_size")
    weights = check_weights(weights, n)
    order = np.arange(n)
    if shuffle:
        order = as_generator(seed).permutation(n)
    for start in range(0, n, block_size):
        index = order[start : start + block_size]
        yield points[index], weights[index]


@dataclass
class DataStream:
    """A replayable stream over an in-memory dataset.

    This is the simulation vehicle for the paper's streaming experiments:
    the underlying array stands in for data arriving from disk or the
    network, and consumers only ever see one block at a time.

    Attributes
    ----------
    points:
        Backing array of shape ``(n, d)``.
    block_size:
        Rows per block.
    weights:
        Optional per-point weights.
    shuffle / seed:
        Whether (and how) to permute the arrival order on every replay.
    """

    points: np.ndarray
    block_size: int
    weights: Optional[np.ndarray] = None
    shuffle: bool = False
    seed: SeedLike = None

    def __post_init__(self) -> None:
        self.points = check_points(self.points)
        self.weights = check_weights(self.weights, self.points.shape[0])
        self.block_size = check_integer(self.block_size, name="block_size")

    def __iter__(self) -> Iterator[Block]:
        return iterate_blocks(
            self.points,
            self.block_size,
            weights=self.weights,
            shuffle=self.shuffle,
            seed=self.seed,
        )

    @property
    def n_points(self) -> int:
        """Total number of points in the stream."""
        return int(self.points.shape[0])

    @property
    def n_blocks(self) -> int:
        """Number of blocks the stream will emit."""
        return int(np.ceil(self.n_points / self.block_size))

    @property
    def dimension(self) -> int:
        """Dimensionality of the streamed points."""
        return int(self.points.shape[1])

    @classmethod
    def with_block_count(
        cls,
        points: np.ndarray,
        n_blocks: int,
        *,
        weights: Optional[np.ndarray] = None,
        shuffle: bool = False,
        seed: SeedLike = None,
    ) -> "DataStream":
        """Build a stream that splits ``points`` into exactly ``n_blocks`` blocks."""
        points = check_points(points)
        n_blocks = check_integer(n_blocks, name="n_blocks")
        block_size = max(1, int(np.ceil(points.shape[0] / n_blocks)))
        return cls(points=points, block_size=block_size, weights=weights, shuffle=shuffle, seed=seed)

"""A minimal data-stream abstraction.

The streaming experiments of the paper partition the input into ``b`` blocks
and present them one at a time (Section 5.4).  :class:`DataStream` models
exactly that: an iterator over ``(points, weights)`` blocks that never
requires the consumer to hold the full dataset, which is what the
merge-&-reduce pipeline, BICO, and StreamKM++ consume.

Two contracts keep the "never hold the full dataset" promise real:

* the unshuffled path yields *contiguous slices* of the backing array (no
  gather copy, so a memory-mapped backing keeps its sequential read-ahead),
  and
* the unit-weight default is lazy — no ``np.ones(n)`` host array is ever
  materialised for the whole stream; each block receives its own small ones
  vector instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence, Tuple

import numpy as np

from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_integer, check_points, check_weights


Block = Tuple[np.ndarray, np.ndarray]


def _is_memmap_backed(array: np.ndarray) -> bool:
    """True when ``array`` is (a view chain over) a :class:`numpy.memmap`."""
    base = array
    while base is not None:
        if isinstance(base, np.memmap):
            return True
        base = getattr(base, "base", None)
    return False


def _check_stream_points(points: np.ndarray) -> np.ndarray:
    """Validate stream points without defeating a memory-mapped backing.

    For in-memory arrays this is :func:`check_points`.  For memmap-backed
    arrays the finiteness scan is skipped: reading every page of the file
    (and allocating an ``n*d``-byte boolean temporary) at construction time
    is exactly what the "never hold the full dataset" contract forbids.
    Shape and dtype are still checked; non-finite values surface when the
    offending block reaches a consumer, every one of which re-validates the
    blocks it is handed.
    """
    if isinstance(points, np.ndarray) and _is_memmap_backed(points):
        if points.ndim != 2:
            raise ValueError(f"points must be 2-dimensional, got shape {points.shape}")
        if points.shape[0] == 0:
            raise ValueError("points must contain at least one element")
        if points.dtype != np.float64:
            raise ValueError(
                f"memory-mapped points must be float64, got {points.dtype}; "
                "converting would materialise the dataset"
            )
        return points
    return check_points(points)


def block_size_plan(n_points: int, n_blocks: int) -> Tuple[int, ...]:
    """Split ``n_points`` rows into exactly ``min(n_points, n_blocks)`` sizes.

    The remainder is spread over the *leading* blocks: ``n_points %
    n_blocks`` blocks of size ``ceil(n_points / n_blocks)`` followed by
    blocks of size ``floor(n_points / n_blocks)``, so no two blocks differ
    by more than one row and the sizes sum to ``n_points`` exactly.  When
    there are fewer points than requested blocks the plan degrades to one
    singleton block per point (a block must hold at least one row).
    """
    n_points = check_integer(n_points, name="n_points")
    n_blocks = check_integer(n_blocks, name="n_blocks")
    if n_points <= n_blocks:
        return (1,) * n_points
    floor, remainder = divmod(n_points, n_blocks)
    return (floor + 1,) * remainder + (floor,) * (n_blocks - remainder)


def _block_bounds(
    n: int, block_size: Optional[int], sizes: Optional[Sequence[int]]
) -> Iterator[Tuple[int, int]]:
    """Yield the ``[start, stop)`` row ranges of each block."""
    if sizes is not None:
        start = 0
        for size in sizes:
            yield start, start + size
            start += size
        return
    for start in range(0, n, block_size):
        yield start, min(start + block_size, n)


def _check_sizes(sizes: Sequence[int], n: int) -> Tuple[int, ...]:
    sizes = tuple(int(size) for size in sizes)
    if any(size < 1 for size in sizes):
        raise ValueError(f"every block size must be >= 1, got {sizes}")
    if sum(sizes) != n:
        raise ValueError(
            f"block sizes must sum to the number of points ({n}), got {sum(sizes)}"
        )
    return sizes


def iterate_blocks(
    points: np.ndarray,
    block_size: int,
    *,
    weights: Optional[np.ndarray] = None,
    shuffle: bool = False,
    seed: SeedLike = None,
    sizes: Optional[Sequence[int]] = None,
) -> Iterator[Block]:
    """Yield ``(points, weights)`` blocks of at most ``block_size`` rows.

    When ``shuffle`` is off, the yielded point blocks are **contiguous
    read-only views** of ``points`` — no per-block gather copy, which is
    what keeps a memory-mapped backing on its sequential read-ahead path.
    When no ``weights`` are given each block receives a fresh unit-weight
    vector of its own length; the full-stream ``np.ones(n)`` is never
    materialised.

    Parameters
    ----------
    points:
        The full dataset of shape ``(n, d)``.
    block_size:
        Maximum number of rows per block (ignored when ``sizes`` is given).
    weights:
        Optional per-point weights carried along with each block.
    shuffle:
        Randomly permute the rows before splitting — used to check that the
        streaming results do not depend on a favourable arrival order.
    seed:
        Randomness for the shuffle.
    sizes:
        Optional explicit per-block sizes (must sum to ``n``); this is how
        :meth:`DataStream.with_block_count` hits its exact block count.
    """
    points = _check_stream_points(points)
    n = points.shape[0]
    if sizes is not None:
        sizes = _check_sizes(sizes, n)
    else:
        block_size = check_integer(block_size, name="block_size")
    if weights is not None:
        weights = check_weights(weights, n)
    if shuffle:
        order = as_generator(seed).permutation(n)
        for start, stop in _block_bounds(n, block_size, sizes):
            index = order[start:stop]
            block_weights = (
                weights[index]
                if weights is not None
                else np.ones(stop - start, dtype=np.float64)
            )
            yield points[index], block_weights
        return
    for start, stop in _block_bounds(n, block_size, sizes):
        block_weights = (
            weights[start:stop]
            if weights is not None
            else np.ones(stop - start, dtype=np.float64)
        )
        yield points[start:stop], block_weights


@dataclass
class DataStream:
    """A replayable stream over an in-memory dataset.

    This is the simulation vehicle for the paper's streaming experiments:
    the underlying array stands in for data arriving from disk or the
    network, and consumers only ever see one block at a time.

    Attributes
    ----------
    points:
        Backing array of shape ``(n, d)``.
    block_size:
        Rows per block.
    weights:
        Optional per-point weights.  ``None`` means unit weights; the
        default is kept lazy (each block gets its own ones vector) rather
        than materialised as a full ``np.ones(n)``.
    shuffle / seed:
        Whether (and how) to permute the arrival order on every replay.
    block_sizes:
        Optional explicit per-block size plan (overrides ``block_size``);
        set by :meth:`with_block_count` so the promised block count is hit
        exactly even when ``block_size`` does not divide ``n``.
    """

    points: np.ndarray
    block_size: int
    weights: Optional[np.ndarray] = None
    shuffle: bool = False
    seed: SeedLike = None
    block_sizes: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        self.points = _check_stream_points(self.points)
        if self.weights is not None:
            self.weights = check_weights(self.weights, self.points.shape[0])
        self.block_size = check_integer(self.block_size, name="block_size")
        if self.block_sizes is not None:
            self.block_sizes = _check_sizes(self.block_sizes, self.points.shape[0])

    def __iter__(self) -> Iterator[Block]:
        return iterate_blocks(
            self.points,
            self.block_size,
            weights=self.weights,
            shuffle=self.shuffle,
            seed=self.seed,
            sizes=self.block_sizes,
        )

    @property
    def n_points(self) -> int:
        """Total number of points in the stream."""
        return int(self.points.shape[0])

    @property
    def n_blocks(self) -> int:
        """Number of blocks the stream will emit."""
        if self.block_sizes is not None:
            return len(self.block_sizes)
        return int(np.ceil(self.n_points / self.block_size))

    @property
    def dimension(self) -> int:
        """Dimensionality of the streamed points."""
        return int(self.points.shape[1])

    @classmethod
    def from_npy(
        cls,
        path: str,
        block_size: int,
        *,
        weights: Optional[np.ndarray] = None,
        shuffle: bool = False,
        seed: SeedLike = None,
        mmap_mode: str = "r",
    ) -> "DataStream":
        """Stream an on-disk ``.npy`` dataset without materialising it.

        The backing array is opened with ``np.load(..., mmap_mode="r")``, so
        only the rows of the block currently being consumed are ever copied
        into memory — the OS pages the rest in and out on demand.  This is
        what makes the "never hold the full dataset" docstring contract real
        for datasets larger than RAM, and it is the natural input for the
        sharded builder's ``shuffle=False`` mode (a random permutation would
        touch every page).

        The file must store a two-dimensional ``float64`` array: any other
        dtype would force :func:`numpy.asarray` to materialise a converted
        copy, silently breaking the contract, so it is rejected instead
        (convert once offline with ``array.astype(np.float64)``).  For the
        same reason the usual construction-time finiteness scan is skipped
        for memory-mapped data — a NaN in the file surfaces when the block
        containing it reaches a consumer, which re-validates its input.

        Parameters
        ----------
        path:
            Path to the ``.npy`` file.
        block_size:
            Rows per block.
        weights / shuffle / seed:
            As for the in-memory constructor.  Note that ``shuffle=True``
            permutes *arrival order* only (blocks are gathered row sets), but
            gathering randomly scattered rows defeats sequential read-ahead —
            prefer pre-shuffled files for large datasets.
        mmap_mode:
            Forwarded to :func:`numpy.load`; the read-only default is what
            the streaming contract expects.
        """
        points = np.load(path, mmap_mode=mmap_mode)
        if points.ndim != 2:
            raise ValueError(
                f"{path!r} must store a 2-dimensional point array, got shape {points.shape}"
            )
        if points.dtype != np.float64:
            raise ValueError(
                f"{path!r} stores dtype {points.dtype}; from_npy requires float64 — "
                "converting lazily would materialise the dataset, defeating mmap"
            )
        return cls(
            points=points,
            block_size=block_size,
            weights=weights,
            shuffle=shuffle,
            seed=seed,
        )

    @classmethod
    def with_block_count(
        cls,
        points: np.ndarray,
        n_blocks: int,
        *,
        weights: Optional[np.ndarray] = None,
        shuffle: bool = False,
        seed: SeedLike = None,
    ) -> "DataStream":
        """Build a stream that splits ``points`` into exactly ``n_blocks`` blocks.

        The remainder rows are spread over the leading blocks (see
        :func:`block_size_plan`), so the stream emits exactly ``n_blocks``
        blocks whose sizes differ by at most one — the old ``ceil``-sized
        uniform split could silently emit fewer blocks than promised (6
        points over 4 blocks gave 3 blocks of 2).  With fewer points than
        requested blocks the stream degrades to one singleton block per
        point.  Validation goes through the stream-points path, so a
        memory-mapped input is not finiteness-scanned here either.
        """
        points = _check_stream_points(points)
        n_blocks = check_integer(n_blocks, name="n_blocks")
        sizes = block_size_plan(points.shape[0], n_blocks)
        return cls(
            points=points,
            block_size=max(sizes),
            weights=weights,
            shuffle=shuffle,
            seed=seed,
            block_sizes=sizes,
        )

"""Shared low-level utilities used across the library.

The submodules here deliberately contain no clustering logic: they provide
reproducible random-number handling (:mod:`repro.utils.rng`), lightweight
wall-clock timing (:mod:`repro.utils.timer`), argument validation helpers
(:mod:`repro.utils.validation`) and weighted-statistics primitives
(:mod:`repro.utils.weights`).
"""

from repro.utils.rng import as_generator, spawn_generators
from repro.utils.timer import Timer, timed
from repro.utils.validation import (
    check_array,
    check_integer,
    check_positive,
    check_probability,
    check_weights,
)
from repro.utils.weights import (
    normalize_weights,
    weighted_mean,
    weighted_quantile,
    weighted_variance,
)

__all__ = [
    "as_generator",
    "spawn_generators",
    "Timer",
    "timed",
    "check_array",
    "check_integer",
    "check_positive",
    "check_probability",
    "check_weights",
    "normalize_weights",
    "weighted_mean",
    "weighted_quantile",
    "weighted_variance",
]

"""Weighted-statistics primitives.

Coresets are weighted point sets, so nearly every downstream computation
(costs, means, medians, quantiles) must respect per-point weights.  These
helpers are the single implementation used by the clustering solvers, the
coreset constructions, and the evaluation metrics.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.utils.validation import check_weights


def normalize_weights(weights: np.ndarray) -> np.ndarray:
    """Scale non-negative weights so they sum to one.

    Raises
    ------
    ValueError
        If the weights sum to zero (an empty probability distribution).
    """
    weights = np.asarray(weights, dtype=np.float64)
    total = weights.sum()
    if total <= 0:
        raise ValueError("weights must have a positive sum to be normalised")
    return weights / total


def weighted_mean(points: np.ndarray, weights: Optional[np.ndarray] = None) -> np.ndarray:
    """Weighted mean (the optimal 1-means centre) of a point set.

    Parameters
    ----------
    points:
        Array of shape ``(n, d)``.
    weights:
        Optional non-negative weights of length ``n``; defaults to ones.
    """
    points = np.asarray(points, dtype=np.float64)
    weights = check_weights(weights, points.shape[0])
    total = weights.sum()
    if total <= 0:
        # Degenerate cluster: fall back to the unweighted mean so callers do
        # not have to special-case empty probability mass.
        return points.mean(axis=0)
    return (weights[:, None] * points).sum(axis=0) / total


def weighted_variance(points: np.ndarray, weights: Optional[np.ndarray] = None) -> float:
    """Total weighted squared deviation from the weighted mean.

    This equals the optimal (weighted) 1-means cost of ``points``.
    """
    points = np.asarray(points, dtype=np.float64)
    weights = check_weights(weights, points.shape[0])
    centre = weighted_mean(points, weights)
    deviations = points - centre
    return float(np.sum(weights * np.einsum("ij,ij->i", deviations, deviations)))


def weighted_quantile(
    values: np.ndarray,
    quantile: float,
    weights: Optional[np.ndarray] = None,
) -> float:
    """Weighted quantile of a one-dimensional sample.

    Uses the standard "inverse of the weighted empirical CDF" definition,
    which reduces to ``numpy.quantile(..., method='inverted_cdf')`` for unit
    weights.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 1:
        raise ValueError(f"values must be one-dimensional, got shape {values.shape}")
    if not 0.0 <= quantile <= 1.0:
        raise ValueError(f"quantile must lie in [0, 1], got {quantile}")
    weights = check_weights(weights, values.shape[0])
    # Stable sort: with duplicated values an unstable introsort can permute
    # the tied weights, shifting where the cumulative CDF crosses the
    # threshold *within* the tie and returning a value from the wrong side
    # of it on exact-threshold hits.
    order = np.argsort(values, kind="stable")
    sorted_values = values[order]
    cumulative = np.cumsum(weights[order])
    total = cumulative[-1]
    if total <= 0:
        raise ValueError("weights must have a positive sum")
    threshold = quantile * total
    index = int(np.searchsorted(cumulative, threshold, side="left"))
    index = min(index, len(sorted_values) - 1)
    return float(sorted_values[index])


def effective_sample_size(weights: np.ndarray) -> float:
    """Kish effective sample size ``(sum w)^2 / sum w^2`` of a weight vector.

    A diagnostic used in the evaluation module: heavily skewed coreset
    weights reduce the effective number of independent samples and therefore
    increase estimator variance.
    """
    weights = np.asarray(weights, dtype=np.float64)
    denominator = np.sum(weights**2)
    if denominator <= 0:
        return 0.0
    return float(np.sum(weights) ** 2 / denominator)

"""Lightweight wall-clock timing helpers for the experiment harnesses.

The paper reports mean runtimes over five repetitions (Table 1, Figure 1,
Figure 2, Figure 5).  The :class:`Timer` context manager and the
:func:`timed` helper give the harnesses a single, consistent way to measure
those intervals without pulling in a benchmarking dependency inside the
library itself (pytest-benchmark is used only in ``benchmarks/``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Tuple


@dataclass
class Timer:
    """Context manager measuring elapsed wall-clock seconds.

    Examples
    --------
    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    elapsed: float = 0.0
    _start: float = field(default=0.0, repr=False)

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.elapsed = time.perf_counter() - self._start

    def start(self) -> None:
        """Start (or restart) the timer outside of a ``with`` block."""
        self._start = time.perf_counter()

    def stop(self) -> float:
        """Stop the timer and return the elapsed seconds."""
        self.elapsed = time.perf_counter() - self._start
        return self.elapsed


def timed(function: Callable[..., Any], *args: Any, **kwargs: Any) -> Tuple[Any, float]:
    """Call ``function(*args, **kwargs)`` and return ``(result, seconds)``."""
    start = time.perf_counter()
    result = function(*args, **kwargs)
    return result, time.perf_counter() - start


@dataclass
class StopwatchRecorder:
    """Accumulate named timing measurements across repeated runs.

    Used by the experiment harnesses to collect per-method runtimes and then
    report mean and standard deviation, mirroring the "mean over five runs"
    presentation in the paper.
    """

    records: Dict[str, List[float]] = field(default_factory=dict)

    def record(self, name: str, seconds: float) -> None:
        """Append one measurement for ``name``."""
        self.records.setdefault(name, []).append(seconds)

    def mean(self, name: str) -> float:
        """Mean of all measurements recorded under ``name``."""
        values = self.records[name]
        return sum(values) / len(values)

    def std(self, name: str) -> float:
        """Population standard deviation of measurements under ``name``."""
        values = self.records[name]
        mean = self.mean(name)
        return (sum((v - mean) ** 2 for v in values) / len(values)) ** 0.5

    def summary(self) -> Dict[str, Tuple[float, float]]:
        """Return ``{name: (mean, std)}`` for every recorded series."""
        return {name: (self.mean(name), self.std(name)) for name in self.records}

"""Argument-validation helpers shared by the public API.

Keeping validation in one place gives users consistent, actionable error
messages (the guide's "explicit is better than implicit") and keeps the
algorithm implementations free of defensive boilerplate.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


def check_array(
    data: np.ndarray,
    *,
    name: str = "data",
    ndim: int = 2,
    allow_empty: bool = False,
    dtype: type = np.float64,
) -> np.ndarray:
    """Validate and coerce an input array.

    Parameters
    ----------
    data:
        Anything convertible to a numpy array.
    name:
        Name used in error messages.
    ndim:
        Required number of dimensions (2 for point sets, 1 for weights).
    allow_empty:
        If ``False`` (default) an array with zero rows raises ``ValueError``.
    dtype:
        Target dtype; the array is converted if necessary.

    Returns
    -------
    numpy.ndarray
        A contiguous array of the requested dtype and dimensionality.
    """
    array = np.asarray(data, dtype=dtype)
    if array.ndim != ndim:
        raise ValueError(f"{name} must be {ndim}-dimensional, got shape {array.shape}")
    if not allow_empty and array.shape[0] == 0:
        raise ValueError(f"{name} must contain at least one element")
    if not np.all(np.isfinite(array)):
        raise ValueError(f"{name} contains NaN or infinite values")
    return np.ascontiguousarray(array)


def check_points(points: np.ndarray, *, name: str = "points") -> np.ndarray:
    """Validate a point set of shape ``(n, d)``."""
    return check_array(points, name=name, ndim=2)


def check_weights(
    weights: Optional[np.ndarray],
    n: int,
    *,
    name: str = "weights",
) -> np.ndarray:
    """Validate per-point weights or materialise the unit-weight default.

    Parameters
    ----------
    weights:
        ``None`` (meaning every point has weight one) or an array of length
        ``n`` with non-negative finite entries.
    n:
        Expected number of weights.
    name:
        Name used in error messages.
    """
    if weights is None:
        return np.ones(n, dtype=np.float64)
    array = np.asarray(weights, dtype=np.float64)
    if array.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional, got shape {array.shape}")
    if array.shape[0] != n:
        raise ValueError(f"{name} must have length {n}, got {array.shape[0]}")
    if not np.all(np.isfinite(array)):
        raise ValueError(f"{name} contains NaN or infinite values")
    if np.any(array < 0):
        raise ValueError(f"{name} must be non-negative")
    return array


def check_integer(value: int, *, name: str, minimum: int = 1) -> int:
    """Validate an integer parameter such as ``k`` or a sample size."""
    if not isinstance(value, (int, np.integer)):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    if value < minimum:
        raise ValueError(f"{name} must be at least {minimum}, got {value}")
    return int(value)


def check_positive(value: float, *, name: str) -> float:
    """Validate a strictly positive real parameter such as ``epsilon``."""
    value = float(value)
    if not np.isfinite(value) or value <= 0:
        raise ValueError(f"{name} must be a positive finite number, got {value}")
    return value


def check_probability(value: float, *, name: str) -> float:
    """Validate a parameter that must lie in the closed interval [0, 1]."""
    value = float(value)
    if not np.isfinite(value) or value < 0 or value > 1:
        raise ValueError(f"{name} must lie in [0, 1], got {value}")
    return value


def check_power(z: int, *, name: str = "z") -> int:
    """Validate the cost exponent: 1 for k-median, 2 for k-means."""
    if z not in (1, 2):
        raise ValueError(f"{name} must be 1 (k-median) or 2 (k-means), got {z}")
    return int(z)


def check_sample_size(m: int, n: int, *, name: str = "m") -> int:
    """Validate a requested sample size against the population size."""
    m = check_integer(m, name=name, minimum=1)
    if m > n:
        raise ValueError(f"{name}={m} exceeds the number of available points n={n}")
    return m

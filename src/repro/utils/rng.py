"""Reproducible random-number-generator handling.

Every stochastic routine in the library accepts a ``seed`` argument that may
be ``None``, an integer, or an already-constructed
:class:`numpy.random.Generator`.  Centralising the conversion here keeps the
call sites short and guarantees that passing the same integer seed twice
produces identical runs, which the experiment harnesses rely on.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` for nondeterministic entropy, an ``int`` for a fixed seed,
        a :class:`numpy.random.SeedSequence`, or an existing generator
        (returned unchanged so that callers can thread a single generator
        through a pipeline).

    Returns
    -------
    numpy.random.Generator
        A generator that the caller owns.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    if seed is None or isinstance(seed, (int, np.integer)):
        return np.random.default_rng(seed)
    raise TypeError(
        f"seed must be None, an int, a SeedSequence or a Generator, got {type(seed)!r}"
    )


def spawn_generators(seed: SeedLike, count: int) -> Sequence[np.random.Generator]:
    """Derive ``count`` statistically independent generators from ``seed``.

    This is used when an experiment fans work out over repetitions, blocks of
    a stream, or simulated MapReduce workers: each unit of work receives its
    own generator so results do not depend on evaluation order.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        # Derive children by drawing fresh seeds from the parent generator.
        seeds = seed.integers(0, 2**63 - 1, size=count)
        return [np.random.default_rng(int(s)) for s in seeds]
    sequence = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in sequence.spawn(count)]


def random_seed_from(generator: np.random.Generator) -> int:
    """Draw a fresh integer seed from ``generator``.

    Useful when a routine needs to hand a *seed* (not a generator) to a
    subroutine while keeping the overall run reproducible.
    """
    return int(generator.integers(0, 2**63 - 1))


def permutation(generator: np.random.Generator, n: int) -> np.ndarray:
    """Return a random permutation of ``range(n)`` as an int64 array."""
    return generator.permutation(n).astype(np.int64)


def sample_without_replacement(
    generator: np.random.Generator,
    population: int,
    size: int,
    probabilities: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Sample ``size`` distinct indices from ``range(population)``.

    Parameters
    ----------
    generator:
        Source of randomness.
    population:
        Size of the index universe.
    size:
        Number of indices to draw; must not exceed ``population``.
    probabilities:
        Optional sampling weights over the population.  They need not be
        normalised; zero-weight items are never selected.
    """
    if size > population:
        raise ValueError(
            f"cannot sample {size} items without replacement from a population of {population}"
        )
    if probabilities is None:
        return generator.choice(population, size=size, replace=False)
    probabilities = np.asarray(probabilities, dtype=np.float64)
    total = probabilities.sum()
    if total <= 0:
        raise ValueError("probabilities must have a positive sum")
    return generator.choice(population, size=size, replace=False, p=probabilities / total)

"""Reproducible random-number-generator handling.

Every stochastic routine in the library accepts a ``seed`` argument that may
be ``None``, an integer, or an already-constructed
:class:`numpy.random.Generator`.  Centralising the conversion here keeps the
call sites short and guarantees that passing the same integer seed twice
produces identical runs, which the experiment harnesses rely on.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` for nondeterministic entropy, an ``int`` for a fixed seed,
        a :class:`numpy.random.SeedSequence`, or an existing generator
        (returned unchanged so that callers can thread a single generator
        through a pipeline).

    Returns
    -------
    numpy.random.Generator
        A generator that the caller owns.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    if seed is None or isinstance(seed, (int, np.integer)):
        return np.random.default_rng(seed)
    raise TypeError(
        f"seed must be None, an int, a SeedSequence or a Generator, got {type(seed)!r}"
    )


def spawn_generators(seed: SeedLike, count: int) -> Sequence[np.random.Generator]:
    """Derive ``count`` statistically independent generators from ``seed``.

    This is used when an experiment fans work out over repetitions, blocks of
    a stream, or simulated MapReduce workers: each unit of work receives its
    own generator so results do not depend on evaluation order.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        # Derive children by drawing fresh seeds from the parent generator.
        seeds = seed.integers(0, 2**63 - 1, size=count)
        return [np.random.default_rng(int(s)) for s in seeds]
    sequence = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in sequence.spawn(count)]


def as_seed_sequence(seed: SeedLike = None) -> np.random.SeedSequence:
    """Return a :class:`numpy.random.SeedSequence` for ``seed``.

    This is the root of the library's *spawn-keyed* determinism: the parallel
    execution engine derives per-shard (and per-block) child sequences from
    one root sequence with :func:`keyed_seed_sequence`, so the randomness a
    unit of work receives is a pure function of the user seed and the unit's
    index — never of the executor backend, the worker count, or the
    completion order.

    A ``Generator`` seed is consumed statefully (one integer is drawn to form
    the root entropy), matching the convention of :func:`spawn_generators`;
    ``None`` yields fresh OS entropy, i.e. a non-reproducible run, exactly as
    it does for :func:`as_generator`.
    """
    if isinstance(seed, np.random.SeedSequence):
        return seed
    if isinstance(seed, np.random.Generator):
        return np.random.SeedSequence(random_seed_from(seed))
    if seed is None or isinstance(seed, (int, np.integer)):
        return np.random.SeedSequence(None if seed is None else int(seed))
    raise TypeError(
        f"seed must be None, an int, a SeedSequence or a Generator, got {type(seed)!r}"
    )


def keyed_seed_sequence(base: np.random.SeedSequence, *key: int) -> np.random.SeedSequence:
    """Derive a child sequence of ``base`` addressed by an explicit key path.

    ``SeedSequence.spawn`` derives children by appending a *counter* to the
    spawn key, which ties the child's identity to how many spawns happened
    before it.  Addressing children by an explicit integer key path instead
    (``keyed_seed_sequence(base, namespace, index)``) keeps the derivation
    stateless: shard ``i`` receives the same child no matter how many other
    shards exist or in which order they are processed, which is what makes
    coresets bit-identical across executor backends and worker counts.
    """
    return np.random.SeedSequence(
        entropy=base.entropy,
        spawn_key=tuple(base.spawn_key) + tuple(int(part) for part in key),
    )


def random_seed_from(generator: np.random.Generator) -> int:
    """Draw a fresh integer seed from ``generator``.

    Useful when a routine needs to hand a *seed* (not a generator) to a
    subroutine while keeping the overall run reproducible.
    """
    return int(generator.integers(0, 2**63 - 1))


def weighted_index_draw(generator: np.random.Generator, mass: np.ndarray) -> int:
    """Draw one index with probability proportional to ``mass`` via searchsorted.

    This is the allocation-lean replacement for
    ``generator.choice(n, p=mass / mass.sum())`` used by the D²-sampling hot
    loops: one cumulative sum, one uniform variate, and one binary search —
    no normalised probability vector is materialised and no validation pass
    over ``p`` is paid per draw.  The selected index ``i`` satisfies
    ``cumulative[i - 1] <= u < cumulative[i]``, so zero-mass entries are
    never drawn and ``Pr[i] = mass[i] / total`` exactly (up to float
    rounding), matching ``generator.choice`` in distribution (the underlying
    uniform stream is consumed differently, so fixed-seed draws differ).

    Returns ``-1`` when the total mass is non-positive or non-finite; the
    caller chooses its own fallback (typically a uniform draw).
    """
    mass = np.asarray(mass, dtype=np.float64)
    if mass.size == 0:
        return -1
    cumulative = np.cumsum(mass)
    total = float(cumulative[-1])
    if not np.isfinite(total) or total <= 0.0:
        return -1
    index = int(np.searchsorted(cumulative, generator.random() * total, side="right"))
    return min(index, mass.size - 1)


def weighted_index_draws(
    generator: np.random.Generator, mass: np.ndarray, size: int
) -> Optional[np.ndarray]:
    """Draw ``size`` indices with replacement, proportional to ``mass``.

    Batch variant of :func:`weighted_index_draw` (one cumulative sum shared
    by all draws).  Returns ``None`` when the total mass is non-positive or
    non-finite.
    """
    mass = np.asarray(mass, dtype=np.float64)
    if mass.size == 0:
        return None
    cumulative = np.cumsum(mass)
    total = float(cumulative[-1])
    if not np.isfinite(total) or total <= 0.0:
        return None
    draws = np.searchsorted(cumulative, generator.random(size) * total, side="right")
    return np.minimum(draws, mass.size - 1).astype(np.int64)


def permutation(generator: np.random.Generator, n: int) -> np.ndarray:
    """Return a random permutation of ``range(n)`` as an int64 array."""
    return generator.permutation(n).astype(np.int64)


def sample_without_replacement(
    generator: np.random.Generator,
    population: int,
    size: int,
    probabilities: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Sample ``size`` distinct indices from ``range(population)``.

    Parameters
    ----------
    generator:
        Source of randomness.
    population:
        Size of the index universe.
    size:
        Number of indices to draw; must not exceed ``population``.
    probabilities:
        Optional sampling weights over the population.  They need not be
        normalised; zero-weight items are never selected.
    """
    if size > population:
        raise ValueError(
            f"cannot sample {size} items without replacement from a population of {population}"
        )
    if probabilities is None:
        return generator.choice(population, size=size, replace=False)
    probabilities = np.asarray(probabilities, dtype=np.float64)
    total = probabilities.sum()
    if total <= 0:
        raise ValueError("probabilities must have a positive sum")
    return generator.choice(population, size=size, replace=False, p=probabilities / total)

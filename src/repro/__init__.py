"""repro — a reproduction of "Settling Time vs. Accuracy Tradeoffs for Clustering Big Data".

The library implements the paper's Fast-Coreset algorithm (strong ε-coresets
for k-means / k-median in Õ(nd) time), the full spectrum of faster sampling
heuristics it is compared against (uniform, lightweight, welterweight,
standard sensitivity sampling, BICO, StreamKM++), the streaming and
MapReduce-style aggregation frameworks, the synthetic and realistic dataset
generators, and the evaluation harness that regenerates every table and
figure of the paper.

Quickstart
----------
>>> import numpy as np
>>> from repro import FastCoreset, coreset_distortion
>>> from repro.data import gaussian_mixture
>>> data = gaussian_mixture(n=2000, d=10, n_clusters=10, seed=0).points
>>> coreset = FastCoreset(k=10, seed=0).sample(data, m=400)
>>> distortion = coreset_distortion(data, coreset, k=10, seed=0)
>>> distortion < 2.0
True
"""

from repro.config import ExperimentScale
from repro.core import (
    Coreset,
    CoresetConstruction,
    FastCoreset,
    LightweightCoreset,
    SensitivitySampling,
    UniformSampling,
    WelterweightCoreset,
    fast_coreset,
    merge_coresets,
    uniform_sample,
)
from repro.clustering import kmeans, kmedian, kmeans_plus_plus, fast_kmeans_plus_plus
from repro.evaluation import coreset_distortion, solution_cost_on_dataset
from repro.parallel import (
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ShardedCoresetBuilder,
    ThreadExecutor,
    resolve_executor,
)
from repro.streaming import BicoCoreset, StreamKMPlusPlus, StreamingCoresetPipeline
from repro.distributed import MapReduceCoresetAggregator

__version__ = "1.0.0"

__all__ = [
    "ExperimentScale",
    "Coreset",
    "CoresetConstruction",
    "FastCoreset",
    "LightweightCoreset",
    "SensitivitySampling",
    "UniformSampling",
    "WelterweightCoreset",
    "fast_coreset",
    "merge_coresets",
    "uniform_sample",
    "kmeans",
    "kmedian",
    "kmeans_plus_plus",
    "fast_kmeans_plus_plus",
    "coreset_distortion",
    "solution_cost_on_dataset",
    "Executor",
    "ProcessExecutor",
    "SerialExecutor",
    "ShardedCoresetBuilder",
    "ThreadExecutor",
    "resolve_executor",
    "BicoCoreset",
    "StreamKMPlusPlus",
    "StreamingCoresetPipeline",
    "MapReduceCoresetAggregator",
    "__version__",
]

"""Table 4 and Figure 2: the main static sweep over samplers, datasets and m-scalars.

For every dataset (artificial and real stand-ins) and every sampler in the
accelerated line-up plus Fast-Coresets, the harness measures coreset
distortion (Table 4 / Figure 2 top) and construction runtime (Figure 2
bottom) at coreset sizes ``m = 40k`` and ``m = 80k``.  The expected shape:

* every method is accurate on the well-behaved real datasets;
* uniform sampling fails on c-outlier, geometric, Star and Taxi;
* lightweight coresets fail on c-outlier/geometric style data (small
  clusters near the centre of mass);
* welterweight coresets are intermediate;
* Fast-Coresets never fail.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.config import ExperimentScale
from repro.evaluation.tables import ExperimentRow
from repro.experiments.common import (
    ARTIFICIAL_DATASETS,
    REAL_DATASETS,
    clamp_m,
    dataset_for_experiment,
    evaluate_sampler,
    k_and_m_for,
    make_samplers,
    row,
)
from repro.utils.rng import SeedLike, as_generator, random_seed_from

#: The sweep covers the artificial datasets first, then the real stand-ins,
#: matching the row order of Table 4.
SWEEP_DATASETS: Sequence[str] = (*ARTIFICIAL_DATASETS, *REAL_DATASETS)


def table4_sampler_sweep(
    *,
    datasets: Sequence[str] = SWEEP_DATASETS,
    m_scalars: Sequence[int] = (40, 80),
    z: int = 2,
    scale: Optional[ExperimentScale] = None,
    repetitions: Optional[int] = None,
    seed: SeedLike = 0,
) -> List[ExperimentRow]:
    """Reproduce Table 4 (and the data behind Figure 2).

    Parameters
    ----------
    datasets:
        Dataset names to sweep.
    m_scalars:
        Coreset-size scalars; the paper reports 40 and 80 (Figure 4 adds 60).
    z:
        Cost exponent; ``z = 1`` turns this into the Figure 4 k-median sweep.
    scale, repetitions, seed:
        Experiment scale, repetitions per configuration, base randomness.
    """
    scale = scale or ExperimentScale.from_environment()
    repetitions = repetitions or scale.repetitions
    generator = as_generator(seed)
    rows: List[ExperimentRow] = []
    for dataset_name in datasets:
        dataset = dataset_for_experiment(dataset_name, scale, random_seed_from(generator))
        k, _ = k_and_m_for(dataset_name, scale)
        samplers = make_samplers(k, z=z, seed=random_seed_from(generator))
        for m_scalar in m_scalars:
            m = clamp_m(m_scalar * k, dataset.n)
            for method, sampler in samplers.items():
                evaluation = evaluate_sampler(
                    dataset.points,
                    sampler,
                    m,
                    k,
                    z=z,
                    repetitions=repetitions,
                    seed=random_seed_from(generator),
                )
                rows.append(
                    row(
                        "table4" if z == 2 else "figure4",
                        dataset=dataset_name,
                        method=method,
                        values={
                            "distortion_mean": evaluation.mean_distortion,
                            "distortion_var": evaluation.var_distortion,
                            "runtime_mean": evaluation.mean_runtime,
                        },
                        parameters={
                            "k": float(k),
                            "m": float(m),
                            "m_scalar": float(m_scalar),
                            "n": float(dataset.n),
                            "z": float(z),
                        },
                    )
                )
    return rows


def figure2_runtime_sweep(**kwargs) -> List[ExperimentRow]:
    """Figure 2 shares its data with Table 4; provided as an explicit alias."""
    return table4_sampler_sweep(**kwargs)

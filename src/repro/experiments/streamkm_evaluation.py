"""Table 9: StreamKM++ distortion on the artificial datasets.

StreamKM++ builds its compression with k-means++-style D²-sampling inside a
coreset tree; its theoretical coreset size is logarithmic in ``n`` and
exponential in ``d``, far larger than what sensitivity sampling needs, so at
the sample sizes of the paper (``m = 40k``) its distortion is noticeably
worse than the sensitivity-based constructions — the shape Table 9 records.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.config import ExperimentScale
from repro.evaluation import coreset_distortion
from repro.evaluation.tables import ExperimentRow
from repro.experiments.common import (
    ARTIFICIAL_DATASETS,
    clamp_m,
    dataset_for_experiment,
    k_and_m_for,
    row,
)
from repro.streaming import StreamKMPlusPlus
from repro.utils.rng import SeedLike, as_generator, random_seed_from


def table9_streamkm_distortion(
    *,
    datasets: Sequence[str] = ARTIFICIAL_DATASETS,
    m_scalar: int = 40,
    scale: Optional[ExperimentScale] = None,
    repetitions: Optional[int] = None,
    seed: SeedLike = 0,
) -> List[ExperimentRow]:
    """Reproduce Table 9 (StreamKM++ distortions on the artificial datasets)."""
    scale = scale or ExperimentScale.from_environment()
    repetitions = repetitions or scale.repetitions
    generator = as_generator(seed)
    rows: List[ExperimentRow] = []
    for dataset_name in datasets:
        dataset = dataset_for_experiment(dataset_name, scale, random_seed_from(generator))
        k, m = k_and_m_for(dataset_name, scale, m_scalar=m_scalar)
        m = clamp_m(m, dataset.n)
        distortions = []
        for _ in range(repetitions):
            sampler = StreamKMPlusPlus(coreset_size=m, seed=random_seed_from(generator))
            coreset = sampler.sample(dataset.points, m)
            distortions.append(
                coreset_distortion(dataset.points, coreset, k, seed=random_seed_from(generator))
            )
        values = np.asarray(distortions)
        rows.append(
            row(
                "table9",
                dataset=dataset_name,
                method="streamkm++",
                values={"distortion_mean": float(values.mean()), "distortion_var": float(values.var())},
                parameters={"k": float(k), "m": float(m), "m_scalar": float(m_scalar)},
            )
        )
    return rows

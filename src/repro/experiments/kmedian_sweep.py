"""Figure 4: the sampler sweep repeated for the k-median objective.

The paper verifies that the k-means conclusions carry over to k-median by
showing one run of the distortion sweep with ``z = 1`` and coreset sizes
``m in {40k, 60k, 80k}``.  The harness simply re-parameterises the Table 4
sweep, which keeps the two code paths identical by construction.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.config import ExperimentScale
from repro.evaluation.tables import ExperimentRow
from repro.experiments.sampler_sweep import SWEEP_DATASETS, table4_sampler_sweep
from repro.utils.rng import SeedLike


def figure4_kmedian_sweep(
    *,
    datasets: Sequence[str] = SWEEP_DATASETS,
    m_scalars: Sequence[int] = (40, 60, 80),
    scale: Optional[ExperimentScale] = None,
    repetitions: int = 1,
    seed: SeedLike = 0,
) -> List[ExperimentRow]:
    """Reproduce Figure 4 (k-median distortions; one run per configuration).

    The paper shows a single run "to emphasize the random nature of
    compression quality", hence ``repetitions = 1`` by default.
    """
    return table4_sampler_sweep(
        datasets=datasets,
        m_scalars=m_scalars,
        z=1,
        scale=scale,
        repetitions=repetitions,
        seed=seed,
    )

"""Table 2: distortion of uniform sampling and Fast-Coresets relative to sensitivity sampling.

The paper's motivating experiment: on every real dataset, compute the
coreset distortion of sensitivity sampling (the recommended construction),
uniform sampling, and Fast-Coresets, and report the two ratios
``uniform / sensitivity`` and ``fast_coreset / sensitivity``.  The expected
shape: Fast-Coresets stay within a small constant of sensitivity sampling
everywhere, while uniform sampling matches it on the well-behaved datasets
and blows up on Star and Taxi.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.config import ExperimentScale
from repro.core import FastCoreset, SensitivitySampling, UniformSampling
from repro.evaluation.tables import ExperimentRow
from repro.experiments.common import REAL_DATASETS, clamp_m, dataset_for_experiment, k_and_m_for, row
from repro.experiments.common import evaluate_sampler
from repro.utils.rng import SeedLike, as_generator, random_seed_from


def table2_distortion_ratios(
    *,
    datasets: Sequence[str] = REAL_DATASETS,
    scale: Optional[ExperimentScale] = None,
    repetitions: Optional[int] = None,
    seed: SeedLike = 0,
) -> List[ExperimentRow]:
    """Reproduce Table 2 (distortion ratios against sensitivity sampling).

    Each returned row corresponds to one dataset and one of the two
    non-baseline methods; the ``ratio`` value is that method's mean
    distortion divided by sensitivity sampling's mean distortion on the same
    dataset (matching the two columns of the paper's table).
    """
    scale = scale or ExperimentScale.from_environment()
    repetitions = repetitions or scale.repetitions
    generator = as_generator(seed)
    rows: List[ExperimentRow] = []
    for dataset_name in datasets:
        dataset = dataset_for_experiment(dataset_name, scale, random_seed_from(generator))
        k, m = k_and_m_for(dataset_name, scale)
        m = clamp_m(m, dataset.n)
        samplers = {
            "sensitivity": SensitivitySampling(k, seed=random_seed_from(generator)),
            "uniform": UniformSampling(seed=random_seed_from(generator)),
            "fast_coreset": FastCoreset(k, seed=random_seed_from(generator)),
        }
        evaluations = {
            name: evaluate_sampler(
                dataset.points,
                sampler,
                m,
                k,
                repetitions=repetitions,
                seed=random_seed_from(generator),
            )
            for name, sampler in samplers.items()
        }
        baseline = max(evaluations["sensitivity"].mean_distortion, 1e-12)
        for method in ("uniform", "fast_coreset"):
            evaluation = evaluations[method]
            rows.append(
                row(
                    "table2",
                    dataset=dataset_name,
                    method=method,
                    values={
                        "ratio": evaluation.mean_distortion / baseline,
                        "distortion": evaluation.mean_distortion,
                        "sensitivity_distortion": baseline,
                    },
                    parameters={"k": float(k), "m": float(m), "n": float(dataset.n)},
                )
            )
    return rows

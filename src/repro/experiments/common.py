"""Shared plumbing for the experiment harnesses.

The harnesses all follow the same pattern: build a dataset, build the
samplers under comparison, produce a coreset per sampler per repetition,
and evaluate distortion and runtime.  The helpers here hold that pattern so
every table / figure module stays a short, declarative description of *what*
the paper measured.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.config import ExperimentScale, default_k_for
from repro.core import (
    CoresetConstruction,
    FastCoreset,
    LightweightCoreset,
    SensitivitySampling,
    UniformSampling,
    WelterweightCoreset,
)
from repro.data import load_dataset
from repro.data.synthetic import Dataset
from repro.evaluation import coreset_distortion
from repro.evaluation.tables import ExperimentRow
from repro.utils.rng import SeedLike, as_generator, random_seed_from
from repro.utils.timer import timed

#: The datasets used by the main sweeps, in the paper's presentation order.
ARTIFICIAL_DATASETS: Sequence[str] = ("c_outlier", "geometric", "gaussian", "benchmark")
REAL_DATASETS: Sequence[str] = ("mnist", "adult", "star", "song", "covtype", "taxi", "census")
#: Datasets used by the streaming comparison (Table 5 restricts the real data
#: to MNIST and Adult).
STREAMING_DATASETS: Sequence[str] = (*ARTIFICIAL_DATASETS, "mnist", "adult")
#: The "accelerated" samplers of the paper plus the two guaranteed ones.
ACCELERATED_METHODS: Sequence[str] = ("uniform", "lightweight", "welterweight", "fast_coreset")


def make_samplers(
    k: int,
    *,
    z: int = 2,
    seed: SeedLike = 0,
    include_sensitivity: bool = False,
    welterweight_j: Optional[int] = None,
) -> Dict[str, CoresetConstruction]:
    """The sampler line-up of Section 5.2, keyed by the paper's method names.

    Parameters
    ----------
    k:
        Number of clusters the compressions must support.
    z:
        1 for k-median, 2 for k-means.
    seed:
        Base seed; each sampler gets its own derived seed.
    include_sensitivity:
        Also include standard sensitivity sampling (used by Figure 1 and
        Table 2; the later sweeps drop it because Fast-Coresets match its
        accuracy at lower cost).
    welterweight_j:
        Override for the welterweight ``j`` parameter (defaults to log2 k).
    """
    generator = as_generator(seed)
    samplers: Dict[str, CoresetConstruction] = {
        "uniform": UniformSampling(z=z, seed=random_seed_from(generator)),
        "lightweight": LightweightCoreset(z=z, seed=random_seed_from(generator)),
        "welterweight": WelterweightCoreset(
            k, j=welterweight_j, z=z, seed=random_seed_from(generator)
        ),
        "fast_coreset": FastCoreset(k, z=z, seed=random_seed_from(generator)),
    }
    if include_sensitivity:
        samplers["sensitivity"] = SensitivitySampling(k, z=z, seed=random_seed_from(generator))
    return samplers


@dataclass
class SamplerEvaluation:
    """Aggregated result of evaluating one sampler on one dataset."""

    mean_distortion: float
    var_distortion: float
    mean_runtime: float
    std_runtime: float
    coreset_size: float


def evaluate_sampler(
    points: np.ndarray,
    sampler: CoresetConstruction,
    m: int,
    k: int,
    *,
    z: int = 2,
    repetitions: int = 3,
    seed: SeedLike = 0,
    lloyd_iterations: int = 8,
) -> SamplerEvaluation:
    """Run ``sampler`` ``repetitions`` times and aggregate distortion and runtime.

    The paper reports "means and variances ... taken over 5 runs"; the
    repetition count is configurable so the quick harness can use fewer.
    """
    generator = as_generator(seed)
    distortions: List[float] = []
    runtimes: List[float] = []
    sizes: List[int] = []
    for _ in range(repetitions):
        run_seed = random_seed_from(generator)
        coreset, seconds = timed(sampler.sample, points, m, seed=run_seed)
        distortion = coreset_distortion(
            points,
            coreset,
            k,
            z=z,
            lloyd_iterations=lloyd_iterations,
            seed=random_seed_from(generator),
        )
        distortions.append(distortion)
        runtimes.append(seconds)
        sizes.append(coreset.size)
    distortions_array = np.asarray(distortions)
    runtimes_array = np.asarray(runtimes)
    return SamplerEvaluation(
        mean_distortion=float(distortions_array.mean()),
        var_distortion=float(distortions_array.var()),
        mean_runtime=float(runtimes_array.mean()),
        std_runtime=float(runtimes_array.std()),
        coreset_size=float(np.mean(sizes)),
    )


def dataset_for_experiment(
    name: str,
    scale: ExperimentScale,
    seed: SeedLike,
    **overrides,
) -> Dataset:
    """Load a dataset at the experiment scale (thin wrapper for readability)."""
    return load_dataset(name, scale=scale, seed=seed, **overrides)


def k_and_m_for(name: str, scale: ExperimentScale, m_scalar: Optional[int] = None) -> tuple[int, int]:
    """The paper's per-dataset defaults: ``k`` by dataset group, ``m = m_scalar * k``."""
    k = default_k_for(name, scale)
    scalar = scale.m_scalar if m_scalar is None else m_scalar
    return k, scalar * k


def clamp_m(m: int, n: int) -> int:
    """Coreset sizes cannot exceed the dataset size at reduced scale."""
    return int(min(m, max(1, n // 2)))


def welterweight_default_j(k: int) -> int:
    """The paper's default number of centers for welterweight coresets."""
    return max(2, int(math.ceil(math.log2(max(k, 2)))))


def row(
    experiment: str,
    dataset: str,
    method: str,
    values: Dict[str, float],
    parameters: Optional[Dict[str, float]] = None,
) -> ExperimentRow:
    """Shorthand constructor used by the harness modules."""
    return ExperimentRow(
        experiment=experiment,
        dataset=dataset,
        method=method,
        values=values,
        parameters=parameters or {},
    )

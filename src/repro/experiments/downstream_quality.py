"""Table 8: downstream clustering cost obtained from each sampler's coreset.

Among the samplers whose distortion is small on the real datasets, is there
one whose coreset consistently produces the *best* k-means solution for the
original data?  The protocol: an identical k-means++ initialisation per
dataset, Lloyd's algorithm on each sampler's coreset, and the resulting
centers evaluated on the full dataset (``cost(P, C_S)``).  The paper's
conclusion — "no sampling method leads to solutions with consistently
minimal costs" — is what this harness lets the reader check.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.config import ExperimentScale
from repro.evaluation.solution_quality import shared_initialization, solution_cost_on_dataset
from repro.evaluation.tables import ExperimentRow
from repro.experiments.common import (
    clamp_m,
    dataset_for_experiment,
    k_and_m_for,
    make_samplers,
    row,
)
from repro.utils.rng import SeedLike, as_generator, random_seed_from

#: The datasets of Table 8 (the real stand-ins).
TABLE8_DATASETS: Sequence[str] = ("mnist", "adult", "star", "song", "census", "taxi", "covtype")


def table8_downstream_cost(
    *,
    datasets: Sequence[str] = TABLE8_DATASETS,
    k: Optional[int] = None,
    scale: Optional[ExperimentScale] = None,
    lloyd_algorithm: str = "pruned",
    seed: SeedLike = 0,
) -> List[ExperimentRow]:
    """Reproduce Table 8 (full-dataset cost of the coreset-derived solutions).

    Parameters
    ----------
    datasets:
        Dataset names.
    k:
        Number of clusters for the downstream task (the paper uses 50);
        defaults to the scale's small-``k``.
    lloyd_algorithm:
        Lloyd engine used for every refinement — ``"pruned"`` (default) or
        ``"naive"``; the engines are bit-identical, so the table's numbers
        do not depend on the choice.
    scale, seed:
        Experiment scale and base randomness.
    """
    scale = scale or ExperimentScale.from_environment()
    generator = as_generator(seed)
    rows: List[ExperimentRow] = []
    for dataset_name in datasets:
        dataset = dataset_for_experiment(dataset_name, scale, random_seed_from(generator))
        downstream_k = k or min(scale.k_small, 50)
        _, m = k_and_m_for(dataset_name, scale)
        m = clamp_m(m, dataset.n)
        samplers = make_samplers(downstream_k, seed=random_seed_from(generator))
        initialization = shared_initialization(
            dataset.points, downstream_k, seed=random_seed_from(generator)
        )
        for method, sampler in samplers.items():
            coreset = sampler.sample(dataset.points, m, seed=random_seed_from(generator))
            cost = solution_cost_on_dataset(
                dataset.points,
                coreset,
                downstream_k,
                initial_centers=initialization,
                algorithm=lloyd_algorithm,
                seed=random_seed_from(generator),
            )
            rows.append(
                row(
                    "table8",
                    dataset=dataset_name,
                    method=method,
                    values={"cost_on_full": cost},
                    parameters={"k": float(downstream_k), "m": float(m), "n": float(dataset.n)},
                )
            )
    return rows

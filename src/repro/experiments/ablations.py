"""Ablations of the Fast-Coreset design choices called out in DESIGN.md.

Four ablations, each isolating one ingredient of Algorithm 1:

* **weight correction** — sensitivity sampling with and without appending
  the bicriteria centers with mass-correcting weights;
* **spread reduction** — Fast-Coresets with and without the Section 4
  preprocessing (accuracy should be unchanged; the runtime difference shows
  up on high-spread data);
* **seeding** — the quadtree ``Fast-kmeans++`` bicriteria solution versus an
  exact k-means++ seeding inside the same sensitivity-sampling pipeline;
* **JL target dimension** — distortion of the Fast-Coreset as the projection
  dimension shrinks.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.config import ExperimentScale
from repro.core import FastCoreset, SensitivitySampling
from repro.evaluation import coreset_distortion
from repro.evaluation.tables import ExperimentRow
from repro.experiments.common import (
    clamp_m,
    dataset_for_experiment,
    k_and_m_for,
    row,
)
from repro.utils.rng import SeedLike, as_generator, random_seed_from
from repro.utils.timer import timed


def ablation_weight_correction(
    *,
    datasets: Sequence[str] = ("gaussian", "geometric", "adult"),
    scale: Optional[ExperimentScale] = None,
    repetitions: Optional[int] = None,
    seed: SeedLike = 0,
) -> List[ExperimentRow]:
    """Sensitivity sampling with vs without the per-cluster mass correction."""
    scale = scale or ExperimentScale.from_environment()
    repetitions = repetitions or scale.repetitions
    generator = as_generator(seed)
    rows: List[ExperimentRow] = []
    for dataset_name in datasets:
        dataset = dataset_for_experiment(dataset_name, scale, random_seed_from(generator))
        k, m = k_and_m_for(dataset_name, scale)
        m = clamp_m(m, dataset.n)
        for label, correction in (("plain", False), ("mass_corrected", True)):
            sampler = SensitivitySampling(
                k, include_center_correction=correction, seed=random_seed_from(generator)
            )
            distortions = []
            for _ in range(repetitions):
                coreset = sampler.sample(dataset.points, m, seed=random_seed_from(generator))
                distortions.append(
                    coreset_distortion(dataset.points, coreset, k, seed=random_seed_from(generator))
                )
            rows.append(
                row(
                    "ablation_weight_correction",
                    dataset=dataset_name,
                    method=f"sensitivity[{label}]",
                    values={"distortion_mean": float(np.mean(distortions))},
                    parameters={"k": float(k), "m": float(m)},
                )
            )
    return rows


def ablation_spread_reduction(
    *,
    r_values: Sequence[int] = (20, 50),
    k: int = 50,
    scale: Optional[ExperimentScale] = None,
    repetitions: Optional[int] = None,
    seed: SeedLike = 0,
) -> List[ExperimentRow]:
    """Fast-Coresets with vs without the spread-reduction preprocessing."""
    from repro.data.synthetic import high_spread_dataset

    scale = scale or ExperimentScale.from_environment()
    repetitions = repetitions or max(1, scale.repetitions - 1)
    generator = as_generator(seed)
    rows: List[ExperimentRow] = []
    for r in r_values:
        dataset = high_spread_dataset(n=scale.synthetic_n, r=r, seed=random_seed_from(generator))
        m = clamp_m(scale.m_scalar * k, dataset.n)
        for label, enabled in (("with_reduction", True), ("without_reduction", False)):
            sampler = FastCoreset(
                k, use_spread_reduction=enabled, max_levels=64, seed=random_seed_from(generator)
            )
            distortions, runtimes = [], []
            for _ in range(repetitions):
                coreset, seconds = timed(
                    sampler.sample, dataset.points, m, seed=random_seed_from(generator)
                )
                runtimes.append(seconds)
                distortions.append(
                    coreset_distortion(dataset.points, coreset, k, seed=random_seed_from(generator))
                )
            rows.append(
                row(
                    "ablation_spread_reduction",
                    dataset="high_spread",
                    method=f"fast_coreset[{label}]",
                    values={
                        "distortion_mean": float(np.mean(distortions)),
                        "runtime_mean": float(np.mean(runtimes)),
                    },
                    parameters={"r": float(r), "k": float(k), "m": float(m)},
                )
            )
    return rows


def ablation_seeding(
    *,
    datasets: Sequence[str] = ("gaussian", "geometric"),
    scale: Optional[ExperimentScale] = None,
    repetitions: Optional[int] = None,
    seed: SeedLike = 0,
) -> List[ExperimentRow]:
    """Quadtree seeding (Fast-Coreset) vs exact k-means++ seeding (sensitivity)."""
    scale = scale or ExperimentScale.from_environment()
    repetitions = repetitions or scale.repetitions
    generator = as_generator(seed)
    rows: List[ExperimentRow] = []
    for dataset_name in datasets:
        dataset = dataset_for_experiment(dataset_name, scale, random_seed_from(generator))
        k, m = k_and_m_for(dataset_name, scale)
        m = clamp_m(m, dataset.n)
        for method, sampler in (
            ("quadtree_seeding", FastCoreset(k, seed=random_seed_from(generator))),
            ("kmeans++_seeding", SensitivitySampling(k, seed=random_seed_from(generator))),
        ):
            distortions, runtimes = [], []
            for _ in range(repetitions):
                coreset, seconds = timed(
                    sampler.sample, dataset.points, m, seed=random_seed_from(generator)
                )
                runtimes.append(seconds)
                distortions.append(
                    coreset_distortion(dataset.points, coreset, k, seed=random_seed_from(generator))
                )
            rows.append(
                row(
                    "ablation_seeding",
                    dataset=dataset_name,
                    method=method,
                    values={
                        "distortion_mean": float(np.mean(distortions)),
                        "runtime_mean": float(np.mean(runtimes)),
                    },
                    parameters={"k": float(k), "m": float(m)},
                )
            )
    return rows


def ablation_jl_dimension(
    *,
    target_dims: Sequence[int] = (4, 8, 16, 32),
    scale: Optional[ExperimentScale] = None,
    repetitions: Optional[int] = None,
    seed: SeedLike = 0,
) -> List[ExperimentRow]:
    """Distortion of the Fast-Coreset as the JL projection dimension varies (MNIST stand-in)."""
    from repro.geometry.johnson_lindenstrauss import JohnsonLindenstraussEmbedding

    scale = scale or ExperimentScale.from_environment()
    repetitions = repetitions or max(1, scale.repetitions - 1)
    generator = as_generator(seed)
    dataset = dataset_for_experiment("mnist", scale, random_seed_from(generator))
    k, m = k_and_m_for("mnist", scale)
    m = clamp_m(m, dataset.n)
    rows: List[ExperimentRow] = []
    for target_dim in target_dims:
        distortions = []
        for _ in range(repetitions):
            embedding = JohnsonLindenstraussEmbedding(
                target_dim=target_dim, seed=random_seed_from(generator)
            )
            projected = embedding.fit_transform(dataset.points)
            sampler = FastCoreset(
                k, dimension_reduction=False, seed=random_seed_from(generator)
            )
            # The coreset is built from the projected data but indexes the
            # original rows, so its distortion is measured in the original
            # space — isolating the effect of the projection dimension.
            coreset = sampler.sample(projected, m, seed=random_seed_from(generator))
            if coreset.indices is not None:
                from repro.core import Coreset

                original = Coreset(
                    points=dataset.points[coreset.indices],
                    weights=coreset.weights,
                    indices=coreset.indices,
                    method=coreset.method,
                )
            else:
                original = coreset
            distortions.append(
                coreset_distortion(dataset.points, original, k, seed=random_seed_from(generator))
            )
        rows.append(
            row(
                "ablation_jl_dimension",
                dataset="mnist",
                method="fast_coreset",
                values={"distortion_mean": float(np.mean(distortions))},
                parameters={"target_dim": float(target_dim), "k": float(k), "m": float(m)},
            )
        )
    return rows

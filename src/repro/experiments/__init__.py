"""Experiment harnesses — one module per table / figure of the paper.

Every harness is a plain function that returns a list of
:class:`~repro.evaluation.tables.ExperimentRow` objects; the pytest
benchmarks under ``benchmarks/`` call these functions and print the rendered
tables, and ``EXPERIMENTS.md`` records the paper-vs-measured comparison.

========================  =======================================================
Paper artefact            Harness
========================  =======================================================
Table 1                   :func:`repro.experiments.spread_runtime.table1_spread_runtime`
Figure 1                  :func:`repro.experiments.runtime_vs_k.figure1_runtime_vs_k`
Table 2                   :func:`repro.experiments.distortion_ratios.table2_distortion_ratios`
Table 3                   :func:`repro.experiments.dataset_summary.table3_dataset_summary`
Table 4 / Figure 2        :func:`repro.experiments.sampler_sweep.table4_sampler_sweep`
Table 5 / Figure 5        :func:`repro.experiments.streaming_comparison.table5_streaming_comparison`
Table 6                   :func:`repro.experiments.bico_evaluation.table6_bico_distortion`
Table 7                   :func:`repro.experiments.imbalance_sweep.table7_imbalance_sweep`
Table 8                   :func:`repro.experiments.downstream_quality.table8_downstream_cost`
Table 9                   :func:`repro.experiments.streamkm_evaluation.table9_streamkm_distortion`
Figure 3                  :func:`repro.experiments.cluster_capture.figure3_cluster_capture`
Figure 4                  :func:`repro.experiments.kmedian_sweep.figure4_kmedian_sweep`
Ablations (DESIGN.md §4)  :mod:`repro.experiments.ablations`
========================  =======================================================
"""

from repro.experiments.common import evaluate_sampler, make_samplers
from repro.experiments.runtime_vs_k import figure1_runtime_vs_k
from repro.experiments.spread_runtime import table1_spread_runtime
from repro.experiments.distortion_ratios import table2_distortion_ratios
from repro.experiments.dataset_summary import table3_dataset_summary
from repro.experiments.sampler_sweep import table4_sampler_sweep
from repro.experiments.streaming_comparison import table5_streaming_comparison
from repro.experiments.bico_evaluation import table6_bico_distortion
from repro.experiments.imbalance_sweep import table7_imbalance_sweep
from repro.experiments.downstream_quality import table8_downstream_cost
from repro.experiments.streamkm_evaluation import table9_streamkm_distortion
from repro.experiments.cluster_capture import figure3_cluster_capture
from repro.experiments.kmedian_sweep import figure4_kmedian_sweep

__all__ = [
    "evaluate_sampler",
    "make_samplers",
    "figure1_runtime_vs_k",
    "table1_spread_runtime",
    "table2_distortion_ratios",
    "table3_dataset_summary",
    "table4_sampler_sweep",
    "table5_streaming_comparison",
    "table6_bico_distortion",
    "table7_imbalance_sweep",
    "table8_downstream_cost",
    "table9_streamkm_distortion",
    "figure3_cluster_capture",
    "figure4_kmedian_sweep",
]

"""Table 6: BICO's coreset distortion in the static and streaming settings.

The paper finds that BICO — although fast and well suited to quantisation —
"performs consistently poorly on the coreset distortion metric".  The
harness evaluates the BIRCH-style construction in both settings and at two
coreset sizes, mirroring the columns of Table 6.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.config import ExperimentScale
from repro.evaluation import coreset_distortion
from repro.evaluation.tables import ExperimentRow
from repro.experiments.common import (
    ARTIFICIAL_DATASETS,
    clamp_m,
    dataset_for_experiment,
    k_and_m_for,
    row,
)
from repro.streaming import BicoCoreset, DataStream
from repro.utils.rng import SeedLike, as_generator, random_seed_from

#: Table 6 covers the artificial datasets plus all real datasets; the
#: streaming columns are restricted to the artificial data, MNIST and Adult.
TABLE6_DATASETS: Sequence[str] = (*ARTIFICIAL_DATASETS, "mnist", "adult", "star", "song", "covtype", "taxi", "census")
TABLE6_STREAMING_DATASETS: Sequence[str] = (*ARTIFICIAL_DATASETS, "mnist", "adult")


def table6_bico_distortion(
    *,
    datasets: Sequence[str] = TABLE6_DATASETS,
    streaming_datasets: Sequence[str] = TABLE6_STREAMING_DATASETS,
    m_scalars: Sequence[int] = (40, 80),
    n_blocks: int = 16,
    scale: Optional[ExperimentScale] = None,
    repetitions: Optional[int] = None,
    seed: SeedLike = 0,
) -> List[ExperimentRow]:
    """Reproduce Table 6 (BICO distortion, static m=40k / m=80k and streaming)."""
    scale = scale or ExperimentScale.from_environment()
    repetitions = repetitions or scale.repetitions
    generator = as_generator(seed)
    rows: List[ExperimentRow] = []
    for dataset_name in datasets:
        dataset = dataset_for_experiment(dataset_name, scale, random_seed_from(generator))
        k, _ = k_and_m_for(dataset_name, scale)
        for m_scalar in m_scalars:
            m = clamp_m(m_scalar * k, dataset.n)
            distortions = []
            for _ in range(repetitions):
                bico = BicoCoreset(coreset_size=m, seed=random_seed_from(generator))
                coreset = bico.sample(dataset.points, m)
                distortions.append(
                    coreset_distortion(
                        dataset.points, coreset, k, seed=random_seed_from(generator)
                    )
                )
            values = np.asarray(distortions)
            rows.append(
                row(
                    "table6",
                    dataset=dataset_name,
                    method=f"bico[static,m={m_scalar}k]",
                    values={"distortion_mean": float(values.mean()), "distortion_var": float(values.var())},
                    parameters={"k": float(k), "m": float(m), "m_scalar": float(m_scalar)},
                )
            )
        if dataset_name in streaming_datasets:
            k, m = k_and_m_for(dataset_name, scale)
            m = clamp_m(m, dataset.n)
            distortions = []
            for _ in range(repetitions):
                bico = BicoCoreset(coreset_size=m, seed=random_seed_from(generator))
                for block_points, block_weights in DataStream.with_block_count(dataset.points, n_blocks):
                    bico.insert_block(block_points, block_weights)
                coreset = bico.to_coreset()
                distortions.append(
                    coreset_distortion(
                        dataset.points, coreset, k, seed=random_seed_from(generator)
                    )
                )
            values = np.asarray(distortions)
            rows.append(
                row(
                    "table6",
                    dataset=dataset_name,
                    method="bico[streaming]",
                    values={"distortion_mean": float(values.mean()), "distortion_var": float(values.var())},
                    parameters={"k": float(k), "m": float(m), "n_blocks": float(n_blocks)},
                )
            )
    return rows

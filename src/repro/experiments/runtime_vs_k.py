"""Figure 1: construction runtime vs ``k`` for sensitivity sampling and Fast-Coresets.

The paper's headline runtime claim: as ``k`` grows from 50 to 400, standard
sensitivity sampling slows down linearly (its k-means++ solution costs
``Theta(nk)``) while Fast-Coresets only pay a logarithmic factor.  The
harness measures both constructions on the same five datasets as the paper
(geometric, benchmark, c-outlier, Gaussian, Adult) and also reports each
method's slowdown factor relative to its smallest-``k`` runtime, which is
the scale-free quantity the reproduction is judged on.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.config import ExperimentScale
from repro.core import FastCoreset, SensitivitySampling
from repro.evaluation.tables import ExperimentRow
from repro.experiments.common import dataset_for_experiment, row
from repro.utils.rng import SeedLike, as_generator, random_seed_from
from repro.utils.timer import timed

#: Datasets shown in Figure 1 of the paper.
FIGURE1_DATASETS: Sequence[str] = ("geometric", "benchmark", "c_outlier", "gaussian", "adult")


def figure1_runtime_vs_k(
    *,
    k_values: Sequence[int] = (50, 100, 200, 400),
    datasets: Sequence[str] = FIGURE1_DATASETS,
    m_scalar: int = 10,
    scale: Optional[ExperimentScale] = None,
    repetitions: Optional[int] = None,
    seed: SeedLike = 0,
) -> List[ExperimentRow]:
    """Reproduce Figure 1 (runtime of both constructions as ``k`` varies).

    Parameters
    ----------
    k_values:
        The ``k`` sweep; the paper uses 50, 100, 200, 400.
    datasets:
        Dataset names (resolved through the registry).
    m_scalar:
        Coreset size divided by ``k``; kept moderate because the runtime of
        the construction, not of the downstream evaluation, is what Figure 1
        reports.
    scale, repetitions, seed:
        Experiment scale, repetition count, and base randomness.
    """
    scale = scale or ExperimentScale.from_environment()
    repetitions = repetitions or max(1, scale.repetitions - 1)
    generator = as_generator(seed)
    rows: List[ExperimentRow] = []
    for dataset_name in datasets:
        dataset = dataset_for_experiment(dataset_name, scale, random_seed_from(generator))
        baselines = {}
        for k in k_values:
            m = min(m_scalar * k, dataset.n // 2)
            for method_name, construction in (
                ("sensitivity", SensitivitySampling(k, seed=random_seed_from(generator))),
                ("fast_coreset", FastCoreset(k, seed=random_seed_from(generator))),
            ):
                runtimes = []
                for _ in range(repetitions):
                    _, seconds = timed(
                        construction.sample,
                        dataset.points,
                        m,
                        seed=random_seed_from(generator),
                    )
                    runtimes.append(seconds)
                mean_runtime = sum(runtimes) / len(runtimes)
                baseline = baselines.setdefault(method_name, mean_runtime)
                rows.append(
                    row(
                        "figure1",
                        dataset=dataset_name,
                        method=method_name,
                        values={
                            "runtime_mean": mean_runtime,
                            "slowdown_vs_smallest_k": mean_runtime / baseline,
                        },
                        parameters={"k": float(k), "m": float(m), "n": float(dataset.n)},
                    )
                )
    return rows

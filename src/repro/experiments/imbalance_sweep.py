"""Table 7: class imbalance (gamma) vs quality of the candidate solution (j).

"How good must our approximate solution be before sensitivity sampling can
handle class imbalance?"  The harness sweeps the Gaussian mixture's
imbalance parameter ``gamma`` and the number of centers ``j`` in the
candidate solution (lightweight j=1, welterweight j in {2, log k, sqrt k},
Fast-Coreset j=k) and reports the mean distortion for every combination —
the expected shape: all methods fine at gamma=0, only large-``j`` methods
fine at gamma=5.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

import numpy as np

from repro.config import ExperimentScale
from repro.core import FastCoreset, LightweightCoreset, WelterweightCoreset
from repro.data.synthetic import gaussian_mixture
from repro.evaluation import coreset_distortion
from repro.evaluation.tables import ExperimentRow
from repro.experiments.common import row
from repro.utils.rng import SeedLike, as_generator, random_seed_from


def table7_imbalance_sweep(
    *,
    gamma_values: Sequence[float] = (0.0, 1.0, 3.0, 5.0),
    k: Optional[int] = None,
    n_clusters: Optional[int] = None,
    coreset_size: Optional[int] = None,
    scale: Optional[ExperimentScale] = None,
    repetitions: Optional[int] = None,
    seed: SeedLike = 0,
) -> List[ExperimentRow]:
    """Reproduce Table 7 (distortion as a function of gamma and j).

    The paper's setup: 50 000 points in 50 dimensions, 50 Gaussian clusters,
    coresets of size 4 000, ``k = 100``, means over five dataset
    generations.  The quick scale shrinks ``n`` and the repetition count but
    keeps the same ratios.
    """
    scale = scale or ExperimentScale.from_environment()
    repetitions = repetitions or scale.repetitions
    k = k or scale.k_small
    n_clusters = n_clusters or max(5, scale.k_small // 2)
    coreset_size = coreset_size or max(200, 4 * k)
    generator = as_generator(seed)

    j_sqrt = max(2, int(round(math.sqrt(k))))
    j_log = max(2, int(math.ceil(math.log2(k))))
    methods = [
        ("lightweight", lambda s: LightweightCoreset(seed=s)),
        ("j=2", lambda s: WelterweightCoreset(k, j=2, seed=s)),
        (f"j=log k ({j_log})", lambda s: WelterweightCoreset(k, j=j_log, seed=s)),
        (f"j=sqrt k ({j_sqrt})", lambda s: WelterweightCoreset(k, j=j_sqrt, seed=s)),
        ("fast_coreset", lambda s: FastCoreset(k, seed=s)),
    ]

    rows: List[ExperimentRow] = []
    for gamma in gamma_values:
        for method_name, factory in methods:
            distortions = []
            for _ in range(repetitions):
                dataset = gaussian_mixture(
                    n=scale.synthetic_n,
                    d=scale.synthetic_d,
                    n_clusters=n_clusters,
                    gamma=gamma,
                    seed=random_seed_from(generator),
                )
                sampler = factory(random_seed_from(generator))
                m = min(coreset_size, dataset.n // 2)
                coreset = sampler.sample(dataset.points, m)
                distortions.append(
                    coreset_distortion(dataset.points, coreset, k, seed=random_seed_from(generator))
                )
            values = np.asarray(distortions)
            rows.append(
                row(
                    "table7",
                    dataset="gaussian",
                    method=method_name,
                    values={"distortion_mean": float(values.mean()), "distortion_var": float(values.var())},
                    parameters={"gamma": float(gamma), "k": float(k), "m": float(coreset_size)},
                )
            )
    return rows

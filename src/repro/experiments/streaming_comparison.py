"""Table 5 and Figure 5: streaming (merge-&-reduce) vs static compression.

For every accelerated sampler and Fast-Coresets, the harness compares the
coreset distortion and construction runtime when the dataset is compressed
in one shot (static) against compressing it block-by-block under
merge-&-reduce composition (streaming).  The paper's — initially surprising
— finding is that the accelerated methods do *at least as well* under
composition; the harness exposes the same comparison.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.config import ExperimentScale
from repro.evaluation import coreset_distortion
from repro.evaluation.tables import ExperimentRow
from repro.experiments.common import (
    STREAMING_DATASETS,
    clamp_m,
    dataset_for_experiment,
    k_and_m_for,
    make_samplers,
    row,
)
from repro.streaming import DataStream, StreamingCoresetPipeline
from repro.utils.rng import SeedLike, as_generator, random_seed_from
from repro.utils.timer import timed


def table5_streaming_comparison(
    *,
    datasets: Sequence[str] = STREAMING_DATASETS,
    n_blocks: int = 16,
    z: int = 2,
    scale: Optional[ExperimentScale] = None,
    repetitions: Optional[int] = None,
    share_stream_state: bool = True,
    seed: SeedLike = 0,
) -> List[ExperimentRow]:
    """Reproduce Table 5 / Figure 5 (streaming vs static distortion and runtime).

    Parameters
    ----------
    datasets:
        Dataset names; the paper restricts the real data to MNIST and Adult.
    n_blocks:
        Number of stream blocks for the merge-&-reduce tree.
    share_stream_state:
        Let the merge-&-reduce tree cache its spread estimate across
        compressions (default); disable to reproduce the per-block-estimate
        baseline when auditing composition quality.
    z, scale, repetitions, seed:
        Cost exponent, experiment scale, repetitions, base randomness.
    """
    scale = scale or ExperimentScale.from_environment()
    repetitions = repetitions or scale.repetitions
    generator = as_generator(seed)
    rows: List[ExperimentRow] = []
    for dataset_name in datasets:
        dataset = dataset_for_experiment(dataset_name, scale, random_seed_from(generator))
        k, m = k_and_m_for(dataset_name, scale)
        m = clamp_m(m, dataset.n)
        samplers = make_samplers(k, z=z, seed=random_seed_from(generator))
        for method, sampler in samplers.items():
            static_distortions, static_runtimes = [], []
            streaming_distortions, streaming_runtimes = [], []
            for _ in range(repetitions):
                static_coreset, static_seconds = timed(
                    sampler.sample, dataset.points, m, seed=random_seed_from(generator)
                )
                static_distortions.append(
                    coreset_distortion(
                        dataset.points, static_coreset, k, z=z, seed=random_seed_from(generator)
                    )
                )
                static_runtimes.append(static_seconds)

                stream = DataStream.with_block_count(dataset.points, n_blocks)
                pipeline = StreamingCoresetPipeline(
                    sampler=sampler,
                    coreset_size=m,
                    seed=random_seed_from(generator),
                    share_stream_state=share_stream_state,
                )
                streaming_coreset, streaming_seconds = timed(pipeline.run, stream)
                streaming_distortions.append(
                    coreset_distortion(
                        dataset.points, streaming_coreset, k, z=z, seed=random_seed_from(generator)
                    )
                )
                streaming_runtimes.append(streaming_seconds)
            for setting, distortions, runtimes in (
                ("static", static_distortions, static_runtimes),
                ("streaming", streaming_distortions, streaming_runtimes),
            ):
                distortions_array = np.asarray(distortions)
                rows.append(
                    row(
                        "table5",
                        dataset=dataset_name,
                        method=f"{method}[{setting}]",
                        values={
                            "distortion_mean": float(distortions_array.mean()),
                            "distortion_var": float(distortions_array.var()),
                            "runtime_mean": float(np.mean(runtimes)),
                        },
                        parameters={
                            "k": float(k),
                            "m": float(m),
                            "n_blocks": float(n_blocks),
                            "setting": float(setting == "streaming"),
                        },
                    )
                )
    return rows

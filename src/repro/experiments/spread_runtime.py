"""Table 1: Fast-kmeans++ runtime as a function of the spread parameter ``r``.

The paper constructs a dataset whose spread ``Delta`` grows with ``r`` and
shows that the runtime of the quadtree-based seeding grows with
``r ~ log Delta`` — the motivation for the Section 4 spread reduction.  The
harness times ``fast_kmeans_plus_plus`` (no spread reduction) for the same
``r`` values as the paper and also reports the quadtree depth, which is the
quantity that actually grows.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.clustering.fast_kmeans_pp import fast_kmeans_plus_plus
from repro.config import ExperimentScale
from repro.data.synthetic import high_spread_dataset
from repro.evaluation.tables import ExperimentRow
from repro.experiments.common import row
from repro.utils.rng import SeedLike, as_generator, random_seed_from
from repro.utils.timer import timed


def table1_spread_runtime(
    *,
    r_values: Sequence[int] = (20, 30, 40, 50),
    k: int = 50,
    scale: Optional[ExperimentScale] = None,
    repetitions: Optional[int] = None,
    seed: SeedLike = 0,
) -> List[ExperimentRow]:
    """Reproduce Table 1 (mean Fast-kmeans++ runtime vs ``r``).

    Parameters
    ----------
    r_values:
        The spread parameters; the paper uses 20, 30, 40, 50.
    k:
        Number of centers for the seeding.
    scale:
        Controls the dataset size.
    repetitions:
        Number of timed repetitions per ``r`` (the paper uses five).
    seed:
        Base randomness.
    """
    scale = scale or ExperimentScale.from_environment()
    repetitions = repetitions or scale.repetitions
    generator = as_generator(seed)
    rows: List[ExperimentRow] = []
    for r in r_values:
        dataset = high_spread_dataset(n=scale.synthetic_n, r=r, seed=random_seed_from(generator))
        runtimes = []
        for _ in range(repetitions):
            _, seconds = timed(
                fast_kmeans_plus_plus,
                dataset.points,
                k,
                seed=random_seed_from(generator),
                max_levels=64,
            )
            runtimes.append(seconds)
        mean_runtime = sum(runtimes) / len(runtimes)
        std_runtime = (sum((t - mean_runtime) ** 2 for t in runtimes) / len(runtimes)) ** 0.5
        rows.append(
            row(
                "table1",
                dataset="high_spread",
                method="fast_kmeans++",
                values={"runtime_mean": mean_runtime, "runtime_std": std_runtime},
                parameters={"r": float(r), "k": float(k), "n": float(dataset.n)},
            )
        )
    return rows

"""Figure 3: lightweight coresets miss a small cluster near the centre of mass.

The paper's qualitative figure shows a 2-D Gaussian mixture with one small
(~400-point) cluster sitting close to the dataset's centre of mass:
lightweight coresets — which sample proportionally to the distance from the
mean — systematically fail to put any sample inside that cluster, while
sensitivity sampling with ``j = k`` captures every cluster.  The harness
turns the picture into numbers: for each construction it reports the
fraction of repetitions in which the small cluster received at least one
coreset point, and the average number of points it received.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.config import ExperimentScale
from repro.core import FastCoreset, LightweightCoreset, SensitivitySampling, UniformSampling
from repro.data.synthetic import Dataset, add_uniform_jitter
from repro.evaluation.tables import ExperimentRow
from repro.experiments.common import row
from repro.utils.rng import SeedLike, as_generator, random_seed_from


def small_central_cluster_dataset(
    n: int = 20_000,
    *,
    small_cluster_size: int = 400,
    n_big_clusters: int = 8,
    seed: SeedLike = 0,
) -> Dataset:
    """The Figure 3 scenario: big scattered clusters + one small central cluster.

    The big clusters are placed on a ring so their centre of mass sits at the
    origin; the small cluster is placed very near the origin, which makes its
    points look unimportant to the 1-means (lightweight) sensitivities.
    """
    generator = as_generator(seed)
    big_size = (n - small_cluster_size) // n_big_clusters
    angles = np.linspace(0.0, 2.0 * np.pi, n_big_clusters, endpoint=False)
    centers = 100.0 * np.stack([np.cos(angles), np.sin(angles)], axis=1)
    blocks = []
    labels = []
    for index in range(n_big_clusters):
        size = big_size if index < n_big_clusters - 1 else n - small_cluster_size - big_size * (n_big_clusters - 1)
        blocks.append(centers[index] + generator.normal(scale=3.0, size=(size, 2)))
        labels.append(np.full(size, index))
    blocks.append(generator.normal(scale=0.5, size=(small_cluster_size, 2)))
    labels.append(np.full(small_cluster_size, n_big_clusters))
    points = add_uniform_jitter(np.concatenate(blocks, axis=0), seed=generator)
    return Dataset(
        name="figure3_mixture",
        points=points,
        labels=np.concatenate(labels).astype(np.int64),
        parameters={"n": n, "small_cluster_size": small_cluster_size, "n_big_clusters": n_big_clusters},
    )


def figure3_cluster_capture(
    *,
    coreset_size: int = 200,
    k: Optional[int] = None,
    scale: Optional[ExperimentScale] = None,
    repetitions: int = 20,
    seed: SeedLike = 0,
) -> List[ExperimentRow]:
    """Reproduce Figure 3 as capture statistics for the small central cluster."""
    scale = scale or ExperimentScale.from_environment()
    generator = as_generator(seed)
    n = min(scale.synthetic_n * 2, 100_000)
    dataset = small_central_cluster_dataset(n=n, seed=random_seed_from(generator))
    k = k or int(dataset.parameters["n_big_clusters"]) + 1
    small_label = int(dataset.parameters["n_big_clusters"])
    small_members = np.flatnonzero(dataset.labels == small_label)
    small_set = set(small_members.tolist())

    samplers = {
        "uniform": UniformSampling(seed=random_seed_from(generator)),
        "lightweight": LightweightCoreset(seed=random_seed_from(generator)),
        "sensitivity": SensitivitySampling(k, seed=random_seed_from(generator)),
        "fast_coreset": FastCoreset(k, seed=random_seed_from(generator)),
    }
    rows: List[ExperimentRow] = []
    for method, sampler in samplers.items():
        captured_runs = 0
        captured_points = []
        for _ in range(repetitions):
            coreset = sampler.sample(
                dataset.points, coreset_size, seed=random_seed_from(generator)
            )
            if coreset.indices is None:
                count = 0
            else:
                count = sum(1 for index in coreset.indices.tolist() if index in small_set)
            captured_points.append(count)
            if count > 0:
                captured_runs += 1
        rows.append(
            row(
                "figure3",
                dataset=dataset.name,
                method=method,
                values={
                    "capture_rate": captured_runs / repetitions,
                    "mean_points_in_small_cluster": float(np.mean(captured_points)),
                },
                parameters={
                    "coreset_size": float(coreset_size),
                    "small_cluster_size": float(dataset.parameters["small_cluster_size"]),
                    "n": float(dataset.n),
                    "k": float(k),
                },
            )
        )
    return rows

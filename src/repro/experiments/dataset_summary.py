"""Table 3: dataset characteristics (number of points and features).

A bookkeeping table — the paper lists the size of every real dataset.  The
harness reports both the documented full-scale shape of the original
datasets and the shape of the stand-ins actually generated at the current
experiment scale, making the substitution documented in DESIGN.md explicit
in the output.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.config import ExperimentScale
from repro.data.realistic import REAL_DATASET_SHAPES
from repro.evaluation.tables import ExperimentRow
from repro.experiments.common import REAL_DATASETS, dataset_for_experiment, row
from repro.utils.rng import SeedLike, as_generator, random_seed_from


def table3_dataset_summary(
    *,
    datasets: Sequence[str] = REAL_DATASETS,
    scale: Optional[ExperimentScale] = None,
    seed: SeedLike = 0,
) -> List[ExperimentRow]:
    """Reproduce Table 3 (dataset descriptions) and record the stand-in sizes."""
    scale = scale or ExperimentScale.from_environment()
    generator = as_generator(seed)
    rows: List[ExperimentRow] = []
    for dataset_name in datasets:
        dataset = dataset_for_experiment(dataset_name, scale, random_seed_from(generator))
        full_n, full_d = REAL_DATASET_SHAPES[dataset_name]
        rows.append(
            row(
                "table3",
                dataset=dataset_name,
                method="dataset",
                values={
                    "paper_points": float(full_n),
                    "paper_dim": float(full_d),
                    "generated_points": float(dataset.n),
                    "generated_dim": float(dataset.d),
                },
                parameters={"fraction": float(scale.dataset_fraction)},
            )
        )
    return rows

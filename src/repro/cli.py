"""Command-line interface: compress a dataset file into a weighted coreset.

The CLI is the thinnest useful wrapper around the library for pipeline use:

.. code-block:: bash

    python -m repro.cli compress data.npy --k 100 --m 4000 --method fast_coreset \
        --output coreset.npz
    python -m repro.cli compress data.npy --k 100 --backend process --workers 4
    python -m repro.cli evaluate data.npy coreset.npz --k 100
    python -m repro.cli recommend data.npy --k 100

``compress`` writes an ``.npz`` archive with ``points``, ``weights`` and the
construction metadata; with ``--workers``/``--backend`` it shards the
dataset and compresses the shards concurrently through the parallel
execution engine (``--shards`` keys the result; the worker count and
backend only change wall-clock time).  ``--async`` runs the same sharded
build on the persistent-pool asynchronous executor (shards collected
as they complete; still bit-identical for a fixed seed and shard count), and
``--prefetch-batches N`` switches to the overlapped *streaming* pipeline:
the input is consumed in blocks — memory-mapped for float64 ``.npy`` files,
never materialised — while a reader thread prefetches the next batch from
disk as the pool compresses the current one (result keyed by the seed and
the block structure).  ``evaluate`` reports the coreset distortion of an
existing compression against its source dataset; ``recommend`` runs the
Section 5.5 advisor and prints which sampler is appropriate.

``compress --trace out.json`` records hierarchical spans across the whole
pipeline — including pool-worker-side shard compressions and offloaded
reduces, merged onto the host timeline — and writes a Chrome trace-event
JSON loadable in Perfetto; ``--metrics`` adds the flat counters/gauges
dict to the summary.  Tracing observes and never perturbs: the coreset
bytes are identical with and without it.  ``status`` prints the execution
environment (native kernel tier, pool configuration, tracing state).
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import os
import sys
import time
from typing import Callable, Optional, Sequence

import numpy as np

from repro import observability as _obs
from repro.core import (
    Coreset,
    FastCoreset,
    LightweightCoreset,
    SensitivitySampling,
    UniformSampling,
    WelterweightCoreset,
)
from repro.evaluation import coreset_distortion
from repro.evaluation.advisor import diagnose_dataset, recommend_sampler
from repro.native import native_status
from repro.parallel import (
    BACKENDS,
    ShardedCoresetBuilder,
    resolve_async_executor,
    resolve_executor,
)
from repro.streaming import (
    DataStream,
    ExponentialDecay,
    SlidingCountWindow,
    StreamingCoresetPipeline,
)

#: Method names accepted by ``--method`` and their constructors.
METHODS = ("uniform", "lightweight", "welterweight", "sensitivity", "fast_coreset")

#: Block count of the ``--prefetch-batches`` streaming compression path.
STREAM_BLOCKS = 16


def _load_points(path: str) -> np.ndarray:
    """Load a dataset from ``.npy``, ``.npz`` (key ``points``) or delimited text."""
    if path.endswith(".npy"):
        return np.asarray(np.load(path), dtype=np.float64)
    if path.endswith(".npz"):
        archive = np.load(path)
        key = "points" if "points" in archive else archive.files[0]
        return np.asarray(archive[key], dtype=np.float64)
    return np.loadtxt(path, delimiter=",", dtype=np.float64, ndmin=2)


def _build_sampler(method: str, k: int, z: int, seed: Optional[int]):
    """Instantiate the requested construction."""
    if method == "uniform":
        return UniformSampling(z=z, seed=seed)
    if method == "lightweight":
        return LightweightCoreset(z=z, seed=seed)
    if method == "welterweight":
        return WelterweightCoreset(k, z=z, seed=seed)
    if method == "sensitivity":
        return SensitivitySampling(k, z=z, seed=seed)
    if method == "fast_coreset":
        return FastCoreset(k, z=z, seed=seed)
    raise ValueError(f"unknown method {method!r}; expected one of {', '.join(METHODS)}")


def _open_stream(path: str, block_size_for: Callable[[int], int]):
    """Open ``path`` as a block stream, memory-mapping when possible.

    Two-dimensional float64 ``.npy`` files stream straight off disk through
    :meth:`DataStream.from_npy` (the dataset is never materialised — the
    point of the prefetch path); every other input is loaded once and
    streamed from memory.
    """
    if path.endswith(".npy"):
        header = np.load(path, mmap_mode="r")
        if header.ndim == 2 and header.dtype == np.float64:
            n = int(header.shape[0])
            del header
            return DataStream.from_npy(path, block_size=block_size_for(n))
    points = _load_points(path)
    return DataStream(points=points, block_size=block_size_for(points.shape[0]))


def _window_policy(arguments: argparse.Namespace):
    """The window policy requested on the command line, or ``None``."""
    if getattr(arguments, "window", None) is not None:
        return SlidingCountWindow(arguments.window)
    if getattr(arguments, "decay", None) is not None:
        return ExponentialDecay(arguments.decay)
    return None


def _compress_streaming(arguments: argparse.Namespace, sampler, backend: str) -> tuple:
    """The streaming paths: ``--prefetch-batches`` and/or ``--window``/``--decay``."""
    blocks = arguments.blocks if arguments.blocks is not None else STREAM_BLOCKS
    stream = _open_stream(
        arguments.data,
        lambda n: max(1, int(np.ceil(n / blocks))),
    )
    n = stream.n_points
    m = arguments.m if arguments.m is not None else 40 * arguments.k
    m = min(m, n)
    policy = _window_policy(arguments)
    executor = None
    try:
        if arguments.prefetch_batches is not None:
            executor = resolve_async_executor(backend, workers=arguments.workers)
        pipeline = StreamingCoresetPipeline(
            sampler=sampler,
            coreset_size=m,
            seed=arguments.seed,
            executor=executor,
            prefetch_batches=arguments.prefetch_batches,
            window=policy,
            drift_threshold=arguments.drift_threshold,
        )
        coreset, statistics = pipeline.run_with_statistics(stream)
    finally:
        if executor is not None:
            executor.close()
    diagnostics = pipeline.last_diagnostics
    execution = {
        "backend": "serial" if executor is None else f"async+{executor.name}",
        "workers": 1 if executor is None else executor.workers,
        "mode": "streaming" if policy is None else f"windowed_streaming[{policy.name}]",
        "blocks": int(statistics["blocks"]),
        "prefetch_batches": arguments.prefetch_batches,
        "reductions": int(statistics["reductions"]),
        "spread_refreshes": int(statistics["spread_refreshes"]),
        "cost_bound_refreshes": int(statistics["cost_bound_refreshes"]),
        "reduces_offloaded": int(diagnostics.get("reduces_offloaded", 0)),
        "pending_high_water": int(diagnostics.get("pending_high_water", 0)),
    }
    if policy is not None:
        execution["window"] = arguments.window
        execution["decay_half_life"] = arguments.decay
        execution["blocks_expired"] = int(statistics["blocks_expired"])
        execution["drift_events"] = int(statistics["drift_events"])
    return n, coreset, execution


def _command_compress(arguments: argparse.Namespace) -> int:
    streaming = (
        arguments.prefetch_batches is not None
        or arguments.window is not None
        or arguments.decay is not None
    )
    if arguments.window is not None and arguments.decay is not None:
        print(
            "error: --window (sliding count window) and --decay (exponential "
            "half-life) are mutually exclusive window policies",
            file=sys.stderr,
        )
        return 2
    if arguments.window is not None and arguments.window < 1:
        print("error: --window must cover at least one block", file=sys.stderr)
        return 2
    if arguments.decay is not None and not arguments.decay > 0:
        print("error: --decay half-life must be positive", file=sys.stderr)
        return 2
    if (arguments.window is not None or arguments.decay is not None) and arguments.shards is not None:
        print(
            "error: --window/--decay (windowed streaming compression) and "
            "--shards (sharded build) are mutually exclusive — a sharded build "
            "has no block arrival order to expire",
            file=sys.stderr,
        )
        return 2
    if arguments.blocks is not None and not streaming:
        print(
            "error: --blocks only applies to the streaming paths "
            "(--prefetch-batches, --window, or --decay)",
            file=sys.stderr,
        )
        return 2
    if arguments.blocks is not None and arguments.blocks < 1:
        print("error: --blocks must be at least 1", file=sys.stderr)
        return 2
    if arguments.drift_threshold is not None and arguments.window is None and arguments.decay is None:
        print(
            "error: --drift-threshold requires a window policy (--window or --decay)",
            file=sys.stderr,
        )
        return 2
    if arguments.prefetch_batches is not None:
        # The streaming path is a different construction (merge-&-reduce
        # over blocks, keyed by the block structure), not a faster sharded
        # build — refuse the combination instead of silently switching.
        if arguments.prefetch_batches < 1:
            print("error: --prefetch-batches must be at least 1", file=sys.stderr)
            return 2
        if arguments.shards is not None:
            print(
                "error: --prefetch-batches (streaming merge-reduce compression) and "
                "--shards (sharded build) are mutually exclusive — they key the "
                "coreset differently",
                file=sys.stderr,
            )
            return 2
    sampler = _build_sampler(arguments.method, arguments.k, arguments.z, arguments.seed)
    shards = arguments.shards if arguments.shards is not None else max(1, arguments.workers)
    if arguments.async_execution and arguments.prefetch_batches is None and shards <= 1:
        # The single-shot sampler path has nothing to overlap; dropping the
        # flag silently would misreport what ran.
        print(
            "error: --async requires a sharded build (--shards or --workers > 1) "
            "or --prefetch-batches (streaming compression)",
            file=sys.stderr,
        )
        return 2
    tracing = arguments.trace is not None or arguments.metrics
    if tracing:
        _obs.start_tracing()
    try:
        summary = _run_compress(arguments, sampler, shards)
    finally:
        recorder = _obs.stop_tracing() if tracing else None
    if recorder is not None:
        if arguments.trace is not None:
            _obs.write_chrome_trace(
                arguments.trace,
                recorder,
                metadata={"command": "compress", "method": arguments.method},
            )
            summary["trace"] = arguments.trace
        if arguments.metrics:
            summary["metrics"] = recorder.metrics()
    print(json.dumps(summary, indent=2))
    return 0


def _run_compress(arguments: argparse.Namespace, sampler, shards: int) -> dict:
    """Run the compression and return the summary dict (writes the .npz)."""
    backend = arguments.backend
    if backend is None:
        backend = "process" if arguments.workers > 1 else "serial"
    start = time.perf_counter()
    if arguments.prefetch_batches is not None or _window_policy(arguments) is not None:
        n_points, coreset, execution = _compress_streaming(arguments, sampler, backend)
        execution["shards"] = 1
    else:
        points = _load_points(arguments.data)
        n_points = int(points.shape[0])
        m = arguments.m if arguments.m is not None else 40 * arguments.k
        m = min(m, points.shape[0])
        if shards > 1:
            # Sharded path: each shard is compressed to the target size, the
            # union re-compressed to it.  The coreset is keyed by --shards and
            # --seed only; --backend/--workers/--async change wall-clock, not
            # bytes (async runs the same spawn-keyed shard seeds through the
            # persistent pool with an overlapped host-side fold).
            builder = ShardedCoresetBuilder(
                sampler,
                n_shards=shards,
                coreset_size_per_shard=m,
                final_coreset_size=m,
                seed=arguments.seed,
            )
            if arguments.async_execution:
                executor = resolve_async_executor(backend, workers=arguments.workers)
            else:
                executor = resolve_executor(backend, workers=arguments.workers)
            try:
                build = builder.build(points, executor=executor)
            finally:
                executor.close()
            coreset = build.coreset
            execution = {
                "backend": build.backend,
                "workers": build.workers,
                "shards": len(build.shard_sizes),
                "communication_floats": build.communication,
                "reduces_offloaded": int(build.diagnostics.get("reduces_offloaded", 0)),
                "pending_high_water": int(build.diagnostics.get("pending_high_water", 0)),
            }
        else:
            # One shard: nothing to parallelise, and the single-shot sampler
            # path keeps byte-compatibility with earlier releases.
            coreset = sampler.sample(points, m)
            execution = {"backend": "serial", "workers": 1, "shards": 1}
    elapsed = time.perf_counter() - start
    np.savez(
        arguments.output,
        points=coreset.points,
        weights=coreset.weights,
        method=np.array(coreset.method),
        k=np.array(arguments.k),
    )
    status = native_status()
    kernel_tier = {
        "kernel_tier": status["tier"],
        "kernel_providers": {
            name: info["provider"] for name, info in status["kernels"].items()
        },
        "numba_version": status["providers"].get("numba", {}).get("numba_version"),
    }
    summary = {
        "input_points": n_points,
        "coreset_points": coreset.size,
        "total_weight": coreset.total_weight,
        "method": coreset.method,
        "output": arguments.output,
        "seconds": round(elapsed, 4),
        **execution,
        **kernel_tier,
    }
    return summary


def _command_evaluate(arguments: argparse.Namespace) -> int:
    points = _load_points(arguments.data)
    archive = np.load(arguments.coreset)
    coreset = Coreset(
        points=np.asarray(archive["points"], dtype=np.float64),
        weights=np.asarray(archive["weights"], dtype=np.float64),
        method=str(archive["method"]) if "method" in archive else "loaded",
    )
    distortion = coreset_distortion(points, coreset, arguments.k, z=arguments.z, seed=arguments.seed)
    print(json.dumps({"distortion": distortion, "coreset_points": coreset.size}, indent=2))
    return 0 if distortion < arguments.fail_threshold else 1


def _command_recommend(arguments: argparse.Namespace) -> int:
    points = _load_points(arguments.data)
    diagnosis = diagnose_dataset(points, arguments.k, seed=arguments.seed)
    recommendation = recommend_sampler(points, arguments.k, coreset_size=arguments.m, seed=arguments.seed)
    print(
        json.dumps(
            {
                "recommendation": recommendation,
                "cluster_imbalance": diagnosis.cluster_imbalance,
                "top_cost_share": diagnosis.top_cost_share,
                "smallest_cluster_fraction": diagnosis.smallest_cluster_fraction,
            },
            indent=2,
        )
    )
    return 0


def _command_status(arguments: argparse.Namespace) -> int:
    """Environment snapshot: kernel tier, pool configuration, tracing state."""
    payload = {
        "native": native_status(),
        "pool": {
            "cpu_count": os.cpu_count(),
            "backends": list(BACKENDS),
            "start_methods": multiprocessing.get_all_start_methods(),
            "default_start_method": multiprocessing.get_start_method(allow_none=True),
        },
        "tracing_active": _obs.tracing_active(),
    }
    print(json.dumps(payload, indent=2))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    subparsers = parser.add_subparsers(dest="command", required=True)

    compress = subparsers.add_parser("compress", help="compress a dataset into a weighted coreset")
    compress.add_argument("data", help="input dataset (.npy, .npz, or csv)")
    compress.add_argument("--k", type=int, required=True, help="number of clusters to support")
    compress.add_argument("--m", type=int, default=None, help="coreset size (default 40*k)")
    compress.add_argument("--method", choices=METHODS, default="fast_coreset")
    compress.add_argument("--z", type=int, choices=(1, 2), default=2, help="1=k-median, 2=k-means")
    compress.add_argument("--seed", type=int, default=0)
    compress.add_argument("--output", default="coreset.npz")
    compress.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker count for the parallel execution engine (default 1)",
    )
    compress.add_argument(
        "--backend",
        choices=BACKENDS,
        default=None,
        help="execution backend for the sharded build (default: process when "
        "--workers > 1, else serial); 'process' uses a shared-memory pool",
    )
    compress.add_argument(
        "--shards",
        type=int,
        default=None,
        help="shard count for the sharded build (default: --workers); together "
        "with --seed this keys the coreset — backend and workers never do, and "
        "with a single shard the plain (non-sharded) sampler path runs",
    )
    compress.add_argument(
        "--async",
        dest="async_execution",
        action="store_true",
        help="run the sharded build on the persistent-pool asynchronous "
        "executor (submit/futures, shards collected as they complete); the "
        "coreset is bit-identical to the synchronous build for the same "
        "--seed and --shards",
    )
    compress.add_argument(
        "--prefetch-batches",
        type=int,
        default=None,
        metavar="N",
        help="overlapped streaming compression instead of the sharded build: "
        "consume the input in blocks (memory-mapped for float64 .npy files) "
        "while a reader thread prefetches up to N batches ahead of the "
        "compressing pool; implies --async, is mutually exclusive with "
        "--shards, and the result is keyed by --seed and the block "
        "structure (N changes wall-clock only)",
    )
    compress.add_argument(
        "--window",
        type=int,
        default=None,
        metavar="N",
        help="windowed streaming compression: only the last N blocks of the "
        "stream are live, older blocks are retired before every fold; the "
        "coreset summarises the sliding window, not the whole stream; "
        "mutually exclusive with --decay and --shards",
    )
    compress.add_argument(
        "--decay",
        type=float,
        default=None,
        metavar="HALF_LIFE",
        help="decaying streaming compression: every block's weight is halved "
        "each HALF_LIFE block-stamps of age, so the coreset emphasises "
        "recent data without ever dropping blocks; mutually exclusive with "
        "--window and --shards",
    )
    compress.add_argument(
        "--blocks",
        type=int,
        default=None,
        metavar="B",
        help="block count for the streaming paths (default %d); only valid "
        "together with --prefetch-batches, --window, or --decay" % STREAM_BLOCKS,
    )
    compress.add_argument(
        "--drift-threshold",
        type=float,
        default=None,
        metavar="T",
        help="fire the drift detector (refreshing the spread/cost-bound hint "
        "caches) when the block mean moves more than T times the window "
        "bounding-box diagonal from its anchor (default 0.25); requires "
        "--window or --decay",
    )
    compress.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="record spans across the whole compression (host and pool "
        "workers alike) and write a Chrome trace-event JSON loadable in "
        "Perfetto / chrome://tracing; tracing never changes the coreset "
        "bytes, only observes them",
    )
    compress.add_argument(
        "--metrics",
        action="store_true",
        help="include the flat metrics dict (counters, gauges, per-span "
        "rollups) in the JSON summary; enables tracing for the run even "
        "without --trace",
    )
    compress.set_defaults(handler=_command_compress)

    evaluate = subparsers.add_parser("evaluate", help="measure the distortion of an existing coreset")
    evaluate.add_argument("data", help="the original dataset")
    evaluate.add_argument("coreset", help="the .npz produced by the compress command")
    evaluate.add_argument("--k", type=int, required=True)
    evaluate.add_argument("--z", type=int, choices=(1, 2), default=2)
    evaluate.add_argument("--seed", type=int, default=0)
    evaluate.add_argument("--fail-threshold", type=float, default=5.0)
    evaluate.set_defaults(handler=_command_evaluate)

    recommend = subparsers.add_parser("recommend", help="run the Section 5.5 sampler advisor")
    recommend.add_argument("data", help="the dataset to diagnose")
    recommend.add_argument("--k", type=int, required=True)
    recommend.add_argument("--m", type=int, default=None)
    recommend.add_argument("--seed", type=int, default=0)
    recommend.set_defaults(handler=_command_recommend)

    status = subparsers.add_parser(
        "status",
        help="print the execution environment: native kernel tier, pool "
        "configuration, tracing state",
    )
    status.set_defaults(handler=_command_status)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``python -m repro.cli``."""
    parser = build_parser()
    arguments = parser.parse_args(argv)
    return arguments.handler(arguments)


if __name__ == "__main__":
    sys.exit(main())

"""Experiment defaults shared by the harnesses, benchmarks, and examples.

The values mirror Section 5.2 of the paper ("Data Parameters"): ``k = 100``
for the small datasets and ``k = 500`` for the large ones, coreset size
``m = m_scalar * k`` with a default m-scalar of 40, five repetitions per
configuration, and a small uniform jitter added to every dataset so all
points are unique.

The module also defines the *scaled-down* experiment sizes used by default
so the full harness completes quickly on a laptop; passing ``full=True`` (or
setting the ``REPRO_FULL_SCALE`` environment variable) restores paper-sized
instances.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Tuple


#: Default number of clusters for the small datasets (paper Section 5.2).
DEFAULT_K_SMALL: int = 100
#: Default number of clusters for the large datasets (Song, Cover Type, Taxi, Census).
DEFAULT_K_LARGE: int = 500
#: Default coreset-size scalar: m = M_SCALAR * k.
DEFAULT_M_SCALAR: int = 40
#: Number of repetitions over which the paper averages its measurements.
DEFAULT_REPETITIONS: int = 5
#: Amplitude of the uniform jitter added to make all points unique.
DEFAULT_JITTER: float = 1e-3
#: Default synthetic dataset size and dimension (paper Section 5.2).
DEFAULT_SYNTHETIC_N: int = 50_000
DEFAULT_SYNTHETIC_D: int = 50


def full_scale_enabled() -> bool:
    """Whether paper-sized experiments were requested via the environment."""
    return os.environ.get("REPRO_FULL_SCALE", "0") not in ("", "0", "false", "False")


@dataclass(frozen=True)
class ExperimentScale:
    """Sizes used by the experiment harnesses.

    Attributes
    ----------
    synthetic_n / synthetic_d:
        Size of the artificial datasets.
    k_small / k_large:
        Number of clusters for the small / large dataset groups.
    m_scalar:
        Coreset size divided by ``k``.
    repetitions:
        Number of repeated runs per configuration.
    dataset_fraction:
        Fraction of each realistic dataset's documented size to generate;
        1.0 reproduces the paper-scale instance.
    """

    synthetic_n: int = 10_000
    synthetic_d: int = 20
    k_small: int = 20
    k_large: int = 50
    m_scalar: int = 40
    repetitions: int = 3
    dataset_fraction: float = 0.02

    @classmethod
    def paper(cls) -> "ExperimentScale":
        """Paper-sized configuration (Section 5.2 of the paper)."""
        return cls(
            synthetic_n=DEFAULT_SYNTHETIC_N,
            synthetic_d=DEFAULT_SYNTHETIC_D,
            k_small=DEFAULT_K_SMALL,
            k_large=DEFAULT_K_LARGE,
            m_scalar=DEFAULT_M_SCALAR,
            repetitions=DEFAULT_REPETITIONS,
            dataset_fraction=1.0,
        )

    @classmethod
    def quick(cls) -> "ExperimentScale":
        """Small configuration for CI / laptop runs (the default)."""
        return cls()

    @classmethod
    def from_environment(cls) -> "ExperimentScale":
        """Pick the paper scale when ``REPRO_FULL_SCALE`` is set, else quick."""
        return cls.paper() if full_scale_enabled() else cls.quick()


@dataclass(frozen=True)
class SamplerConfiguration:
    """Default parameters for each sampler used across the harnesses."""

    k: int = DEFAULT_K_SMALL
    z: int = 2
    welterweight_j: int = 0  # 0 means "log2(k)", the paper's default
    seed: int = 0
    extra: Dict[str, float] = field(default_factory=dict)


#: Datasets considered "large" by the paper (they use k = 500).
LARGE_DATASETS: Tuple[str, ...] = ("song", "covtype", "taxi", "census")


def default_k_for(dataset_name: str, scale: ExperimentScale) -> int:
    """The paper's per-dataset default number of clusters, at the given scale."""
    if dataset_name.lower() in LARGE_DATASETS:
        return scale.k_large
    return scale.k_small

"""Frozen naive Lloyd loop — the equivalence partner of the pruned engine.

This module freezes the full-recompute Lloyd refinement exactly as it stood
when the bounds-pruned engine of :mod:`repro.clustering.lloyd` was
introduced: one full ``(n, k)`` distance block per iteration, cost and
re-seed mass taken from the per-point assigned-distance kernel, and the
empty-cluster repair that draws distinct replacements when several clusters
empty at once.  The exact-equivalence suite
(``tests/test_lloyd_pruned_equivalence.py``) asserts that the pruned engine
reproduces this loop bit for bit — assignments, centers, costs, iteration
counts, convergence flags, and generator consumption — and the perf harness
(``benchmarks/bench_perf_hotpaths.py``, ``lloyd_*`` rows) times the two
against each other.

The helper bodies are *copied*, not imported, from the live module (the same
freeze policy as :mod:`repro.reference.seed_hotpath`): a future change to
the live helpers must consciously re-freeze this file for the equivalence
claim to stay meaningful.  Only stateless primitives whose bit-behaviour is
itself pinned by tests (`squared_point_to_set_distances`, k-means++ seeding,
validation) are shared.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.clustering.kmeans_pp import kmeans_plus_plus
from repro.clustering.lloyd import KMeansResult
from repro.geometry.distances import squared_point_to_set_distances
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_integer, check_points, check_weights


def _assigned_squared_distances(
    points: np.ndarray, centers: np.ndarray, assignment: np.ndarray
) -> np.ndarray:
    """Frozen copy of :func:`repro.clustering.lloyd.assigned_squared_distances`."""
    delta = points - centers[assignment]
    return np.einsum("ij,ij->i", delta, delta)


def _update_centers(
    points: np.ndarray,
    weights: np.ndarray,
    assignment: np.ndarray,
    squared: np.ndarray,
    centers: np.ndarray,
    generator: np.random.Generator,
) -> np.ndarray:
    """Frozen copy of :func:`repro.clustering.lloyd.update_centers`."""
    k = centers.shape[0]
    n = points.shape[0]
    new_centers = centers.copy()
    counts = np.bincount(assignment, weights=weights, minlength=k)
    weighted = weights[:, None] * points
    sums = np.empty_like(centers)
    for coordinate in range(points.shape[1]):
        sums[:, coordinate] = np.bincount(
            assignment, weights=weighted[:, coordinate], minlength=k
        )
    occupied = counts > 0
    new_centers[occupied] = sums[occupied] / counts[occupied, None]
    empty = np.flatnonzero(~occupied)
    if empty.size:
        mass = weights * squared
        total = float(mass.sum())
        if total <= 0 or not np.isfinite(total):
            replacement = generator.choice(n, size=empty.size, replace=empty.size > n)
        else:
            distinct = empty.size > 1 and int(np.count_nonzero(mass > 0)) >= empty.size
            if distinct:
                replacement = generator.choice(
                    n, size=empty.size, replace=False, p=mass / total
                )
            else:
                replacement = generator.choice(
                    n, size=empty.size, replace=True, p=mass / total
                )
        new_centers[empty] = points[replacement]
    return new_centers


def naive_kmeans(
    points: np.ndarray,
    k: int,
    *,
    weights: Optional[np.ndarray] = None,
    max_iterations: int = 50,
    tolerance: float = 1e-4,
    initial_centers: Optional[np.ndarray] = None,
    seed: SeedLike = None,
) -> KMeansResult:
    """Frozen full-recompute Lloyd loop (same contract as the live ``kmeans``)."""
    points = check_points(points)
    n = points.shape[0]
    k = check_integer(k, name="k")
    weights = check_weights(weights, n)
    generator = as_generator(seed)

    if initial_centers is not None:
        centers = np.asarray(initial_centers, dtype=np.float64).copy()
        if centers.ndim != 2 or centers.shape[1] != points.shape[1]:
            raise ValueError("initial_centers must be a (k, d) array matching the data dimension")
    else:
        centers = kmeans_plus_plus(points, min(k, n), weights=weights, z=2, seed=generator).centers

    _, assignment = squared_point_to_set_distances(points, centers)
    squared = _assigned_squared_distances(points, centers, assignment)
    previous_cost = np.inf
    cost = np.inf
    converged = False
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        centers = _update_centers(points, weights, assignment, squared, centers, generator)
        _, assignment = squared_point_to_set_distances(points, centers)
        squared = _assigned_squared_distances(points, centers, assignment)
        cost = float(np.dot(weights, squared))
        if previous_cost < np.inf and previous_cost - cost <= tolerance * max(previous_cost, 1e-12):
            converged = True
            break
        previous_cost = cost
    return KMeansResult(
        centers=centers,
        assignment=assignment,
        cost=cost,
        iterations=iterations,
        converged=converged,
        recompute_fraction=1.0,
    )

"""Post-PR-9 snapshots of the Fast-kmeans++ seeding sweep and Crude-Approx.

The compiled kernel tier (:mod:`repro.native`) gained two kernels beyond the
PR-7 set: ``fkpp_level_score`` fuses the per-level candidate scoring sweep of
:class:`repro.clustering.fast_kmeans_pp.FastKMeansPlusPlus` (the masked
gather/compare/scatter over one cell's member slice), and
``crude_bound_probe`` fuses the dyadic-level occupancy probe of
:func:`repro.core.spread_reduction.crude_cost_upper_bound` (the hoisted
normalization / multiply-add doubling plus the hash-and-count-distinct
pass).  Those kernels are pinned bit-identical to the numpy sweeps they
replace, so the only honest way to time them is against *those* sweeps —
not against the seed, whose columns the pre-existing ``fast_kpp_*`` and
merge-reduce bench rows already track.  This module freezes the numpy hot
paths exactly as they stood after PR 9, immediately before the kernels were
wired in:

* :func:`prekernel_fast_kmeans_plus_plus` — the seeding loop with the
  inline per-level numpy update (``members[best_distance[members] >
  candidate]`` fancy-mask, scatter stores, in-place mass rewrite).
* :func:`prekernel_crude_cost_upper_bound` — Algorithm 2 with the inline
  probe: fresh levels floor ``scaled * 2**level``, consecutive levels reuse
  the multiply-add doubling, occupancy is ``np.unique(hash_rows(...))``.

Freeze policy matches :mod:`repro.reference.prenative_hotpath`: bodies are
copied, not imported, so optimizing the live modules cannot silently move
the baseline.  Only primitives the new kernels leave untouched (the
quadtree embedding and its CSR cell storage, ``compute_spread``,
``hash_rows``, ``count_distinct_cells``, the draw mechanism, validation)
are imported — both bench sides pay the identical tree-fit and spread
costs, so the ``fastkpp_native_*`` / ``crude_bound_native_*`` ratio
isolates the kernelized sweeps.  Both snapshots remain bit-identical to
their live counterparts in *either* tier mode.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

import numpy as np

from repro.clustering.cost import ClusteringSolution, cost_to_assigned_centers
from repro.core.spread_reduction import CrudeApproximation
from repro.geometry.distances import diameter_upper_bound
from repro.geometry.grid import count_distinct_cells, hash_rows, random_grid_shift
from repro.geometry.quadtree import QuadtreeEmbedding, compute_spread
from repro.utils.rng import SeedLike, as_generator, weighted_index_draw
from repro.utils.validation import (
    check_integer,
    check_points,
    check_power,
    check_weights,
)


# ------------------------------------------------------------ fast-kmeans++
def prekernel_fast_kmeans_plus_plus(
    points: np.ndarray,
    k: int,
    *,
    z: int = 2,
    weights: Optional[np.ndarray] = None,
    n_trees: int = 3,
    max_levels: int = 32,
    spread: Optional[float] = None,
    seed: SeedLike = None,
) -> ClusteringSolution:
    """The PR-9 seeding: tree-metric D²-sampling with the inline numpy sweep."""
    points = check_points(points)
    n = points.shape[0]
    k = check_integer(k, name="k")
    z = check_power(z)
    n_trees = check_integer(n_trees, name="n_trees")
    max_levels = check_integer(max_levels, name="max_levels")
    weights = check_weights(weights, n)
    generator = as_generator(seed)

    if k >= n:
        centers = points.copy()
        assignment = np.arange(n, dtype=np.int64)
        return ClusteringSolution(centers=centers, assignment=assignment, cost=0.0, z=z)

    spread = float(spread) if spread is not None else compute_spread(points, seed=generator)
    trees = [
        QuadtreeEmbedding(max_levels=max_levels, seed=generator, spread=spread).fit(points)
        for _ in range(n_trees)
    ]
    level_distances = [tree.level_distance_table_ for tree in trees]
    level_cell_ids = [tree.level_cell_ids_ for tree in trees]

    best_distance = np.full(n, np.inf, dtype=np.float64)
    assignment = np.full(n, -1, dtype=np.int64)
    center_indices = np.empty(k, dtype=np.int64)
    mass: Optional[np.ndarray] = None

    def register_center(center_slot: int, center_point: int) -> None:
        ceiling = float(best_distance.max())
        for tree, distances, cell_ids in zip(trees, level_distances, level_cell_ids):
            for level in range(tree.depth - 1, -1, -1):
                candidate = distances[level + 1]
                if candidate >= ceiling and np.isfinite(ceiling):
                    break
                members = tree.points_in_cell(level, cell_ids[level][center_point])
                if members.size == 0:
                    continue
                improved = members[best_distance[members] > candidate]
                if improved.size == 0:
                    continue
                best_distance[improved] = candidate
                assignment[improved] = center_slot
                if mass is not None:
                    mass[improved] = weights[improved] * candidate**z
        unassigned = assignment < 0
        if np.any(unassigned):
            fallback = level_distances[0][0]
            best_distance[unassigned] = np.minimum(best_distance[unassigned], fallback)
            assignment[unassigned] = center_slot
            if mass is not None:
                mass[unassigned] = weights[unassigned] * best_distance[unassigned] ** z

    first = weighted_index_draw(generator, weights)
    if first < 0:
        first = int(generator.integers(0, n))
    center_indices[0] = first
    register_center(0, first)
    mass = weights * best_distance**z

    for slot in range(1, k):
        chosen = weighted_index_draw(generator, mass)
        if chosen < 0:
            chosen = int(generator.integers(0, n))
        center_indices[slot] = chosen
        register_center(slot, chosen)

    centers = points[center_indices]
    euclidean_cost = cost_to_assigned_centers(points, centers, assignment, weights=weights, z=z)
    return ClusteringSolution(centers=centers, assignment=assignment, cost=euclidean_cost, z=z)


# ------------------------------------------------------------- crude-approx
def prekernel_crude_cost_upper_bound(
    points: np.ndarray,
    k: int,
    *,
    spread: Optional[float] = None,
    seed: SeedLike = None,
) -> CrudeApproximation:
    """The PR-9 Algorithm 2: inline hoisted-normalization occupancy probes."""
    points = check_points(points)
    n, d = points.shape
    k = check_integer(k, name="k")
    generator = as_generator(seed)

    diameter = max(diameter_upper_bound(points), 1e-12)
    shift = random_grid_shift(d, diameter, seed=generator)

    if n <= k:
        return CrudeApproximation(
            upper_bound=diameter,
            level=0,
            cell_side=diameter,
            diameter=diameter,
            calls=0,
            n_points=n,
            dimension=d,
        )

    if spread is None:
        spread = compute_spread(points, seed=generator)
    max_level = max(1, int(math.ceil(math.log2(float(spread)))) + 2)

    calls = 0
    scaled = (points - shift[None, :]) / diameter
    probe_state: Dict[str, object] = {"level": None}

    def occupied(level: int) -> int:
        nonlocal calls
        calls += 1
        if probe_state["level"] is not None and level == probe_state["level"] + 1:
            lattice = probe_state["lattice"]
            frac = probe_state["frac"]
            bits = frac >= 0.5
            np.multiply(lattice, 2, out=lattice)
            lattice += bits
            np.multiply(frac, 2.0, out=frac)
            frac -= bits
        elif level <= 512:
            scaled_level = scaled * (2.0**level)
            lattice = np.floor(scaled_level).astype(np.int64)
            frac = scaled_level - lattice
        else:  # pragma: no cover - astronomically spread inputs
            side = diameter * (2.0 ** (-level))
            return count_distinct_cells(points, side, shift)
        probe_state["level"] = level
        probe_state["lattice"] = lattice
        probe_state["frac"] = frac
        return int(np.unique(hash_rows(lattice)).shape[0])

    low, high = 0, max_level
    if occupied(high) <= k:
        side = diameter * (2.0 ** (-high))
        upper = n * math.sqrt(d) * 8.0 * side
        return CrudeApproximation(
            upper_bound=max(upper, 1e-12),
            level=high,
            cell_side=side,
            diameter=diameter,
            calls=calls,
            n_points=n,
            dimension=d,
        )
    while low < high:
        middle = (low + high) // 2
        if occupied(middle) >= k + 1:
            high = middle
        else:
            low = middle + 1
    level = low
    side = diameter * (2.0 ** (-level))
    upper_bound = n * math.sqrt(d) * 8.0 * side
    return CrudeApproximation(
        upper_bound=float(upper_bound),
        level=level,
        cell_side=float(side),
        diameter=float(diameter),
        calls=calls,
        n_points=n,
        dimension=d,
    )

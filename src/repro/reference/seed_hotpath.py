"""Seed-revision snapshots of the quadtree and Fast-kmeans++ hot paths.

These classes reproduce, line for line, the behaviour of
:class:`repro.geometry.quadtree.QuadtreeEmbedding` and
:class:`repro.clustering.fast_kmeans_pp.FastKMeansPlusPlus` as of the seed
commit: dict-of-arrays cell storage built by a Python grouping loop,
``O(depth)`` tree-distance sums, a spread estimate recomputed inside every
tree fit, and ``generator.choice`` D²-sampling draws over a freshly
recomputed probability vector per center.

They consume the random generator in exactly the same order as the seed
code, so fitting a :class:`SeedQuadtreeEmbedding` and the optimized
:class:`~repro.geometry.quadtree.QuadtreeEmbedding` with the same integer
seed must produce identical trees — the golden equivalence tests in
``tests/test_quadtree_golden.py`` assert precisely that.  See the package
docstring for the freeze policy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.clustering.cost import ClusteringSolution, cost_to_assigned_centers
from repro.geometry.grid import hash_rows
from repro.geometry.quadtree import compute_spread
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_integer, check_points, check_power, check_weights


@dataclass
class SeedQuadtreeEmbedding:
    """Seed-revision quadtree: dict-of-arrays cells, per-call distance sums.

    ``spread_function`` selects the spread estimator consumed during
    :meth:`fit`.  The default (``None``) resolves to the *live*
    :func:`repro.geometry.quadtree.compute_spread`, which keeps the golden
    equivalence tests meaningful: live and seed trees consume the same
    generator stream and depth cap, so their cells must agree bit for bit.
    The perf harness instead passes the frozen
    :func:`repro.reference.seed_streaming.seed_compute_spread` so the seed
    timing column keeps paying the seed revision's full-pairwise estimate
    even as the live estimator gets faster.
    """

    max_levels: int = 32
    seed: SeedLike = None
    spread_function: Optional[Callable[..., float]] = None
    delta_: float = field(default=0.0, init=False)
    shift_: Optional[np.ndarray] = field(default=None, init=False, repr=False)
    origin_: Optional[np.ndarray] = field(default=None, init=False, repr=False)
    dimension_: int = field(default=0, init=False)
    n_points_: int = field(default=0, init=False)
    level_cell_ids_: List[np.ndarray] = field(default_factory=list, init=False, repr=False)
    level_cells_: List[Dict[int, np.ndarray]] = field(default_factory=list, init=False, repr=False)

    # ------------------------------------------------------------------ fit
    def fit(self, points: np.ndarray) -> "SeedQuadtreeEmbedding":
        points = check_points(points)
        self.n_points_, self.dimension_ = points.shape
        check_integer(self.max_levels, name="max_levels")
        generator = as_generator(self.seed)

        self.origin_ = points[0].copy()
        shifted_points = points - self.origin_[None, :]
        norms = np.sqrt(np.einsum("ij,ij->i", shifted_points, shifted_points))
        self.delta_ = float(norms.max())
        if self.delta_ <= 0:
            self.delta_ = 1.0
        shift_scalar = float(generator.uniform(0.0, self.delta_))
        self.shift_ = np.full(self.dimension_, shift_scalar, dtype=np.float64)
        shifted_points = shifted_points + self.shift_[None, :]

        estimator = self.spread_function or compute_spread
        spread = estimator(points, seed=generator)
        depth_cap = min(self.max_levels, max(1, int(math.ceil(math.log2(spread))) + 2))

        self.level_cell_ids_ = []
        self.level_cells_ = []
        for level in range(depth_cap + 1):
            side = self.cell_side(level)
            lattice = np.floor(shifted_points / side).astype(np.int64)
            _, inverse = np.unique(hash_rows(lattice), return_inverse=True)
            inverse = inverse.astype(np.int64).reshape(-1)
            self.level_cell_ids_.append(inverse)
            self.level_cells_.append(self._group(inverse))
            if len(self.level_cells_[-1]) >= self.n_points_:
                break
        return self

    @staticmethod
    def _group(cell_ids: np.ndarray) -> Dict[int, np.ndarray]:
        order = np.argsort(cell_ids, kind="stable")
        sorted_ids = cell_ids[order]
        boundaries = np.flatnonzero(np.diff(sorted_ids)) + 1
        groups: Dict[int, np.ndarray] = {}
        for group in np.split(order, boundaries):
            groups[int(cell_ids[group[0]])] = group
        return groups

    # ------------------------------------------------------------- geometry
    @property
    def depth(self) -> int:
        return len(self.level_cell_ids_)

    def cell_side(self, level: int) -> float:
        return (2.0 * self.delta_) * (2.0 ** (-level))

    def edge_length(self, level: int) -> float:
        return math.sqrt(self.dimension_) * self.cell_side(level)

    def distance_from_shared_level(self, level: int) -> float:
        if level >= self.depth - 1:
            return 0.0
        total = 0.0
        for below in range(level + 1, self.depth):
            total += self.edge_length(below)
        return 2.0 * total

    def deepest_shared_level(self, first: int, second: int) -> int:
        shared = -1
        for level in range(self.depth):
            if self.level_cell_ids_[level][first] == self.level_cell_ids_[level][second]:
                shared = level
            else:
                break
        return shared

    def tree_distance(self, first: int, second: int) -> float:
        if first == second:
            return 0.0
        return self.distance_from_shared_level(self.deepest_shared_level(first, second))

    # --------------------------------------------------------------- lookup
    def cell_of(self, point_index: int, level: int) -> int:
        return int(self.level_cell_ids_[level][point_index])

    def points_in_cell(self, level: int, cell_id: int) -> np.ndarray:
        return self.level_cells_[level].get(cell_id, np.empty(0, dtype=np.int64))

    def occupied_cells(self, level: int) -> int:
        return len(self.level_cells_[level])


def seed_fast_kmeans_plus_plus(
    points: np.ndarray,
    k: int,
    *,
    z: int = 2,
    weights: Optional[np.ndarray] = None,
    n_trees: int = 3,
    max_levels: int = 32,
    seed: SeedLike = None,
    spread_function: Optional[Callable[..., float]] = None,
) -> ClusteringSolution:
    """Seed-revision Fast-kmeans++: per-center mass recompute + ``choice`` draws.

    ``spread_function`` is forwarded to every tree fit (see
    :class:`SeedQuadtreeEmbedding`); each of the ``n_trees`` fits pays its
    own estimate, exactly as the seed revision did.
    """
    points = check_points(points)
    n = points.shape[0]
    k = check_integer(k, name="k")
    z = check_power(z)
    check_integer(n_trees, name="n_trees")
    weights = check_weights(weights, n)
    generator = as_generator(seed)

    if k >= n:
        centers = points.copy()
        assignment = np.arange(n, dtype=np.int64)
        return ClusteringSolution(centers=centers, assignment=assignment, cost=0.0, z=z)

    trees = [
        SeedQuadtreeEmbedding(
            max_levels=max_levels, seed=generator, spread_function=spread_function
        ).fit(points)
        for _ in range(n_trees)
    ]
    level_distances = [
        np.array(
            [tree.distance_from_shared_level(level) for level in range(-1, tree.depth)],
            dtype=np.float64,
        )
        for tree in trees
    ]

    best_distance = np.full(n, np.inf, dtype=np.float64)
    assignment = np.full(n, -1, dtype=np.int64)
    center_indices = np.empty(k, dtype=np.int64)

    def register_center(center_slot: int, center_point: int) -> None:
        ceiling = float(best_distance.max())
        for tree, distances in zip(trees, level_distances):
            for level in range(tree.depth - 1, -1, -1):
                candidate = distances[level + 1]
                if candidate >= ceiling and np.isfinite(ceiling):
                    break
                members = tree.points_in_cell(level, tree.cell_of(center_point, level))
                if members.size == 0:
                    continue
                improved = members[best_distance[members] > candidate]
                if improved.size == 0:
                    continue
                best_distance[improved] = candidate
                assignment[improved] = center_slot
        unassigned = assignment < 0
        if np.any(unassigned):
            fallback = level_distances[0][0]
            best_distance[unassigned] = np.minimum(best_distance[unassigned], fallback)
            assignment[unassigned] = center_slot

    total_weight = weights.sum()
    if total_weight > 0:
        first = int(generator.choice(n, p=weights / total_weight))
    else:
        first = int(generator.integers(0, n))
    center_indices[0] = first
    register_center(0, first)

    for slot in range(1, k):
        mass = weights * (best_distance**z)
        total = mass.sum()
        if total <= 0 or not np.isfinite(total):
            chosen = int(generator.integers(0, n))
        else:
            chosen = int(generator.choice(n, p=mass / total))
        center_indices[slot] = chosen
        register_center(slot, chosen)

    centers = points[center_indices]
    euclidean_cost = cost_to_assigned_centers(points, centers, assignment, weights=weights, z=z)
    return ClusteringSolution(centers=centers, assignment=assignment, cost=euclidean_cost, z=z)

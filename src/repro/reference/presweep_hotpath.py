"""PR-4-revision snapshots of the quadtree fit and the pruned Lloyd engine.

The constant-factor sweep (incremental compact keys in the quadtree fit,
the fused suspect kernel with epoch-anchored bounds in Lloyd) is measured
against the implementations it replaced, not against the original seed —
the seed columns of the pre-existing bench rows already track that longer
baseline.  This module freezes those *previously optimized* hot paths
exactly as they stood after PR 4:

* :class:`PreSweepQuadtreeEmbedding` — CSR cell storage and the O(1)
  distance table (PR 1), but with the per-level ``hash_rows`` over an
  explicitly doubled lattice and a full-array stable argsort per level.
* :func:`presweep_kmeans` — the Hamerly-bounded pruned engine (PR 2): a
  min-then-masked-min double scan per suspect tile and per-iteration
  max-drift deflation of a single running lower bound.

Freeze policy is the same as :mod:`repro.reference.seed_hotpath`: bodies
are copied, not imported, so optimizing the live modules cannot silently
move the baseline.  Both snapshots remain bit-identical to their live
counterparts (the golden and equivalence suites pin the live side to the
*seed* references, and these snapshots sit between the two), which is what
lets ``benchmarks/bench_perf_hotpaths.py`` time the sweep as a pure
constant-factor comparison (``quadtree_fit_incr_*`` / ``lloyd_fused_*``
rows).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.clustering.kmeans_pp import kmeans_plus_plus
from repro.clustering.lloyd import KMeansResult
from repro.geometry.distances import DEFAULT_CHUNK_ELEMENTS, _chunk_rows
from repro.geometry.grid import hash_rows
from repro.geometry.quadtree import compute_spread
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_integer, check_points, check_weights

_EMPTY_INDICES = np.empty(0, dtype=np.int64)

_BOUND_SAFETY = 1e-12
_MIN_RECOMPUTE_ROWS = 8


# ----------------------------------------------------------------- quadtree
@dataclass
class PreSweepQuadtreeEmbedding:
    """Frozen PR-1..4 quadtree: doubled lattice + per-level ``hash_rows``."""

    max_levels: int = 32
    seed: SeedLike = None
    spread: Optional[float] = None
    delta_: float = field(default=0.0, init=False)
    shift_: Optional[np.ndarray] = field(default=None, init=False, repr=False)
    origin_: Optional[np.ndarray] = field(default=None, init=False, repr=False)
    dimension_: int = field(default=0, init=False)
    n_points_: int = field(default=0, init=False)
    level_cell_ids_: List[np.ndarray] = field(default_factory=list, init=False, repr=False)
    level_order_: List[np.ndarray] = field(default_factory=list, init=False, repr=False)
    level_offsets_: List[np.ndarray] = field(default_factory=list, init=False, repr=False)
    level_distance_table_: Optional[np.ndarray] = field(default=None, init=False, repr=False)

    def fit(self, points: np.ndarray) -> "PreSweepQuadtreeEmbedding":
        points = check_points(points)
        self.n_points_, self.dimension_ = points.shape
        self.max_levels = check_integer(self.max_levels, name="max_levels")
        generator = as_generator(self.seed)

        self.origin_ = points[0].copy()
        shifted_points = points - self.origin_[None, :]
        norms = np.sqrt(np.einsum("ij,ij->i", shifted_points, shifted_points))
        self.delta_ = float(norms.max())
        if self.delta_ <= 0:
            self.delta_ = 1.0
        shift_scalar = float(generator.uniform(0.0, self.delta_))
        self.shift_ = np.full(self.dimension_, shift_scalar, dtype=np.float64)
        shifted_points = shifted_points + self.shift_[None, :]

        if self.spread is not None:
            spread = float(self.spread)
        else:
            spread = compute_spread(points, seed=generator)
        depth_cap = min(self.max_levels, max(1, int(math.ceil(math.log2(spread))) + 2))

        self.level_cell_ids_ = []
        self.level_order_ = []
        self.level_offsets_ = []

        scaled = shifted_points / self.cell_side(0)
        lattice = np.floor(scaled).astype(np.int64)
        frac = scaled - lattice
        for level in range(depth_cap + 1):
            if level > 0:
                bits = frac >= 0.5
                np.multiply(lattice, 2, out=lattice)
                lattice += bits
                np.multiply(frac, 2.0, out=frac)
                frac -= bits
            cell_ids, order, offsets = _presweep_csr_group(hash_rows(lattice))
            self.level_cell_ids_.append(cell_ids)
            self.level_order_.append(order)
            self.level_offsets_.append(offsets)
            if offsets.shape[0] - 1 >= self.n_points_:
                break

        self._build_distance_table()
        return self

    def _build_distance_table(self) -> None:
        depth = self.depth
        table = np.zeros(depth + 1, dtype=np.float64)
        for level in range(-1, depth - 1):
            total = 0.0
            for below in range(level + 1, depth):
                total += self.edge_length(below)
            table[level + 1] = 2.0 * total
        self.level_distance_table_ = table

    @property
    def depth(self) -> int:
        return len(self.level_cell_ids_)

    def cell_side(self, level: int) -> float:
        return (2.0 * self.delta_) * (2.0 ** (-level))

    def edge_length(self, level: int) -> float:
        return math.sqrt(self.dimension_) * self.cell_side(level)

    def distance_from_shared_level(self, level: int) -> float:
        if level >= self.depth - 1:
            return 0.0
        return float(self.level_distance_table_[max(level, -1) + 1])

    def deepest_shared_level(self, first: int, second: int) -> int:
        shared = -1
        for level in range(self.depth):
            if self.level_cell_ids_[level][first] == self.level_cell_ids_[level][second]:
                shared = level
            else:
                break
        return shared

    def tree_distance(self, first: int, second: int) -> float:
        if first == second:
            return 0.0
        return self.distance_from_shared_level(self.deepest_shared_level(first, second))

    def cell_of(self, point_index: int, level: int) -> int:
        return int(self.level_cell_ids_[level][point_index])

    def points_in_cell(self, level: int, cell_id: int) -> np.ndarray:
        offsets = self.level_offsets_[level]
        if cell_id < 0 or cell_id >= offsets.shape[0] - 1:
            return _EMPTY_INDICES
        return self.level_order_[level][offsets[cell_id] : offsets[cell_id + 1]]

    def occupied_cells(self, level: int) -> int:
        return self.level_offsets_[level].shape[0] - 1


def _presweep_csr_group(keys: np.ndarray) -> tuple:
    """Frozen copy of the PR-1 ``_csr_group`` (full stable argsort per level)."""
    n = keys.shape[0]
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    starts = np.empty(n, dtype=bool)
    starts[0] = True
    np.not_equal(sorted_keys[1:], sorted_keys[:-1], out=starts[1:])
    ids_in_order = np.cumsum(starts, dtype=np.int64) - 1
    cell_ids = np.empty(n, dtype=np.int64)
    cell_ids[order] = ids_in_order
    offsets = np.flatnonzero(starts)
    offsets = np.concatenate([offsets, [n]]).astype(np.int64)
    return cell_ids, order, offsets


# -------------------------------------------------------------------- lloyd
def _assigned_squared_distances(
    points: np.ndarray, centers: np.ndarray, assignment: np.ndarray
) -> np.ndarray:
    delta = points - centers[assignment]
    return np.einsum("ij,ij->i", delta, delta)


def _update_centers(
    points: np.ndarray,
    weights: np.ndarray,
    assignment: np.ndarray,
    squared: np.ndarray,
    centers: np.ndarray,
    generator: np.random.Generator,
) -> np.ndarray:
    k = centers.shape[0]
    n = points.shape[0]
    new_centers = centers.copy()
    counts = np.bincount(assignment, weights=weights, minlength=k)
    weighted = weights[:, None] * points
    sums = np.empty_like(centers)
    for coordinate in range(points.shape[1]):
        sums[:, coordinate] = np.bincount(
            assignment, weights=weighted[:, coordinate], minlength=k
        )
    occupied = counts > 0
    new_centers[occupied] = sums[occupied] / counts[occupied, None]
    empty = np.flatnonzero(~occupied)
    if empty.size:
        mass = weights * squared
        total = float(mass.sum())
        if total <= 0 or not np.isfinite(total):
            replacement = generator.choice(n, size=empty.size, replace=empty.size > n)
        else:
            distinct = empty.size > 1 and int(np.count_nonzero(mass > 0)) >= empty.size
            if distinct:
                replacement = generator.choice(
                    n, size=empty.size, replace=False, p=mass / total
                )
            else:
                replacement = generator.choice(
                    n, size=empty.size, replace=True, p=mass / total
                )
        new_centers[empty] = points[replacement]
    return new_centers


def _presweep_nearest_two(points: np.ndarray, centers: np.ndarray):
    """Frozen PR-2 suspect kernel: argmin then masked second min per tile."""
    n = points.shape[0]
    k = centers.shape[0]
    center_norms = np.einsum("ij,ij->i", centers, centers)
    best = np.empty(n, dtype=np.float64)
    second = np.empty(n, dtype=np.float64)
    assignment = np.empty(n, dtype=np.int64)
    rows = _chunk_rows(k, DEFAULT_CHUNK_ELEMENTS)
    for start in range(0, n, rows):
        stop = min(start + rows, n)
        block = points[start:stop]
        block_norms = np.einsum("ij,ij->i", block, block)
        squared = block_norms[:, None] + center_norms[None, :] - 2.0 * (block @ centers.T)
        np.maximum(squared, 0.0, out=squared)
        local = np.argmin(squared, axis=1)
        local_rows = np.arange(stop - start)
        assignment[start:stop] = local
        best[start:stop] = squared[local_rows, local]
        if k >= 2:
            squared[local_rows, local] = np.inf
            second[start:stop] = squared.min(axis=1)
        else:
            second[start:stop] = np.inf
    return best, second, assignment


def presweep_kmeans(
    points: np.ndarray,
    k: int,
    *,
    weights: Optional[np.ndarray] = None,
    max_iterations: int = 50,
    tolerance: float = 1e-4,
    initial_centers: Optional[np.ndarray] = None,
    seed: SeedLike = None,
) -> KMeansResult:
    """Frozen PR-2 pruned Lloyd loop (single running lower bound per point)."""
    points = check_points(points)
    n = points.shape[0]
    k = check_integer(k, name="k")
    weights = check_weights(weights, n)
    generator = as_generator(seed)

    if initial_centers is not None:
        centers = np.asarray(initial_centers, dtype=np.float64).copy()
        if centers.ndim != 2 or centers.shape[1] != points.shape[1]:
            raise ValueError("initial_centers must be a (k, d) array matching the data dimension")
    else:
        centers = kmeans_plus_plus(points, min(k, n), weights=weights, z=2, seed=generator).centers

    best_sq, second_sq, assignment = _presweep_nearest_two(points, centers)
    lower = np.sqrt(second_sq) * (1.0 - _BOUND_SAFETY)
    squared = _assigned_squared_distances(points, centers, assignment)
    previous_cost = np.inf
    cost = np.inf
    converged = False
    iterations = 0
    recomputed = 0
    for iterations in range(1, max_iterations + 1):
        new_centers = _update_centers(points, weights, assignment, squared, centers, generator)
        movement = new_centers - centers
        drift = np.sqrt(np.einsum("ij,ij->i", movement, movement))
        centers = new_centers
        if drift.size >= 2:
            top = int(np.argmax(drift))
            max_drift = float(drift[top]) * (1.0 + _BOUND_SAFETY)
            runner_up = float(np.partition(drift, -2)[-2]) * (1.0 + _BOUND_SAFETY)
            lower -= np.where(assignment == top, runner_up, max_drift)
        elif drift.size:
            lower -= float(drift[0]) * (1.0 + _BOUND_SAFETY)
        squared = _assigned_squared_distances(points, centers, assignment)
        upper = np.sqrt(squared) * (1.0 + _BOUND_SAFETY)
        suspects = np.flatnonzero(upper >= lower)
        if suspects.size:
            recompute = suspects
            if recompute.size < min(n, _MIN_RECOMPUTE_ROWS):
                recompute = np.unique(
                    np.concatenate([suspects, np.arange(min(n, _MIN_RECOMPUTE_ROWS))])
                )
            r_best, r_second, r_assignment = _presweep_nearest_two(points[recompute], centers)
            assignment[recompute] = r_assignment
            lower[recompute] = np.sqrt(r_second) * (1.0 - _BOUND_SAFETY)
            squared[recompute] = _assigned_squared_distances(
                points[recompute], centers, assignment[recompute]
            )
            recomputed += recompute.size
        cost = float(np.dot(weights, squared))
        if previous_cost < np.inf and previous_cost - cost <= tolerance * max(previous_cost, 1e-12):
            converged = True
            break
        previous_cost = cost
    fraction = recomputed / float(n * iterations) if iterations else 0.0
    return KMeansResult(
        centers=centers,
        assignment=assignment,
        cost=cost,
        iterations=iterations,
        converged=converged,
        recompute_fraction=fraction,
    )

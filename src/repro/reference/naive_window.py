"""Frozen recompute-from-window oracle for the windowed streaming tree.

This module pins the *semantics* of :mod:`repro.streaming.window` the same
way :mod:`repro.reference.naive_lloyd` pins the pruned Lloyd engine: by an
independent, naive reimplementation.  :class:`NaiveWindowReference` keeps
**every raw block ever streamed** and recomputes the live window — member
blocks, decayed weights, bounding box — from scratch on every query, with
its own arithmetic for expiry (``index > now - window_blocks``) and decay
(``0.5 ** ((now - then) / half_life)`` applied in one step per block, never
incrementally).  The windowed tree must agree with it:

* the tree's live bucket ranges must cover exactly the oracle's live block
  indices (``tests/test_windowed_stream.py``),
* in lossless configurations (``coreset_size`` at least the window size)
  the tree's retained point multiset must match :meth:`window_points`
  exactly and its weights the single-step decay factors to float rounding
  (the tree applies the same mathematical factor as a telescoping product
  across folds), and
* :meth:`compress` — one direct compression of the recomputed window — is
  the distortion-parity and perf baseline (``windowed_stream_*`` bench
  rows): what a consumer would pay to rebuild the window summary from
  retained raw blocks on every query.

The expiry and decay arithmetic here is deliberately **not** imported from
the live :class:`~repro.streaming.window.WindowPolicy` objects — a change
to the live semantics must consciously re-freeze this file for the
equivalence claim to stay meaningful.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.core.base import CoresetConstruction
from repro.core.coreset import Coreset
from repro.utils.rng import SeedLike


class NaiveWindowReference:
    """Keep all raw blocks; recompute the live window from scratch per query.

    Parameters
    ----------
    window_blocks:
        Sliding count window: only the last ``window_blocks`` blocks are
        live.  ``None`` keeps every block live.
    half_life:
        Exponential decay: the weight of a block stamped ``t`` observed at
        time ``T`` is scaled by ``0.5 ** ((T - t) / half_life)``.  ``None``
        applies no decay.  Timestamps default to block indices.
    """

    def __init__(
        self,
        *,
        window_blocks: Optional[int] = None,
        half_life: Optional[float] = None,
    ) -> None:
        if window_blocks is not None and int(window_blocks) < 1:
            raise ValueError(f"window_blocks must be >= 1, got {window_blocks}")
        if half_life is not None and not float(half_life) > 0:
            raise ValueError(f"half_life must be positive, got {half_life}")
        self.window_blocks = None if window_blocks is None else int(window_blocks)
        self.half_life = None if half_life is None else float(half_life)
        self._blocks: List[Tuple[float, np.ndarray, np.ndarray]] = []

    # --------------------------------------------------------------- ingest
    def add_block(
        self,
        points: np.ndarray,
        weights: Optional[np.ndarray] = None,
        timestamp: Optional[float] = None,
    ) -> None:
        """Record one block verbatim (copied — the oracle owns its history)."""
        points = np.array(points, dtype=np.float64)
        if weights is None:
            weights = np.ones(points.shape[0], dtype=np.float64)
        else:
            weights = np.array(weights, dtype=np.float64)
        if weights.shape[0] != points.shape[0]:
            raise ValueError("weights must have one entry per point")
        stamp = float(len(self._blocks)) if timestamp is None else float(timestamp)
        if self._blocks and stamp < self._blocks[-1][0]:
            raise ValueError(
                f"timestamps must be non-decreasing: got {stamp} after {self._blocks[-1][0]}"
            )
        self._blocks.append((stamp, points, weights))

    @property
    def blocks_seen(self) -> int:
        return len(self._blocks)

    # --------------------------------------------------------------- queries
    def live_indices(self) -> List[int]:
        """Block indices inside the current window, recomputed from scratch."""
        now = len(self._blocks) - 1
        if now < 0:
            return []
        if self.window_blocks is None:
            return list(range(now + 1))
        return [index for index in range(now + 1) if index > now - self.window_blocks]

    def decay_factor(self, then: float) -> float:
        """Single-step decay of mass stamped ``then`` at the newest stamp."""
        if self.half_life is None or not self._blocks:
            return 1.0
        now = self._blocks[-1][0]
        return float(0.5 ** ((now - then) / self.half_life))

    def window_points(self) -> Tuple[np.ndarray, np.ndarray]:
        """The live window as ``(points, decayed weights)``, arrival order."""
        live = self.live_indices()
        if not live:
            raise ValueError("the window is empty: no blocks were added")
        points = np.concatenate([self._blocks[index][1] for index in live], axis=0)
        weights = np.concatenate(
            [
                self._blocks[index][2] * self.decay_factor(self._blocks[index][0])
                for index in live
            ],
            axis=0,
        )
        return points, weights

    def window_bounds(self) -> Tuple[np.ndarray, np.ndarray]:
        """Bounding box ``(low, high)`` of the live window's raw points."""
        points, _ = self.window_points()
        return points.min(axis=0), points.max(axis=0)

    def compress(
        self,
        sampler: CoresetConstruction,
        coreset_size: int,
        *,
        seed: SeedLike = None,
    ) -> Coreset:
        """One direct compression of the recomputed window.

        This is the "rebuild from retained raw blocks" baseline: everything
        the window holds is concatenated and compressed in a single
        sampler call (no tree, no caches, no incremental state).
        """
        points, weights = self.window_points()
        size = min(int(coreset_size), points.shape[0])
        if points.shape[0] <= size:
            return Coreset(
                points=points,
                weights=weights,
                indices=np.arange(points.shape[0]),
                method="naive_window",
            )
        return sampler.sample(points, size, weights=weights, seed=seed)

"""Frozen reference implementations used for equivalence testing and benchmarking.

The modules in this package are verbatim snapshots of hot-path code at a
fixed revision: the ``seed_*`` / ``naive_*`` modules freeze the original
seed revision, :mod:`~repro.reference.presweep_hotpath` freezes the
PR-1..4 optimized implementations that the PR-5 constant-factor sweep
replaced, and :mod:`~repro.reference.prenative_hotpath` freezes the PR-5/6
numpy hot paths that the compiled kernel tier replaced.  They are **not** maintained for speed and must not be used by
library code: their sole purpose is to

* serve as the golden baseline for the equivalence tests (the optimized
  quadtree must report the same cells and tree distances as the seed), and
* provide the baseline timing column of ``benchmarks/bench_perf_hotpaths.py``
  so every benchmark run measures baseline-vs-optimized in the same process
  on the same hardware (seed columns for the original rows, pre-sweep
  columns for the ``*_incr`` / ``*_fused`` rows).

Do not modify these snapshots when optimizing the live implementations —
that would silently move the goalposts of both the tests and the benchmark.
"""

from repro.reference.naive_lloyd import naive_kmeans
from repro.reference.naive_window import NaiveWindowReference
from repro.reference.prenative_hotpath import PreNativeQuadtreeEmbedding, prenative_kmeans
from repro.reference.presweep_hotpath import PreSweepQuadtreeEmbedding, presweep_kmeans
from repro.reference.seed_hotpath import SeedQuadtreeEmbedding, seed_fast_kmeans_plus_plus
from repro.reference.seed_streaming import (
    SeedMergeReduceTree,
    seed_compute_spread,
    seed_stream_coreset,
    seed_streamkm_reduce,
)

__all__ = [
    "PreNativeQuadtreeEmbedding",
    "PreSweepQuadtreeEmbedding",
    "SeedQuadtreeEmbedding",
    "SeedMergeReduceTree",
    "NaiveWindowReference",
    "naive_kmeans",
    "prenative_kmeans",
    "presweep_kmeans",
    "seed_compute_spread",
    "seed_fast_kmeans_plus_plus",
    "seed_stream_coreset",
    "seed_streamkm_reduce",
]

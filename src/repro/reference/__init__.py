"""Frozen reference implementations used for equivalence testing and benchmarking.

The modules in this package are verbatim snapshots of hot-path code as it
stood in the seed revision of the repository.  They are **not** maintained
for speed and must not be used by library code: their sole purpose is to

* serve as the golden baseline for the equivalence tests (the optimized
  quadtree must report the same cells and tree distances as the seed), and
* provide the "seed" timing column of ``benchmarks/bench_perf_hotpaths.py``
  so every benchmark run measures seed-vs-optimized in the same process on
  the same hardware.

Do not modify these snapshots when optimizing the live implementations —
that would silently move the goalposts of both the tests and the benchmark.
"""

from repro.reference.naive_lloyd import naive_kmeans
from repro.reference.seed_hotpath import SeedQuadtreeEmbedding, seed_fast_kmeans_plus_plus
from repro.reference.seed_streaming import (
    SeedMergeReduceTree,
    seed_compute_spread,
    seed_stream_coreset,
    seed_streamkm_reduce,
)

__all__ = [
    "SeedQuadtreeEmbedding",
    "SeedMergeReduceTree",
    "naive_kmeans",
    "seed_compute_spread",
    "seed_fast_kmeans_plus_plus",
    "seed_stream_coreset",
    "seed_streamkm_reduce",
]

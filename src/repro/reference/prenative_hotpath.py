"""PR-5/6-revision snapshots of the quadtree fit and the pruned Lloyd engine.

The compiled kernel tier (:mod:`repro.native`) replaces the per-level
grouping sort of the quadtree fit and the warm-phase passes of the pruned
Lloyd engine with native kernels.  Those kernels are pinned bit-identical
to the numpy implementations they replace, so the only honest way to time
them is against *those* implementations — not against the seed, whose
columns the pre-existing bench rows already track.  This module freezes the
numpy hot paths exactly as they stood before the native tier was wired in:

* :class:`PreNativeQuadtreeEmbedding` — the PR-5 fit: incremental compact
  keys served from the uint32 digit matrix and ``np.packbits`` pattern
  LUTs, with every level grouped by a full ``np.argsort(kind="stable")``
  (:func:`_prenative_csr_group`).
* :func:`prenative_kmeans` — the PR-5 pruned engine: epoch-anchored
  cumulative drift bounds, the take/subtract/einsum bound refresh, the
  clear-only prove-stay pass, and the flat-bincount M-step.

Freeze policy matches :mod:`repro.reference.presweep_hotpath`: bodies are
copied, not imported, so optimizing the live modules cannot silently move
the baseline.  Only primitives the native tier leaves untouched
(``hash_rows``, ``compute_spread``, the chunk policy, validation, seeding)
are imported.  Both snapshots remain bit-identical to their live
counterparts in *either* tier mode — which is what lets
``benchmarks/bench_perf_hotpaths.py`` time the native kernels as a pure
constant-factor comparison (``quadtree_fit_native_*`` / ``lloyd_native_*``
rows).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.clustering.kmeans_pp import kmeans_plus_plus
from repro.clustering.lloyd import KMeansResult
from repro.geometry.distances import DEFAULT_CHUNK_ELEMENTS, _chunk_rows
from repro.geometry.grid import _hash_multipliers, hash_rows
from repro.geometry.quadtree import compute_spread
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_integer, check_points, check_weights

_EMPTY_INDICES = np.empty(0, dtype=np.int64)

_MAX_DIGIT_LEVELS = 62
_MAX_UINT32_DIGIT_LEVELS = 32

_BOUND_SAFETY = 1e-12
_MIN_RECOMPUTE_ROWS = 8
_PROVE_STAY_MARGIN = 1e-9
_PROVE_STAY_FRACTION = 8
_THIRD_DISTANCE_ROW_LIMIT = 16384

_PATTERN_LUT_CACHE: dict = {}


def _pattern_tables(dimension: int) -> list:
    tables = _PATTERN_LUT_CACHE.get(dimension)
    if tables is None:
        multipliers = _hash_multipliers(dimension).view(np.int64)
        tables = []
        for start in range(0, dimension, 8):
            chunk = multipliers[start : start + 8]
            lut = np.zeros(1, dtype=np.int64)
            for multiplier in chunk:
                with np.errstate(over="ignore"):
                    lut = np.concatenate([lut, lut + multiplier])
            if lut.shape[0] < 256:
                lut = np.concatenate([lut] * (256 // lut.shape[0]))
            tables.append(lut)
        _PATTERN_LUT_CACHE[dimension] = tables
    return tables


# ----------------------------------------------------------------- quadtree
@dataclass
class PreNativeQuadtreeEmbedding:
    """Frozen PR-5 quadtree: incremental keys + numpy stable argsort grouping."""

    max_levels: int = 32
    seed: SeedLike = None
    spread: Optional[float] = None
    delta_: float = field(default=0.0, init=False)
    shift_: Optional[np.ndarray] = field(default=None, init=False, repr=False)
    origin_: Optional[np.ndarray] = field(default=None, init=False, repr=False)
    dimension_: int = field(default=0, init=False)
    n_points_: int = field(default=0, init=False)
    level_cell_ids_: List[np.ndarray] = field(default_factory=list, init=False, repr=False)
    level_order_: List[np.ndarray] = field(default_factory=list, init=False, repr=False)
    level_offsets_: List[np.ndarray] = field(default_factory=list, init=False, repr=False)
    level_distance_table_: Optional[np.ndarray] = field(default=None, init=False, repr=False)

    def fit(self, points: np.ndarray) -> "PreNativeQuadtreeEmbedding":
        points = check_points(points)
        self.n_points_, self.dimension_ = points.shape
        self.max_levels = check_integer(self.max_levels, name="max_levels")
        generator = as_generator(self.seed)

        self.origin_ = points[0].copy()
        shifted_points = points - self.origin_[None, :]
        squared_norms = np.einsum("ij,ij->i", shifted_points, shifted_points)
        self.delta_ = float(math.sqrt(squared_norms.max()))
        if self.delta_ <= 0:
            self.delta_ = 1.0
        shift_scalar = float(generator.uniform(0.0, self.delta_))
        self.shift_ = np.full(self.dimension_, shift_scalar, dtype=np.float64)
        shifted_points += shift_scalar

        if self.spread is not None:
            spread = float(self.spread)
        else:
            spread = compute_spread(points, seed=generator)
        depth_cap = min(self.max_levels, max(1, int(math.ceil(math.log2(spread))) + 2))

        self.level_cell_ids_ = []
        self.level_order_ = []
        self.level_offsets_ = []

        scaled = shifted_points
        scaled /= self.cell_side(0)
        lattice = np.floor(scaled).astype(np.int64)
        keys = hash_rows(lattice)
        scratch = _prenative_csr_scratch(self.n_points_)
        increment = np.empty(self.n_points_, dtype=np.int64)
        frac = scaled
        frac -= lattice
        residual = None
        digits = None
        bits = None
        tables = None
        if depth_cap <= _MAX_UINT32_DIGIT_LEVELS:
            residual = (frac * (2.0**depth_cap)).astype(np.uint32)
            np.minimum(residual, np.uint32((1 << depth_cap) - 1), out=residual)
            residual <<= np.uint32(32 - depth_cap)
            tables = _pattern_tables(self.dimension_)
            padded_width = (self.dimension_ + 7) // 8 * 8
            flag_buffer = np.zeros((self.n_points_, padded_width), dtype=bool)
            flag_view = flag_buffer[:, : self.dimension_]
        elif depth_cap <= _MAX_DIGIT_LEVELS:
            digits = (frac * (2.0**depth_cap)).astype(np.int64)
            np.minimum(digits, (np.int64(1) << depth_cap) - 1, out=digits)
            bits = np.empty_like(digits)
            multipliers = _hash_multipliers(self.dimension_).view(np.int64)
        for level in range(depth_cap + 1):
            if level > 0:
                if residual is not None:
                    np.greater_equal(residual, np.uint32(0x80000000), out=flag_view)
                    residual <<= np.uint32(1)
                    packed = np.packbits(
                        flag_buffer.reshape(-1), bitorder="little"
                    ).reshape(self.n_points_, padded_width // 8)
                    np.take(tables[0], packed[:, 0], out=increment)
                    for byte, lut in enumerate(tables[1:], start=1):
                        increment += lut[packed[:, byte]]
                else:
                    if digits is not None:
                        np.right_shift(digits, np.int64(depth_cap - level), out=bits)
                        np.bitwise_and(bits, np.int64(1), out=bits)
                    else:
                        flags = frac >= 0.5
                        np.multiply(frac, 2.0, out=frac)
                        frac -= flags
                        bits = flags.astype(np.int64)
                        multipliers = _hash_multipliers(self.dimension_).view(np.int64)
                    np.matmul(bits, multipliers, out=increment)
                np.left_shift(keys, np.uint64(1), out=keys)
                keys += increment.view(np.uint64)
            cell_ids, order, offsets = _prenative_csr_group(keys, scratch)
            self.level_cell_ids_.append(cell_ids)
            self.level_order_.append(order)
            self.level_offsets_.append(offsets)
            if offsets.shape[0] - 1 >= self.n_points_:
                break

        self._build_distance_table()
        return self

    def _build_distance_table(self) -> None:
        depth = self.depth
        table = np.zeros(depth + 1, dtype=np.float64)
        for level in range(-1, depth - 1):
            total = 0.0
            for below in range(level + 1, depth):
                total += self.edge_length(below)
            table[level + 1] = 2.0 * total
        self.level_distance_table_ = table

    @property
    def depth(self) -> int:
        return len(self.level_cell_ids_)

    def cell_side(self, level: int) -> float:
        return (2.0 * self.delta_) * (2.0 ** (-level))

    def edge_length(self, level: int) -> float:
        return math.sqrt(self.dimension_) * self.cell_side(level)

    def distance_from_shared_level(self, level: int) -> float:
        if level >= self.depth - 1:
            return 0.0
        return float(self.level_distance_table_[max(level, -1) + 1])

    def deepest_shared_level(self, first: int, second: int) -> int:
        shared = -1
        for level in range(self.depth):
            if self.level_cell_ids_[level][first] == self.level_cell_ids_[level][second]:
                shared = level
            else:
                break
        return shared

    def tree_distance(self, first: int, second: int) -> float:
        if first == second:
            return 0.0
        return self.distance_from_shared_level(self.deepest_shared_level(first, second))

    def cell_of(self, point_index: int, level: int) -> int:
        return int(self.level_cell_ids_[level][point_index])

    def points_in_cell(self, level: int, cell_id: int) -> np.ndarray:
        offsets = self.level_offsets_[level]
        if cell_id < 0 or cell_id >= offsets.shape[0] - 1:
            return _EMPTY_INDICES
        return self.level_order_[level][offsets[cell_id] : offsets[cell_id + 1]]

    def occupied_cells(self, level: int) -> int:
        return self.level_offsets_[level].shape[0] - 1


def _prenative_csr_scratch(n: int) -> tuple:
    return (
        np.empty(n, dtype=np.uint64),
        np.empty(n, dtype=bool),
        np.empty(n, dtype=np.int64),
    )


def _prenative_csr_group(keys: np.ndarray, scratch: Optional[tuple] = None) -> tuple:
    """Frozen copy of the PR-5 ``_csr_group`` (numpy stable argsort per level)."""
    n = keys.shape[0]
    if scratch is None:
        scratch = _prenative_csr_scratch(n)
    sorted_keys, starts, ids_in_order = scratch
    order = np.argsort(keys, kind="stable")
    np.take(keys, order, out=sorted_keys)
    starts[0] = True
    np.not_equal(sorted_keys[1:], sorted_keys[:-1], out=starts[1:])
    np.cumsum(starts, dtype=np.int64, out=ids_in_order)
    ids_in_order -= 1
    cell_ids = np.empty(n, dtype=np.int64)
    cell_ids[order] = ids_in_order
    boundaries = np.flatnonzero(starts)
    offsets = np.empty(boundaries.shape[0] + 1, dtype=np.int64)
    offsets[:-1] = boundaries
    offsets[-1] = n
    return cell_ids, order, offsets


# -------------------------------------------------------------------- lloyd
def _assigned_squared_distances(
    points: np.ndarray, centers: np.ndarray, assignment: np.ndarray
) -> np.ndarray:
    delta = points - centers[assignment]
    return np.einsum("ij,ij->i", delta, delta)


def _nearest_three(
    points: np.ndarray, centers: np.ndarray, third_limit: Optional[int] = None
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    n = points.shape[0]
    k = centers.shape[0]
    center_norms = np.einsum("ij,ij->i", centers, centers)
    best = np.empty(n, dtype=np.float64)
    second = np.empty(n, dtype=np.float64)
    third = np.empty(n, dtype=np.float64)
    assignment = np.empty(n, dtype=np.int64)
    want_detail = third_limit is None or n <= third_limit
    want_third = k >= 3 and want_detail
    if not want_third:
        third.fill(np.inf)
    if k >= 2 and want_detail:
        second_ids = np.empty(n, dtype=np.int64)
    else:
        second_ids = np.full(n, k, dtype=np.int64)
    rows = _chunk_rows(k, DEFAULT_CHUNK_ELEMENTS)
    for start in range(0, n, rows):
        stop = min(start + rows, n)
        block = points[start:stop]
        block_norms = np.einsum("ij,ij->i", block, block)
        squared = block_norms[:, None] + center_norms[None, :] - 2.0 * (block @ centers.T)
        np.maximum(squared, 0.0, out=squared)
        local = np.argmin(squared, axis=1)
        local_rows = np.arange(stop - start)
        assignment[start:stop] = local
        best[start:stop] = squared[local_rows, local]
        if k >= 2:
            squared[local_rows, local] = np.inf
            if want_detail:
                runner = np.argmin(squared, axis=1)
                second_ids[start:stop] = runner
                second[start:stop] = squared[local_rows, runner]
                if want_third:
                    squared[local_rows, runner] = np.inf
                    third[start:stop] = squared.min(axis=1)
            else:
                second[start:stop] = squared.min(axis=1)
        else:
            second[start:stop] = np.inf
    return best, second, second_ids, third, assignment


def _update_centers(
    points: np.ndarray,
    weights: np.ndarray,
    assignment: np.ndarray,
    squared: np.ndarray,
    centers: np.ndarray,
    generator: np.random.Generator,
    weighted: np.ndarray,
    codes: np.ndarray,
) -> np.ndarray:
    k = centers.shape[0]
    d = points.shape[1]
    n = points.shape[0]
    new_centers = centers.copy()
    counts = np.bincount(assignment, weights=weights, minlength=k)
    sums = np.bincount(codes.ravel(), weights=weighted.ravel(), minlength=k * d).reshape(
        k, d
    )
    occupied = counts > 0
    new_centers[occupied] = sums[occupied] / counts[occupied, None]
    empty = np.flatnonzero(~occupied)
    if empty.size:
        mass = weights * squared
        total = float(mass.sum())
        if total <= 0 or not np.isfinite(total):
            replacement = generator.choice(n, size=empty.size, replace=empty.size > n)
        else:
            distinct = empty.size > 1 and int(np.count_nonzero(mass > 0)) >= empty.size
            if distinct:
                replacement = generator.choice(
                    n, size=empty.size, replace=False, p=mass / total
                )
            else:
                replacement = generator.choice(
                    n, size=empty.size, replace=True, p=mass / total
                )
        new_centers[empty] = points[replacement]
    return new_centers


def prenative_kmeans(
    points: np.ndarray,
    k: int,
    *,
    weights: Optional[np.ndarray] = None,
    max_iterations: int = 50,
    tolerance: float = 1e-4,
    initial_centers: Optional[np.ndarray] = None,
    seed: SeedLike = None,
) -> KMeansResult:
    """Frozen PR-5 pruned Lloyd loop (numpy warm phase, clear-only prove-stay)."""
    points = check_points(points)
    n = points.shape[0]
    k = check_integer(k, name="k")
    weights = check_weights(weights, n)
    generator = as_generator(seed)

    if initial_centers is not None:
        centers = np.asarray(initial_centers, dtype=np.float64).copy()
        if centers.ndim != 2 or centers.shape[1] != points.shape[1]:
            raise ValueError("initial_centers must be a (k, d) array matching the data dimension")
    else:
        centers = kmeans_plus_plus(points, min(k, n), weights=weights, z=2, seed=generator).centers

    best_sq, second_sq, second_ids, third_sq, assignment = _nearest_three(
        points, centers, third_limit=_THIRD_DISTANCE_ROW_LIMIT
    )
    base_second = np.sqrt(second_sq) * (1.0 - _BOUND_SAFETY)
    base_third = np.where(np.isfinite(third_sq), np.sqrt(third_sq) * (1.0 - _BOUND_SAFETY), base_second)
    epoch = np.zeros(n, dtype=np.int64)
    eroded = base_second.copy()
    cumulative = [np.zeros(k, dtype=np.float64)]
    squared = _assigned_squared_distances(points, centers, assignment)
    gather = np.empty_like(points)
    delta_buffer = np.empty_like(points)
    weighted = weights[:, None] * points
    coordinate_offsets = np.arange(points.shape[1], dtype=np.int64)
    codes = assignment[:, None] * points.shape[1] + coordinate_offsets

    def _refresh_squared(target: np.ndarray) -> np.ndarray:
        np.take(centers, assignment, axis=0, out=delta_buffer)
        np.subtract(points, delta_buffer, out=delta_buffer)
        return np.einsum("ij,ij->i", delta_buffer, delta_buffer, out=target)

    previous_cost = np.inf
    cost = np.inf
    converged = False
    iterations = 0
    recomputed = 0
    for iterations in range(1, max_iterations + 1):
        new_centers = _update_centers(
            points, weights, assignment, squared, centers, generator, weighted, codes
        )
        movement = new_centers - centers
        drift = np.sqrt(np.einsum("ij,ij->i", movement, movement))
        centers = new_centers
        cumulative.append(cumulative[-1] + drift)
        current = cumulative[-1]

        squared = _refresh_squared(squared)
        upper = np.sqrt(squared) * (1.0 + _BOUND_SAFETY)
        if drift.size:
            eroded -= float(drift.max()) * (1.0 + _BOUND_SAFETY)
        maybe = np.flatnonzero(upper >= eroded)
        suspects = maybe
        if maybe.size and k >= 2:
            epoch_m = epoch[maybe]
            epoch_counts = np.bincount(epoch_m, minlength=len(cumulative))
            present = np.flatnonzero(epoch_counts)
            deltas = (current[None, :] - np.stack([cumulative[e] for e in present])) * (
                1.0 + _BOUND_SAFETY
            )
            deltas = np.concatenate([deltas, deltas[:, :k].max(axis=1, keepdims=True)], axis=1)
            position = np.empty(len(cumulative), dtype=np.int64)
            position[present] = np.arange(present.size)
            rows_m = position[epoch_m]
            lower = base_second[maybe] - deltas[rows_m, second_ids[maybe]]
            if k >= 3:
                real = deltas[:, :k]
                candidates = np.argpartition(real, k - 3, axis=1)[:, -3:]
                values = np.take_along_axis(real, candidates, axis=1)
                rank = np.argsort(values, axis=1)
                ordered = np.take_along_axis(candidates, rank, axis=1)
                sorted_values = np.take_along_axis(values, rank, axis=1)
                j1, j2 = ordered[:, 2], ordered[:, 1]
                v1, v2, v3 = sorted_values[:, 2], sorted_values[:, 1], sorted_values[:, 0]
                m_j1, m_j2 = j1[rows_m], j2[rows_m]
                m_assignment = assignment[maybe]
                m_second = second_ids[maybe]
                excluded1 = (m_j1 == m_assignment) | (m_j1 == m_second)
                excluded2 = (m_j2 == m_assignment) | (m_j2 == m_second)
                other_drift = np.where(
                    excluded1,
                    np.where(excluded2, v3[rows_m], v2[rows_m]),
                    v1[rows_m],
                )
                np.minimum(lower, base_third[maybe] - other_drift, out=lower)
            eroded[maybe] = lower
            suspects = maybe[upper[maybe] >= lower]
            if 0 < suspects.size <= max(_MIN_RECOMPUTE_ROWS, n // _PROVE_STAY_FRACTION):
                rows_s = position[epoch[suspects]]
                bounds = base_third[suspects][:, None] - deltas[rows_s, :k]
                s_ids = second_ids[suspects]
                surv_rows = np.arange(suspects.size)
                real_s = s_ids < k
                if np.any(real_s):
                    tightened = base_second[suspects] - deltas[rows_s, s_ids]
                    bounds[surv_rows[real_s], s_ids[real_s]] = tightened[real_s]
                candidate = bounds <= upper[suspects][:, None]
                candidate[surv_rows, assignment[suspects]] = False
                pair_row, pair_center = np.nonzero(candidate)
                if pair_row.size > 4 * suspects.size:
                    pass
                elif pair_row.size:
                    pair_points = points[suspects[pair_row]]
                    pair_delta = pair_points - centers[pair_center]
                    pair_squared = np.einsum("ij,ij->i", pair_delta, pair_delta)
                    beaten = pair_squared <= squared[suspects[pair_row]] * (
                        1.0 + _PROVE_STAY_MARGIN
                    )
                    stays = np.ones(suspects.size, dtype=bool)
                    stays[pair_row[beaten]] = False
                    suspects = suspects[~stays]
                else:
                    suspects = suspects[:0]
        if suspects.size:
            recompute = suspects
            if recompute.size < min(n, _MIN_RECOMPUTE_ROWS):
                recompute = np.unique(
                    np.concatenate([suspects, np.arange(min(n, _MIN_RECOMPUTE_ROWS))])
                )
            if recompute.size > n // 2:
                recompute = np.arange(n)
                block = points
            else:
                block = np.take(points, recompute, axis=0, out=gather[: recompute.size])
            r_best, r_second, r_sids, r_third, r_assignment = _nearest_three(
                block, centers, third_limit=_THIRD_DISTANCE_ROW_LIMIT
            )
            assignment[recompute] = r_assignment
            codes[recompute] = r_assignment[:, None] * points.shape[1] + coordinate_offsets
            second_ids[recompute] = r_sids
            new_second = np.sqrt(r_second) * (1.0 - _BOUND_SAFETY)
            base_second[recompute] = new_second
            eroded[recompute] = new_second
            base_third[recompute] = np.where(
                np.isfinite(r_third), np.sqrt(r_third) * (1.0 - _BOUND_SAFETY), new_second
            )
            epoch[recompute] = iterations
            squared[recompute] = _assigned_squared_distances(
                block, centers, assignment[recompute]
            )
            recomputed += recompute.size
        cost = float(np.dot(weights, squared))
        if previous_cost < np.inf and previous_cost - cost <= tolerance * max(
            previous_cost, 1e-12
        ):
            converged = True
            break
        previous_cost = cost
    fraction = recomputed / float(n * iterations) if iterations else 0.0
    return KMeansResult(
        centers=centers,
        assignment=assignment,
        cost=cost,
        iterations=iterations,
        converged=converged,
        recompute_fraction=fraction,
    )

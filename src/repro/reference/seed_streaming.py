"""Frozen seed-revision streaming baselines for the perf harness.

Two frozen components let ``benchmarks/bench_perf_hotpaths.py`` time the
shared-work streaming layer against the behaviour it replaced:

* :func:`seed_compute_spread` — the seed revision's spread estimate: a full
  pairwise-distance matrix over a 2000-point subsample (the live
  :func:`repro.geometry.quadtree.compute_spread` now evaluates only blocked
  windows along a random projection).
* :class:`SeedMergeReduceTree` — the merge-&-reduce tree as it stood before
  per-stream state sharing: no running bounding box, no cached estimate;
  every compression (leaf or reduction) re-derives the spread of its input
  from scratch.  The seed-era :class:`~repro.core.fast_coreset.FastCoreset`
  paid that estimate twice per fit (once for the original points, once for
  the spread-reduced substitute), a cost profile this baseline reproduces by
  paying the two frozen estimates itself and handing the value to the live
  sampler through the ``spread`` hook — the live internals then skip their
  own (now cheaper) estimates, so the frozen cost is neither double-counted
  nor silently replaced by the optimized one.
* :func:`seed_streamkm_reduce` — the StreamKM++ coreset-tree reduction as it
  stood at the seed revision: sequential k-means++ selection (one
  cumulative-sum draw per representative) followed by a second full
  ``(n, m)`` distance block to re-derive the nearest-representative
  assignment that the live reduction now maintains incrementally.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.clustering.kmeans_pp import kmeans_plus_plus
from repro.core.base import CoresetConstruction
from repro.core.coreset import Coreset, merge_coresets
from repro.geometry.distances import squared_point_to_set_distances
from repro.utils.rng import SeedLike, as_generator, random_seed_from
from repro.utils.validation import check_integer, check_points


def seed_compute_spread(
    points: np.ndarray, *, sample_size: int = 2000, seed: SeedLike = 0
) -> float:
    """Seed-revision spread estimate: full pairwise distances on a subsample."""
    points = check_points(points)
    n = points.shape[0]
    if n < 2:
        return 1.0
    generator = as_generator(seed)
    if n > sample_size:
        subset = points[generator.choice(n, size=sample_size, replace=False)]
    else:
        subset = points
    norms = np.einsum("ij,ij->i", subset, subset)
    squared = norms[:, None] + norms[None, :] - 2.0 * (subset @ subset.T)
    np.maximum(squared, 0.0, out=squared)
    positive = squared[squared > 1e-24]
    if positive.size == 0:
        return 1.0
    min_distance = math.sqrt(float(positive.min()))
    span = points.max(axis=0) - points.min(axis=0)
    max_distance = float(np.linalg.norm(span))
    if max_distance <= 0:
        return 1.0
    return max(1.0, max_distance / min_distance)


@dataclass
class SeedMergeReduceTree:
    """Merge-&-reduce without shared stream state (per-compression estimates)."""

    sampler: CoresetConstruction
    coreset_size: int
    seed: SeedLike = None
    levels: Dict[int, Coreset] = field(default_factory=dict)
    reductions: int = 0
    blocks_seen: int = 0

    def __post_init__(self) -> None:
        self.coreset_size = check_integer(self.coreset_size, name="coreset_size")
        self._generator = as_generator(self.seed)

    def _compress(self, points: np.ndarray, weights: np.ndarray) -> Coreset:
        m = min(self.coreset_size, points.shape[0])
        # Two frozen estimates per compression: the seed-era FastCoreset fit
        # estimated the spread of the original points and of the reduced
        # substitute dataset.  The value is handed to the live sampler so
        # its internals do not add a third (optimized) estimate on top.
        estimate = seed_compute_spread(points, seed=self._generator)
        seed_compute_spread(points, seed=self._generator)
        return self.sampler.sample(
            points,
            m,
            weights=weights,
            seed=random_seed_from(self._generator),
            spread=estimate,
        )

    def add_block(self, points: np.ndarray, weights: Optional[np.ndarray] = None) -> None:
        if weights is None:
            weights = np.ones(points.shape[0], dtype=np.float64)
        self.blocks_seen += 1
        current = self._compress(points, weights)
        level = 0
        while level in self.levels:
            partner = self.levels.pop(level)
            merged = merge_coresets([partner, current])
            current = self._compress(merged.points, merged.weights)
            self.reductions += 1
            level += 1
        self.levels[level] = current

    def finalize(self) -> Coreset:
        if not self.levels:
            raise ValueError("no blocks were added to the merge-&-reduce tree")
        survivors = [self.levels[level] for level in sorted(self.levels)]
        combined = survivors[0] if len(survivors) == 1 else merge_coresets(survivors)
        if combined.size > self.coreset_size:
            final = self._compress(combined.points, combined.weights)
            self.reductions += 1
        else:
            final = combined
        final.method = f"seed_merge_reduce[{self.sampler.name}]"
        return final


def seed_stream_coreset(
    points: np.ndarray,
    sampler: CoresetConstruction,
    coreset_size: int,
    *,
    n_blocks: int = 16,
    seed: SeedLike = None,
) -> Coreset:
    """Stream a dataset through the frozen per-block-estimate tree."""
    from repro.streaming.stream import DataStream

    stream = DataStream.with_block_count(points, n_blocks)
    tree = SeedMergeReduceTree(sampler=sampler, coreset_size=coreset_size, seed=seed)
    for block_points, block_weights in stream:
        tree.add_block(block_points, block_weights)
    return tree.finalize()


def seed_streamkm_reduce(
    points: np.ndarray,
    weights: np.ndarray,
    m: int,
    *,
    z: int = 2,
    seed: SeedLike = None,
) -> Coreset:
    """Seed-revision StreamKM++ reduction: sequential seeding + full re-assignment."""
    generator = as_generator(seed)
    m = min(m, points.shape[0])
    seeding = kmeans_plus_plus(points, m, weights=weights, z=z, seed=generator)
    representatives = seeding.centers
    _, assignment = squared_point_to_set_distances(points, representatives)
    representative_weights = np.bincount(
        assignment, weights=weights, minlength=representatives.shape[0]
    )
    occupied = representative_weights > 0
    return Coreset(
        points=representatives[occupied],
        weights=representative_weights[occupied],
        indices=None,
        method="seed_streamkm++",
    )

"""Downstream solution quality (Table 8 of the paper).

A compression with small distortion is faithful, but the paper also asks the
practical question: which compression leads to the *best* clustering of the
original data?  The protocol of Table 8: seed k-means++ on the coreset, run
Lloyd's algorithm on the coreset (both under identical initialisations
across samplers), then evaluate the resulting centers on the full dataset.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.clustering.cost import clustering_cost
from repro.clustering.kmeans_pp import kmeans_plus_plus
from repro.clustering.kmedian import kmedian
from repro.clustering.lloyd import kmeans
from repro.core.coreset import Coreset
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_integer, check_points, check_power


def solution_cost_on_dataset(
    points: np.ndarray,
    coreset: Coreset,
    k: int,
    *,
    z: int = 2,
    lloyd_iterations: int = 10,
    initial_centers: Optional[np.ndarray] = None,
    algorithm: str = "pruned",
    seed: SeedLike = None,
) -> float:
    """Cost on the full dataset of the solution obtained from the coreset.

    Parameters
    ----------
    points:
        Full dataset ``P``.
    coreset:
        The compression used for solving.
    k:
        Number of clusters.
    z:
        1 for k-median, 2 for k-means.
    lloyd_iterations:
        Refinement iterations run on the coreset.
    initial_centers:
        Optional shared initialisation.  Table 8 keeps the initialisation
        identical across samplers within a row; the harness obtains it with
        :func:`shared_initialization` and passes it here.
    algorithm:
        Lloyd engine for the ``z = 2`` refinement — ``"pruned"`` (default)
        or ``"naive"``; the two are bit-identical (see
        :mod:`repro.clustering.lloyd`), so the harness keeps the fast one.
    seed:
        Randomness used when no initialisation is given.
    """
    points = check_points(points)
    check_integer(k, name="k")
    check_power(z)
    generator = as_generator(seed)
    k_effective = min(k, coreset.size)
    if z == 2:
        result = kmeans(
            coreset.points,
            k_effective,
            weights=coreset.weights,
            max_iterations=lloyd_iterations,
            initial_centers=initial_centers,
            algorithm=algorithm,
            seed=generator,
        )
        centers = result.centers
    else:
        result = kmedian(
            coreset.points,
            k_effective,
            weights=coreset.weights,
            max_iterations=max(3, lloyd_iterations // 2),
            initial_centers=initial_centers,
            seed=generator,
        )
        centers = result.centers
    return clustering_cost(points, centers, z=z)


def shared_initialization(
    points: np.ndarray,
    k: int,
    *,
    z: int = 2,
    seed: SeedLike = 0,
) -> np.ndarray:
    """A k-means++ initialisation on the full dataset, shared across samplers.

    Table 8's footnote: "Initializations are identical within each row" —
    computing the seeding once on the original data and handing the same
    centers to every sampler's Lloyd run implements that control.
    """
    solution = kmeans_plus_plus(points, k, z=z, seed=seed)
    return solution.centers

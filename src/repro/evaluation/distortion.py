"""The coreset-distortion metric of Section 5 (introduced in [57]).

Given a compression ``Omega`` of a dataset ``P``, a candidate solution
``C_Omega`` is computed *on the compression* and the metric is

``max( cost(P, C_Omega) / cost(Omega, C_Omega),
       cost(Omega, C_Omega) / cost(P, C_Omega) )``.

If the coreset guarantee holds the value is at most ``1 + epsilon``; for
compressions that missed important regions (an outlier cluster, say) the
solution computed on the compression ignores those regions, its cost on the
full dataset explodes, and the distortion becomes arbitrarily large — which
is exactly the failure mode Tables 2, 4, 5, 6 and 9 of the paper report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.clustering.cost import clustering_cost
from repro.clustering.kmedian import kmedian
from repro.clustering.lloyd import kmeans
from repro.core.coreset import Coreset
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_integer, check_points, check_power, check_weights


@dataclass
class DistortionReport:
    """Detailed outcome of one distortion evaluation.

    Attributes
    ----------
    distortion:
        The max-ratio metric described in the module docstring.
    cost_on_full:
        Cost of the compression-derived solution on the full dataset.
    cost_on_coreset:
        Cost of the same solution on the compression.
    coreset_size:
        Number of points in the compression.
    """

    distortion: float
    cost_on_full: float
    cost_on_coreset: float
    coreset_size: int


def distortion_of_solution(
    points: np.ndarray,
    coreset: Coreset,
    centers: np.ndarray,
    *,
    weights: Optional[np.ndarray] = None,
    z: int = 2,
) -> DistortionReport:
    """Distortion of a *given* candidate solution.

    Exposed separately so tests and ablations can probe adversarial
    solutions; :func:`coreset_distortion` uses it with the solution obtained
    by clustering the compression.
    """
    points = check_points(points)
    z = check_power(z)
    weights = check_weights(weights, points.shape[0])
    cost_full = clustering_cost(points, centers, weights=weights, z=z)
    cost_coreset = coreset.cost(centers, z=z)
    if cost_full <= 0 or cost_coreset <= 0:
        # A zero cost means the solution covers every (weighted) point
        # exactly; by convention the distortion is one unless only one side
        # is zero, in which case it is infinite.
        if cost_full <= 0 and cost_coreset <= 0:
            distortion = 1.0
        else:
            distortion = float("inf")
    else:
        distortion = max(cost_full / cost_coreset, cost_coreset / cost_full)
    return DistortionReport(
        distortion=float(distortion),
        cost_on_full=float(cost_full),
        cost_on_coreset=float(cost_coreset),
        coreset_size=coreset.size,
    )


def coreset_distortion(
    points: np.ndarray,
    coreset: Coreset,
    k: int,
    *,
    z: int = 2,
    weights: Optional[np.ndarray] = None,
    lloyd_iterations: int = 10,
    algorithm: str = "pruned",
    seed: SeedLike = None,
) -> float:
    """The paper's evaluation metric: distortion of the coreset-derived solution.

    Parameters
    ----------
    points:
        The full dataset ``P``.
    coreset:
        The compression ``Omega`` to evaluate.
    k:
        Number of clusters for the candidate solution.
    z:
        1 for k-median, 2 for k-means.
    weights:
        Optional weights of the full dataset.
    lloyd_iterations:
        Refinement iterations when computing the candidate solution on the
        compression.
    algorithm:
        Lloyd engine for the ``z = 2`` refinement — ``"pruned"`` (default)
        or ``"naive"``; bit-identical results either way, so every
        experiment driver built on this metric inherits the pruned engine.
    seed:
        Randomness for the candidate solution.

    Returns
    -------
    float
        The distortion value (>= 1; close to 1 for a faithful compression).
    """
    check_integer(k, name="k")
    generator = as_generator(seed)
    k_effective = min(k, coreset.size)
    if z == 2:
        result = kmeans(
            coreset.points,
            k_effective,
            weights=coreset.weights,
            max_iterations=lloyd_iterations,
            algorithm=algorithm,
            seed=generator,
        )
        centers = result.centers
    else:
        result = kmedian(
            coreset.points,
            k_effective,
            weights=coreset.weights,
            max_iterations=max(3, lloyd_iterations // 2),
            seed=generator,
        )
        centers = result.centers
    report = distortion_of_solution(points, coreset, centers, weights=weights, z=z)
    return report.distortion

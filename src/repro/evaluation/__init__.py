"""Evaluation metrics: coreset distortion and downstream solution quality.

Verifying the coreset property exactly is co-NP-hard [57], so the paper (and
this reproduction) uses the *coreset distortion* proxy: solve the clustering
problem on the compression and compare the solution's cost on the
compression against its cost on the full dataset.  Downstream quality
(Table 8) instead asks which compression yields the best centers for the
original data.
"""

from repro.evaluation.distortion import (
    DistortionReport,
    coreset_distortion,
    distortion_of_solution,
)
from repro.evaluation.solution_quality import solution_cost_on_dataset
from repro.evaluation.tables import ExperimentRow, format_table, rows_to_markdown

__all__ = [
    "DistortionReport",
    "coreset_distortion",
    "distortion_of_solution",
    "solution_cost_on_dataset",
    "ExperimentRow",
    "format_table",
    "rows_to_markdown",
]

"""The "cautious user" advisor from the paper's takeaways (Section 5.5).

The paper's practical guideline: uniform sampling usually works, but it
fails exactly when a small fraction of the points carries a large share of
the clustering cost — rare outliers, tiny clusters, heavy class imbalance.
Checking whether a dataset is benign requires an approximate clustering,
which costs as much as building a coreset; this module packages that check
so a pipeline can make the decision explicitly.

:func:`diagnose_dataset` computes cheap structural statistics from a
k-means++ solution on a subsample (cluster-size imbalance, the share of the
cost carried by the costliest points, and the sensitivity concentration) and
:func:`recommend_sampler` turns them into one of the paper's three answers:
``"uniform"`` (cheap sampling is safe), ``"lightweight"`` (mild structure —
a mean-based compression suffices), or ``"fast_coreset"`` (the data has the
kind of structure that breaks cheap sampling; pay for the guarantee).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.clustering.cost import per_point_costs
from repro.clustering.kmeans_pp import kmeans_plus_plus
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_integer, check_points


@dataclass
class DatasetDiagnosis:
    """Structural statistics that predict whether cheap sampling is safe.

    Attributes
    ----------
    cluster_imbalance:
        Ratio of the largest to the smallest cluster mass in the probe
        solution (1 = perfectly balanced).
    top_cost_share:
        Fraction of the total cost carried by the costliest 1% of points;
        close to 1 means a few points dominate the objective — exactly what
        uniform sampling misses.
    smallest_cluster_fraction:
        Mass of the smallest probe cluster divided by ``n``; tiny values
        flag clusters a uniform sample of moderate size would skip.
    probe_k:
        Number of centers used by the probe solution.
    sample_size:
        Number of points the probe actually looked at.
    """

    cluster_imbalance: float
    top_cost_share: float
    smallest_cluster_fraction: float
    probe_k: int
    sample_size: int


def diagnose_dataset(
    points: np.ndarray,
    k: int,
    *,
    probe_size: int = 20_000,
    seed: SeedLike = None,
) -> DatasetDiagnosis:
    """Compute the structural statistics behind the sampler recommendation.

    The probe runs k-means++ on a uniform subsample (the diagnosis itself
    must stay cheap); its cluster sizes and per-point costs are all that is
    needed to detect the dangerous structures.
    """
    points = check_points(points)
    k = check_integer(k, name="k")
    generator = as_generator(seed)
    n = points.shape[0]
    if n > probe_size:
        subset = points[generator.choice(n, size=probe_size, replace=False)]
    else:
        subset = points
    probe_k = min(k, max(2, subset.shape[0] // 2))
    solution = kmeans_plus_plus(subset, probe_k, seed=generator)
    costs, assignment = per_point_costs(subset, solution.centers)
    sizes = np.bincount(assignment, minlength=probe_k).astype(np.float64)
    occupied = sizes[sizes > 0]
    imbalance = float(occupied.max() / occupied.min()) if occupied.size else 1.0

    total_cost = float(costs.sum())
    if total_cost <= 0:
        top_share = 0.0
    else:
        top_count = max(1, int(0.01 * costs.shape[0]))
        top_share = float(np.sort(costs)[-top_count:].sum() / total_cost)

    smallest_fraction = float(occupied.min() / subset.shape[0]) if occupied.size else 1.0
    return DatasetDiagnosis(
        cluster_imbalance=imbalance,
        top_cost_share=top_share,
        smallest_cluster_fraction=smallest_fraction,
        probe_k=probe_k,
        sample_size=int(subset.shape[0]),
    )


def recommend_sampler(
    points: np.ndarray,
    k: int,
    *,
    coreset_size: Optional[int] = None,
    probe_size: int = 20_000,
    seed: SeedLike = None,
) -> str:
    """Recommend ``"uniform"``, ``"lightweight"`` or ``"fast_coreset"`` for a dataset.

    Parameters
    ----------
    points:
        The dataset to compress.
    k:
        Number of clusters the compression must support.
    coreset_size:
        Planned compression size (defaults to the paper's ``40 * k``); the
        thresholds scale with it because a larger sample tolerates rarer
        structures.
    probe_size, seed:
        Probe subsample size and randomness.

    Notes
    -----
    The decision mirrors Section 5.5 of the paper: uniform sampling is safe
    when clusters are balanced and no small set of points dominates the
    cost; once either condition fails, the cost of verifying it is already
    comparable to the cost of a Fast-Coreset, so the guarantee is worth
    paying for.
    """
    diagnosis = diagnose_dataset(points, k, probe_size=probe_size, seed=seed)
    m = coreset_size if coreset_size is not None else 40 * k
    n = points.shape[0]
    # Expected number of probe points from the smallest cluster that a
    # uniform sample of size m would include.
    expected_hits = diagnosis.smallest_cluster_fraction * m
    if diagnosis.top_cost_share > 0.5 or expected_hits < 2.0:
        return "fast_coreset"
    if diagnosis.cluster_imbalance > 10.0 or diagnosis.top_cost_share > 0.25:
        return "lightweight"
    _ = n  # documented for readers: thresholds are size-free by design
    return "uniform"

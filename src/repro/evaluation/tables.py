"""Plain-data experiment rows and table formatting.

Every experiment harness in :mod:`repro.experiments` returns a list of
:class:`ExperimentRow` objects; the pytest benchmarks, the examples, and
EXPERIMENTS.md all render those rows through the helpers here, so the
numbers reported in each place come from a single code path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence


@dataclass
class ExperimentRow:
    """One row of a reproduced table or one bar of a reproduced figure.

    Attributes
    ----------
    experiment:
        Identifier of the paper artefact ("table4", "figure1", ...).
    dataset:
        Dataset name the row refers to.
    method:
        Sampler / algorithm name.
    values:
        Named numeric results (distortion, runtime seconds, cost, ...).
    parameters:
        The configuration that produced the row (k, m, gamma, ...).
    """

    experiment: str
    dataset: str
    method: str
    values: Dict[str, float] = field(default_factory=dict)
    parameters: Dict[str, float] = field(default_factory=dict)

    def value(self, name: str) -> float:
        """Shortcut for ``values[name]``."""
        return self.values[name]


def format_table(
    rows: Sequence[ExperimentRow],
    *,
    value_names: Sequence[str],
    float_format: str = "{:.3g}",
) -> str:
    """Render rows as a fixed-width text table (printed by the benchmarks)."""
    headers = ["dataset", "method", *value_names]
    table: List[List[str]] = [list(headers)]
    for row in rows:
        rendered = [row.dataset, row.method]
        for name in value_names:
            value = row.values.get(name, float("nan"))
            rendered.append(float_format.format(value))
        table.append(rendered)
    widths = [max(len(line[column]) for line in table) for column in range(len(headers))]
    lines = []
    for index, line in enumerate(table):
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(line, widths)))
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def rows_to_markdown(
    rows: Sequence[ExperimentRow],
    *,
    value_names: Sequence[str],
    float_format: str = "{:.3g}",
) -> str:
    """Render rows as a GitHub-flavoured markdown table (used by EXPERIMENTS.md)."""
    header = "| dataset | method | " + " | ".join(value_names) + " |"
    separator = "|" + "---|" * (2 + len(value_names))
    lines = [header, separator]
    for row in rows:
        cells = [row.dataset, row.method]
        for name in value_names:
            value = row.values.get(name, float("nan"))
            cells.append(float_format.format(value))
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)


def group_rows(rows: Iterable[ExperimentRow], key: str) -> Dict[str, List[ExperimentRow]]:
    """Group rows by ``dataset`` or ``method`` (any attribute name)."""
    grouped: Dict[str, List[ExperimentRow]] = {}
    for row in rows:
        grouped.setdefault(getattr(row, key), []).append(row)
    return grouped

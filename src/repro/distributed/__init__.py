"""Distributed (MapReduce-style) coreset aggregation.

Section 2.3 of the paper explains why strong coresets are "embarrassingly
parallel": coresets of disjoint data shards compose by union, and their size
is independent of the shard sizes, so a single MapReduce round — every
worker compresses its shard, the host unions the messages and optionally
re-compresses — yields a coreset of the full dataset whose communication
volume is independent of ``n``.
"""

from repro.distributed.mapreduce import MapReduceCoresetAggregator, MapReduceRound

__all__ = ["MapReduceCoresetAggregator", "MapReduceRound"]

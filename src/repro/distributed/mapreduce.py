"""Simulated single-round MapReduce coreset aggregation (Section 2.3).

The computation model: several workers, none of which can hold the whole
dataset, each receive a random shard; the expensive resource is the data
exchanged between workers and the host.  The coreset recipe of [36] needs a
single round:

1. *(map)* every worker compresses its shard with a black-box sampler;
2. *(shuffle)* every worker sends its compression — whose size does not
   depend on the shard size — to the host;
3. *(reduce)* the host unions the messages (a coreset of the full dataset,
   by composition) and can either re-compress it or solve the clustering
   task on it directly.

By default the simulation executes the workers sequentially (preserving the
seed-for-seed behaviour of earlier releases); passing an ``executor`` to
:meth:`MapReduceCoresetAggregator.run` delegates the map phase to the
parallel execution engine (:mod:`repro.parallel`), which compresses the
shards concurrently — on the thread or shared-memory process backend — and
produces bit-identical results at every worker count.  Either way the run
tracks exactly the quantities the MapReduce analysis cares about:
per-worker shard sizes, message sizes, and total communication.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Union

import numpy as np

from repro.core.base import CoresetConstruction
from repro.core.coreset import Coreset, merge_coresets
from repro.utils.rng import SeedLike, as_generator, random_seed_from
from repro.utils.validation import check_integer, check_points, check_weights

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.parallel.executor import Executor


@dataclass
class MapReduceRound:
    """Bookkeeping of one simulated MapReduce round.

    Attributes
    ----------
    coreset:
        The host-side compression after the round.
    worker_coresets:
        The per-worker messages (kept for inspection and tests).
    shard_sizes:
        Number of points each worker received.
    message_sizes:
        Number of weighted points each worker sent to the host.
    communication:
        Total number of floats shipped to the host
        (``sum(message_size * (d + 1))``), the quantity the MapReduce cost
        model charges for.
    metadata:
        Free-form diagnostics.  Always records the sampler name under
        ``"sampler"`` (a string) and the realised worker count under
        ``"n_workers"``; the executor path adds ``"backend"`` and
        ``"workers"``.
    """

    coreset: Coreset
    worker_coresets: List[Coreset]
    shard_sizes: List[int]
    message_sizes: List[int]
    communication: int
    metadata: Dict[str, Union[float, str]] = field(default_factory=dict)


class MapReduceCoresetAggregator:
    """Single-round distributed compression with a black-box sampler.

    Parameters
    ----------
    sampler:
        Any :class:`~repro.core.base.CoresetConstruction`; used by every
        worker and (optionally) by the host's final re-compression.
    n_workers:
        Number of simulated computation entities.
    coreset_size_per_worker:
        Size of the message each worker produces.
    final_coreset_size:
        Optional size of the host-side re-compression; ``None`` keeps the
        plain union (``n_workers * coreset_size_per_worker`` points).
    seed:
        Randomness for the shard assignment and per-worker sampling.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core import SensitivitySampling
    >>> from repro.distributed import MapReduceCoresetAggregator
    >>> data = np.random.default_rng(0).normal(size=(2000, 8))
    >>> aggregator = MapReduceCoresetAggregator(
    ...     sampler=SensitivitySampling(k=10, seed=0),
    ...     n_workers=4,
    ...     coreset_size_per_worker=100,
    ...     seed=0,
    ... )
    >>> round_result = aggregator.run(data)
    >>> round_result.coreset.size
    400
    """

    def __init__(
        self,
        sampler: CoresetConstruction,
        *,
        n_workers: int,
        coreset_size_per_worker: int,
        final_coreset_size: Optional[int] = None,
        seed: SeedLike = None,
    ) -> None:
        self.sampler = sampler
        self.n_workers = check_integer(n_workers, name="n_workers")
        self.coreset_size_per_worker = check_integer(
            coreset_size_per_worker, name="coreset_size_per_worker"
        )
        self.final_coreset_size = (
            None
            if final_coreset_size is None
            else check_integer(final_coreset_size, name="final_coreset_size")
        )
        self.seed = seed

    # ------------------------------------------------------------------
    def partition(self, n: int, generator: np.random.Generator) -> List[np.ndarray]:
        """Randomly partition ``range(n)`` into ``n_workers`` shards.

        The random partition is what the analysis in Section 2.3 assumes; it
        also means no worker needs more than ``~n / n_workers`` memory.
        """
        order = generator.permutation(n)
        return [shard for shard in np.array_split(order, self.n_workers) if shard.size > 0]

    def run(
        self,
        points: np.ndarray,
        *,
        weights: Optional[np.ndarray] = None,
        executor: Union[None, str, "Executor"] = None,
    ) -> MapReduceRound:
        """Execute the map, shuffle, and reduce phases on ``points``.

        Parameters
        ----------
        points / weights:
            The dataset to compress.
        executor:
            ``None`` (default) keeps the historical sequential simulation,
            including its RNG stream — existing seeds reproduce exactly.
            A backend name (``"serial"``, ``"thread"``, ``"process"``) or an
            :class:`~repro.parallel.executor.Executor` instance runs the map
            phase through the parallel engine instead: per-shard randomness
            is then spawn-keyed from the aggregator seed, so the round is
            bit-identical across backends and worker counts (but differs
            from the sequential simulation's stream).
        """
        if executor is not None:
            return self._run_with_executor(points, weights, executor)
        points = check_points(points)
        weights = check_weights(weights, points.shape[0])
        generator = as_generator(self.seed)

        shards = self.partition(points.shape[0], generator)
        worker_coresets: List[Coreset] = []
        shard_sizes: List[int] = []
        message_sizes: List[int] = []
        for shard in shards:
            shard_points = points[shard]
            shard_weights = weights[shard]
            m = min(self.coreset_size_per_worker, shard_points.shape[0])
            compression = self.sampler.sample(
                shard_points, m, weights=shard_weights, seed=random_seed_from(generator)
            )
            worker_coresets.append(compression)
            shard_sizes.append(int(shard.size))
            message_sizes.append(compression.size)

        union = merge_coresets(worker_coresets, method=f"mapreduce[{self.sampler.name}]")
        if self.final_coreset_size is not None and union.size > self.final_coreset_size:
            coreset = self.sampler.sample(
                union.points,
                self.final_coreset_size,
                weights=union.weights,
                seed=random_seed_from(generator),
            )
            coreset.method = f"mapreduce[{self.sampler.name}]"
        else:
            coreset = union

        dimension = points.shape[1]
        communication = sum(size * (dimension + 1) for size in message_sizes)
        return MapReduceRound(
            coreset=coreset,
            worker_coresets=worker_coresets,
            shard_sizes=shard_sizes,
            message_sizes=message_sizes,
            communication=int(communication),
            metadata={
                "n_workers": float(len(shards)),
                "sampler": self.sampler.name,
            },
        )

    # ------------------------------------------------------------------
    def _run_with_executor(
        self,
        points: np.ndarray,
        weights: Optional[np.ndarray],
        executor: Union[str, "Executor"],
    ) -> MapReduceRound:
        """The map phase on the parallel engine (spawn-keyed randomness)."""
        from repro.parallel.sharded import ShardedCoresetBuilder

        builder = ShardedCoresetBuilder(
            self.sampler,
            n_shards=self.n_workers,
            coreset_size_per_shard=self.coreset_size_per_worker,
            final_coreset_size=self.final_coreset_size,
            shuffle=True,
            seed=self.seed,
        )
        build = builder.build(points, weights=weights, executor=executor)
        coreset = build.coreset
        coreset.method = f"mapreduce[{self.sampler.name}]"
        return MapReduceRound(
            coreset=coreset,
            worker_coresets=build.shard_coresets,
            shard_sizes=build.shard_sizes,
            message_sizes=build.message_sizes,
            communication=build.communication,
            metadata={
                "n_workers": float(len(build.shard_sizes)),
                "sampler": self.sampler.name,
                "backend": build.backend,
                "workers": float(build.workers),
            },
        )

"""Uniform sampling — the sublinear-time end of the speed/accuracy spectrum.

Every point is selected with equal probability and every selected point
receives weight ``W / m`` where ``W`` is the total input weight.  The
estimator is unbiased but, as the paper stresses, it carries no worst-case
guarantee: a single extreme outlier (the c-outlier dataset) or a tiny but
important cluster (the Star and Taxi datasets) can be missed entirely,
producing unbounded distortion.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.base import CoresetConstruction
from repro.core.coreset import Coreset
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_points, check_sample_size, check_weights


class UniformSampling(CoresetConstruction):
    """Sample ``m`` points uniformly (proportionally to their input weights).

    Parameters
    ----------
    replace:
        Whether to sample with replacement.  The paper's description samples
        a subset (without replacement); with replacement is provided for the
        streaming composition where ``m`` can exceed a block's size.
    z:
        Cost exponent; uniform sampling itself is oblivious to it but the
        value is recorded for bookkeeping.
    seed:
        Default randomness source.
    """

    name = "uniform"

    def __init__(self, *, replace: bool = False, z: int = 2, seed: SeedLike = None) -> None:
        super().__init__(z=z, seed=seed)
        self.replace = replace

    def _sample(
        self,
        points: np.ndarray,
        weights: np.ndarray,
        m: int,
        seed: SeedLike,
        spread: Optional[float] = None,
        cost_bound: Optional[float] = None,
    ) -> Coreset:
        generator = as_generator(seed)
        n = points.shape[0]
        total_weight = float(weights.sum())
        if total_weight <= 0:
            raise ValueError("input weights must have a positive sum")
        probabilities = weights / total_weight
        replace = self.replace or m > np.count_nonzero(weights)
        indices = generator.choice(n, size=m, replace=replace, p=probabilities)
        # Horvitz-Thompson style weights: each draw represents W / m units of
        # input mass, which keeps the cost estimator unbiased.
        sample_weights = np.full(m, total_weight / m, dtype=np.float64)
        return Coreset(
            points=points[indices],
            weights=sample_weights,
            indices=indices,
            method=self.name,
        )


def uniform_sample(
    points: np.ndarray,
    m: int,
    *,
    weights: Optional[np.ndarray] = None,
    seed: SeedLike = None,
) -> Coreset:
    """Functional shortcut for :class:`UniformSampling`.

    Parameters
    ----------
    points:
        Array of shape ``(n, d)``.
    m:
        Sample size.
    weights:
        Optional input weights.
    seed:
        Randomness source.
    """
    points = check_points(points)
    weights = check_weights(weights, points.shape[0])
    m = check_sample_size(m, points.shape[0])
    return UniformSampling(seed=seed).sample(points, m, weights=weights)

"""Common interface for every compression algorithm in the library.

The paper's experiments treat each sampler as a black box that maps a
(weighted) dataset and a target size ``m`` to a weighted subset.  Encoding
that contract once in :class:`CoresetConstruction` lets the static sweep
(Table 4), the streaming merge-&-reduce harness (Table 5) and the MapReduce
simulation (Section 2.3) run any sampler without special-casing.
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np

from repro.core.coreset import Coreset
from repro.utils.rng import SeedLike
from repro.utils.validation import check_points, check_sample_size, check_weights


class CoresetConstruction(abc.ABC):
    """Abstract base class for samplers producing weighted compressions.

    Subclasses implement :meth:`_sample`; the public :meth:`sample` method
    validates arguments and normalises the inputs so implementations can
    assume a clean ``(n, d)`` float array and a length-``n`` weight vector.

    Attributes
    ----------
    name:
        Short identifier used in experiment tables ("uniform",
        "lightweight", "welterweight", "sensitivity", "fast_coreset", ...).
    z:
        Cost exponent the construction targets (1 = k-median, 2 = k-means).
    """

    #: Overridden by subclasses; used as the ``method`` field of the coresets.
    name: str = "abstract"

    #: Whether :meth:`_sample` makes use of the ``cost_bound`` hint.  Stream
    #: drivers consult this before paying for a crude-cost computation on
    #: behalf of a sampler that would only ignore it.
    consumes_cost_bound: bool = False

    def __init__(self, *, z: int = 2, seed: SeedLike = None) -> None:
        self.z = z
        self.seed = seed

    # ----------------------------------------------------------------- API
    def sample(
        self,
        points: np.ndarray,
        m: int,
        *,
        weights: Optional[np.ndarray] = None,
        seed: SeedLike = None,
        spread: Optional[float] = None,
        cost_bound: Optional[float] = None,
    ) -> Coreset:
        """Compress ``points`` into a weighted subset of size ``m``.

        Parameters
        ----------
        points:
            Array of shape ``(n, d)``.
        m:
            Target compression size.  Must not exceed ``n``.
        weights:
            Optional input weights; needed when re-compressing an existing
            coreset, as the streaming and MapReduce pipelines do.
        seed:
            Per-call randomness override.  When ``None`` the seed supplied at
            construction time is used, which keeps repeated experiment runs
            reproducible while still allowing the harness to vary seeds
            across repetitions.
        spread:
            Optional precomputed spread estimate of ``points`` (only its
            logarithm is consumed downstream).  Samplers that do not build
            quadtrees ignore it; :class:`~repro.core.fast_coreset.FastCoreset`
            uses it to skip its per-call spread estimates, which is how the
            streaming merge-&-reduce tree shares one estimate across every
            compression of a stream.
        cost_bound:
            Optional precomputed crude k-median cost upper bound ``U``
            (Algorithm 2) for ``points``.  Samplers whose
            :attr:`consumes_cost_bound` is false ignore it;
            :class:`~repro.core.fast_coreset.FastCoreset` feeds it to
            :func:`~repro.core.spread_reduction.reduce_spread`, skipping the
            per-call dyadic binary search the same way ``spread`` skips the
            pairwise subsample.  Like ``spread``, the value only steers
            grid granularities (Lemmas 4.3/4.5 tolerate polynomial slack),
            so a slightly stale bound from earlier, similarly distributed
            data is valid.
        """
        points = check_points(points)
        weights = check_weights(weights, points.shape[0])
        m = check_sample_size(m, points.shape[0])
        effective_seed = seed if seed is not None else self.seed
        coreset = self._sample(
            points, weights, m, effective_seed, spread=spread, cost_bound=cost_bound
        )
        coreset.method = self.name
        return coreset

    @abc.abstractmethod
    def _sample(
        self,
        points: np.ndarray,
        weights: np.ndarray,
        m: int,
        seed: SeedLike,
        spread: Optional[float] = None,
        cost_bound: Optional[float] = None,
    ) -> Coreset:
        """Produce the compression; inputs are already validated."""

    # -------------------------------------------------------------- helpers
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r}, z={self.z})"

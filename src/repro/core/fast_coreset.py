"""Fast-Coresets: Algorithm 1 of the paper, with the Section 4 preprocessing.

The construction chains four ingredients, each of which runs in time within
log-factors of reading the data:

1. *(optional)* **Spread reduction** (Algorithms 2-3) replaces the input by a
   substitute dataset ``P'`` whose spread is polynomial, turning the
   ``log Delta`` factor of the quadtree into ``log log Delta``
   (Theorem 4.6).
2. **Johnson–Lindenstrauss embedding** to ``O(log k)`` dimensions, which
   preserves the cost of every k-clustering up to constants [50].
3. **Fast-kmeans++** — quadtree-based D²-sampling that returns *both*
   centers and an ``O(polylog k)``-approximate assignment without ever
   paying the ``Theta(nk)`` assignment cost.
4. **Sensitivity sampling** against that assignment (Fact 3.1), using the
   per-cluster 1-mean / 1-median in the full-dimensional space as the
   cluster representative (step 4 of Algorithm 1).

The coreset points returned are always rows of the *original* input: the
spread reduction only translates and rounds coordinates while preserving row
order, so the sampled indices index the original array directly.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.clustering.cost import ClusteringSolution
from repro.clustering.fast_kmeans_pp import fast_kmeans_plus_plus
from repro.clustering.kmedian import cluster_representative
from repro.core.base import CoresetConstruction
from repro.core.coreset import Coreset
from repro.core.sensitivity import sample_by_scores, sensitivity_scores
from repro.core.spread_reduction import reduce_spread
from repro.geometry.johnson_lindenstrauss import maybe_reduce_dimension
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_integer, check_power


class FastCoreset(CoresetConstruction):
    """Algorithm 1: strong ε-coresets in Õ(nd) time.

    Parameters
    ----------
    k:
        Number of clusters the coreset must support.
    z:
        1 for k-median, 2 for k-means.
    epsilon:
        Target accuracy; only recorded for bookkeeping (the sample size
        ``m`` is chosen by the caller, as in the paper's experiments).
    use_spread_reduction:
        Run Algorithms 2-3 before the quadtree seeding.  Disabling it gives
        the ``~O(nd log Delta)`` variant of Corollary 3.2 and is exposed for
        the ablation benchmark.
    dimension_reduction:
        Apply the Johnson–Lindenstrauss projection before ``Fast-kmeans++``
        when the input dimension is large (the paper enables this only for
        MNIST; the threshold below reproduces that behaviour).
    dimension_threshold:
        Inputs with at most this many features skip the projection.
    include_center_correction:
        Append the bicriteria centers with mass-correcting weights (see
        :class:`repro.core.sensitivity.SensitivitySampling`).
    max_levels:
        Depth cap of the quadtree used by ``Fast-kmeans++``.
    seed:
        Default randomness source.
    """

    name = "fast_coreset"

    @property
    def consumes_cost_bound(self) -> bool:  # type: ignore[override]
        """The crude-cost hint only matters when Algorithms 2-3 run."""
        return self.use_spread_reduction

    def __init__(
        self,
        k: int,
        *,
        z: int = 2,
        epsilon: float = 0.5,
        use_spread_reduction: bool = True,
        dimension_reduction: bool = True,
        dimension_threshold: int = 64,
        include_center_correction: bool = False,
        max_levels: int = 32,
        seed: SeedLike = None,
    ) -> None:
        super().__init__(z=check_power(z), seed=seed)
        self.k = check_integer(k, name="k")
        self.epsilon = float(epsilon)
        self.use_spread_reduction = bool(use_spread_reduction)
        self.dimension_reduction = bool(dimension_reduction)
        self.dimension_threshold = int(dimension_threshold)
        self.include_center_correction = bool(include_center_correction)
        self.max_levels = int(max_levels)

    # ------------------------------------------------------------------
    def _bicriteria_solution(
        self,
        working_points: np.ndarray,
        weights: np.ndarray,
        generator: np.random.Generator,
        spread: Optional[float] = None,
    ) -> ClusteringSolution:
        """Steps 2-3 of Algorithm 1: JL embedding + Fast-kmeans++ seeding.

        ``spread`` is an optional precomputed estimate for the working
        points; the spread only enters the seeding through the quadtree
        depth cap ``ceil(log2(spread)) + 2`` and the JL projection preserves
        pairwise distances up to constants, so reusing the pre-projection
        estimate (e.g. the spread-reduction diagnostic) spares every tree
        fit a fresh pairwise-distance subsample.
        """
        if self.dimension_reduction:
            projected = maybe_reduce_dimension(
                working_points, self.k, threshold=self.dimension_threshold, seed=generator
            )
        else:
            projected = working_points
        return fast_kmeans_plus_plus(
            projected,
            self.k,
            z=self.z,
            weights=weights,
            max_levels=self.max_levels,
            spread=spread,
            seed=generator,
        )

    def _cluster_representatives(
        self,
        working_points: np.ndarray,
        weights: np.ndarray,
        assignment: np.ndarray,
        k: int,
    ) -> np.ndarray:
        """Step 4: the 1-mean / 1-median of every cluster in the full space."""
        dimension = working_points.shape[1]
        representatives = np.zeros((k, dimension), dtype=np.float64)
        for cluster in range(k):
            members = np.flatnonzero(assignment == cluster)
            if members.size == 0:
                continue
            representatives[cluster] = cluster_representative(
                working_points[members], weights=weights[members], z=self.z
            )
        return representatives

    def _sample(
        self,
        points: np.ndarray,
        weights: np.ndarray,
        m: int,
        seed: SeedLike,
        spread: Optional[float] = None,
        cost_bound: Optional[float] = None,
    ) -> Coreset:
        generator = as_generator(seed)

        if self.use_spread_reduction:
            # Caller-supplied ``spread`` / ``cost_bound`` hints (e.g. the
            # merge-&-reduce tree's per-stream caches) let the reduction
            # skip both of its internal estimates and the Algorithm-2
            # binary search; only coarse grid granularities depend on them.
            reduction = reduce_spread(
                points, self.k, upper_bound=cost_bound, spread=spread, seed=generator
            )
            working_points = reduction.points
            # Reuse the reduction's diagnostic spread of P' instead of
            # letting the seeding re-estimate it from scratch.
            working_spread = reduction.reduced_spread
        else:
            reduction = None
            working_points = points
            working_spread = spread

        bicriteria = self._bicriteria_solution(
            working_points, weights, generator, spread=working_spread
        )
        assignment = np.asarray(bicriteria.assignment, dtype=np.int64)
        representatives = self._cluster_representatives(
            working_points, weights, assignment, self.k
        )

        # Steps 5-6: sensitivity scores against the representatives under the
        # Fast-kmeans++ assignment, then importance sampling.
        solution = ClusteringSolution(
            centers=representatives, assignment=assignment, cost=None, z=self.z
        )
        scores = sensitivity_scores(
            working_points, solution, weights=weights, z=self.z, use_solution_assignment=True
        )
        indices, sample_weights = sample_by_scores(
            working_points, weights, scores, m, generator
        )

        # Express the coreset on the original points (spread reduction keeps
        # row order, so the sampled indices are valid in the original array).
        coreset_points = points[indices]
        coreset_weights = sample_weights
        kept_indices: Optional[np.ndarray] = indices

        if self.include_center_correction:
            k = representatives.shape[0]
            true_mass = np.bincount(assignment, weights=weights, minlength=k)
            estimated_mass = np.bincount(
                assignment[indices], weights=sample_weights, minlength=k
            )
            corrections = np.maximum(0.0, true_mass - estimated_mass)
            keep = corrections > 0
            if np.any(keep):
                coreset_points = np.concatenate([coreset_points, representatives[keep]], axis=0)
                coreset_weights = np.concatenate([coreset_weights, corrections[keep]], axis=0)
                kept_indices = None

        metadata = {
            "k": float(self.k),
            "epsilon": float(self.epsilon),
            "spread_reduction": float(self.use_spread_reduction),
        }
        if reduction is not None:
            metadata["original_spread"] = reduction.original_spread
            metadata["reduced_spread"] = reduction.reduced_spread
        return Coreset(
            points=coreset_points,
            weights=coreset_weights,
            indices=kept_indices,
            method=self.name,
            metadata=metadata,
        )


def fast_coreset(
    points: np.ndarray,
    k: int,
    m: int,
    *,
    z: int = 2,
    weights: Optional[np.ndarray] = None,
    use_spread_reduction: bool = True,
    seed: SeedLike = None,
) -> Coreset:
    """Functional shortcut: build a Fast-Coreset of size ``m`` for ``k`` clusters.

    Parameters
    ----------
    points:
        Array of shape ``(n, d)``.
    k:
        Number of clusters.
    m:
        Coreset size (the paper uses ``m = 40 * k`` as its default).
    z:
        1 for k-median, 2 for k-means.
    weights:
        Optional input weights.
    use_spread_reduction:
        Whether to run the Section 4 preprocessing.
    seed:
        Randomness source.
    """
    construction = FastCoreset(
        k, z=z, use_spread_reduction=use_spread_reduction, seed=seed
    )
    return construction.sample(points, m, weights=weights)

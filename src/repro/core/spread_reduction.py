"""Spread reduction: Algorithms 2 and 3 of the paper (Section 4).

The quadtree-based ``Fast-kmeans++`` runs in ``~O(nd log Delta)`` time, and
the paper exhibits datasets whose spread ``Delta`` grows linearly with ``n``
(Table 1), so the ``log Delta`` factor is not benign.  Section 4 removes it
in two steps:

1. **Crude-Approx (Algorithm 2)** — compute, in ``~O(nd log log Delta)``
   time, an upper bound ``U`` on the optimal cost that is at most a
   ``poly(n, d, log Delta)`` factor too large.  The bound comes from the
   coarsest quadtree level at which the input occupies at least ``k + 1``
   cells (Lemma 4.1).
2. **Reduce-Spread (Algorithm 3)** — place a random grid of side
   ``r = sqrt(d) * n^2 * U`` (so no optimal cluster is split, Lemma 4.3),
   translate far-apart occupied cells towards each other to cap the diameter
   at ``O(d n^2 U k)``, and round coordinates to multiples of
   ``g = U / (n^4 d^2 log Delta)`` to lower-bound the minimum distance.  The
   resulting dataset ``P'`` has spread ``poly(n, d, log Delta)`` and any
   reasonable solution on ``P'`` converts back to one on ``P`` with the same
   cost up to an additive ``OPT / n`` (Lemma 4.5 / Theorem 4.6).

Because the reduction only *translates* whole groups of points and *rounds*
coordinates, point indices are preserved: a coreset computed on ``P'`` can be
re-expressed on ``P`` simply by re-reading the sampled indices from the
original array, which is exactly how :class:`repro.core.fast_coreset.FastCoreset`
uses this module.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro import observability as _obs
from repro.geometry.distances import diameter_upper_bound
from repro.geometry.grid import (
    _hash_multipliers,
    assign_to_grid,
    count_distinct_cells,
    hash_rows,
    random_grid_shift,
)
from repro.native import get_kernel
from repro.geometry.quadtree import compute_spread
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_integer, check_points, check_power


# --------------------------------------------------------------------- Algorithm 2
@dataclass
class CrudeApproximation:
    """Outcome of ``Crude-Approx`` (Algorithm 2).

    Attributes
    ----------
    upper_bound:
        ``U`` — an upper bound on the optimal k-median cost satisfying
        ``OPT <= U <= poly(n, d, log Delta) * OPT`` (Lemma 4.2).  For
        k-means, use :meth:`upper_bound_for` with ``z = 2`` (Lemma 8.1).
    level:
        The coarsest quadtree level at which the input occupies at least
        ``k + 1`` cells.
    cell_side:
        Side length of the grid cells at that level.
    diameter:
        The ``O(nd)`` diameter upper bound used as the root box size.
    calls:
        Number of ``Count-Distinct-Cells`` evaluations performed by the
        binary search (``O(log log Delta)``).
    """

    upper_bound: float
    level: int
    cell_side: float
    diameter: float
    calls: int
    n_points: int
    dimension: int

    def upper_bound_for(self, z: int) -> float:
        """Cost upper bound for exponent ``z`` (Lemma 8.1 squares a k-median bound)."""
        check_power(z)
        if z == 1:
            return self.upper_bound
        return float(self.n_points) * self.upper_bound**2


def crude_cost_upper_bound(
    points: np.ndarray,
    k: int,
    *,
    spread: Optional[float] = None,
    seed: SeedLike = None,
) -> CrudeApproximation:
    """Algorithm 2: a polynomial-factor upper bound on the optimal k-median cost.

    A randomly shifted grid is laid over the data and a binary search over
    the ``O(log Delta)`` dyadic cell sides finds the coarsest level at which
    the input occupies at least ``k + 1`` distinct cells.  By Lemma 4.1 the
    optimal tree-metric cost is sandwiched between ``sqrt(d) * side / 2`` and
    ``n * sqrt(d) * 8 * side`` for that level, and by Lemma 2.2 the Euclidean
    optimum is within another ``O(d log Delta)`` factor.
    """
    points = check_points(points)
    n, d = points.shape
    k = check_integer(k, name="k")
    generator = as_generator(seed)

    diameter = max(diameter_upper_bound(points), 1e-12)
    shift = random_grid_shift(d, diameter, seed=generator)

    if n <= k:
        # Every point can be its own center: the optimum is zero, any tiny
        # positive bound is valid.
        return CrudeApproximation(
            upper_bound=diameter,
            level=0,
            cell_side=diameter,
            diameter=diameter,
            calls=0,
            n_points=n,
            dimension=d,
        )

    # Dyadic levels: level l uses cells of side diameter * 2^{-l}.  Occupied
    # cell counts are non-decreasing in l because the grids are nested.  A
    # precomputed spread estimate (e.g. from the caller's earlier diagnostic)
    # skips the pairwise-distance subsample.
    if spread is None:
        spread = compute_spread(points, seed=generator)
    max_level = max(1, int(math.ceil(math.log2(float(spread)))) + 2)

    calls = 0

    # Every probe needs floor((points - shift) / side_level); shifting and
    # normalising once lets a probe at level l floor ``scaled * 2**l``
    # instead of re-subtracting and re-dividing the full point set (scaling
    # by a power of two commutes with IEEE division rounding, so the
    # lattices are bit-identical to the direct computation).  Consecutive
    # probes — the tail of the bisection — reuse the quadtree's multiply-add
    # doubling (``lattice' = 2 * lattice + bit``), which is exact as well.
    # The compiled tier fuses the whole probe (lattice refresh + hash +
    # distinct count) into ``crude_bound_probe``; the count is the only
    # observable, and it is pinned identical in both dispatch modes.
    scaled = (points - shift[None, :]) / diameter
    probe_state: Dict[str, object] = {"level": None}
    probe_kernel = get_kernel("crude_bound_probe")
    probe_tally = {"native": 0, "numpy": 0}

    if probe_kernel is not None:
        multipliers = _hash_multipliers(d)
        kernel_lattice = np.empty((n, d), dtype=np.int64)
        kernel_frac = np.empty((n, d), dtype=np.float64)

        def occupied(level: int) -> int:
            nonlocal calls
            calls += 1
            if level > 512:  # pragma: no cover - astronomically spread inputs
                side = diameter * (2.0 ** (-level))
                return count_distinct_cells(points, side, shift)
            fresh = probe_state["level"] is None or level != probe_state["level"] + 1
            probe_tally["native"] += 1
            count = int(
                probe_kernel(scaled, level, fresh, kernel_lattice, kernel_frac, multipliers)
            )
            probe_state["level"] = level
            return count

    else:

        def occupied(level: int) -> int:
            nonlocal calls
            calls += 1
            if probe_state["level"] is not None and level == probe_state["level"] + 1:
                lattice = probe_state["lattice"]
                frac = probe_state["frac"]
                bits = frac >= 0.5
                np.multiply(lattice, 2, out=lattice)
                lattice += bits
                np.multiply(frac, 2.0, out=frac)
                frac -= bits
            elif level <= 512:  # 2.0**level stays finite with huge margin
                scaled_level = scaled * (2.0**level)
                lattice = np.floor(scaled_level).astype(np.int64)
                frac = scaled_level - lattice
            else:  # pragma: no cover - astronomically spread inputs
                side = diameter * (2.0 ** (-level))
                return count_distinct_cells(points, side, shift)
            probe_tally["numpy"] += 1
            probe_state["level"] = level
            probe_state["lattice"] = lattice
            probe_state["frac"] = frac
            return int(np.unique(hash_rows(lattice)).shape[0])

    def _emit_probe_counters() -> None:
        # Per-kernel dispatch attribution for --trace/--metrics.
        if probe_tally["native"]:
            _obs.counter_add("crude_bound.probes.native", float(probe_tally["native"]))
        if probe_tally["numpy"]:
            _obs.counter_add("crude_bound.probes.numpy", float(probe_tally["numpy"]))

    # Binary search for the smallest level with at least k + 1 occupied cells.
    low, high = 0, max_level
    if occupied(high) <= k:
        # Even the finest level holds at most k cells (many duplicate
        # points); the optimum is within a cell diameter of zero.
        side = diameter * (2.0 ** (-high))
        upper = n * math.sqrt(d) * 8.0 * side
        _emit_probe_counters()
        return CrudeApproximation(
            upper_bound=max(upper, 1e-12),
            level=high,
            cell_side=side,
            diameter=diameter,
            calls=calls,
            n_points=n,
            dimension=d,
        )
    while low < high:
        middle = (low + high) // 2
        if occupied(middle) >= k + 1:
            high = middle
        else:
            low = middle + 1
    level = low
    side = diameter * (2.0 ** (-level))
    upper_bound = n * math.sqrt(d) * 8.0 * side
    _emit_probe_counters()
    return CrudeApproximation(
        upper_bound=float(upper_bound),
        level=level,
        cell_side=float(side),
        diameter=float(diameter),
        calls=calls,
        n_points=n,
        dimension=d,
    )


# --------------------------------------------------------------------- Algorithm 3
@dataclass
class SpreadReductionResult:
    """Outcome of ``Reduce-Spread`` (Algorithm 3).

    Attributes
    ----------
    points:
        The substitute dataset ``P'`` (same shape and row order as the
        input).
    shifts:
        Per-point translation that was subtracted, so
        ``original ≈ points + shifts`` up to the rounding granularity.
    granularity:
        The rounding step ``g`` (0 when rounding was skipped because it
        would be below floating-point resolution).
    cell_side:
        Side ``r`` of the random grid used for the diameter reduction.
    upper_bound:
        The crude cost bound ``U`` driving both steps.
    original_spread / reduced_spread:
        Spread estimates before and after the reduction (diagnostics).
    """

    points: np.ndarray
    shifts: np.ndarray
    granularity: float
    cell_side: float
    upper_bound: float
    original_spread: float
    reduced_spread: float
    cells: Dict[int, np.ndarray] = field(default_factory=dict)

    def restore(self, reduced_points: np.ndarray, indices: np.ndarray) -> np.ndarray:
        """Map points of ``P'`` (given by their row indices) back into ``P``'s frame.

        Because the reduction only translates and rounds, re-adding the
        stored per-point shift recovers the original coordinates up to the
        rounding granularity; for sampled *input* points the caller can
        simply index the original array instead.
        """
        indices = np.asarray(indices, dtype=np.int64)
        return np.asarray(reduced_points, dtype=np.float64) + self.shifts[indices]


def reduce_spread(
    points: np.ndarray,
    k: int,
    *,
    upper_bound: Optional[float] = None,
    spread: Optional[float] = None,
    seed: SeedLike = None,
) -> SpreadReductionResult:
    """Algorithm 3: produce a substitute dataset ``P'`` with polynomial spread.

    Parameters
    ----------
    points:
        Array of shape ``(n, d)``.
    k:
        Number of clusters (drives the crude upper bound when none is given).
    upper_bound:
        Optional precomputed ``U``; when ``None`` Algorithm 2 is run first.
    spread:
        Optional precomputed spread estimate of ``points``.  When ``None``
        it is estimated once here and shared with Algorithm 2 (the seed
        implementation paid the pairwise-distance subsample twice).  When
        given, the post-reduction spread is not re-estimated from pairwise
        distances either: the rounding step bounds every non-zero distance
        of ``P'`` from below by the granularity ``g``, so the reported
        ``reduced_spread`` is the analytic ``diameter / g`` bound (capped by
        the supplied estimate) — the polynomial collapse of Theorem 4.6 —
        and only its logarithm is consumed downstream.  Streaming callers
        exploit this to run whole streams of compressions off a single
        cached estimate.
    seed:
        Randomness for the grids.

    Notes
    -----
    The reduction is cost-preserving in the sense of Lemma 4.5: with
    probability ``1 - 1/n`` no optimal cluster is split by the grid, every
    pair of occupied cells keeps its adjacency status, and therefore any
    reasonable solution on ``P'`` has the same cost as the corresponding
    solution on ``P`` up to an additive ``OPT / n``.
    """
    points = check_points(points)
    n, d = points.shape
    k = check_integer(k, name="k")
    generator = as_generator(seed)

    spread_supplied = spread is not None
    original_spread = float(spread) if spread_supplied else compute_spread(points, seed=generator)

    if upper_bound is None:
        upper_bound = crude_cost_upper_bound(
            points, k, spread=original_spread, seed=generator
        ).upper_bound
    upper_bound = float(upper_bound)
    if upper_bound <= 0:
        upper_bound = 1e-12

    # --- Reduce-Diameter -------------------------------------------------
    # Grid side r = sqrt(d) * n^2 * U guarantees (Lemma 4.3) that points of
    # the same optimal cluster fall into the same cell w.h.p.  For practical
    # dataset sizes that side often exceeds the data diameter, in which case
    # the translation step is a no-op — exactly what the theory predicts
    # (the spread is already polynomial when log Delta is small).
    cell_side = math.sqrt(d) * float(n) ** 2 * upper_bound
    shift = random_grid_shift(d, cell_side, seed=generator)
    assignment = assign_to_grid(points, cell_side, shift)
    centers = assignment.cell_centers()

    reduced = points.copy()
    shifts = np.zeros_like(points)
    cell_ids = sorted(assignment.cells)
    if len(cell_ids) > 1:
        center_matrix = np.stack([centers[cell_id] for cell_id in cell_ids], axis=0)
        for coordinate in range(d):
            order = np.argsort(center_matrix[:, coordinate], kind="stable")
            cumulative_shift = 0.0
            previous_value = None
            for position in order:
                value = center_matrix[position, coordinate]
                if previous_value is not None:
                    gap = value - previous_value
                    if gap >= 2.0 * cell_side:
                        cumulative_shift += gap - 2.0 * cell_side
                previous_value = value
                if cumulative_shift > 0.0:
                    members = assignment.cells[cell_ids[position]]
                    reduced[members, coordinate] -= cumulative_shift
                    shifts[members, coordinate] += cumulative_shift

    # --- Reduce-Min-Distance ---------------------------------------------
    log_delta = max(1.0, math.log2(max(original_spread, 2.0)))
    granularity = upper_bound / (float(n) ** 2 * float(d) * log_delta)
    scale = float(np.abs(reduced).max()) if reduced.size else 0.0
    if granularity > 0 and scale > 0 and granularity > scale * 1e-12:
        reduced = np.round(reduced / granularity) * granularity
    else:
        # Rounding below floating-point resolution would be a no-op (or a
        # numerical hazard); skipping it only makes P' more accurate.
        granularity = 0.0

    if spread_supplied:
        # No pairwise subsample on this path; instead use the reduction's
        # own guarantee.  Rounding to multiples of ``g`` lower-bounds every
        # non-zero distance by ``g``, so the spread of P' is at most
        # (bounding-box diagonal) / g — the poly(n, d, log Delta) collapse
        # the reduction exists to provide — and never worse than the
        # caller's estimate.  When rounding was skipped the spread was
        # already at floating-point resolution and the estimate stands.
        if granularity > 0 and reduced.size:
            span = reduced.max(axis=0) - reduced.min(axis=0)
            diagonal = float(np.linalg.norm(span))
            reduced_spread = max(1.0, min(original_spread, diagonal / granularity))
        else:
            reduced_spread = original_spread
    else:
        reduced_spread = compute_spread(reduced, seed=generator)
    return SpreadReductionResult(
        points=reduced,
        shifts=shifts,
        granularity=float(granularity),
        cell_side=float(cell_side),
        upper_bound=upper_bound,
        original_spread=float(original_spread),
        reduced_spread=float(reduced_spread),
        cells=dict(assignment.cells),
    )

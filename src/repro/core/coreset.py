"""The :class:`Coreset` container and coreset composition.

A coreset is a weighted subset ``(Omega, w)`` of the input whose weighted
cost approximates the cost of the full dataset for *every* candidate
solution (Definition 2.1 of the paper).  Two structural properties make
coresets attractive for database-style deployments (Section 2.3):

* **Composition** — the union of coresets of two datasets is a coreset of
  the union of the datasets.  :func:`merge_coresets` implements this and is
  the primitive behind both the streaming merge-&-reduce tree and the
  simulated MapReduce aggregation.
* **Size independence** — the coreset size does not depend on ``n``, so a
  compression can be held in a memory-constrained worker.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

import numpy as np

from repro.clustering.cost import clustering_cost
from repro.utils.validation import check_points, check_weights


@dataclass
class Coreset:
    """A weighted point set produced by one of the compression algorithms.

    Attributes
    ----------
    points:
        Array of shape ``(m, d)`` holding the selected points.
    weights:
        Non-negative weights of length ``m``.  For an unbiased construction
        the weights sum (approximately) to the total weight of the input.
    indices:
        Optional indices of the selected points in the originating dataset;
        ``None`` when the coreset was built from intermediate summaries (for
        example BICO clustering features) rather than original points.
    method:
        Human-readable name of the construction that produced the coreset.
    metadata:
        Free-form diagnostics (construction time, parameters, ...) recorded
        by the experiment harnesses.
    """

    points: np.ndarray
    weights: np.ndarray
    indices: Optional[np.ndarray] = None
    method: str = "unknown"
    metadata: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.points = check_points(self.points, name="coreset points")
        self.weights = check_weights(self.weights, self.points.shape[0], name="coreset weights")
        if self.indices is not None:
            self.indices = np.asarray(self.indices, dtype=np.int64)
            if self.indices.shape[0] != self.points.shape[0]:
                raise ValueError("indices must have one entry per coreset point")

    # ---------------------------------------------------------------- basic
    @property
    def size(self) -> int:
        """Number of points in the coreset."""
        return int(self.points.shape[0])

    @property
    def dimension(self) -> int:
        """Dimensionality of the coreset points."""
        return int(self.points.shape[1])

    @property
    def total_weight(self) -> float:
        """Sum of the coreset weights (≈ the represented number of points)."""
        return float(self.weights.sum())

    def __len__(self) -> int:
        return self.size

    # ------------------------------------------------------------ estimates
    def cost(self, centers: np.ndarray, *, z: int = 2) -> float:
        """Weighted ``cost_z`` of a candidate solution evaluated on the coreset.

        This is the estimator whose accuracy the coreset guarantee bounds:
        for a strong ε-coreset it lies within ``(1 ± ε)`` of the cost on the
        full dataset for every ``centers``.
        """
        return clustering_cost(self.points, centers, weights=self.weights, z=z)

    def subset(self, indices: np.ndarray) -> "Coreset":
        """Return a new coreset restricted to the given positions."""
        indices = np.asarray(indices, dtype=np.int64)
        return Coreset(
            points=self.points[indices],
            weights=self.weights[indices],
            indices=None if self.indices is None else self.indices[indices],
            method=self.method,
            metadata=dict(self.metadata),
        )

    def with_metadata(self, **entries: float) -> "Coreset":
        """Return the same coreset with extra metadata entries recorded."""
        metadata = dict(self.metadata)
        metadata.update(entries)
        return Coreset(
            points=self.points,
            weights=self.weights,
            indices=self.indices,
            method=self.method,
            metadata=metadata,
        )


def merge_coresets(coresets: Iterable[Coreset], *, method: Optional[str] = None) -> Coreset:
    """Concatenate coresets into a coreset of the union of their inputs.

    By the composition property (Section 2.3 of the paper) the result is an
    ε-coreset of the union whenever each part is an ε-coreset of its own
    input.  Weights are carried over unchanged so the total weight is the sum
    of the parts' total weights.
    """
    coresets = list(coresets)
    if not coresets:
        raise ValueError("at least one coreset is required to merge")
    dimension = coresets[0].dimension
    for coreset in coresets:
        if coreset.dimension != dimension:
            raise ValueError("all coresets must share the same dimensionality")
    points = np.concatenate([coreset.points for coreset in coresets], axis=0)
    weights = np.concatenate([coreset.weights for coreset in coresets], axis=0)
    names = {coreset.method for coreset in coresets}
    merged_method = method if method is not None else "+".join(sorted(names))
    return Coreset(points=points, weights=weights, indices=None, method=merged_method)


def trivial_coreset(points: np.ndarray, weights: Optional[np.ndarray] = None) -> Coreset:
    """Wrap a raw (weighted) dataset as a coreset of itself.

    Useful at the leaves of the merge-&-reduce tree and in tests: the full
    dataset is trivially a 0-coreset of itself.
    """
    points = check_points(points)
    weights = check_weights(weights, points.shape[0])
    return Coreset(points=points.copy(), weights=weights.copy(), indices=np.arange(points.shape[0]), method="identity")

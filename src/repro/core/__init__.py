"""The paper's primary contribution: coreset constructions for k-means / k-median.

This package contains the compression algorithms compared throughout the
paper, all exposed behind the common :class:`~repro.core.base.CoresetConstruction`
interface so that the static, streaming, and distributed harnesses can treat
them as interchangeable black boxes:

* :class:`~repro.core.uniform.UniformSampling` — sublinear-time baseline.
* :class:`~repro.core.sensitivity.LightweightCoreset` — sensitivities w.r.t.
  the dataset mean (j = 1) [6].
* :class:`~repro.core.sensitivity.WelterweightCoreset` — sensitivities w.r.t.
  a j-means solution, 1 < j < k (the paper's interpolation).
* :class:`~repro.core.sensitivity.SensitivitySampling` — standard sensitivity
  sampling w.r.t. a k-means++ solution [37, 47].
* :class:`~repro.core.fast_coreset.FastCoreset` — Algorithm 1, the paper's
  Õ(nd)-time strong-coreset construction, optionally preceded by the
  spread-reduction step of Section 4.
"""

from repro.core.base import CoresetConstruction
from repro.core.coreset import Coreset, merge_coresets
from repro.core.fast_coreset import FastCoreset, fast_coreset
from repro.core.sensitivity import (
    LightweightCoreset,
    SensitivitySampling,
    WelterweightCoreset,
    sensitivity_scores,
)
from repro.core.spread_reduction import (
    CrudeApproximation,
    SpreadReductionResult,
    crude_cost_upper_bound,
    reduce_spread,
)
from repro.core.uniform import UniformSampling, uniform_sample

__all__ = [
    "CoresetConstruction",
    "Coreset",
    "merge_coresets",
    "FastCoreset",
    "fast_coreset",
    "LightweightCoreset",
    "SensitivitySampling",
    "WelterweightCoreset",
    "sensitivity_scores",
    "CrudeApproximation",
    "SpreadReductionResult",
    "crude_cost_upper_bound",
    "reduce_spread",
    "UniformSampling",
    "uniform_sample",
]

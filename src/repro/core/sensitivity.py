"""Sensitivity (importance) sampling and its lighter-weight relatives.

The family is parameterised by the number ``j`` of centers in the candidate
solution the importance scores are computed against (Section 5.2 of the
paper):

* ``j = 1`` — **lightweight coresets** [6]: scores w.r.t. the dataset mean,
  ``O(nd)`` time, but only an additive-error guarantee.
* ``1 < j < k`` — **welterweight coresets**: the paper's interpolation
  between uniform and full sensitivity sampling (default ``j = log k``).
* ``j = k`` — **standard sensitivity sampling** [37, 47]: the recommended
  coreset construction, ``~O(nd + nk)`` time because of the k-means++
  solution it needs.

Given an ``alpha``-approximate solution ``C`` with clusters ``C_p``, the
importance of a point is (equation (1) of the paper)

``sigma(p) = cost(p, C_p) / cost(C_p, C) + 1 / |C_p|``

and ``m`` points are drawn proportionally to ``sigma``, each receiving weight
``sum(sigma) / (m * sigma(p))`` so the cost estimator is unbiased.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from repro.clustering.cost import ClusteringSolution, per_point_costs
from repro.clustering.kmeans_pp import kmeans_plus_plus
from repro.clustering.lloyd import kmeans
from repro.core.base import CoresetConstruction
from repro.core.coreset import Coreset
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import (
    check_integer,
    check_points,
    check_power,
    check_weights,
)


# --------------------------------------------------------------------------- scores
def sensitivity_scores(
    points: np.ndarray,
    solution: ClusteringSolution,
    *,
    weights: Optional[np.ndarray] = None,
    z: int = 2,
    use_solution_assignment: bool = True,
) -> np.ndarray:
    """Per-unit-mass importance scores of equation (1).

    Parameters
    ----------
    points:
        Array of shape ``(n, d)``.
    solution:
        The candidate solution ``C``.  When it carries an assignment (for
        example the tree-metric assignment of ``Fast-kmeans++``) and
        ``use_solution_assignment`` is true, scores are computed against that
        assignment, exactly as Algorithm 1 requires; otherwise the
        nearest-center assignment is used.
    weights:
        Optional input weights; cluster sizes and cluster costs become
        weighted totals so the scores remain correct when re-compressing an
        existing coreset.
    z:
        1 for k-median, 2 for k-means.
    use_solution_assignment:
        See ``solution``.

    Returns
    -------
    numpy.ndarray
        Length-``n`` array of non-negative scores.  Multiply by the input
        weights to obtain the sampling mass.
    """
    points = check_points(points)
    z = check_power(z)
    n = points.shape[0]
    weights = check_weights(weights, n)

    centers = np.asarray(solution.centers, dtype=np.float64)
    if use_solution_assignment and solution.assignment is not None:
        assignment = np.asarray(solution.assignment, dtype=np.int64)
        deltas = points - centers[assignment]
        squared = np.einsum("ij,ij->i", deltas, deltas)
        point_costs = squared if z == 2 else np.sqrt(squared)
    else:
        point_costs, assignment = per_point_costs(points, centers, z=z)

    k = centers.shape[0]
    cluster_cost = np.bincount(assignment, weights=weights * point_costs, minlength=k)
    cluster_mass = np.bincount(assignment, weights=weights, minlength=k)
    # Guard against empty or zero-cost clusters: the cost ratio of their
    # points is zero, so only the 1/|C_p| term contributes.
    safe_cost = np.where(cluster_cost > 0, cluster_cost, 1.0)
    safe_mass = np.where(cluster_mass > 0, cluster_mass, 1.0)
    scores = point_costs / safe_cost[assignment] + 1.0 / safe_mass[assignment]
    return scores


def sample_by_scores(
    points: np.ndarray,
    weights: np.ndarray,
    scores: np.ndarray,
    m: int,
    generator: np.random.Generator,
) -> Tuple[np.ndarray, np.ndarray]:
    """Draw ``m`` indices proportionally to ``weights * scores`` with replacement.

    Returns the selected indices and their coreset weights
    ``total_mass / (m * scores)``, which make the cost estimator unbiased
    (Section 2.1 of the paper).
    """
    mass = weights * scores
    total = mass.sum()
    if total <= 0:
        # Degenerate input (all scores zero): fall back to uniform sampling.
        indices = generator.choice(points.shape[0], size=m, replace=True)
        sample_weights = np.full(m, weights.sum() / m)
        return indices.astype(np.int64), sample_weights
    probabilities = mass / total
    indices = generator.choice(points.shape[0], size=m, replace=True, p=probabilities)
    sample_weights = total / (m * scores[indices])
    return indices.astype(np.int64), sample_weights


# ----------------------------------------------------------------- constructions
class SensitivitySampling(CoresetConstruction):
    """Standard sensitivity sampling against a ``j``-center candidate solution.

    Parameters
    ----------
    k:
        Number of clusters the coreset is intended for (used as the default
        for ``j`` and recorded for bookkeeping).
    j:
        Number of centers in the candidate solution; ``None`` means ``j = k``
        (standard sensitivity sampling).
    z:
        1 for k-median, 2 for k-means.
    lloyd_iterations:
        Optional Lloyd refinement of the candidate solution before the
        scores are computed (0 matches the paper's setup, which uses the raw
        k-means++ solution).
    include_center_correction:
        When true, the candidate solution's centers are appended to the
        coreset with corrective weights ``max(0, |C_i| - |hat C_i|)`` so each
        cluster's total mass is preserved — the practical reading of the
        weight-correction term in the output line of Algorithm 1.  Exposed
        primarily for the ablation benchmark.
    seed:
        Default randomness source.
    """

    name = "sensitivity"

    def __init__(
        self,
        k: int,
        *,
        j: Optional[int] = None,
        z: int = 2,
        lloyd_iterations: int = 0,
        include_center_correction: bool = False,
        seed: SeedLike = None,
    ) -> None:
        super().__init__(z=z, seed=seed)
        self.k = check_integer(k, name="k")
        self.j = self.k if j is None else check_integer(j, name="j")
        self.lloyd_iterations = int(lloyd_iterations)
        self.include_center_correction = bool(include_center_correction)

    # ------------------------------------------------------------------
    def candidate_solution(
        self,
        points: np.ndarray,
        weights: np.ndarray,
        generator: np.random.Generator,
    ) -> ClusteringSolution:
        """Compute the ``j``-center candidate solution the scores are based on."""
        solution = kmeans_plus_plus(points, self.j, weights=weights, z=self.z, seed=generator)
        if self.lloyd_iterations > 0 and self.z == 2:
            refined = kmeans(
                points,
                self.j,
                weights=weights,
                max_iterations=self.lloyd_iterations,
                initial_centers=solution.centers,
                seed=generator,
            )
            solution = refined.as_solution()
        return solution

    def _sample(
        self,
        points: np.ndarray,
        weights: np.ndarray,
        m: int,
        seed: SeedLike,
        spread: Optional[float] = None,
        cost_bound: Optional[float] = None,
    ) -> Coreset:
        generator = as_generator(seed)
        solution = self.candidate_solution(points, weights, generator)
        scores = sensitivity_scores(points, solution, weights=weights, z=self.z)
        indices, sample_weights = sample_by_scores(points, weights, scores, m, generator)
        coreset_points = points[indices]
        coreset_weights = sample_weights

        if self.include_center_correction and solution.assignment is not None:
            correction_points, correction_weights = self._center_correction(
                points, weights, solution, indices, sample_weights
            )
            if correction_points.shape[0]:
                coreset_points = np.concatenate([coreset_points, correction_points], axis=0)
                coreset_weights = np.concatenate([coreset_weights, correction_weights], axis=0)
                indices = None  # corrected coreset contains non-input points

        return Coreset(
            points=coreset_points,
            weights=coreset_weights,
            indices=indices,
            method=self.name,
            metadata={"j": float(self.j), "k": float(self.k)},
        )

    def _center_correction(
        self,
        points: np.ndarray,
        weights: np.ndarray,
        solution: ClusteringSolution,
        sampled_indices: np.ndarray,
        sample_weights: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Corrective center weights ``max(0, |C_i| - |hat C_i|)`` per cluster."""
        assignment = np.asarray(solution.assignment, dtype=np.int64)
        k = solution.centers.shape[0]
        true_mass = np.bincount(assignment, weights=weights, minlength=k)
        estimated_mass = np.bincount(
            assignment[sampled_indices], weights=sample_weights, minlength=k
        )
        corrections = np.maximum(0.0, true_mass - estimated_mass)
        keep = corrections > 0
        return solution.centers[keep], corrections[keep]


class LightweightCoreset(CoresetConstruction):
    """Lightweight coresets [6]: sensitivity sampling against the dataset mean.

    The scores are ``1/|P| + cost(p, mu) / cost(P, mu)`` with ``mu`` the
    (weighted) mean, computable in a single ``O(nd)`` pass — no k-means++
    solution is needed.  The guarantee is correspondingly weaker: an additive
    ``epsilon * cost(P, {mu})`` error, which is why the construction misses
    small clusters near the centre of mass (Figure 3 of the paper).
    """

    name = "lightweight"

    def __init__(self, *, z: int = 2, seed: SeedLike = None) -> None:
        super().__init__(z=z, seed=seed)

    def _sample(
        self,
        points: np.ndarray,
        weights: np.ndarray,
        m: int,
        seed: SeedLike,
        spread: Optional[float] = None,
        cost_bound: Optional[float] = None,
    ) -> Coreset:
        generator = as_generator(seed)
        total_weight = weights.sum()
        mean = (weights[:, None] * points).sum(axis=0) / total_weight
        deltas = points - mean[None, :]
        squared = np.einsum("ij,ij->i", deltas, deltas)
        point_costs = squared if self.z == 2 else np.sqrt(squared)
        total_cost = float(np.dot(weights, point_costs))
        if total_cost <= 0:
            scores = np.full(points.shape[0], 1.0 / total_weight)
        else:
            scores = 0.5 * point_costs / total_cost + 0.5 / total_weight
        indices, sample_weights = sample_by_scores(points, weights, scores, m, generator)
        return Coreset(
            points=points[indices],
            weights=sample_weights,
            indices=indices,
            method=self.name,
            metadata={"j": 1.0},
        )


class WelterweightCoreset(SensitivitySampling):
    """Welterweight coresets: sensitivity sampling against a ``j``-means solution.

    The paper introduces this interpolation to study how good the candidate
    solution must be before importance sampling copes with class imbalance
    (Table 7).  The default ``j = ceil(log2 k)`` matches the paper's default.
    """

    name = "welterweight"

    def __init__(
        self,
        k: int,
        *,
        j: Optional[int] = None,
        z: int = 2,
        seed: SeedLike = None,
    ) -> None:
        if j is None:
            j = max(2, int(math.ceil(math.log2(max(k, 2)))))
        super().__init__(k, j=j, z=z, seed=seed)

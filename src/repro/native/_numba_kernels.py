"""The ``numba`` provider: JIT-compiled kernels, preferred when importable.

Importing this module raises :class:`ImportError` when ``numba`` is not
installed; the registry records the reason and falls through to the ``cc``
provider (and ultimately the pure-numpy fallback).  The kernels implement
exactly the algorithms of :mod:`repro.native._cc_kernels` — the registry
runs the same bit-identity verifiers against them before first use, and the
first verification call doubles as the JIT warm-up, so library callers
never observe compilation latency mid-hot-path.

``nopython`` compilation keeps default floating-point semantics
(``fastmath=False``): the distance kernels' two-lane einsum-replica
accumulation is neither reassociated nor FMA-contracted, matching the C
provider and the numpy hot path bit for bit.  (The grouping kernel skips
the C provider's hash fast path — the radix path alone already beats the
numpy pipeline, and one implementation per strategy keeps the JIT surface
small.)
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

import numpy as np

import numba  # noqa: F401  (ImportError marks the provider unavailable)
from numba import njit

_RADIX_BITS = 11
_RADIX_BUCKETS = 2048
_RADIX_PASSES = 6
_RADIX_MASK = np.uint64(0x7FF)


@njit(cache=False)
def _radix_sort_pairs(keys, values, keys_scratch, values_scratch, n):
    """Stable pair sort ascending by key; returns True when the sorted data
    ended in the scratch arrays."""  # pragma: no cover - exercised via dispatch
    hist = np.zeros((_RADIX_PASSES, _RADIX_BUCKETS), dtype=np.int64)
    for i in range(n):
        key = keys[i]
        for b in range(_RADIX_PASSES):
            hist[b, np.int64((key >> np.uint64(_RADIX_BITS * b)) & _RADIX_MASK)] += 1
    offsets = np.empty(_RADIX_BUCKETS, dtype=np.int64)
    flipped = False
    for b in range(_RADIX_PASSES):
        live = 0
        for v in range(_RADIX_BUCKETS):
            if hist[b, v] > 0:
                live += 1
                if live > 1:
                    break
        if live <= 1:
            continue  # every key shares this digit: the pass is the identity
        running = np.int64(0)
        for v in range(_RADIX_BUCKETS):
            offsets[v] = running
            running += hist[b, v]
        shift = np.uint64(_RADIX_BITS * b)
        if flipped:
            src_keys, dst_keys = keys_scratch, keys
            src_values, dst_values = values_scratch, values
        else:
            src_keys, dst_keys = keys, keys_scratch
            src_values, dst_values = values, values_scratch
        for i in range(n):
            key = src_keys[i]
            v = np.int64((key >> shift) & _RADIX_MASK)
            slot = offsets[v]
            offsets[v] = slot + 1
            dst_keys[slot] = key
            dst_values[slot] = src_values[i]
        flipped = not flipped
    return flipped


@njit(cache=False)
def _radix_argsort_u64(keys):  # pragma: no cover - exercised via dispatch
    n = keys.shape[0]
    order = np.arange(n, dtype=np.int64)
    shadow = keys.copy()
    order_scratch = np.empty(n, dtype=np.int64)
    shadow_scratch = np.empty(n, dtype=np.uint64)
    if _radix_sort_pairs(shadow, order, shadow_scratch, order_scratch, n):
        return order_scratch
    return order


@njit(cache=False)
def _csr_group_u64(keys):  # pragma: no cover - exercised via dispatch
    n = keys.shape[0]
    cell_ids = np.empty(n, dtype=np.int64)
    order = np.arange(n, dtype=np.int64)
    offsets_full = np.empty(n + 1, dtype=np.int64)
    shadow = keys.copy()
    order_scratch = np.empty(n, dtype=np.int64)
    shadow_scratch = np.empty(n, dtype=np.uint64)
    flipped = _radix_sort_pairs(shadow, order, shadow_scratch, order_scratch, n)
    if flipped:
        sorted_keys, sorted_order = shadow_scratch, order_scratch
    else:
        sorted_keys, sorted_order = shadow, order
    n_cells = 0
    for i in range(n):
        if i == 0 or sorted_keys[i] != sorted_keys[i - 1]:
            offsets_full[n_cells] = i
            n_cells += 1
        cell_ids[sorted_order[i]] = n_cells - 1
    offsets_full[n_cells] = n
    if flipped:
        order[:] = order_scratch
    return cell_ids, order, offsets_full[: n_cells + 1].copy()


@njit(cache=False)
def _einsum_sq(p, c, base, d):  # pragma: no cover - exercised via dispatch
    """Squared distance between ``p[base:base+d]`` and ``c``, accumulated in
    the exact order of numpy's SSE2 einsum row kernel (two lanes, 4-vector
    unroll folded right-to-left, pair drain, scalar tail)."""
    l0 = 0.0
    l1 = 0.0
    t = 0
    while t + 8 <= d:
        d0 = p[base + t] - c[t]
        d1 = p[base + t + 1] - c[t + 1]
        d2 = p[base + t + 2] - c[t + 2]
        d3 = p[base + t + 3] - c[t + 3]
        d4 = p[base + t + 4] - c[t + 4]
        d5 = p[base + t + 5] - c[t + 5]
        d6 = p[base + t + 6] - c[t + 6]
        d7 = p[base + t + 7] - c[t + 7]
        l0 = (d0 * d0) + ((d2 * d2) + ((d4 * d4) + ((d6 * d6) + l0)))
        l1 = (d1 * d1) + ((d3 * d3) + ((d5 * d5) + ((d7 * d7) + l1)))
        t += 8
    while t + 2 <= d:
        d0 = p[base + t] - c[t]
        d1 = p[base + t + 1] - c[t + 1]
        l0 = (d0 * d0) + l0
        l1 = (d1 * d1) + l1
        t += 2
    if t < d:
        d0 = p[base + t] - c[t]
        l0 = (d0 * d0) + l0
        l1 = 0.0 + l1
    return l0 + l1


@njit(cache=False)
def _lloyd_refresh_bounds(
    points, centers, assignment, decrement, upper_scale, squared, eroded
):  # pragma: no cover - exercised via dispatch
    n, d = points.shape
    flat = points.reshape(-1)
    upper = np.empty(n, dtype=np.float64)
    suspects = np.empty(n, dtype=np.int64)
    count = 0
    for i in range(n):
        sq = _einsum_sq(flat, centers[assignment[i]], i * d, d)
        u = np.sqrt(sq) * upper_scale
        e = eroded[i] - decrement
        squared[i] = sq
        upper[i] = u
        eroded[i] = e
        if u >= e:
            suspects[count] = i
            count += 1
    return upper, suspects[:count].copy()


@njit(cache=False)
def _lloyd_candidate_eval(
    points,
    centers,
    center_norms,
    suspects,
    bounds,
    upper,
    assigned_sq,
    assignment,
    margin,
):  # pragma: no cover - exercised via dispatch
    s = suspects.shape[0]
    k = centers.shape[0]
    d = points.shape[1]
    flat = points.reshape(-1)
    result = np.empty(s, dtype=np.int64)
    second_sq = np.empty(s, dtype=np.float64)
    pairs = 0
    for r in range(s):
        a = assignment[suspects[r]]
        u = upper[r]
        for j in range(k):
            if j != a and bounds[r, j] <= u:
                pairs += 1
    if pairs > 4 * s:
        return False, result, second_sq
    for r in range(s):
        i = suspects[r]
        a = assignment[i]
        u = upper[r]
        asq = assigned_sq[i]
        stay_limit = asq * (1.0 + margin)
        best = asq
        second = np.inf
        best_j = a
        cn_max = center_norms[a]
        beaten = 0
        for j in range(k):
            if j == a or bounds[r, j] > u:
                continue
            dist = _einsum_sq(flat, centers[j], i * d, d)
            if dist <= stay_limit:
                beaten += 1
            if center_norms[j] > cn_max:
                cn_max = center_norms[j]
            if dist < best:
                second = best
                best = dist
                best_j = j
            elif dist < second:
                second = dist
        if beaten == 0:
            result[r] = a
            second_sq[r] = np.inf
            continue
        second_sq[r] = second
        if best_j != a:
            # Absolute-scale guard: the runner-up gap must dominate the
            # blocked GEMM's rounding so its argmin (and its lowest-index
            # tie-breaking) cannot disagree with the direct reassignment.
            pn = 0.0
            for t in range(d):
                pn += points[i, t] * points[i, t]
            if second - best > margin * (pn + cn_max + second):
                result[r] = best_j
            else:
                result[r] = -1
        else:
            result[r] = -1
    return True, result, second_sq


@njit(cache=False)
def _lloyd_update_sums(
    weighted, weights, assignment, k
):  # pragma: no cover - exercised via dispatch
    n, d = weighted.shape
    counts = np.zeros(k, dtype=np.float64)
    sums = np.zeros((k, d), dtype=np.float64)
    for i in range(n):
        a = assignment[i]
        counts[a] += weights[i]
        for t in range(d):
            sums[a, t] += weighted[i, t]
    return counts, sums


def _candidate_eval(
    points,
    centers,
    center_norms,
    suspects,
    bounds,
    upper,
    assigned_sq,
    assignment,
    margin,
) -> Optional[Tuple[np.ndarray, np.ndarray]]:
    evaluated, result, second_sq = _lloyd_candidate_eval(
        points,
        centers,
        center_norms,
        suspects,
        bounds,
        upper,
        assigned_sq,
        assignment,
        margin,
    )
    if not evaluated:
        return None  # bounds too weak: caller keeps the blocked path
    return result, second_sq


def load_kernels() -> Dict[str, Callable]:
    return {
        "radix_argsort": _radix_argsort_u64,
        "csr_group": _csr_group_u64,
        "lloyd_refresh_bounds": _lloyd_refresh_bounds,
        "lloyd_candidate_eval": _candidate_eval,
        "lloyd_update_sums": _lloyd_update_sums,
    }


def describe() -> Dict[str, object]:
    return {"numba_version": numba.__version__}

"""The ``numba`` provider: JIT-compiled kernels, preferred when importable.

Importing this module raises :class:`ImportError` when ``numba`` is not
installed; the registry records the reason and falls through to the ``cc``
provider (and ultimately the pure-numpy fallback).  The kernels implement
exactly the algorithms of :mod:`repro.native._cc_kernels` — the registry
runs the same bit-identity verifiers against them before first use, and the
first verification call doubles as the JIT warm-up, so library callers
never observe compilation latency mid-hot-path.

``nopython`` compilation keeps default floating-point semantics
(``fastmath=False``): the distance kernels' two-lane einsum-replica
accumulation is neither reassociated nor FMA-contracted, matching the C
provider and the numpy hot path bit for bit.  (The grouping kernel skips
the C provider's hash fast path — the radix path alone already beats the
numpy pipeline, and one implementation per strategy keeps the JIT surface
small.)
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Optional, Tuple

import numpy as np

import numba  # noqa: F401  (ImportError marks the provider unavailable)
from numba import njit

_RADIX_BITS = 11
_RADIX_BUCKETS = 2048
_RADIX_PASSES = 6
_RADIX_MASK = np.uint64(0x7FF)


@njit(cache=False)
def _radix_sort_pairs(keys, values, keys_scratch, values_scratch, n):
    """Stable pair sort ascending by key; returns True when the sorted data
    ended in the scratch arrays."""  # pragma: no cover - exercised via dispatch
    hist = np.zeros((_RADIX_PASSES, _RADIX_BUCKETS), dtype=np.int64)
    for i in range(n):
        key = keys[i]
        for b in range(_RADIX_PASSES):
            hist[b, np.int64((key >> np.uint64(_RADIX_BITS * b)) & _RADIX_MASK)] += 1
    offsets = np.empty(_RADIX_BUCKETS, dtype=np.int64)
    flipped = False
    for b in range(_RADIX_PASSES):
        live = 0
        for v in range(_RADIX_BUCKETS):
            if hist[b, v] > 0:
                live += 1
                if live > 1:
                    break
        if live <= 1:
            continue  # every key shares this digit: the pass is the identity
        running = np.int64(0)
        for v in range(_RADIX_BUCKETS):
            offsets[v] = running
            running += hist[b, v]
        shift = np.uint64(_RADIX_BITS * b)
        if flipped:
            src_keys, dst_keys = keys_scratch, keys
            src_values, dst_values = values_scratch, values
        else:
            src_keys, dst_keys = keys, keys_scratch
            src_values, dst_values = values, values_scratch
        for i in range(n):
            key = src_keys[i]
            v = np.int64((key >> shift) & _RADIX_MASK)
            slot = offsets[v]
            offsets[v] = slot + 1
            dst_keys[slot] = key
            dst_values[slot] = src_values[i]
        flipped = not flipped
    return flipped


@njit(cache=False)
def _radix_argsort_u64(keys):  # pragma: no cover - exercised via dispatch
    n = keys.shape[0]
    order = np.arange(n, dtype=np.int64)
    shadow = keys.copy()
    order_scratch = np.empty(n, dtype=np.int64)
    shadow_scratch = np.empty(n, dtype=np.uint64)
    if _radix_sort_pairs(shadow, order, shadow_scratch, order_scratch, n):
        return order_scratch
    return order


@njit(cache=False)
def _csr_group_u64(keys):  # pragma: no cover - exercised via dispatch
    n = keys.shape[0]
    cell_ids = np.empty(n, dtype=np.int64)
    order = np.arange(n, dtype=np.int64)
    offsets_full = np.empty(n + 1, dtype=np.int64)
    shadow = keys.copy()
    order_scratch = np.empty(n, dtype=np.int64)
    shadow_scratch = np.empty(n, dtype=np.uint64)
    flipped = _radix_sort_pairs(shadow, order, shadow_scratch, order_scratch, n)
    if flipped:
        sorted_keys, sorted_order = shadow_scratch, order_scratch
    else:
        sorted_keys, sorted_order = shadow, order
    n_cells = 0
    for i in range(n):
        if i == 0 or sorted_keys[i] != sorted_keys[i - 1]:
            offsets_full[n_cells] = i
            n_cells += 1
        cell_ids[sorted_order[i]] = n_cells - 1
    offsets_full[n_cells] = n
    if flipped:
        order[:] = order_scratch
    return cell_ids, order, offsets_full[: n_cells + 1].copy()


@njit(cache=False)
def _einsum_sq(p, c, base, d):  # pragma: no cover - exercised via dispatch
    """Squared distance between ``p[base:base+d]`` and ``c``, accumulated in
    the exact order of numpy's SSE2 einsum row kernel (two lanes, 4-vector
    unroll folded right-to-left, pair drain, scalar tail)."""
    l0 = 0.0
    l1 = 0.0
    t = 0
    while t + 8 <= d:
        d0 = p[base + t] - c[t]
        d1 = p[base + t + 1] - c[t + 1]
        d2 = p[base + t + 2] - c[t + 2]
        d3 = p[base + t + 3] - c[t + 3]
        d4 = p[base + t + 4] - c[t + 4]
        d5 = p[base + t + 5] - c[t + 5]
        d6 = p[base + t + 6] - c[t + 6]
        d7 = p[base + t + 7] - c[t + 7]
        l0 = (d0 * d0) + ((d2 * d2) + ((d4 * d4) + ((d6 * d6) + l0)))
        l1 = (d1 * d1) + ((d3 * d3) + ((d5 * d5) + ((d7 * d7) + l1)))
        t += 8
    while t + 2 <= d:
        d0 = p[base + t] - c[t]
        d1 = p[base + t + 1] - c[t + 1]
        l0 = (d0 * d0) + l0
        l1 = (d1 * d1) + l1
        t += 2
    if t < d:
        d0 = p[base + t] - c[t]
        l0 = (d0 * d0) + l0
        l1 = 0.0 + l1
    return l0 + l1


@njit(cache=False)
def _lloyd_refresh_bounds(
    points, centers, assignment, decrement, upper_scale, squared, eroded
):  # pragma: no cover - exercised via dispatch
    n, d = points.shape
    flat = points.reshape(-1)
    upper = np.empty(n, dtype=np.float64)
    suspects = np.empty(n, dtype=np.int64)
    count = 0
    for i in range(n):
        sq = _einsum_sq(flat, centers[assignment[i]], i * d, d)
        u = np.sqrt(sq) * upper_scale
        e = eroded[i] - decrement
        squared[i] = sq
        upper[i] = u
        eroded[i] = e
        if u >= e:
            suspects[count] = i
            count += 1
    return upper, suspects[:count].copy()


@njit(cache=False)
def _lloyd_candidate_eval(
    points,
    centers,
    center_norms,
    suspects,
    bounds,
    upper,
    assigned_sq,
    assignment,
    margin,
):  # pragma: no cover - exercised via dispatch
    s = suspects.shape[0]
    k = centers.shape[0]
    d = points.shape[1]
    flat = points.reshape(-1)
    result = np.empty(s, dtype=np.int64)
    second_sq = np.empty(s, dtype=np.float64)
    pairs = 0
    for r in range(s):
        a = assignment[suspects[r]]
        u = upper[r]
        for j in range(k):
            if j != a and bounds[r, j] <= u:
                pairs += 1
    if pairs > 4 * s:
        return False, result, second_sq
    for r in range(s):
        i = suspects[r]
        a = assignment[i]
        u = upper[r]
        asq = assigned_sq[i]
        stay_limit = asq * (1.0 + margin)
        best = asq
        second = np.inf
        best_j = a
        cn_max = center_norms[a]
        beaten = 0
        for j in range(k):
            if j == a or bounds[r, j] > u:
                continue
            dist = _einsum_sq(flat, centers[j], i * d, d)
            if dist <= stay_limit:
                beaten += 1
            if center_norms[j] > cn_max:
                cn_max = center_norms[j]
            if dist < best:
                second = best
                best = dist
                best_j = j
            elif dist < second:
                second = dist
        if beaten == 0:
            result[r] = a
            second_sq[r] = np.inf
            continue
        second_sq[r] = second
        if best_j != a:
            # Absolute-scale guard: the runner-up gap must dominate the
            # blocked GEMM's rounding so its argmin (and its lowest-index
            # tie-breaking) cannot disagree with the direct reassignment.
            pn = 0.0
            for t in range(d):
                pn += points[i, t] * points[i, t]
            if second - best > margin * (pn + cn_max + second):
                result[r] = best_j
            else:
                result[r] = -1
        else:
            result[r] = -1
    return True, result, second_sq


@njit(cache=False)
def _fkpp_level_score(
    order,
    n,
    starts,
    ends,
    distances,
    czs,
    ceiling,
    center_slot,
    best_distance,
    assignment,
    mass,
    weights,
    has_mass,
):  # pragma: no cover - exercised via dispatch
    """One Fast-kmeans++ register-center sweep over every level of one tree,
    deepest first: the scan breaks as soon as the level's candidate distance
    reaches the ceiling (it only grows toward the root), and for every
    member of the new center's cell whose best distance strictly exceeds
    the candidate it scatters the candidate, the center slot, and the
    rewritten sampling mass ``weights[i] * czs[level + 1]`` (the caller
    precomputes ``candidate ** z`` per level with the same scalar power the
    numpy sweep raises, so every stored double is bit-identical).  ``order``
    holds the tree's per-level CSR orders concatenated (level ``l`` is row
    ``l`` of a ``(depth, n)`` layout); ``starts``/``ends`` delimit the
    center's cell within each row.  Returns the improved-point count."""
    depth = starts.shape[0]
    improved = 0
    for level in range(depth - 1, -1, -1):
        candidate = distances[level + 1]
        if candidate >= ceiling and np.isfinite(ceiling):
            break
        cz = czs[level + 1]
        base = level * n
        for idx in range(starts[level], ends[level]):
            i = order[base + idx]
            if best_distance[i] > candidate:
                best_distance[i] = candidate
                assignment[i] = center_slot
                if has_mass:
                    mass[i] = weights[i] * cz
                improved += 1
    return improved


@njit(cache=False)
def _crude_bound_probe(
    scaled, level, fresh, lattice, frac, multipliers
):  # pragma: no cover - exercised via dispatch
    """One Crude-Approx occupancy probe: refresh the dyadic lattice (fresh
    levels floor ``scaled * 2**level``; consecutive levels apply the exact
    multiply-add doubling) and count the distinct multilinear row hashes
    with an open-addressing table.  All lattice and hash arithmetic wraps
    mod ``2^64`` exactly like the numpy path's uint64 view."""
    n, d = scaled.shape
    if fresh:
        # math.ldexp is exact; the numpy path's ``2.0 ** level`` scalar is
        # the same power-of-two double for every level the caller admits.
        scale = math.ldexp(1.0, level)
        for i in range(n):
            for j in range(d):
                s = scaled[i, j] * scale
                fl = np.floor(s)
                lattice[i, j] = np.int64(fl)
                frac[i, j] = s - fl
    else:
        for i in range(n):
            for j in range(d):
                if frac[i, j] >= 0.5:
                    lattice[i, j] = 2 * lattice[i, j] + 1
                    frac[i, j] = 2.0 * frac[i, j] - 1.0
                else:
                    lattice[i, j] = 2 * lattice[i, j]
                    frac[i, j] = 2.0 * frac[i, j]
    target = 2 * n
    if target < 64:
        target = 64
    table_size = 1
    shift = 64
    while table_size < target:
        table_size <<= 1
        shift -= 1
    mask = np.uint64(table_size - 1)
    golden = np.uint64(0x9E3779B97F4A7C15)
    used = np.zeros(table_size, dtype=np.uint8)
    table_keys = np.empty(table_size, dtype=np.uint64)
    count = 0
    for i in range(n):
        key = np.uint64(0)
        for j in range(d):
            key += np.uint64(lattice[i, j]) * multipliers[j]
        slot = np.int64((key * golden) >> np.uint64(shift))
        while True:
            if used[slot] == 0:
                used[slot] = 1
                table_keys[slot] = key
                count += 1
                break
            if table_keys[slot] == key:
                break
            slot = np.int64((np.uint64(slot) + np.uint64(1)) & mask)
    return count


@njit(cache=False)
def _lloyd_update_sums(
    weighted, weights, assignment, k
):  # pragma: no cover - exercised via dispatch
    n, d = weighted.shape
    counts = np.zeros(k, dtype=np.float64)
    sums = np.zeros((k, d), dtype=np.float64)
    for i in range(n):
        a = assignment[i]
        counts[a] += weights[i]
        for t in range(d):
            sums[a, t] += weighted[i, t]
    return counts, sums


def _candidate_eval(
    points,
    centers,
    center_norms,
    suspects,
    bounds,
    upper,
    assigned_sq,
    assignment,
    margin,
) -> Optional[Tuple[np.ndarray, np.ndarray]]:
    evaluated, result, second_sq = _lloyd_candidate_eval(
        points,
        centers,
        center_norms,
        suspects,
        bounds,
        upper,
        assigned_sq,
        assignment,
        margin,
    )
    if not evaluated:
        return None  # bounds too weak: caller keeps the blocked path
    return result, second_sq


def _fkpp_entry(
    order, n, starts, ends, distances, czs, ceiling, center_slot,
    best_distance, assignment, mass, weights, has_mass,
):
    """Verifier-facing passthrough to the njit sweep (see ``_fkpp_bind``)."""
    return _fkpp_level_score(
        order, n, starts, ends, distances, czs, ceiling, center_slot,
        best_distance, assignment, mass, weights, has_mass,
    )


def _fkpp_bind(
    level_orders, level_offsets, level_cells, n, distances, czs,
    best_distance, assignment, mass, weights,
) -> Callable:
    """Fit-lifetime sweep closure over one tree's CSR arrays.

    Mirrors the ``cc`` provider's ``bind`` contract — the call site drives
    both providers identically: ``sweep(ceiling, center_slot, center_point,
    has_mass)`` once per (tree, center), with the center's per-level cell
    bounds resolved inside the closure.  The njit sweep takes the flat
    (depth, n) order layout, so the tree's per-level orders are concatenated
    once here; that copy is per fit, not per center.
    """
    depth = len(level_orders)
    if depth:
        order_flat = np.concatenate(level_orders)
    else:
        order_flat = np.empty(0, dtype=np.int64)
    starts = np.empty(depth, dtype=np.int64)
    ends = np.empty(depth, dtype=np.int64)

    def sweep(ceiling: float, center_slot: int, center_point: int, has_mass: bool) -> int:
        for level in range(depth):
            cid = level_cells[level][center_point]
            starts[level] = level_offsets[level][cid]
            ends[level] = level_offsets[level][cid + 1]
        return _fkpp_level_score(
            order_flat, n, starts, ends, distances, czs, ceiling, center_slot,
            best_distance, assignment, mass, weights, has_mass,
        )

    return sweep


_fkpp_entry.bind = _fkpp_bind


@numba.njit(cache=False)
def _fkpp_seq_total(mass):
    # The exact left-to-right IEEE add chain of np.cumsum(mass)[-1]; no
    # fastmath, so numba cannot reassociate it.
    acc = 0.0
    for i in range(mass.shape[0]):
        acc += mass[i]
    return acc


@numba.njit(cache=False)
def _fkpp_draw_scan(mass, u):
    # First prefix strictly above u == np.searchsorted(cumsum, u, "right")
    # for non-negative mass (non-decreasing prefixes).
    acc = 0.0
    for i in range(mass.shape[0]):
        acc += mass[i]
        if acc > u:
            return i
    return mass.shape[0]


def _fkpp_draw_entry(mass):
    """Verifier-facing sequential prefix total (see ``_fkpp_draw_bind``)."""
    return float(_fkpp_seq_total(mass))


def _fkpp_draw_scan_entry(mass, u):
    return int(_fkpp_draw_scan(mass, float(u)))


def _fkpp_draw_bind(mass):
    def total() -> float:
        return float(_fkpp_seq_total(mass))

    def scan(u: float) -> int:
        return int(_fkpp_draw_scan(mass, u))

    return total, scan


_fkpp_draw_entry.scan = _fkpp_draw_scan_entry
_fkpp_draw_entry.bind = _fkpp_draw_bind


def load_kernels() -> Dict[str, Callable]:
    return {
        "radix_argsort": _radix_argsort_u64,
        "csr_group": _csr_group_u64,
        "lloyd_refresh_bounds": _lloyd_refresh_bounds,
        "lloyd_candidate_eval": _candidate_eval,
        "lloyd_update_sums": _lloyd_update_sums,
        "fkpp_level_score": _fkpp_entry,
        "fkpp_weighted_draw": _fkpp_draw_entry,
        "crude_bound_probe": _crude_bound_probe,
    }


def describe() -> Dict[str, object]:
    return {"numba_version": numba.__version__}

"""The ``cc`` provider: a small C translation unit compiled on first use.

The kernels live in one C source string below; :func:`load_kernels` writes
it next to a content-hashed shared object under the build cache
(``REPRO_NATIVE_CACHE``, defaulting to ``src/repro/native/_build/`` and
degrading to a temporary directory when the package directory is not
writable), compiles it with the first of ``cc``/``gcc``/``clang`` found on
``PATH``, and binds the entry points through :mod:`ctypes`.  The shared
object name embeds a hash of the source, so editing a kernel rebuilds
automatically and concurrent processes (the shared-memory pool workers all
import this module) reuse one artifact; the build itself goes through an
atomic rename so racing builders never observe a half-written library.

Floating-point contract: the translation unit is compiled with ``-O3
-ffp-contract=off`` — no ``-ffast-math``, no FMA contraction — so every
floating-point expression evaluates exactly as parenthesised.  The distance
kernels lean on that: ``repro__einsum_sq`` reproduces, operation for
operation, the two-lane SSE2 accumulation pattern of this numpy build's
``einsum("ij,ij->i", delta, delta)`` (two independent partial sums over the
even/odd lanes, a four-vector unrolled main loop folding right-to-left, and
the scalar tail), so the squared distances the Lloyd kernels produce are
bit-identical to the numpy hot path they replace.  The resolution-time
verifiers check exactly that against live numpy calls — on a numpy build
with a different SIMD dispatch the verifier fails and the registry quietly
keeps the numpy path.

Threading: ctypes releases the GIL around every call and the kernels use
only stack and caller-provided memory, so concurrent quadtree fits on the
async thread executor are safe.  The Python wrappers keep their work
buffers in ``threading.local`` storage — reused across calls on the same
thread, never shared between threads.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
import threading
from pathlib import Path
from typing import Callable, Dict, Optional, Tuple

import numpy as np
from numpy.ctypeslib import ndpointer

#: Build cache override (a directory path).
ENV_CACHE = "REPRO_NATIVE_CACHE"

_SOURCE = r"""
#include <math.h>
#include <stdint.h>
#include <string.h>

/* ------------------------------------------------------------------ radix */

#define REPRO_RADIX_BITS 11
#define REPRO_RADIX_BUCKETS 2048
#define REPRO_RADIX_PASSES 6
#define REPRO_RADIX_MASK 0x7FFu

/* Stable LSD radix sort of (key, value) pairs, ascending by key with ties
 * kept in input order.  Six 11-bit counting passes ping-pong between the
 * primary and scratch arrays; all histograms are gathered in one pre-pass
 * and any pass whose digit is constant across the input is skipped.
 * Returns 0 when the sorted data ended in the primary arrays and 1 when it
 * ended in the scratch arrays (an even/odd number of executed passes).
 * Only stack memory is used beyond the caller's arrays, so the routine is
 * reentrant (the ~96 KiB of histograms live on the stack). */
static int repro__radix_sort_pairs(uint64_t *keys, int64_t *values,
                                   uint64_t *keys_scratch,
                                   int64_t *values_scratch, int64_t n)
{
    int64_t hist[REPRO_RADIX_PASSES][REPRO_RADIX_BUCKETS];
    int64_t i;
    int pass;
    int flipped = 0;
    uint64_t *src_keys = keys;
    uint64_t *dst_keys = keys_scratch;
    int64_t *src_values = values;
    int64_t *dst_values = values_scratch;
    memset(hist, 0, sizeof(hist));
    for (i = 0; i < n; ++i) {
        const uint64_t key = keys[i];
        for (pass = 0; pass < REPRO_RADIX_PASSES; ++pass)
            ++hist[pass][(key >> (REPRO_RADIX_BITS * pass)) & REPRO_RADIX_MASK];
    }
    for (pass = 0; pass < REPRO_RADIX_PASSES; ++pass) {
        const int64_t *count = hist[pass];
        const int shift = REPRO_RADIX_BITS * pass;
        int64_t offsets[REPRO_RADIX_BUCKETS];
        int64_t running = 0;
        int live = 0;
        int v;
        for (v = 0; v < REPRO_RADIX_BUCKETS; ++v)
            if (count[v] && ++live > 1)
                break;
        if (live <= 1)
            continue; /* every key shares this digit: the pass is identity */
        for (v = 0; v < REPRO_RADIX_BUCKETS; ++v) {
            offsets[v] = running;
            running += count[v];
        }
        for (i = 0; i < n; ++i) {
            const uint64_t key = src_keys[i];
            const int64_t slot = offsets[(key >> shift) & REPRO_RADIX_MASK]++;
            dst_keys[slot] = key;
            dst_values[slot] = src_values[i];
        }
        {
            uint64_t *swap_keys = src_keys;
            int64_t *swap_values = src_values;
            src_keys = dst_keys;
            dst_keys = swap_keys;
            src_values = dst_values;
            dst_values = swap_values;
        }
        flipped = !flipped;
    }
    return flipped;
}

/* Stable argsort of uint64 keys: the permutation of a stable comparison
 * argsort, byte for byte.  `order_scratch`, `shadow`, `shadow_scratch` are
 * caller-provided work arrays of length n. */
void repro_radix_argsort_u64(const uint64_t *keys, int64_t n, int64_t *order,
                             int64_t *order_scratch, uint64_t *shadow,
                             uint64_t *shadow_scratch)
{
    int64_t i;
    for (i = 0; i < n; ++i) {
        order[i] = i;
        shadow[i] = keys[i];
    }
    if (repro__radix_sort_pairs(shadow, order, shadow_scratch, order_scratch, n))
        memcpy(order, order_scratch, (size_t)n * sizeof(int64_t));
}

/* Fused grouping: the whole body of quadtree _csr_group in one call.
 *
 * Outputs (all caller-allocated): cell_ids[n] gets the rank of each point's
 * key among the distinct keys in ascending unsigned order; order[n] gets
 * the point indices sorted by rank with ties in ascending input order (the
 * stable argsort permutation); offsets[0..m] the CSR boundaries.  Returns
 * m, the number of distinct keys.
 *
 * Two strategies, picked at runtime:
 *
 * Hash fast path — when the number of distinct keys m stays at or below
 * n/8 (deep duplicate-heavy levels near the root of the tree), a linear
 * probing table (golden-ratio multiplicative hash on the high bits of
 * table_size, a power of two) maps each key to a first-seen group id in
 * one pass, only the m distinct keys go through the radix sort, and a
 * counting scatter rebuilds order/offsets.  The moment the distinct count
 * exceeds the threshold the path aborts and falls through to the general
 * sort, so adversarial inputs only pay one wasted O(n) probe pass.
 *
 * Radix path — sort (key, index) pairs, then a single fused pass walks the
 * sorted keys emitting boundary offsets and scattering the rank through
 * the sorted order, replacing the five numpy passes (take/not_equal/
 * cumsum/fancy-store/flatnonzero) that followed the argsort.
 *
 * Work arrays: order_scratch/shadow/shadow_scratch/slot_index/aux length n,
 * hash_keys/hash_payload length table_size. */
int64_t repro_csr_group_u64(const uint64_t *keys, int64_t n, int64_t *cell_ids,
                            int64_t *order, int64_t *offsets,
                            int64_t *order_scratch, uint64_t *shadow,
                            uint64_t *shadow_scratch, int64_t *slot_index,
                            int64_t *aux, uint64_t *hash_keys,
                            int64_t *hash_payload, int64_t table_size)
{
    const int64_t threshold = n >> 3;
    int64_t i;
    if (threshold > 0) {
        const uint64_t mask = (uint64_t)(table_size - 1);
        int shift = 64;
        int64_t m = 0;
        {
            int64_t t = table_size;
            while (t > 1) {
                t >>= 1;
                --shift;
            }
        }
        memset(hash_payload, 0xFF, (size_t)table_size * sizeof(int64_t));
        for (i = 0; i < n; ++i) {
            const uint64_t key = keys[i];
            uint64_t slot = (key * UINT64_C(0x9E3779B97F4A7C15)) >> shift;
            int64_t gid;
            for (;;) {
                const int64_t payload = hash_payload[slot];
                if (payload < 0) {
                    if (m >= threshold)
                        goto radix_path; /* too many distinct keys */
                    hash_keys[slot] = key;
                    hash_payload[slot] = m;
                    shadow[m] = key;
                    gid = m++;
                    break;
                }
                if (hash_keys[slot] == key) {
                    gid = payload;
                    break;
                }
                slot = (slot + 1) & mask;
            }
            slot_index[i] = gid;
        }
        /* Rank the m distinct keys: sort them with their group ids, then
         * invert into a gid -> rank table (cell_ids doubles as scratch for
         * it; the final scatter overwrites every entry). */
        for (i = 0; i < m; ++i)
            order_scratch[i] = i;
        {
            const int flipped = repro__radix_sort_pairs(
                shadow, order_scratch, shadow_scratch, aux, m);
            const int64_t *sorted_gid = flipped ? aux : order_scratch;
            int64_t r;
            for (r = 0; r < m; ++r)
                cell_ids[sorted_gid[r]] = r;
        }
        for (i = 0; i < m; ++i)
            hash_payload[i] = 0; /* reuse as per-rank counts */
        for (i = 0; i < n; ++i) {
            const int64_t r = cell_ids[slot_index[i]];
            slot_index[i] = r;
            ++hash_payload[r];
        }
        {
            int64_t running = 0;
            int64_t r;
            for (r = 0; r < m; ++r) {
                offsets[r] = running;
                aux[r] = running; /* scatter cursor */
                running += hash_payload[r];
            }
            offsets[m] = n;
        }
        for (i = 0; i < n; ++i) {
            const int64_t r = slot_index[i];
            order[aux[r]++] = i;
            cell_ids[i] = r;
        }
        return m;
    }
radix_path:
    for (i = 0; i < n; ++i) {
        order[i] = i;
        shadow[i] = keys[i];
    }
    {
        const int flipped = repro__radix_sort_pairs(
            shadow, order, shadow_scratch, order_scratch, n);
        const uint64_t *sorted_keys = flipped ? shadow_scratch : shadow;
        const int64_t *sorted_order = flipped ? order_scratch : order;
        int64_t n_cells = 0;
        for (i = 0; i < n; ++i) {
            if (i == 0 || sorted_keys[i] != sorted_keys[i - 1])
                offsets[n_cells++] = i;
            cell_ids[sorted_order[i]] = n_cells - 1;
        }
        offsets[n_cells] = n;
        if (flipped)
            memcpy(order, order_scratch, (size_t)n * sizeof(int64_t));
        return n_cells;
    }
}

/* ------------------------------------------------------------------ lloyd */

/* The squared distance between two d-vectors, accumulated in exactly the
 * order of this numpy build's einsum("ij,ij->i", delta, delta) row kernel:
 * the SSE2 (vstep 2, no FMA) loop keeps one partial sum per lane -- lane 0
 * the even offsets, lane 1 the odd -- unrolls four vectors and folds them
 * right to left onto the accumulator, then drains pairs and a possible
 * scalar remainder (which contributes an explicit 0.0 to the odd lane)
 * before adding the two lanes.  Compiled with -ffp-contract=off nothing is
 * fused or reassociated, so the result is bit-identical to numpy's. */
static double repro__einsum_sq(const double *p, const double *c, int64_t d)
{
    double l0 = 0.0;
    double l1 = 0.0;
    int64_t t = 0;
    for (; t + 8 <= d; t += 8) {
        const double d0 = p[t] - c[t];
        const double d1 = p[t + 1] - c[t + 1];
        const double d2 = p[t + 2] - c[t + 2];
        const double d3 = p[t + 3] - c[t + 3];
        const double d4 = p[t + 4] - c[t + 4];
        const double d5 = p[t + 5] - c[t + 5];
        const double d6 = p[t + 6] - c[t + 6];
        const double d7 = p[t + 7] - c[t + 7];
        l0 = (d0 * d0) + ((d2 * d2) + ((d4 * d4) + ((d6 * d6) + l0)));
        l1 = (d1 * d1) + ((d3 * d3) + ((d5 * d5) + ((d7 * d7) + l1)));
    }
    for (; t + 2 <= d; t += 2) {
        const double d0 = p[t] - c[t];
        const double d1 = p[t + 1] - c[t + 1];
        l0 = (d0 * d0) + l0;
        l1 = (d1 * d1) + l1;
    }
    if (t < d) {
        const double d0 = p[t] - c[t];
        l0 = (d0 * d0) + l0;
        l1 = 0.0 + l1;
    }
    return l0 + l1;
}

/* Fused per-iteration bound refresh of the pruned Lloyd engine: for every
 * point recompute the exact assigned squared distance (einsum-identical),
 * derive the inflated upper bound, erode the cached lower bound by the
 * iteration's largest center drift, and emit the phase-one suspects
 * (upper >= eroded) in ascending order.  squared/eroded are updated in
 * place; returns the suspect count. */
int64_t repro_lloyd_refresh_bounds(const double *points, const double *centers,
                                   const int64_t *assignment, int64_t n,
                                   int64_t d, double decrement,
                                   double upper_scale, double *squared,
                                   double *upper, double *eroded,
                                   int64_t *suspects)
{
    int64_t i;
    int64_t count = 0;
    for (i = 0; i < n; ++i) {
        const double sq =
            repro__einsum_sq(points + i * d, centers + assignment[i] * d, d);
        const double u = sqrt(sq) * upper_scale;
        const double e = eroded[i] - decrement;
        squared[i] = sq;
        upper[i] = u;
        eroded[i] = e;
        if (u >= e)
            suspects[count++] = i;
    }
    return count;
}

/* Per-candidate exact-distance evaluation for Lloyd's warm phase.
 *
 * A candidate of suspect row r is a non-assigned center j whose lower
 * bound bounds[r*k + j] does not exceed upper[r].  A pre-pass counts the
 * candidate pairs and returns -1 when they exceed 4 per suspect on average
 * -- the numpy prove-stay bail, where the blocked kernel is cheaper -- so
 * the caller falls through with the suspect set untouched.
 *
 * Otherwise each suspect's candidates are evaluated with the einsum
 * replica and the suspect is classified:
 *
 *   result[r] = assignment        no candidate reaches the assigned
 *                                 distance within the relative margin (the
 *                                 numpy pass's "stays" set, bit for bit);
 *   result[r] = j (!= assignment) candidate j wins and the runner-up gap
 *                                 clears an absolute-scale guard wide
 *                                 enough that the blocked GEMM argmin
 *                                 (norm expansion, clamping, lowest-index
 *                                 ties) must agree;
 *   result[r] = -1                beaten but ambiguous: the caller routes
 *                                 the suspect through the authoritative
 *                                 blocked kernel.
 *
 * second_sq[r] gets the second-smallest evaluated squared distance (the
 * assigned distance participates; +inf when the suspect stays), from which
 * the caller rebuilds a sound runner-up bound for reassigned points. */
int64_t repro_lloyd_candidate_eval(const double *points, const double *centers,
                                   const double *center_norms, int64_t d,
                                   int64_t k, const int64_t *suspects,
                                   int64_t s, const double *bounds,
                                   const double *upper,
                                   const double *assigned_sq,
                                   const int64_t *assignment, double margin,
                                   int64_t *result, double *second_sq)
{
    int64_t r;
    int64_t pairs = 0;
    for (r = 0; r < s; ++r) {
        const double *bound_row = bounds + r * k;
        const double u = upper[r];
        const int64_t a = assignment[suspects[r]];
        int64_t j;
        for (j = 0; j < k; ++j)
            if (j != a && bound_row[j] <= u)
                ++pairs;
    }
    if (pairs > 4 * s)
        return -1;
    for (r = 0; r < s; ++r) {
        const int64_t i = suspects[r];
        const int64_t a = assignment[i];
        const double *point = points + i * d;
        const double *bound_row = bounds + r * k;
        const double u = upper[r];
        const double asq = assigned_sq[i];
        const double stay_limit = asq * (1.0 + margin);
        double best = asq;
        double second = 1.0 / 0.0;
        double cn_max = center_norms[a];
        int64_t best_j = a;
        int64_t beaten = 0;
        int64_t j;
        for (j = 0; j < k; ++j) {
            double dist;
            if (j == a || bound_row[j] > u)
                continue;
            dist = repro__einsum_sq(point, centers + j * d, d);
            if (dist <= stay_limit)
                ++beaten;
            if (center_norms[j] > cn_max)
                cn_max = center_norms[j];
            if (dist < best) {
                second = best;
                best = dist;
                best_j = j;
            } else if (dist < second) {
                second = dist;
            }
        }
        if (beaten == 0) {
            result[r] = a;
            second_sq[r] = 1.0 / 0.0;
            continue;
        }
        second_sq[r] = second;
        if (best_j != a) {
            /* The guard must dominate the blocked kernel's rounding: its
             * distances come from pn + cn - 2*dot with error on the order
             * of eps * (pn + cn + dist), so a runner-up gap of margin
             * (~1e-9) times that scale leaves the argmin no room to
             * disagree -- including its lowest-index tie-breaking, which
             * needs strict separation, not just a different winner. */
            double pn = 0.0;
            int64_t t;
            for (t = 0; t < d; ++t)
                pn += point[t] * point[t];
            result[r] =
                (second - best > margin * (pn + cn_max + second)) ? best_j : -1;
        } else {
            result[r] = -1;
        }
    }
    return 0;
}

/* ----------------------------------------------------------- fast-kmeans++ */

/* One cell of a Fast-kmeans++ register-center sweep: for every member
 * whose best distance strictly exceeds the candidate, store the candidate,
 * the center slot, and (once the first center's mass vector exists) the
 * mass weights[i] * cz.  `cz` is the caller's precomputed candidate**z --
 * the same double the numpy sweep multiplies by -- so every stored value
 * is bit-identical to the fancy-indexed numpy path (pure per-element
 * gather/compare/scatter; no accumulation, hence no ordering hazard).  The
 * gathers are latency-bound random accesses, so upcoming best-distance
 * entries are software-prefetched.  Returns the improved-point count. */
static int64_t repro__fkpp_sweep_cell(const int64_t *row, int64_t start,
                                      int64_t end, double candidate,
                                      double cz, int64_t center_slot,
                                      double *best_distance,
                                      int64_t *assignment, double *mass,
                                      const double *weights, int has_mass)
{
    int64_t idx;
    int64_t improved = 0;
    if (has_mass) {
        for (idx = start; idx < end; ++idx) {
            const int64_t i = row[idx];
            if (idx + 16 < end)
                __builtin_prefetch(&best_distance[row[idx + 16]], 0, 1);
            if (best_distance[i] > candidate) {
                best_distance[i] = candidate;
                assignment[i] = center_slot;
                mass[i] = weights[i] * cz;
                ++improved;
            }
        }
    } else {
        for (idx = start; idx < end; ++idx) {
            const int64_t i = row[idx];
            if (idx + 16 < end)
                __builtin_prefetch(&best_distance[row[idx + 16]], 0, 1);
            if (best_distance[i] > candidate) {
                best_distance[i] = candidate;
                assignment[i] = center_slot;
                ++improved;
            }
        }
    }
    return improved;
}

/* One Fast-kmeans++ register-center sweep over every level of one tree.
 *
 * `order` holds the tree's per-level CSR orders concatenated (level l is
 * row l of a (depth, n) layout); starts/ends delimit the new center's cell
 * within each row; distances/czs are the per-level candidate distance and
 * the caller's precomputed candidate**z (indexed at level + 1, matching
 * the level-distance table).  Levels are scanned deepest first and the
 * scan breaks once the candidate reaches the ceiling (tree distances only
 * grow toward the root) -- the exact control flow of the numpy sweep. */
int64_t repro_fkpp_level_score(const int64_t *order, int64_t n,
                               const int64_t *starts, const int64_t *ends,
                               const double *distances, const double *czs,
                               int64_t depth, double ceiling,
                               int64_t center_slot, double *best_distance,
                               int64_t *assignment, double *mass,
                               const double *weights, int has_mass)
{
    int64_t level;
    int64_t improved = 0;
    for (level = depth - 1; level >= 0; --level) {
        const double candidate = distances[level + 1];
        if (candidate >= ceiling && isfinite(ceiling))
            break;
        improved += repro__fkpp_sweep_cell(
            order + level * n, starts[level], ends[level], candidate,
            czs[level + 1], center_slot, best_distance, assignment, mass,
            weights, has_mass);
    }
    return improved;
}

/* The pointer-table form of the sweep, driven directly off the quadtree's
 * per-level CSR arrays: order_ptrs/offset_ptrs/cell_ptrs hold one pointer
 * per level (as uint64) into the tree's own level_order_/level_offsets_/
 * level_cell_ids_ arrays, so the sweep needs no concatenated copies and
 * the center's cell lookup (cid = cells[center_point], bounds =
 * offsets[cid], offsets[cid+1]) happens here instead of in numpy once per
 * (tree, center).  Same level walk, ceiling break, and per-cell stores as
 * repro_fkpp_level_score -- the two share repro__fkpp_sweep_cell. */
int64_t repro_fkpp_center_sweep(const uint64_t *order_ptrs,
                                const uint64_t *offset_ptrs,
                                const uint64_t *cell_ptrs, int64_t depth,
                                int64_t center_point, const double *distances,
                                const double *czs, double ceiling,
                                int64_t center_slot, double *best_distance,
                                int64_t *assignment, double *mass,
                                const double *weights, int has_mass)
{
    int64_t level;
    int64_t improved = 0;
    for (level = depth - 1; level >= 0; --level) {
        const double candidate = distances[level + 1];
        if (candidate >= ceiling && isfinite(ceiling))
            break;
        {
            const int64_t *cells =
                (const int64_t *)(uintptr_t)cell_ptrs[level];
            const int64_t *offsets =
                (const int64_t *)(uintptr_t)offset_ptrs[level];
            const int64_t *row =
                (const int64_t *)(uintptr_t)order_ptrs[level];
            const int64_t cid = cells[center_point];
            improved += repro__fkpp_sweep_cell(
                row, offsets[cid], offsets[cid + 1], candidate,
                czs[level + 1], center_slot, best_distance, assignment,
                mass, weights, has_mass);
        }
    }
    return improved;
}

/* The D^2-sampling draw, split into the same two observable steps as the
 * numpy path (cumsum -> validity check -> searchsorted): a sequential
 * prefix total and a first-exceed scan.  Both walk the mass array in the
 * exact left-to-right IEEE order of np.cumsum, so every partial sum is the
 * same double as the corresponding cumsum entry; the scan then returns the
 * first index whose prefix exceeds u, which for non-negative mass (the
 * caller's precondition -- prefixes are non-decreasing) is precisely
 * np.searchsorted(cumsum, u, side="right").  Two calls, not one, because
 * the uniform variate is drawn only after the total proves finite and
 * positive -- consuming the RNG stream identically to the fallback. */
double repro_fkpp_seq_total(const double *mass, int64_t n)
{
    double acc = 0.0;
    int64_t i;
    for (i = 0; i < n; ++i)
        acc += mass[i];
    return acc;
}

int64_t repro_fkpp_draw_scan(const double *mass, int64_t n, double u)
{
    double acc = 0.0;
    int64_t i;
    for (i = 0; i < n; ++i) {
        acc += mass[i];
        if (acc > u)
            return i;
    }
    return n;
}

/* ------------------------------------------------------------ crude-approx */

/* One Crude-Approx (Algorithm 2) occupancy probe: refresh the dyadic
 * lattice in place, then count the distinct multilinear row hashes.
 *
 * Fresh levels floor scaled * 2^level (ldexp is exact, and scaling by a
 * power of two commutes with IEEE rounding, so lattice/frac match the
 * numpy floor/subtract pair bit for bit); consecutive levels -- the tail
 * of the bisection -- apply the quadtree's multiply-add doubling
 * (lattice' = 2*lattice + bit, frac' = 2*frac - bit), every step of which
 * is exact.  Lattice doubling is computed in uint64 so it wraps mod 2^64
 * exactly like the numpy int64 ops instead of tripping signed-overflow UB.
 *
 * The hash is the numpy path's uint64 view: sum of lattice[i][j] *
 * multipliers[j] with wrapping multiplies.  Distinct counting uses a
 * linear-probing table (golden-ratio multiplicative hash on the high bits,
 * table_size a power of two >= 2n so load stays under 50%); every uint64
 * key value is valid, so occupancy lives in a separate byte array.  The
 * count equals np.unique(...).shape[0] -- distinctness is order-invariant,
 * which is all the binary search observes. */
int64_t repro_crude_bound_probe(const double *scaled, int64_t n, int64_t d,
                                int64_t level, int fresh, int64_t *lattice,
                                double *frac, const uint64_t *multipliers,
                                uint64_t *table_keys, uint8_t *table_used,
                                int64_t table_size)
{
    const int64_t total = n * d;
    const uint64_t mask = (uint64_t)(table_size - 1);
    int shift = 64;
    int64_t i, j;
    int64_t count = 0;
    if (fresh) {
        const double scale = ldexp(1.0, (int)level);
        for (i = 0; i < total; ++i) {
            const double s = scaled[i] * scale;
            const double fl = floor(s);
            lattice[i] = (int64_t)fl;
            frac[i] = s - fl;
        }
    } else {
        for (i = 0; i < total; ++i) {
            const int bit = frac[i] >= 0.5;
            lattice[i] =
                (int64_t)(((uint64_t)lattice[i] << 1) + (uint64_t)bit);
            frac[i] = 2.0 * frac[i] - (double)bit;
        }
    }
    {
        int64_t t = table_size;
        while (t > 1) {
            t >>= 1;
            --shift;
        }
    }
    memset(table_used, 0, (size_t)table_size);
    for (i = 0; i < n; ++i) {
        const int64_t *row = lattice + i * d;
        uint64_t key = 0;
        uint64_t slot;
        for (j = 0; j < d; ++j)
            key += (uint64_t)row[j] * multipliers[j];
        slot = (key * UINT64_C(0x9E3779B97F4A7C15)) >> shift;
        for (;;) {
            if (!table_used[slot]) {
                table_used[slot] = 1;
                table_keys[slot] = key;
                ++count;
                break;
            }
            if (table_keys[slot] == key)
                break;
            slot = (slot + 1) & mask;
        }
    }
    return count;
}

/* The M-step accumulation: per-cluster weight totals and weighted
 * coordinate sums, visiting points in ascending index order -- the exact
 * accumulation order of np.bincount over flat (cluster, coordinate) codes,
 * so the partial sums are bit-identical to update_centers' numpy path. */
void repro_lloyd_update_sums(const double *weighted, const double *weights,
                             const int64_t *assignment, int64_t n, int64_t d,
                             int64_t k, double *counts, double *sums)
{
    int64_t i;
    int64_t t;
    memset(counts, 0, (size_t)k * sizeof(double));
    memset(sums, 0, (size_t)(k * d) * sizeof(double));
    for (i = 0; i < n; ++i) {
        const int64_t a = assignment[i];
        const double *row = weighted + i * d;
        double *out = sums + a * d;
        counts[a] += weights[i];
        for (t = 0; t < d; ++t)
            out[t] += row[t];
    }
}
"""


def _compiler() -> str:
    for name in ("cc", "gcc", "clang"):
        path = shutil.which(name)
        if path is not None:
            return path
    raise RuntimeError("no C compiler (cc/gcc/clang) on PATH")


def _cache_directory() -> Path:
    override = os.environ.get(ENV_CACHE)
    if override:
        directory = Path(override)
        directory.mkdir(parents=True, exist_ok=True)
        return directory
    directory = Path(__file__).resolve().parent / "_build"
    try:
        directory.mkdir(parents=True, exist_ok=True)
        probe = directory / ".write-probe"
        probe.touch()
        probe.unlink()
        return directory
    except OSError:
        # Installed into a read-only site-packages: degrade to a per-process
        # temporary directory (the build costs well under a second).
        return Path(tempfile.mkdtemp(prefix="repro-native-"))


def _build_library() -> Path:
    digest = hashlib.sha256(_SOURCE.encode("utf-8")).hexdigest()[:16]
    directory = _cache_directory()
    library = directory / f"repro_native_{digest}.so"
    if library.exists():
        return library
    compiler = _compiler()
    source = directory / f"repro_native_{digest}.c"
    source.write_text(_SOURCE)
    handle, temporary = tempfile.mkstemp(
        prefix=f"repro_native_{digest}_", suffix=".so", dir=str(directory)
    )
    os.close(handle)
    try:
        completed = subprocess.run(
            [
                compiler,
                "-O3",
                "-ffp-contract=off",  # the bit-identity contract: no FMA fusion
                # Pin hot-loop alignment so adding kernels to the source
                # can't shift the code layout of every later function
                # between builds (keeps benchmark trajectories comparable
                # across otherwise-unrelated kernel additions).
                "-falign-functions=64",
                "-falign-loops=32",
                "-shared",
                "-fPIC",
                "-o",
                temporary,
                str(source),
                "-lm",
            ],
            capture_output=True,
            text=True,
            timeout=120,
        )
        if completed.returncode != 0:
            raise RuntimeError(
                f"{compiler} failed ({completed.returncode}): {completed.stderr.strip()[:500]}"
            )
        os.replace(temporary, library)  # atomic: racing builders converge
    finally:
        if os.path.exists(temporary):
            os.unlink(temporary)
    return library


#: Per-thread work buffer cache: the grouping kernels are called once per
#: quadtree level inside threads of the async executor, and reallocating
#: (and page-faulting) half a megabyte of scratch per call costs more than
#: the kernel itself at moderate n.
_LOCAL = threading.local()


def _scratch(name: str, capacity: int, dtype) -> np.ndarray:
    buffers = getattr(_LOCAL, "buffers", None)
    if buffers is None:
        buffers = _LOCAL.buffers = {}
    array = buffers.get(name)
    if array is None or array.shape[0] < capacity:
        array = buffers[name] = np.empty(capacity, dtype=dtype)
    return array


def _hash_table_size(n: int) -> int:
    # Next power of two at or above max(64, n/2): the fast path aborts past
    # n/8 distinct keys, so the table never exceeds 25% load.
    return 1 << max(64, n >> 1).bit_length()


def load_kernels() -> Dict[str, Callable]:
    """Compile (or reuse) the shared object and bind the kernel wrappers."""
    library = ctypes.CDLL(str(_build_library()))

    i64 = ctypes.c_int64
    f64 = ctypes.c_double
    i32 = ctypes.c_int
    pi64 = ndpointer(np.int64, flags="C_CONTIGUOUS")
    pu64 = ndpointer(np.uint64, flags="C_CONTIGUOUS")
    pf64 = ndpointer(np.float64, flags="C_CONTIGUOUS")
    pu8 = ndpointer(np.uint8, flags="C_CONTIGUOUS")

    radix = library.repro_radix_argsort_u64
    radix.restype = None
    radix.argtypes = [pu64, i64, pi64, pi64, pu64, pu64]

    group = library.repro_csr_group_u64
    group.restype = i64
    group.argtypes = [
        pu64, i64, pi64, pi64, pi64, pi64, pu64, pu64, pi64, pi64, pu64, pi64, i64,
    ]

    refresh = library.repro_lloyd_refresh_bounds
    refresh.restype = i64
    refresh.argtypes = [pf64, pf64, pi64, i64, i64, f64, f64, pf64, pf64, pf64, pi64]

    candidate = library.repro_lloyd_candidate_eval
    candidate.restype = i64
    candidate.argtypes = [
        pf64, pf64, pf64, i64, i64, pi64, i64, pf64, pf64, pf64, pi64, f64, pi64, pf64,
    ]

    sums_kernel = library.repro_lloyd_update_sums
    sums_kernel.restype = None
    sums_kernel.argtypes = [pf64, pf64, pi64, i64, i64, i64, pf64, pf64]

    level_score = library.repro_fkpp_level_score
    level_score.restype = i64
    level_score.argtypes = [
        pi64, i64, pi64, pi64, pf64, pf64, i64, f64, i64, pf64, pi64, pf64, pf64, i32,
    ]

    # The pointer-table sweep is bound with raw-pointer argtypes only:
    # ctypes ndpointer validation costs ~3 µs per array argument, which at
    # one call per (tree, center) would eat the kernel's win, and this
    # symbol is reached exclusively through ``_fkpp_bind`` below, which
    # validates and pins every array once per fit.
    center_sweep = library.repro_fkpp_center_sweep
    center_sweep.restype = i64
    center_sweep.argtypes = [
        ctypes.c_void_p, ctypes.c_void_p, ctypes.c_void_p, i64, i64,
        ctypes.c_void_p, ctypes.c_void_p, f64, i64, ctypes.c_void_p,
        ctypes.c_void_p, ctypes.c_void_p, ctypes.c_void_p, i32,
    ]

    seq_total = library.repro_fkpp_seq_total
    seq_total.restype = f64
    seq_total.argtypes = [pf64, i64]

    draw_scan = library.repro_fkpp_draw_scan
    draw_scan.restype = i64
    draw_scan.argtypes = [pf64, i64, f64]

    # Raw-pointer twins for the per-draw fast path (see ``_fkpp_bind`` for
    # why ndpointer validation is too slow at one call per draw).
    seq_total_fast = library["repro_fkpp_seq_total"]
    seq_total_fast.restype = f64
    seq_total_fast.argtypes = [ctypes.c_void_p, i64]
    draw_scan_fast = library["repro_fkpp_draw_scan"]
    draw_scan_fast.restype = i64
    draw_scan_fast.argtypes = [ctypes.c_void_p, i64, f64]

    probe = library.repro_crude_bound_probe
    probe.restype = i64
    probe.argtypes = [pf64, i64, i64, i64, i32, pi64, pf64, pu64, pu64, pu8, i64]

    def radix_argsort_u64(keys: np.ndarray) -> np.ndarray:
        n = keys.shape[0]
        order = np.empty(n, dtype=np.int64)
        if n == 0:
            return order
        radix(
            keys,
            n,
            order,
            _scratch("order_scratch", n, np.int64),
            _scratch("shadow", n, np.uint64),
            _scratch("shadow_scratch", n, np.uint64),
        )
        return order

    def csr_group_u64(keys: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        n = keys.shape[0]
        if n < 2:
            cell_ids = np.zeros(n, dtype=np.int64)
            order = np.arange(n, dtype=np.int64)
            offsets = np.arange(n + 1, dtype=np.int64)
            return cell_ids, order, offsets
        cell_ids = np.empty(n, dtype=np.int64)
        order = np.empty(n, dtype=np.int64)
        offsets = np.empty(n + 1, dtype=np.int64)
        table_size = _hash_table_size(n)
        n_cells = group(
            keys,
            n,
            cell_ids,
            order,
            offsets,
            _scratch("order_scratch", n, np.int64),
            _scratch("shadow", n, np.uint64),
            _scratch("shadow_scratch", n, np.uint64),
            _scratch("slot_index", n, np.int64),
            _scratch("aux", n, np.int64),
            _scratch("hash_keys", table_size, np.uint64),
            _scratch("hash_payload", table_size, np.int64),
            table_size,
        )
        return cell_ids, order, offsets[: n_cells + 1].copy()

    def lloyd_refresh_bounds(
        points: np.ndarray,
        centers: np.ndarray,
        assignment: np.ndarray,
        decrement: float,
        upper_scale: float,
        squared: np.ndarray,
        eroded: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        n, d = points.shape
        upper = np.empty(n, dtype=np.float64)
        suspect_buffer = _scratch("suspects", n, np.int64)
        count = refresh(
            points,
            centers,
            assignment,
            n,
            d,
            float(decrement),
            float(upper_scale),
            squared,
            upper,
            eroded,
            suspect_buffer,
        )
        return upper, suspect_buffer[:count].copy()

    def lloyd_candidate_eval(
        points: np.ndarray,
        centers: np.ndarray,
        center_norms: np.ndarray,
        suspects: np.ndarray,
        bounds: np.ndarray,
        upper: np.ndarray,
        assigned_sq: np.ndarray,
        assignment: np.ndarray,
        margin: float,
    ) -> Optional[tuple]:
        s = suspects.shape[0]
        result = np.empty(s, dtype=np.int64)
        second_sq = np.empty(s, dtype=np.float64)
        if s == 0:
            return result, second_sq
        outcome = candidate(
            points,
            centers,
            center_norms,
            points.shape[1],
            centers.shape[0],
            suspects,
            s,
            bounds,
            upper,
            assigned_sq,
            assignment,
            float(margin),
            result,
            second_sq,
        )
        if outcome == -1:
            return None  # bounds too weak: caller keeps the blocked path
        return result, second_sq

    def lloyd_update_sums(
        weighted: np.ndarray,
        weights: np.ndarray,
        assignment: np.ndarray,
        k: int,
    ) -> Tuple[np.ndarray, np.ndarray]:
        n, d = weighted.shape
        counts = np.empty(k, dtype=np.float64)
        sums = np.empty((k, d), dtype=np.float64)
        sums_kernel(weighted, weights, assignment, n, d, k, counts, sums.reshape(-1))
        return counts, sums

    def fkpp_level_score(
        order: np.ndarray,
        n: int,
        starts: np.ndarray,
        ends: np.ndarray,
        distances: np.ndarray,
        czs: np.ndarray,
        ceiling: float,
        center_slot: int,
        best_distance: np.ndarray,
        assignment: np.ndarray,
        mass: np.ndarray,
        weights: np.ndarray,
        has_mass: bool,
    ) -> int:
        depth = starts.shape[0]
        if depth == 0:
            return 0
        return int(
            level_score(
                order,
                int(n),
                starts,
                ends,
                distances,
                czs,
                depth,
                float(ceiling),
                int(center_slot),
                best_distance,
                assignment,
                mass,
                weights,
                1 if has_mass else 0,
            )
        )

    def _fkpp_bind(
        level_orders,
        level_offsets,
        level_cells,
        n: int,
        distances: np.ndarray,
        czs: np.ndarray,
        best_distance: np.ndarray,
        assignment: np.ndarray,
        mass: np.ndarray,
        weights: np.ndarray,
    ) -> Callable:
        """Build a fit-lifetime sweep closure over one tree's CSR arrays.

        ``level_orders``/``level_offsets``/``level_cells`` are the tree's own
        per-level arrays (``level_order_``/``level_offsets_``/
        ``level_cell_ids_``); their data pointers are packed into uint64
        tables once, so the per-center call carries only four scalars.  The
        kernel itself locates the center's cell at every level — no
        concatenated copies of the tree and no per-center numpy indexing.
        Pinning every pointer up front drops the per-call ctypes cost from
        ~34 µs (ndpointer validation of seven array arguments) to ~2 µs —
        the difference between the kernel beating the numpy sweep and
        losing to it at one call per (tree, center).  The caller owns all
        arrays for the lifetime of the closure.
        """
        for sequence in (level_orders, level_offsets, level_cells):
            for array in sequence:
                if array.dtype != np.int64 or not array.flags["C_CONTIGUOUS"]:
                    raise ValueError("fkpp tree arrays must be contiguous int64")
        for array in (distances, czs, best_distance, mass, weights):
            if array.dtype != np.float64 or not array.flags["C_CONTIGUOUS"]:
                raise ValueError("fkpp sweep arrays must be contiguous float64")
        if assignment.dtype != np.int64 or not assignment.flags["C_CONTIGUOUS"]:
            raise ValueError("fkpp assignment must be contiguous int64")
        depth = len(level_orders)
        order_ptrs = np.array([a.ctypes.data for a in level_orders], dtype=np.uint64)
        offset_ptrs = np.array([a.ctypes.data for a in level_offsets], dtype=np.uint64)
        cell_ptrs = np.array([a.ctypes.data for a in level_cells], dtype=np.uint64)
        keep = (
            tuple(level_orders), tuple(level_offsets), tuple(level_cells),
            order_ptrs, offset_ptrs, cell_ptrs,
            distances, czs, best_distance, assignment, mass, weights,
        )
        p_orders = order_ptrs.ctypes.data
        p_offsets = offset_ptrs.ctypes.data
        p_cells = cell_ptrs.ctypes.data
        p_distances = distances.ctypes.data
        p_czs = czs.ctypes.data
        p_best = best_distance.ctypes.data
        p_assignment = assignment.ctypes.data
        p_mass = mass.ctypes.data
        p_weights = weights.ctypes.data

        def sweep(
            ceiling: float, center_slot: int, center_point: int, has_mass: bool, _keep=keep
        ) -> int:
            return center_sweep(
                p_orders, p_offsets, p_cells, depth, center_point,
                p_distances, p_czs, ceiling, center_slot, p_best,
                p_assignment, p_mass, p_weights, 1 if has_mass else 0,
            )

        return sweep

    fkpp_level_score.bind = _fkpp_bind

    def fkpp_weighted_draw(mass: np.ndarray) -> float:
        """Sequential prefix total of ``mass`` (== ``np.cumsum(mass)[-1]``)."""
        return float(seq_total(mass, mass.shape[0]))

    def _draw_scan(mass: np.ndarray, u: float) -> int:
        return int(draw_scan(mass, mass.shape[0], float(u)))

    def _draw_bind(mass: np.ndarray):
        """Pin the mass pointer once; per-draw calls carry only scalars."""
        if mass.dtype != np.float64 or not mass.flags["C_CONTIGUOUS"]:
            raise ValueError("draw mass must be contiguous float64")
        n = int(mass.shape[0])
        p_mass = mass.ctypes.data

        def total(_keep=mass) -> float:
            return seq_total_fast(p_mass, n)

        def scan(u: float, _keep=mass) -> int:
            return draw_scan_fast(p_mass, n, u)

        return total, scan

    fkpp_weighted_draw.scan = _draw_scan
    fkpp_weighted_draw.bind = _draw_bind

    def crude_bound_probe(
        scaled: np.ndarray,
        level: int,
        fresh: bool,
        lattice: np.ndarray,
        frac: np.ndarray,
        multipliers: np.ndarray,
    ) -> int:
        n, d = scaled.shape
        if n == 0:
            return 0
        # Power-of-two table at or above max(64, 2n): load stays under 50%.
        table_size = 1 << max(64, 2 * n).bit_length()
        return int(
            probe(
                scaled,
                n,
                d,
                int(level),
                1 if fresh else 0,
                lattice,
                frac,
                multipliers,
                _scratch("crude_keys", table_size, np.uint64),
                _scratch("crude_used", table_size, np.uint8),
                table_size,
            )
        )

    return {
        "radix_argsort": radix_argsort_u64,
        "csr_group": csr_group_u64,
        "lloyd_refresh_bounds": lloyd_refresh_bounds,
        "lloyd_candidate_eval": lloyd_candidate_eval,
        "lloyd_update_sums": lloyd_update_sums,
        "fkpp_level_score": fkpp_level_score,
        "fkpp_weighted_draw": fkpp_weighted_draw,
        "crude_bound_probe": crude_bound_probe,
    }


def describe() -> Dict[str, object]:
    """Cosmetic provider details for :func:`repro.native.native_status`."""
    try:
        return {"compiler": _compiler()}
    except RuntimeError:
        return {"compiler": None}

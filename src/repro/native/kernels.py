"""Kernel declarations, verifiers, and the public dispatch wrappers.

Five kernels ride the compiled tier:

``radix_argsort``
    Stable LSD radix argsort over ``uint64``/``int64`` keys.  The contract
    is byte-for-byte the permutation of ``np.argsort(keys, kind="stable")``,
    duplicates and all; the fallback *is* that call.

``csr_group``
    The whole grouping body of :func:`repro.geometry.quadtree._csr_group`
    fused into one call — sort, boundary detection, rank labelling, CSR
    offsets — plus a hash fast path for duplicate-heavy levels.  No
    registered fallback: in fallback mode the quadtree keeps its inline
    numpy pipeline.

``lloyd_refresh_bounds`` / ``lloyd_candidate_eval`` / ``lloyd_update_sums``
    The warm-phase loop of the pruned Lloyd engine
    (:mod:`repro.clustering.lloyd`): the fused per-point bound refresh, the
    per-candidate exact-distance evaluation with guarded direct
    reassignment, and the M-step accumulation.  None registers a fallback —
    the engine keeps its inline numpy passes when the tier is off.

Every verifier compares a provider's implementation against *live numpy
calls* on adversarial inputs before the registry ever routes a real call to
it.  That is the load-bearing design: the distance kernels replicate this
numpy build's exact SIMD accumulation order, and if a different numpy build
changes it, verification fails and the registry silently keeps the numpy
paths — fallback speed, never wrong results.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.native import registry
from repro.native.registry import get_kernel, kernel_provider

#: Bias flipping the sign bit: int64 keys sorted as uint64 after XOR, the
#: standard order-preserving map between the two (two's complement).
_SIGN_BIAS = np.uint64(0x8000000000000000)


def _fallback_argsort(keys: np.ndarray) -> np.ndarray:
    return np.argsort(keys, kind="stable")


# ---------------------------------------------------------------- oracles
def _reference_csr_group(keys: np.ndarray) -> tuple:
    """The numpy grouping pipeline of ``quadtree._csr_group`` (inlined here
    so verification does not import the geometry package)."""
    n = keys.shape[0]
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    starts = np.empty(n, dtype=bool)
    starts[0] = True
    np.not_equal(sorted_keys[1:], sorted_keys[:-1], out=starts[1:])
    identifiers = np.cumsum(starts, dtype=np.int64) - 1
    cell_ids = np.empty(n, dtype=np.int64)
    cell_ids[order] = identifiers
    boundaries = np.flatnonzero(starts)
    offsets = np.empty(boundaries.shape[0] + 1, dtype=np.int64)
    offsets[:-1] = boundaries
    offsets[-1] = n
    return cell_ids, order, offsets


def reference_candidate_eval(
    points: np.ndarray,
    centers: np.ndarray,
    center_norms: np.ndarray,
    suspects: np.ndarray,
    bounds: np.ndarray,
    upper: np.ndarray,
    assigned_sq: np.ndarray,
    assignment: np.ndarray,
    margin: float,
) -> Optional[Tuple[np.ndarray, np.ndarray]]:
    """Oracle of the candidate-evaluation kernel, built from live numpy ops.

    Candidate distances come from the same ``einsum("ij,ij->i", ...)`` call
    the engine's prove-stay pass uses, so comparing a provider against this
    oracle *is* the bit-identity check against the numpy hot path (the
    providers replicate the einsum accumulation order exactly).  The
    classification chain mirrors the compiled kernels operation for
    operation.
    """
    s = suspects.shape[0]
    k = centers.shape[0]
    result = np.empty(s, dtype=np.int64)
    second_sq = np.empty(s, dtype=np.float64)
    candidate = bounds <= upper[:, None]
    candidate[np.arange(s), assignment[suspects]] = False
    if int(np.count_nonzero(candidate)) > 4 * s:
        return None
    for r in range(s):
        i = int(suspects[r])
        a = int(assignment[i])
        asq = float(assigned_sq[i])
        stay_limit = asq * (1.0 + margin)
        columns = np.flatnonzero(candidate[r])
        delta = points[i][None, :] - centers[columns]
        distances = np.einsum("ij,ij->i", delta, delta)
        best = asq
        second = np.inf
        best_j = a
        cn_max = float(center_norms[a])
        beaten = 0
        for j, dist in zip(columns, distances):
            dist = float(dist)
            if dist <= stay_limit:
                beaten += 1
            if center_norms[j] > cn_max:
                cn_max = float(center_norms[j])
            if dist < best:
                second = best
                best = dist
                best_j = int(j)
            elif dist < second:
                second = dist
        if beaten == 0:
            result[r] = a
            second_sq[r] = np.inf
            continue
        second_sq[r] = second
        if best_j != a:
            pn = 0.0
            for t in range(points.shape[1]):
                pn += float(points[i, t]) * float(points[i, t])
            result[r] = best_j if second - best > margin * (pn + cn_max + second) else -1
        else:
            result[r] = -1
    return result, second_sq


# -------------------------------------------------------------- verifiers
def _verify_radix(kernel) -> None:
    rng = np.random.default_rng(20240807)
    cases = [
        rng.integers(0, np.iinfo(np.uint64).max, size=257, dtype=np.uint64),
        np.zeros(65, dtype=np.uint64),  # all duplicates
        np.arange(130, dtype=np.uint64) // np.uint64(3),  # near-sorted runs
        np.array([], dtype=np.uint64),
        np.array([np.iinfo(np.uint64).max, 0, np.iinfo(np.uint64).max], dtype=np.uint64),
    ]
    for keys in cases:
        expected = np.argsort(keys, kind="stable")
        produced = kernel(np.ascontiguousarray(keys))
        if not np.array_equal(np.asarray(produced, dtype=np.int64), expected):
            raise RuntimeError("radix argsort disagrees with np.argsort(kind='stable')")


def _verify_csr_group(kernel) -> None:
    rng = np.random.default_rng(20240809)
    cases = [
        # Duplicate-heavy (hash fast path), keys scattered over the word.
        rng.integers(0, 7, size=300, dtype=np.uint64) * np.uint64(0x123456789ABCDEF),
        # All distinct (hash path must abort to the radix path).
        rng.integers(0, np.iinfo(np.uint64).max, size=300, dtype=np.uint64),
        # Distinct count just above the n/8 threshold (late abort).
        rng.integers(0, 48, size=300, dtype=np.uint64),
        np.zeros(100, dtype=np.uint64),
        np.array([5, 5], dtype=np.uint64),
        np.array([9, 3, 9], dtype=np.uint64),
    ]
    for keys in cases:
        expected = _reference_csr_group(keys)
        produced = kernel(np.ascontiguousarray(keys))
        for name, have, want in zip(("cell_ids", "order", "offsets"), produced, expected):
            if not np.array_equal(np.asarray(have, dtype=np.int64), want):
                raise RuntimeError(f"csr grouping disagrees with numpy on {name}")


def _verify_refresh_bounds(kernel) -> None:
    rng = np.random.default_rng(20240810)
    # Every dimension class of the einsum row kernel: the unrolled 8-wide
    # main loop, the pairwise drain, the scalar remainder, and their
    # combinations.  A provider whose accumulation order differs from this
    # numpy build's einsum fails here and never serves the kernel.
    for d in (1, 2, 3, 4, 5, 7, 8, 9, 10, 13, 16, 17, 20, 33):
        n, k = 64, 5
        points = rng.normal(size=(n, d)) * rng.uniform(0.1, 30.0)
        centers = rng.normal(size=(k, d))
        assignment = rng.integers(0, k, size=n).astype(np.int64)
        eroded = rng.normal(size=n)
        decrement = float(abs(rng.normal())) * 1e-3
        scale = 1.0 + 1e-12
        delta = points - centers[assignment]
        expected_sq = np.einsum("ij,ij->i", delta, delta)
        expected_upper = np.sqrt(expected_sq) * scale
        expected_eroded = eroded - decrement
        expected_maybe = np.flatnonzero(expected_upper >= expected_eroded)
        squared = np.empty(n, dtype=np.float64)
        mutated = eroded.copy()
        upper, maybe = kernel(
            np.ascontiguousarray(points),
            np.ascontiguousarray(centers),
            assignment,
            decrement,
            scale,
            squared,
            mutated,
        )
        if not (
            np.array_equal(squared, expected_sq)
            and np.array_equal(np.asarray(upper), expected_upper)
            and np.array_equal(mutated, expected_eroded)
            and np.array_equal(np.asarray(maybe, dtype=np.int64), expected_maybe)
        ):
            raise RuntimeError(
                f"bound refresh disagrees with the numpy einsum path at d={d}"
            )


def _verify_candidate_eval(kernel) -> None:
    rng = np.random.default_rng(20240808)
    for d in (1, 3, 8, 10):
        n, k = 48, 6
        points = rng.normal(size=(n, d)) * rng.uniform(0.1, 10.0)
        centers = rng.normal(size=(k, d)) * rng.uniform(0.1, 10.0)
        delta = points[:, None, :] - centers[None, :, :]
        squared = np.einsum("ijk,ijk->ij", delta, delta)
        assignment = np.argmin(squared, axis=1).astype(np.int64)
        # Stale some assignments so genuine reassignments occur.
        stale = rng.random(n) < 0.4
        assignment[stale] = rng.integers(0, k, size=int(stale.sum()))
        moved = points - centers[assignment]
        assigned_sq = np.einsum("ij,ij->i", moved, moved)
        center_norms = np.einsum("ij,ij->i", centers, centers)
        suspects = np.flatnonzero(rng.random(n) < 0.8).astype(np.int64)
        s = suspects.size
        upper = np.sqrt(assigned_sq[suspects]) * rng.uniform(1.0, 1.5, size=s)
        # Sound lower bounds only: the engine never produces over-estimates.
        bounds = np.sqrt(np.maximum(squared[suspects], 0.0)) * rng.uniform(
            0.4, 1.0, size=(s, k)
        )
        arguments = (
            np.ascontiguousarray(points),
            np.ascontiguousarray(centers),
            np.ascontiguousarray(center_norms),
            suspects,
            np.ascontiguousarray(bounds),
            np.ascontiguousarray(upper),
            np.ascontiguousarray(assigned_sq),
            assignment,
            1e-9,
        )
        expected = reference_candidate_eval(*arguments)
        produced = kernel(*arguments)
        if expected is None or produced is None:
            if expected is not None or produced is not None:
                raise RuntimeError("candidate evaluation disagrees on the pair bail")
            continue
        if not np.array_equal(np.asarray(produced[0], dtype=np.int64), expected[0]):
            raise RuntimeError("candidate evaluation disagrees with the numpy oracle")
        if not np.array_equal(np.asarray(produced[1]), expected[1]):
            raise RuntimeError("candidate second distances disagree with the numpy oracle")
    # The pair bail: saturate every bound so all k-1 candidates survive.
    n, d, k = 16, 4, 8
    points = rng.normal(size=(n, d))
    centers = rng.normal(size=(k, d))
    assignment = np.zeros(n, dtype=np.int64)
    moved = points - centers[assignment]
    assigned_sq = np.einsum("ij,ij->i", moved, moved)
    center_norms = np.einsum("ij,ij->i", centers, centers)
    suspects = np.arange(n, dtype=np.int64)
    produced = kernel(
        np.ascontiguousarray(points),
        np.ascontiguousarray(centers),
        np.ascontiguousarray(center_norms),
        suspects,
        np.zeros((n, k), dtype=np.float64),
        np.full(n, 1e6, dtype=np.float64),
        np.ascontiguousarray(assigned_sq),
        assignment,
        1e-9,
    )
    if produced is not None:
        raise RuntimeError("candidate evaluation failed to bail on saturated bounds")


def _verify_update_sums(kernel) -> None:
    rng = np.random.default_rng(20240811)
    for n, d, k in ((1, 1, 1), (50, 3, 7), (300, 10, 20)):
        points = rng.normal(size=(n, d))
        weights = rng.uniform(0.1, 3.0, size=n)
        # Leave clusters empty on purpose: their slots must stay zero.
        assignment = rng.integers(0, max(1, k - 2), size=n).astype(np.int64)
        weighted = weights[:, None] * points
        expected_counts = np.bincount(assignment, weights=weights, minlength=k)
        codes = assignment[:, None] * d + np.arange(d, dtype=np.int64)
        expected_sums = np.bincount(
            codes.ravel(), weights=weighted.ravel(), minlength=k * d
        ).reshape(k, d)
        counts, sums = kernel(np.ascontiguousarray(weighted), weights, assignment, k)
        if not np.array_equal(np.asarray(counts), expected_counts):
            raise RuntimeError("update sums disagrees with np.bincount on counts")
        if not np.array_equal(np.asarray(sums), expected_sums):
            raise RuntimeError("update sums disagrees with np.bincount on sums")


# ------------------------------------------------------- public wrappers
def radix_argsort(keys: np.ndarray) -> np.ndarray:
    """Stable ascending argsort of 1-d ``uint64``/``int64`` keys.

    Dispatches to the compiled tier when available and falls back to
    ``np.argsort(keys, kind="stable")`` otherwise; the two are pinned
    byte-for-byte identical (Hypothesis property in
    ``tests/test_native_kernels.py``).
    """
    keys = np.asarray(keys)
    if keys.ndim != 1:
        raise ValueError(f"keys must be one-dimensional, got shape {keys.shape}")
    if keys.dtype == np.int64:
        unsigned = keys.view(np.uint64) ^ _SIGN_BIAS  # order-preserving bias
    elif keys.dtype == np.uint64:
        unsigned = keys
    else:
        raise ValueError(f"keys must be uint64 or int64, got {keys.dtype}")
    kernel = get_kernel("radix_argsort")
    if keys.shape[0] < 2:
        return np.arange(keys.shape[0], dtype=np.int64)
    return kernel(np.ascontiguousarray(unsigned))


def candidate_eval_kernel() -> Optional[callable]:
    """The native Lloyd candidate kernel, or ``None`` in fallback mode."""
    return get_kernel("lloyd_candidate_eval")


def _register() -> None:
    registry.register_kernel(
        "radix_argsort", fallback=_fallback_argsort, verify=_verify_radix
    )
    registry.register_kernel("csr_group", fallback=None, verify=_verify_csr_group)
    registry.register_kernel(
        "lloyd_refresh_bounds", fallback=None, verify=_verify_refresh_bounds
    )
    registry.register_kernel(
        "lloyd_candidate_eval", fallback=None, verify=_verify_candidate_eval
    )
    registry.register_kernel(
        "lloyd_update_sums", fallback=None, verify=_verify_update_sums
    )

    def _load_numba():
        from repro.native import _numba_kernels

        return _numba_kernels.load_kernels()

    def _describe_numba():
        try:
            from repro.native import _numba_kernels

            return _numba_kernels.describe()
        except ImportError:
            return {"numba_version": None}

    def _load_cc():
        from repro.native import _cc_kernels

        return _cc_kernels.load_kernels()

    def _describe_cc():
        from repro.native import _cc_kernels

        return _cc_kernels.describe()

    registry.register_provider("numba", _load_numba, _describe_numba)
    registry.register_provider("cc", _load_cc, _describe_cc)


_register()


__all__ = [
    "candidate_eval_kernel",
    "kernel_provider",
    "radix_argsort",
    "reference_candidate_eval",
]

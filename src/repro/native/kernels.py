"""Kernel declarations, verifiers, and the public dispatch wrappers.

Seven kernels ride the compiled tier:

``radix_argsort``
    Stable LSD radix argsort over ``uint64``/``int64`` keys.  The contract
    is byte-for-byte the permutation of ``np.argsort(keys, kind="stable")``,
    duplicates and all; the fallback *is* that call.

``csr_group``
    The whole grouping body of :func:`repro.geometry.quadtree._csr_group`
    fused into one call — sort, boundary detection, rank labelling, CSR
    offsets — plus a hash fast path for duplicate-heavy levels.  No
    registered fallback: in fallback mode the quadtree keeps its inline
    numpy pipeline.

``lloyd_refresh_bounds`` / ``lloyd_candidate_eval`` / ``lloyd_update_sums``
    The warm-phase loop of the pruned Lloyd engine
    (:mod:`repro.clustering.lloyd`): the fused per-point bound refresh, the
    per-candidate exact-distance evaluation with guarded direct
    reassignment, and the M-step accumulation.  None registers a fallback —
    the engine keeps its inline numpy passes when the tier is off.

``fkpp_level_score``
    One Fast-kmeans++ register-center sweep over every level of one tree
    (:mod:`repro.clustering.fast_kmeans_pp`): walk the levels deepest
    first, break once the level distance reaches the running ceiling,
    gather the new center's cell members from the concatenated CSR order,
    compare against the level's candidate distance (strict ``>``), scatter
    distance/slot/mass for the improved points.  Pure per-element stores
    with the caller's precomputed per-level ``candidate ** z`` table — no
    accumulation, so bit-identity needs no ordering replica.  No fallback:
    the seeding keeps its inline fancy-indexed sweep in fallback mode.

``crude_bound_probe``
    One Crude-Approx (Algorithm 2) occupancy probe
    (:mod:`repro.core.spread_reduction`): refresh the dyadic lattice — the
    exact power-of-two scaling for fresh levels, the exact multiply-add
    doubling for consecutive ones — and count distinct multilinear row
    hashes (wrapping uint64, the numpy path's view) in one pass.  The count
    is order-invariant, so any correct distinct counter matches
    ``np.unique``.  No fallback: the bisection keeps its inline probe.

Every verifier compares a provider's implementation against *live numpy
calls* on adversarial inputs before the registry ever routes a real call to
it.  That is the load-bearing design: the distance kernels replicate this
numpy build's exact SIMD accumulation order, and if a different numpy build
changes it, verification fails and the registry silently keeps the numpy
paths — fallback speed, never wrong results.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.native import registry
from repro.native.registry import get_kernel, kernel_provider

#: Bias flipping the sign bit: int64 keys sorted as uint64 after XOR, the
#: standard order-preserving map between the two (two's complement).
_SIGN_BIAS = np.uint64(0x8000000000000000)


def _fallback_argsort(keys: np.ndarray) -> np.ndarray:
    return np.argsort(keys, kind="stable")


# ---------------------------------------------------------------- oracles
def _reference_csr_group(keys: np.ndarray) -> tuple:
    """The numpy grouping pipeline of ``quadtree._csr_group`` (inlined here
    so verification does not import the geometry package)."""
    n = keys.shape[0]
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    starts = np.empty(n, dtype=bool)
    starts[0] = True
    np.not_equal(sorted_keys[1:], sorted_keys[:-1], out=starts[1:])
    identifiers = np.cumsum(starts, dtype=np.int64) - 1
    cell_ids = np.empty(n, dtype=np.int64)
    cell_ids[order] = identifiers
    boundaries = np.flatnonzero(starts)
    offsets = np.empty(boundaries.shape[0] + 1, dtype=np.int64)
    offsets[:-1] = boundaries
    offsets[-1] = n
    return cell_ids, order, offsets


def reference_candidate_eval(
    points: np.ndarray,
    centers: np.ndarray,
    center_norms: np.ndarray,
    suspects: np.ndarray,
    bounds: np.ndarray,
    upper: np.ndarray,
    assigned_sq: np.ndarray,
    assignment: np.ndarray,
    margin: float,
) -> Optional[Tuple[np.ndarray, np.ndarray]]:
    """Oracle of the candidate-evaluation kernel, built from live numpy ops.

    Candidate distances come from the same ``einsum("ij,ij->i", ...)`` call
    the engine's prove-stay pass uses, so comparing a provider against this
    oracle *is* the bit-identity check against the numpy hot path (the
    providers replicate the einsum accumulation order exactly).  The
    classification chain mirrors the compiled kernels operation for
    operation.
    """
    s = suspects.shape[0]
    k = centers.shape[0]
    result = np.empty(s, dtype=np.int64)
    second_sq = np.empty(s, dtype=np.float64)
    candidate = bounds <= upper[:, None]
    candidate[np.arange(s), assignment[suspects]] = False
    if int(np.count_nonzero(candidate)) > 4 * s:
        return None
    for r in range(s):
        i = int(suspects[r])
        a = int(assignment[i])
        asq = float(assigned_sq[i])
        stay_limit = asq * (1.0 + margin)
        columns = np.flatnonzero(candidate[r])
        delta = points[i][None, :] - centers[columns]
        distances = np.einsum("ij,ij->i", delta, delta)
        best = asq
        second = np.inf
        best_j = a
        cn_max = float(center_norms[a])
        beaten = 0
        for j, dist in zip(columns, distances):
            dist = float(dist)
            if dist <= stay_limit:
                beaten += 1
            if center_norms[j] > cn_max:
                cn_max = float(center_norms[j])
            if dist < best:
                second = best
                best = dist
                best_j = int(j)
            elif dist < second:
                second = dist
        if beaten == 0:
            result[r] = a
            second_sq[r] = np.inf
            continue
        second_sq[r] = second
        if best_j != a:
            pn = 0.0
            for t in range(points.shape[1]):
                pn += float(points[i, t]) * float(points[i, t])
            result[r] = best_j if second - best > margin * (pn + cn_max + second) else -1
        else:
            result[r] = -1
    return result, second_sq


def reference_fkpp_level_score(
    order: np.ndarray,
    n: int,
    starts: np.ndarray,
    ends: np.ndarray,
    distances: np.ndarray,
    czs: np.ndarray,
    ceiling: float,
    center_slot: int,
    best_distance: np.ndarray,
    assignment: np.ndarray,
    mass: np.ndarray,
    weights: np.ndarray,
    has_mass: bool,
) -> int:
    """Oracle of the Fast-kmeans++ tree sweep, built from live numpy ops.

    This *is* the inline path of ``FastKMeansPlusPlus.register_center`` for
    one tree: scan the levels deepest first, break once the level's
    candidate distance reaches the ceiling (tree distances only grow toward
    the root), fancy-mask the improved members of the center's cell (strict
    ``>``), scatter the candidate distance and center slot, rewrite the
    sampling mass as ``weights[improved] * czs[level + 1]``.  ``order`` is
    the tree's per-level CSR orders concatenated (level ``l`` occupies
    ``order[l * n:(l + 1) * n]``); ``starts``/``ends`` delimit the center's
    cell within each level's row.  Cell members are unique per level, so
    the kernels' sequential stores and this batch scatter write the same
    doubles.
    """
    depth = int(starts.shape[0])
    improved_total = 0
    for level in range(depth - 1, -1, -1):
        candidate = distances[level + 1]
        if candidate >= ceiling and np.isfinite(ceiling):
            break
        members = order[level * n + starts[level] : level * n + ends[level]]
        improved = members[best_distance[members] > candidate]
        if improved.size == 0:
            continue
        best_distance[improved] = candidate
        assignment[improved] = center_slot
        if has_mass:
            mass[improved] = weights[improved] * czs[level + 1]
        improved_total += int(improved.size)
    return improved_total


def reference_fkpp_weighted_draw(mass: np.ndarray) -> float:
    """Oracle of the D²-draw prefix total: ``np.cumsum(mass)[-1]``.

    The native draw is split into the numpy path's two observable steps —
    a sequential prefix total (this oracle) followed, once the caller has
    checked finiteness/positivity and drawn its uniform variate, by the
    first-exceed scan of :func:`reference_fkpp_draw_scan`.  The split
    keeps RNG consumption identical to the fallback: the stream advances
    only when the total is valid.
    """
    if mass.shape[0] == 0:
        return 0.0
    return float(np.cumsum(mass)[-1])


def reference_fkpp_draw_scan(mass: np.ndarray, u: float) -> int:
    """Oracle of the D²-draw index scan: ``searchsorted(cumsum, u, "right")``.

    Valid for non-negative ``mass`` (the D²-sampling invariant), where the
    prefix sums are non-decreasing and the binary search's answer equals
    the first index whose prefix strictly exceeds ``u``.
    """
    return int(np.searchsorted(np.cumsum(mass), u, side="right"))


def reference_crude_bound_probe(
    scaled: np.ndarray,
    level: int,
    fresh: bool,
    lattice: np.ndarray,
    frac: np.ndarray,
    multipliers: np.ndarray,
) -> int:
    """Oracle of the Crude-Approx occupancy probe, built from live numpy ops.

    Mirrors the inline ``occupied`` probe of ``crude_cost_upper_bound``
    operation for operation: fresh levels floor ``scaled * 2**level`` and
    keep the fractional parts, consecutive levels apply the multiply-add
    doubling, and the occupancy count is the number of distinct wrapping
    multilinear row hashes (the multipliers are passed in so verification
    does not import the geometry package).
    """
    if fresh:
        scaled_level = scaled * (2.0 ** int(level))
        floored = np.floor(scaled_level).astype(np.int64)
        lattice[...] = floored
        frac[...] = scaled_level - floored
    else:
        bits = frac >= 0.5
        np.multiply(lattice, 2, out=lattice)
        lattice += bits
        np.multiply(frac, 2.0, out=frac)
        frac -= bits
    with np.errstate(over="ignore"):
        keys = (lattice.view(np.uint64) * multipliers[None, :]).sum(
            axis=1, dtype=np.uint64
        )
    return int(np.unique(keys).shape[0])


# -------------------------------------------------------------- verifiers
def _verify_radix(kernel) -> None:
    rng = np.random.default_rng(20240807)
    cases = [
        rng.integers(0, np.iinfo(np.uint64).max, size=257, dtype=np.uint64),
        np.zeros(65, dtype=np.uint64),  # all duplicates
        np.arange(130, dtype=np.uint64) // np.uint64(3),  # near-sorted runs
        np.array([], dtype=np.uint64),
        np.array([np.iinfo(np.uint64).max, 0, np.iinfo(np.uint64).max], dtype=np.uint64),
    ]
    for keys in cases:
        expected = np.argsort(keys, kind="stable")
        produced = kernel(np.ascontiguousarray(keys))
        if not np.array_equal(np.asarray(produced, dtype=np.int64), expected):
            raise RuntimeError("radix argsort disagrees with np.argsort(kind='stable')")


def _verify_csr_group(kernel) -> None:
    rng = np.random.default_rng(20240809)
    cases = [
        # Duplicate-heavy (hash fast path), keys scattered over the word.
        rng.integers(0, 7, size=300, dtype=np.uint64) * np.uint64(0x123456789ABCDEF),
        # All distinct (hash path must abort to the radix path).
        rng.integers(0, np.iinfo(np.uint64).max, size=300, dtype=np.uint64),
        # Distinct count just above the n/8 threshold (late abort).
        rng.integers(0, 48, size=300, dtype=np.uint64),
        np.zeros(100, dtype=np.uint64),
        np.array([5, 5], dtype=np.uint64),
        np.array([9, 3, 9], dtype=np.uint64),
    ]
    for keys in cases:
        expected = _reference_csr_group(keys)
        produced = kernel(np.ascontiguousarray(keys))
        for name, have, want in zip(("cell_ids", "order", "offsets"), produced, expected):
            if not np.array_equal(np.asarray(have, dtype=np.int64), want):
                raise RuntimeError(f"csr grouping disagrees with numpy on {name}")


def _verify_refresh_bounds(kernel) -> None:
    rng = np.random.default_rng(20240810)
    # Every dimension class of the einsum row kernel: the unrolled 8-wide
    # main loop, the pairwise drain, the scalar remainder, and their
    # combinations.  A provider whose accumulation order differs from this
    # numpy build's einsum fails here and never serves the kernel.
    for d in (1, 2, 3, 4, 5, 7, 8, 9, 10, 13, 16, 17, 20, 33):
        n, k = 64, 5
        points = rng.normal(size=(n, d)) * rng.uniform(0.1, 30.0)
        centers = rng.normal(size=(k, d))
        assignment = rng.integers(0, k, size=n).astype(np.int64)
        eroded = rng.normal(size=n)
        decrement = float(abs(rng.normal())) * 1e-3
        scale = 1.0 + 1e-12
        delta = points - centers[assignment]
        expected_sq = np.einsum("ij,ij->i", delta, delta)
        expected_upper = np.sqrt(expected_sq) * scale
        expected_eroded = eroded - decrement
        expected_maybe = np.flatnonzero(expected_upper >= expected_eroded)
        squared = np.empty(n, dtype=np.float64)
        mutated = eroded.copy()
        upper, maybe = kernel(
            np.ascontiguousarray(points),
            np.ascontiguousarray(centers),
            assignment,
            decrement,
            scale,
            squared,
            mutated,
        )
        if not (
            np.array_equal(squared, expected_sq)
            and np.array_equal(np.asarray(upper), expected_upper)
            and np.array_equal(mutated, expected_eroded)
            and np.array_equal(np.asarray(maybe, dtype=np.int64), expected_maybe)
        ):
            raise RuntimeError(
                f"bound refresh disagrees with the numpy einsum path at d={d}"
            )


def _verify_candidate_eval(kernel) -> None:
    rng = np.random.default_rng(20240808)
    for d in (1, 3, 8, 10):
        n, k = 48, 6
        points = rng.normal(size=(n, d)) * rng.uniform(0.1, 10.0)
        centers = rng.normal(size=(k, d)) * rng.uniform(0.1, 10.0)
        delta = points[:, None, :] - centers[None, :, :]
        squared = np.einsum("ijk,ijk->ij", delta, delta)
        assignment = np.argmin(squared, axis=1).astype(np.int64)
        # Stale some assignments so genuine reassignments occur.
        stale = rng.random(n) < 0.4
        assignment[stale] = rng.integers(0, k, size=int(stale.sum()))
        moved = points - centers[assignment]
        assigned_sq = np.einsum("ij,ij->i", moved, moved)
        center_norms = np.einsum("ij,ij->i", centers, centers)
        suspects = np.flatnonzero(rng.random(n) < 0.8).astype(np.int64)
        s = suspects.size
        upper = np.sqrt(assigned_sq[suspects]) * rng.uniform(1.0, 1.5, size=s)
        # Sound lower bounds only: the engine never produces over-estimates.
        bounds = np.sqrt(np.maximum(squared[suspects], 0.0)) * rng.uniform(
            0.4, 1.0, size=(s, k)
        )
        arguments = (
            np.ascontiguousarray(points),
            np.ascontiguousarray(centers),
            np.ascontiguousarray(center_norms),
            suspects,
            np.ascontiguousarray(bounds),
            np.ascontiguousarray(upper),
            np.ascontiguousarray(assigned_sq),
            assignment,
            1e-9,
        )
        expected = reference_candidate_eval(*arguments)
        produced = kernel(*arguments)
        if expected is None or produced is None:
            if expected is not None or produced is not None:
                raise RuntimeError("candidate evaluation disagrees on the pair bail")
            continue
        if not np.array_equal(np.asarray(produced[0], dtype=np.int64), expected[0]):
            raise RuntimeError("candidate evaluation disagrees with the numpy oracle")
        if not np.array_equal(np.asarray(produced[1]), expected[1]):
            raise RuntimeError("candidate second distances disagree with the numpy oracle")
    # The pair bail: saturate every bound so all k-1 candidates survive.
    n, d, k = 16, 4, 8
    points = rng.normal(size=(n, d))
    centers = rng.normal(size=(k, d))
    assignment = np.zeros(n, dtype=np.int64)
    moved = points - centers[assignment]
    assigned_sq = np.einsum("ij,ij->i", moved, moved)
    center_norms = np.einsum("ij,ij->i", centers, centers)
    suspects = np.arange(n, dtype=np.int64)
    produced = kernel(
        np.ascontiguousarray(points),
        np.ascontiguousarray(centers),
        np.ascontiguousarray(center_norms),
        suspects,
        np.zeros((n, k), dtype=np.float64),
        np.full(n, 1e6, dtype=np.float64),
        np.ascontiguousarray(assigned_sq),
        assignment,
        1e-9,
    )
    if produced is not None:
        raise RuntimeError("candidate evaluation failed to bail on saturated bounds")


def _verify_update_sums(kernel) -> None:
    rng = np.random.default_rng(20240811)
    for n, d, k in ((1, 1, 1), (50, 3, 7), (300, 10, 20)):
        points = rng.normal(size=(n, d))
        weights = rng.uniform(0.1, 3.0, size=n)
        # Leave clusters empty on purpose: their slots must stay zero.
        assignment = rng.integers(0, max(1, k - 2), size=n).astype(np.int64)
        weighted = weights[:, None] * points
        expected_counts = np.bincount(assignment, weights=weights, minlength=k)
        codes = assignment[:, None] * d + np.arange(d, dtype=np.int64)
        expected_sums = np.bincount(
            codes.ravel(), weights=weighted.ravel(), minlength=k * d
        ).reshape(k, d)
        counts, sums = kernel(np.ascontiguousarray(weighted), weights, assignment, k)
        if not np.array_equal(np.asarray(counts), expected_counts):
            raise RuntimeError("update sums disagrees with np.bincount on counts")
        if not np.array_equal(np.asarray(sums), expected_sums):
            raise RuntimeError("update sums disagrees with np.bincount on sums")


def _verify_fkpp_level_score(kernel) -> None:
    rng = np.random.default_rng(20260808)
    for n, depth in ((64, 1), (96, 4), (257, 9)):
        # A synthetic tree: every level is an independent permutation of all
        # n points (the CSR order), with the center's cell a random —
        # possibly empty — slice of it; distances grow strictly toward the
        # root like a real level-distance table.
        order = np.concatenate(
            [rng.permutation(n).astype(np.int64) for _ in range(depth)]
        )
        starts = np.empty(depth, dtype=np.int64)
        ends = np.empty(depth, dtype=np.int64)
        for level in range(depth):
            lo = int(rng.integers(0, n))
            hi = int(rng.integers(lo, n + 1))
            if level % 3 == 2:
                hi = lo  # empty cells occur at sparse levels
            starts[level] = lo
            ends[level] = hi
        distances = np.sort(rng.uniform(0.05, 2.0, size=depth + 1))
        czs = np.array([np.float64(v) ** 2 for v in distances], dtype=np.float64)
        base_best = rng.uniform(0.0, 2.0, size=n)
        base_best[rng.random(n) < 0.2] = np.inf  # pre-first-sweep entries
        # Exact ties pin the strict comparison: tied members must not move.
        tied = rng.permutation(n)[: n // 8]
        base_best[tied] = distances[rng.integers(1, depth + 1, size=tied.size)]
        base_assignment = rng.integers(-1, 5, size=n).astype(np.int64)
        base_mass = rng.uniform(0.0, 4.0, size=n)
        weights = rng.uniform(0.1, 3.0, size=n)
        # Ceilings: +inf (first center, no break), a mid-table value (the
        # break triggers partway up), and below every level (full break).
        ceilings = (np.inf, float(distances[(depth + 1) // 2]), 0.0)
        for has_mass in (False, True):
            for ceiling in ceilings:
                expected_best = base_best.copy()
                expected_assignment = base_assignment.copy()
                expected_mass = base_mass.copy()
                expected = reference_fkpp_level_score(
                    order, n, starts, ends, distances, czs, ceiling, 7,
                    expected_best, expected_assignment, expected_mass,
                    weights, has_mass,
                )
                best = base_best.copy()
                assignment = base_assignment.copy()
                mass = base_mass.copy()
                produced = kernel(
                    order, n, starts, ends, distances, czs, ceiling, 7,
                    best, assignment, mass, weights, has_mass,
                )
                if not (
                    int(produced) == expected
                    and np.array_equal(best, expected_best)
                    and np.array_equal(assignment, expected_assignment)
                    and np.array_equal(mass, expected_mass)
                ):
                    raise RuntimeError(
                        "level score disagrees with the numpy sweep "
                        f"(n={n}, depth={depth}, has_mass={has_mass}, "
                        f"ceiling={ceiling})"
                    )
    # The production path runs through ``kernel.bind`` — a fit-lifetime
    # closure over the tree's per-level CSR arrays that resolves the
    # center's cell bounds itself — so the lookup plumbing is verified
    # here too, against the same numpy oracle, on synthetic partitions
    # with known offsets.
    binder = getattr(kernel, "bind", None)
    if binder is None:
        raise RuntimeError("fkpp level score kernel must expose bind()")
    for n, depth in ((64, 1), (113, 5), (257, 9)):
        level_orders = []
        level_offsets = []
        level_cells = []
        for level in range(depth):
            n_cells = int(rng.integers(1, max(2, n // (level + 2)) + 1))
            cids = rng.integers(0, n_cells, size=n).astype(np.int64)
            order = np.ascontiguousarray(np.argsort(cids, kind="stable").astype(np.int64))
            offsets = np.zeros(n_cells + 1, dtype=np.int64)
            np.cumsum(np.bincount(cids, minlength=n_cells), out=offsets[1:])
            level_orders.append(order)
            level_offsets.append(offsets)
            level_cells.append(np.ascontiguousarray(cids))
        order_flat = np.concatenate(level_orders)
        distances = np.sort(rng.uniform(0.05, 2.0, size=depth + 1))
        czs = np.array([np.float64(v) ** 2 for v in distances], dtype=np.float64)
        best = rng.uniform(0.0, 2.0, size=n)
        best[rng.random(n) < 0.2] = np.inf
        assignment = rng.integers(-1, 5, size=n).astype(np.int64)
        mass = rng.uniform(0.0, 4.0, size=n)
        weights = rng.uniform(0.1, 3.0, size=n)
        sweep = binder(
            level_orders, level_offsets, level_cells, n, distances, czs,
            best, assignment, mass, weights,
        )
        starts = np.empty(depth, dtype=np.int64)
        ends = np.empty(depth, dtype=np.int64)
        # Successive centers mutate best/assignment/mass in place, exactly
        # like real seeding; ceilings cover no-break, mid-break, and full
        # break.
        for slot, (center_point, ceiling, has_mass) in enumerate(
            (
                (0, np.inf, False),
                (int(rng.integers(0, n)), np.inf, True),
                (int(rng.integers(0, n)), float(distances[(depth + 1) // 2]), True),
                (n - 1, 0.0, True),
            )
        ):
            for level in range(depth):
                cid = int(level_cells[level][center_point])
                starts[level] = level_offsets[level][cid]
                ends[level] = level_offsets[level][cid + 1]
            expected_best = best.copy()
            expected_assignment = assignment.copy()
            expected_mass = mass.copy()
            expected = reference_fkpp_level_score(
                order_flat, n, starts, ends, distances, czs, ceiling, slot,
                expected_best, expected_assignment, expected_mass, weights,
                has_mass,
            )
            produced = sweep(ceiling, slot, center_point, has_mass)
            if not (
                int(produced) == expected
                and np.array_equal(best, expected_best)
                and np.array_equal(assignment, expected_assignment)
                and np.array_equal(mass, expected_mass)
            ):
                raise RuntimeError(
                    "bound level-score sweep disagrees with the numpy sweep "
                    f"(n={n}, depth={depth}, center={center_point})"
                )


def _verify_fkpp_weighted_draw(kernel) -> None:
    scan = getattr(kernel, "scan", None)
    binder = getattr(kernel, "bind", None)
    if scan is None or binder is None:
        raise RuntimeError("weighted draw kernel must expose scan() and bind()")
    rng = np.random.default_rng(20260810)
    for n in (1, 17, 256, 1001):
        mass = rng.uniform(0.0, 3.0, size=n)
        mass[rng.random(n) < 0.3] = 0.0  # zero-mass runs create prefix ties
        cumulative = np.cumsum(mass)
        total = float(cumulative[-1])
        expected_total = reference_fkpp_weighted_draw(mass)
        bound_total, bound_scan = binder(mass)
        for produced in (float(kernel(mass)), float(bound_total())):
            # Bit-exact: the kernel must replay the cumsum add chain.
            if not (produced == expected_total or (np.isnan(produced) and np.isnan(expected_total))):
                raise RuntimeError(f"draw total disagrees with cumsum (n={n})")
        # u values cover the interior, exact prefix ties (side="right" must
        # step past them), zero, and u >= total (index n, clamped by the
        # caller).
        us = [0.0, total * 0.25, total * 0.999, total, total * 1.5]
        us.extend(float(cumulative[i]) for i in (0, n // 2, n - 1))
        for u in us:
            expected = reference_fkpp_draw_scan(mass, u)
            if int(scan(mass, u)) != expected or int(bound_scan(u)) != expected:
                raise RuntimeError(f"draw scan disagrees with searchsorted (n={n}, u={u})")


def _verify_crude_bound_probe(kernel) -> None:
    rng = np.random.default_rng(20260809)
    for d in (1, 2, 3, 7, 8, 16):
        n = 160
        scaled = rng.uniform(-1.2, 1.2, size=(n, d))
        scaled[::7] = scaled[3]  # duplicate rows share cells at every level
        # Exact dyadic coordinates sit on the 0.5 carry boundary of the
        # doubling step, where ``frac >= 0.5`` must round the same way.
        scaled[::11] = np.round(scaled[::11] * 8.0) / 8.0
        multipliers = (
            rng.integers(1, 2**62, size=d, dtype=np.uint64) * np.uint64(2)
            + np.uint64(1)
        )
        expected_lattice = np.empty((n, d), dtype=np.int64)
        expected_frac = np.empty((n, d), dtype=np.float64)
        lattice = np.empty((n, d), dtype=np.int64)
        frac = np.empty((n, d), dtype=np.float64)
        # A bisection-shaped probe sequence: fresh jumps and consecutive
        # doubling runs, including a fresh restart at level 0.
        for level, fresh in ((3, True), (4, False), (5, False), (9, True), (10, False), (0, True)):
            expected = reference_crude_bound_probe(
                scaled, level, fresh, expected_lattice, expected_frac, multipliers
            )
            produced = kernel(scaled, level, fresh, lattice, frac, multipliers)
            if not (
                int(produced) == expected
                and np.array_equal(lattice, expected_lattice)
                and np.array_equal(frac, expected_frac)
            ):
                raise RuntimeError(
                    "crude-bound probe disagrees with the numpy path "
                    f"(d={d}, level={level}, fresh={fresh})"
                )


# ------------------------------------------------------- public wrappers
def radix_argsort(keys: np.ndarray) -> np.ndarray:
    """Stable ascending argsort of 1-d ``uint64``/``int64`` keys.

    Dispatches to the compiled tier when available and falls back to
    ``np.argsort(keys, kind="stable")`` otherwise; the two are pinned
    byte-for-byte identical (Hypothesis property in
    ``tests/test_native_kernels.py``).
    """
    keys = np.asarray(keys)
    if keys.ndim != 1:
        raise ValueError(f"keys must be one-dimensional, got shape {keys.shape}")
    if keys.dtype == np.int64:
        unsigned = keys.view(np.uint64) ^ _SIGN_BIAS  # order-preserving bias
    elif keys.dtype == np.uint64:
        unsigned = keys
    else:
        raise ValueError(f"keys must be uint64 or int64, got {keys.dtype}")
    kernel = get_kernel("radix_argsort")
    if keys.shape[0] < 2:
        return np.arange(keys.shape[0], dtype=np.int64)
    return kernel(np.ascontiguousarray(unsigned))


def candidate_eval_kernel() -> Optional[callable]:
    """The native Lloyd candidate kernel, or ``None`` in fallback mode."""
    return get_kernel("lloyd_candidate_eval")


def _register() -> None:
    registry.register_kernel(
        "radix_argsort", fallback=_fallback_argsort, verify=_verify_radix
    )
    registry.register_kernel("csr_group", fallback=None, verify=_verify_csr_group)
    registry.register_kernel(
        "lloyd_refresh_bounds", fallback=None, verify=_verify_refresh_bounds
    )
    registry.register_kernel(
        "lloyd_candidate_eval", fallback=None, verify=_verify_candidate_eval
    )
    registry.register_kernel(
        "lloyd_update_sums", fallback=None, verify=_verify_update_sums
    )
    registry.register_kernel(
        "fkpp_level_score", fallback=None, verify=_verify_fkpp_level_score
    )
    registry.register_kernel(
        "fkpp_weighted_draw", fallback=None, verify=_verify_fkpp_weighted_draw
    )
    registry.register_kernel(
        "crude_bound_probe", fallback=None, verify=_verify_crude_bound_probe
    )

    def _load_numba():
        from repro.native import _numba_kernels

        return _numba_kernels.load_kernels()

    def _describe_numba():
        try:
            from repro.native import _numba_kernels

            return _numba_kernels.describe()
        except ImportError:
            return {"numba_version": None}

    def _load_cc():
        from repro.native import _cc_kernels

        return _cc_kernels.load_kernels()

    def _describe_cc():
        from repro.native import _cc_kernels

        return _cc_kernels.describe()

    registry.register_provider("numba", _load_numba, _describe_numba)
    registry.register_provider("cc", _load_cc, _describe_cc)


_register()


__all__ = [
    "candidate_eval_kernel",
    "kernel_provider",
    "radix_argsort",
    "reference_candidate_eval",
    "reference_crude_bound_probe",
    "reference_fkpp_draw_scan",
    "reference_fkpp_level_score",
    "reference_fkpp_weighted_draw",
]

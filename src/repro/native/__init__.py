"""Optional compiled kernel tier (see ``src/repro/native/README.md``).

Public surface:

* :func:`radix_argsort` — stable uint64/int64 argsort (quadtree grouping).
* :func:`candidate_eval_kernel` — the native Lloyd warm-phase kernel, or
  ``None`` when the tier is in fallback mode.
* :func:`native_status` — introspection: mode, providers, per-kernel routing.
* :func:`use_native` / :func:`refresh` — tier control for tests and daemons.
* ``REPRO_NATIVE`` environment flag (:data:`~repro.native.registry.ENV_FLAG`):
  ``0`` forces the pure-numpy fallback everywhere, a provider name
  (``numba``/``cc``) restricts resolution to that provider.

Every kernel is pinned bit-identical to its numpy counterpart in both tier
modes, so the streaming, sharded, and async layers — and their equivalence
suites — inherit the speedup with zero semantic drift.
"""

from repro.native.kernels import (
    candidate_eval_kernel,
    kernel_provider,
    radix_argsort,
    reference_candidate_eval,
    reference_crude_bound_probe,
    reference_fkpp_draw_scan,
    reference_fkpp_level_score,
    reference_fkpp_weighted_draw,
)
from repro.native.registry import (
    ENV_FLAG,
    get_kernel,
    native_status,
    refresh,
    use_native,
)

__all__ = [
    "ENV_FLAG",
    "candidate_eval_kernel",
    "get_kernel",
    "kernel_provider",
    "native_status",
    "radix_argsort",
    "reference_candidate_eval",
    "reference_crude_bound_probe",
    "reference_fkpp_draw_scan",
    "reference_fkpp_level_score",
    "reference_fkpp_weighted_draw",
    "refresh",
    "use_native",
]

"""Kernel dispatch registry for the optional compiled tier.

The registry is the single seam between the pure-numpy library code and any
compiled kernel implementation: callers ask for a kernel *by name* through
:func:`get_kernel` (or the public wrappers in :mod:`repro.native.kernels`)
and never import a backend module directly.  Providers — currently ``numba``
(preferred when importable) and ``cc`` (a small C translation unit compiled
on first use with the system compiler) — register a loader that returns a
``{kernel name: callable}`` mapping; kernels register an optional pure-numpy
fallback plus a *verifier* that is run once against every provider's
implementation before it is ever trusted.

Resolution contract
-------------------
* ``REPRO_NATIVE=0`` (also ``off``/``false``/``no``) forces the fallback
  tier for every kernel — the escape hatch.  Unset or ``1`` enables the
  tier with automatic provider preference; a provider name (``numba`` or
  ``cc``) restricts resolution to that provider, falling back to pure numpy
  when it is unavailable.
* Resolution happens lazily on the first :func:`get_kernel` call and is
  cached per process; :func:`refresh` drops the cache (tests and long-lived
  daemons that flip the environment call it), and :func:`use_native` is a
  context manager doing exactly that around a block.
* Every provider kernel must pass its registered verifier (a cheap
  bit-identity check against the numpy reference on small inputs) during
  resolution.  A provider that fails to import, compile, or verify is
  skipped with the reason recorded — visible via :func:`native_status` —
  and the next provider (ultimately the fallback) serves the kernel.  A
  runtime-compiled kernel therefore can never silently corrupt results:
  the worst failure mode is running at fallback speed.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro import observability as _obs

#: Environment flag controlling the tier (see the module docstring).
ENV_FLAG = "REPRO_NATIVE"

#: Values of :data:`ENV_FLAG` that force the pure-numpy fallback tier.
_DISABLED_VALUES = {"0", "off", "false", "no"}


@dataclass
class KernelSpec:
    """A dispatchable kernel: name, optional numpy fallback, verifier."""

    name: str
    fallback: Optional[Callable] = None
    verify: Optional[Callable[[Callable], None]] = None


@dataclass
class ProviderSpec:
    """A kernel provider: preference-ordered loader of compiled kernels."""

    name: str
    loader: Callable[[], Dict[str, Callable]]
    describe: Optional[Callable[[], Dict[str, object]]] = None


_KERNELS: Dict[str, KernelSpec] = {}
_PROVIDERS: List[ProviderSpec] = []

#: Cached resolution: ``{"kernels": {name: (provider, callable)},
#: "providers": {name: {"available": bool, "reason": str | None}}}`` or
#: ``None`` when resolution has not run (or was refreshed).
_RESOLVED: Optional[dict] = None

#: Test/daemon override of the environment flag (``None`` follows the env).
_OVERRIDE: Optional[str] = None


def register_kernel(
    name: str,
    fallback: Optional[Callable] = None,
    verify: Optional[Callable[[Callable], None]] = None,
) -> None:
    """Declare a dispatchable kernel (idempotent per name)."""
    _KERNELS[name] = KernelSpec(name=name, fallback=fallback, verify=verify)
    refresh()


def register_provider(
    name: str,
    loader: Callable[[], Dict[str, Callable]],
    describe: Optional[Callable[[], Dict[str, object]]] = None,
) -> None:
    """Declare a provider; registration order is the preference order."""
    global _PROVIDERS
    _PROVIDERS = [p for p in _PROVIDERS if p.name != name]
    _PROVIDERS.append(ProviderSpec(name=name, loader=loader, describe=describe))
    refresh()


def refresh() -> None:
    """Drop the cached resolution (re-reads the environment on next use)."""
    global _RESOLVED
    _RESOLVED = None


def _mode() -> str:
    """The effective tier mode: the test override, else the environment."""
    if _OVERRIDE is not None:
        return _OVERRIDE
    return os.environ.get(ENV_FLAG, "1").strip().lower() or "1"


@contextmanager
def use_native(mode):
    """Temporarily force a tier mode: ``False``/``"0"`` for the fallback,
    ``True``/``"1"`` for automatic native, or a provider name."""
    global _OVERRIDE
    if mode is True:
        mode = "1"
    elif mode is False:
        mode = "0"
    previous = _OVERRIDE
    _OVERRIDE = str(mode)
    refresh()
    try:
        yield
    finally:
        _OVERRIDE = previous
        refresh()


def _resolve() -> dict:
    """Load, verify, and cache the best provider for every kernel."""
    global _RESOLVED
    if _RESOLVED is not None:
        return _RESOLVED
    mode = _mode()
    provider_status: Dict[str, dict] = {}
    loaded: Dict[str, Dict[str, Callable]] = {}
    if mode in _DISABLED_VALUES:
        candidates: List[ProviderSpec] = []
    elif any(p.name == mode for p in _PROVIDERS):
        candidates = [p for p in _PROVIDERS if p.name == mode]
    else:
        candidates = list(_PROVIDERS)
    for provider in _PROVIDERS:
        if not any(c.name == provider.name for c in candidates):
            provider_status[provider.name] = {
                "available": False,
                "reason": f"disabled by {ENV_FLAG}={mode}",
            }
            continue
        try:
            loaded[provider.name] = provider.loader()
            provider_status[provider.name] = {"available": True, "reason": None}
        except Exception as error:  # import/compile failures degrade, never raise
            provider_status[provider.name] = {
                "available": False,
                "reason": f"{type(error).__name__}: {error}",
            }
    kernels: Dict[str, tuple] = {}
    for name, spec in _KERNELS.items():
        resolved = ("fallback", spec.fallback)
        for provider in candidates:
            implementation = loaded.get(provider.name, {}).get(name)
            if implementation is None:
                continue
            try:
                if spec.verify is not None:
                    spec.verify(implementation)
            except Exception as error:
                status = provider_status[provider.name]
                note = f"kernel {name!r} failed verification: {error}"
                status["reason"] = (
                    note if status["reason"] is None else f"{status['reason']}; {note}"
                )
                continue
            resolved = (provider.name, implementation)
            break
        kernels[name] = resolved
    _RESOLVED = {"mode": mode, "providers": provider_status, "kernels": kernels}
    return _RESOLVED


def get_kernel(name: str) -> Optional[Callable]:
    """The resolved implementation of a kernel (``None`` = no fallback either).

    Returns the verified native implementation when the tier is enabled and
    a provider serves the kernel, the registered pure-numpy fallback
    otherwise.  Kernels registered without a fallback return ``None`` in
    fallback mode — the caller keeps its own inline numpy path.
    """
    if name not in _KERNELS:
        raise KeyError(f"unknown kernel {name!r}; registered: {sorted(_KERNELS)}")
    provider, implementation = _resolve()["kernels"][name]
    _obs.counter_add(f"native.dispatch.{provider}", 1.0)
    return implementation


def kernel_provider(name: str) -> str:
    """Which provider serves a kernel: a provider name or ``"fallback"``."""
    if name not in _KERNELS:
        raise KeyError(f"unknown kernel {name!r}; registered: {sorted(_KERNELS)}")
    return _resolve()["kernels"][name][0]


def native_status() -> dict:
    """Introspection snapshot of the tier: mode, providers, per-kernel routing.

    The ``tier`` field is ``"native"`` when at least one kernel resolved to
    a compiled provider and ``"fallback"`` otherwise — the value the CLI
    summary and the bench rows report so recorded numbers are attributable
    to the tier that produced them.
    """
    resolution = _resolve()
    # Sorted by name on both axes: registration order is an implementation
    # detail, and a stable ordering keeps status snapshots in tests and
    # ``repro status`` diffs from churning as kernels are added.
    providers: Dict[str, dict] = {}
    for provider in sorted(_PROVIDERS, key=lambda spec: spec.name):
        entry = dict(resolution["providers"].get(provider.name, {"available": False, "reason": "not resolved"}))
        if provider.describe is not None:
            try:
                entry.update(provider.describe())
            except Exception:  # description is cosmetic; never fail status
                pass
        providers[provider.name] = entry
    kernels = {
        name: {"provider": resolution["kernels"][name][0]}
        for name in sorted(resolution["kernels"])
    }
    native = any(entry["provider"] != "fallback" for entry in kernels.values())
    return {
        "mode": resolution["mode"],
        "tier": "native" if native else "fallback",
        "providers": providers,
        "kernels": kernels,
    }

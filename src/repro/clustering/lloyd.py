"""Weighted Lloyd's algorithm for k-means, with a bounds-pruned engine.

Lloyd's algorithm [49] alternates between assigning every point to its
nearest center and moving every center to the (weighted) mean of its
assigned points.  The paper uses it as the *downstream* clustering task: the
quality of a compression is judged by running k-means++ seeding followed by
Lloyd iterations on the coreset and evaluating the resulting centers on the
full dataset (Table 8).

Pruned refinement
-----------------
The default engine maintains Hamerly-style center-movement bounds instead of
recomputing the full ``(n, k)`` distance block every iteration: each point
carries an exact distance to its assigned center (``upper``) and a lower
bound on the distance to every *other* center (``lower``), deflated by the
largest center drift after every M-step.  Points with ``upper < lower``
provably keep their assignment and skip the distance block entirely; only
the small suspect set is re-examined.  Because the E-step is warm-started
from the previous assignment, the per-iteration cost drops from ``O(nkd)``
to ``O(nd)`` plus the suspect block, which is what makes the Table-8-style
evaluation runs cheap (see ``benchmarks/bench_perf_hotpaths.py``,
``lloyd_*`` rows).

Exact equivalence
-----------------
Pruning only ever *skips* work whose outcome is provably unchanged, so the
pruned engine produces bit-identical assignments, centers, costs, iteration
counts, and random streams to the naive full-recompute loop (available as
``algorithm="naive"`` and frozen in :mod:`repro.reference.naive_lloyd`).
Three implementation rules make the equivalence exact rather than merely
mathematical:

* cost and re-seed mass are computed by :func:`assigned_squared_distances`,
  a per-point kernel whose output depends only on ``(points, centers,
  assignment)`` — never on which points were pruned;
* suspect points are re-examined with the same norm-expansion block kernel
  (and chunk policy) as the naive E-step; multi-row GEMM blocks are
  row-stable, and suspect sets are padded to a minimum row count because a
  single-row product routes to a different BLAS kernel;
* the bounds carry a tiny relative safety factor so that ulp-level
  discrepancies between the per-point and blocked kernels can never flip a
  pruning decision.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.clustering.cost import ClusteringSolution
from repro.clustering.kmeans_pp import kmeans_plus_plus
from repro.geometry.distances import (
    DEFAULT_CHUNK_ELEMENTS,
    _chunk_rows,
    squared_point_to_set_distances,
)
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_integer, check_points, check_weights

#: Relative inflation applied to the Hamerly bounds.  The bounds are valid in
#: exact arithmetic; the safety factor absorbs ulp-level differences between
#: the blocked and per-point distance kernels so a pruning decision can never
#: disagree with the naive argmin.
_BOUND_SAFETY = 1e-12

#: Minimum number of rows handed to the blocked distance kernel.  BLAS routes
#: single-row products through a different (matrix-vector) kernel whose
#: results are not bit-identical to the blocked GEMM; padding tiny suspect
#: sets keeps every recompute on the row-stable path.
_MIN_RECOMPUTE_ROWS = 8


@dataclass
class KMeansResult:
    """Outcome of running Lloyd's algorithm.

    Attributes
    ----------
    centers:
        Final centers of shape ``(k, d)``.
    assignment:
        Nearest-center index for every input point.
    cost:
        Weighted k-means cost of the final solution.
    iterations:
        Number of Lloyd iterations actually performed.
    converged:
        ``True`` when the relative cost improvement dropped below the
        tolerance before the iteration cap was reached.
    recompute_fraction:
        Fraction of point-iterations for which the pruned engine had to fall
        back to the full distance block (1.0 for the naive engine; the first
        assignment is always a full block and is not counted).
    """

    centers: np.ndarray
    assignment: np.ndarray
    cost: float
    iterations: int
    converged: bool
    recompute_fraction: float = 1.0

    def as_solution(self) -> ClusteringSolution:
        """View the result as a generic :class:`ClusteringSolution`."""
        return ClusteringSolution(
            centers=self.centers, assignment=self.assignment, cost=self.cost, z=2
        )


# --------------------------------------------------------------- primitives
def assigned_squared_distances(
    points: np.ndarray, centers: np.ndarray, assignment: np.ndarray
) -> np.ndarray:
    """Exact squared distance from every point to its *assigned* center.

    Computed point-wise (no matrix-matrix product), so the result depends
    only on ``(points, centers, assignment)`` and not on which points a
    caller chose to recompute — the property the naive and pruned engines
    rely on to report bit-identical costs and re-seed masses.
    """
    delta = points - centers[assignment]
    return np.einsum("ij,ij->i", delta, delta)


def _nearest_two(
    points: np.ndarray, centers: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Nearest and second-nearest squared center distances plus the argmin.

    Uses the same norm expansion, clamping, and chunk policy as
    :func:`~repro.geometry.distances.squared_point_to_set_distances`, so the
    assignments it produces are bit-identical to the naive E-step's for any
    (multi-row) subset of the points.
    """
    n = points.shape[0]
    k = centers.shape[0]
    center_norms = np.einsum("ij,ij->i", centers, centers)
    best = np.empty(n, dtype=np.float64)
    second = np.empty(n, dtype=np.float64)
    assignment = np.empty(n, dtype=np.int64)
    # Shared with squared_point_to_set_distances: the bit-identity contract
    # requires the two E-steps to partition rows into the same GEMM blocks.
    rows = _chunk_rows(k, DEFAULT_CHUNK_ELEMENTS)
    for start in range(0, n, rows):
        stop = min(start + rows, n)
        block = points[start:stop]
        block_norms = np.einsum("ij,ij->i", block, block)
        squared = block_norms[:, None] + center_norms[None, :] - 2.0 * (block @ centers.T)
        np.maximum(squared, 0.0, out=squared)
        local = np.argmin(squared, axis=1)
        local_rows = np.arange(stop - start)
        assignment[start:stop] = local
        best[start:stop] = squared[local_rows, local]
        if k >= 2:
            squared[local_rows, local] = np.inf
            second[start:stop] = squared.min(axis=1)
        else:
            second[start:stop] = np.inf
    return best, second, assignment


def _reseed_empty_clusters(
    new_centers: np.ndarray,
    empty: np.ndarray,
    points: np.ndarray,
    weights: np.ndarray,
    squared: np.ndarray,
    generator: np.random.Generator,
) -> None:
    """Re-seed empty clusters at far-away points (weighted by current cost).

    With several empty clusters the replacements are drawn *without*
    replacement: drawing the same far point twice would re-seed two centers
    at the same location and immediately re-empty one of them on the next
    assignment (the duplicate loses every argmin tie).
    """
    n = points.shape[0]
    mass = weights * squared
    total = float(mass.sum())
    if total <= 0 or not np.isfinite(total):
        replacement = generator.choice(n, size=empty.size, replace=empty.size > n)
    else:
        distinct = empty.size > 1 and int(np.count_nonzero(mass > 0)) >= empty.size
        if distinct:
            replacement = generator.choice(
                n, size=empty.size, replace=False, p=mass / total
            )
        else:
            replacement = generator.choice(
                n, size=empty.size, replace=True, p=mass / total
            )
    new_centers[empty] = points[replacement]


def update_centers(
    points: np.ndarray,
    weights: np.ndarray,
    assignment: np.ndarray,
    squared: np.ndarray,
    centers: np.ndarray,
    generator: np.random.Generator,
) -> np.ndarray:
    """One M-step: weighted means per cluster, empty clusters re-seeded.

    ``squared`` must be the per-point squared distance to the assigned
    center (the re-seed sampling mass).  Shared by the naive and pruned
    engines so their center sequences — and their consumption of
    ``generator`` — are identical.
    """
    k = centers.shape[0]
    new_centers = centers.copy()
    counts = np.bincount(assignment, weights=weights, minlength=k)
    weighted = weights[:, None] * points
    sums = np.empty_like(centers)
    for coordinate in range(points.shape[1]):
        sums[:, coordinate] = np.bincount(
            assignment, weights=weighted[:, coordinate], minlength=k
        )
    occupied = counts > 0
    new_centers[occupied] = sums[occupied] / counts[occupied, None]
    empty = np.flatnonzero(~occupied)
    if empty.size:
        _reseed_empty_clusters(new_centers, empty, points, weights, squared, generator)
    return new_centers


def lloyd_iteration(
    points: np.ndarray,
    centers: np.ndarray,
    weights: np.ndarray,
    generator: np.random.Generator,
) -> np.ndarray:
    """One Lloyd step: assign to nearest centers, then recompute weighted means.

    Empty clusters are re-seeded at points far from their assigned center
    (see :func:`update_centers`), the standard practical fix that keeps
    exactly ``k`` centers alive.
    """
    squared, assignment = squared_point_to_set_distances(points, centers)
    return update_centers(points, weights, assignment, squared, centers, generator)


# ------------------------------------------------------------------ engines
def _converged(previous_cost: float, cost: float, tolerance: float) -> bool:
    return previous_cost < np.inf and previous_cost - cost <= tolerance * max(
        previous_cost, 1e-12
    )


def _run_naive(
    points: np.ndarray,
    weights: np.ndarray,
    centers: np.ndarray,
    max_iterations: int,
    tolerance: float,
    generator: np.random.Generator,
) -> KMeansResult:
    """Full-recompute Lloyd loop (one ``(n, k)`` distance block per iteration)."""
    _, assignment = squared_point_to_set_distances(points, centers)
    squared = assigned_squared_distances(points, centers, assignment)
    previous_cost = np.inf
    cost = np.inf
    converged = False
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        centers = update_centers(points, weights, assignment, squared, centers, generator)
        _, assignment = squared_point_to_set_distances(points, centers)
        squared = assigned_squared_distances(points, centers, assignment)
        cost = float(np.dot(weights, squared))
        if _converged(previous_cost, cost, tolerance):
            converged = True
            break
        previous_cost = cost
    return KMeansResult(
        centers=centers,
        assignment=assignment,
        cost=cost,
        iterations=iterations,
        converged=converged,
        recompute_fraction=1.0,
    )


def _run_pruned(
    points: np.ndarray,
    weights: np.ndarray,
    centers: np.ndarray,
    max_iterations: int,
    tolerance: float,
    generator: np.random.Generator,
) -> KMeansResult:
    """Hamerly-bounded Lloyd loop: skip points whose assignment cannot change.

    Invariants maintained for every point ``i`` (in exact arithmetic, with
    the :data:`_BOUND_SAFETY` margin absorbing floating-point slack):

    * ``assignment[i]`` is the current nearest center;
    * ``lower[i]`` is at most the distance from ``i`` to every center other
      than ``assignment[i]``.

    After an M-step that moves every center by at most ``max_drift``, the
    assigned distance is recomputed exactly (it is needed for the cost
    anyway) and ``lower`` shrinks by ``max_drift``; whenever the exact
    assigned distance stays strictly below ``lower``, no other center can
    have overtaken it and the ``(n, k)`` block is skipped for that point.
    """
    n = points.shape[0]
    best_sq, second_sq, assignment = _nearest_two(points, centers)
    lower = np.sqrt(second_sq) * (1.0 - _BOUND_SAFETY)
    squared = assigned_squared_distances(points, centers, assignment)
    previous_cost = np.inf
    cost = np.inf
    converged = False
    iterations = 0
    recomputed = 0
    for iterations in range(1, max_iterations + 1):
        new_centers = update_centers(points, weights, assignment, squared, centers, generator)
        movement = new_centers - centers
        drift = np.sqrt(np.einsum("ij,ij->i", movement, movement))
        centers = new_centers
        # ``lower`` bounds the distance to centers *other* than the assigned
        # one, so each point only needs to absorb the largest drift among
        # those: points assigned to the biggest mover (typically a re-seeded
        # or still-converging center) subtract the runner-up drift instead,
        # which keeps one teleporting center from suspending pruning for the
        # whole dataset.
        if drift.size >= 2:
            top = int(np.argmax(drift))
            max_drift = float(drift[top]) * (1.0 + _BOUND_SAFETY)
            runner_up = float(np.partition(drift, -2)[-2]) * (1.0 + _BOUND_SAFETY)
            lower -= np.where(assignment == top, runner_up, max_drift)
        elif drift.size:
            lower -= float(drift[0]) * (1.0 + _BOUND_SAFETY)
        squared = assigned_squared_distances(points, centers, assignment)
        upper = np.sqrt(squared) * (1.0 + _BOUND_SAFETY)
        suspects = np.flatnonzero(upper >= lower)
        if suspects.size:
            recompute = suspects
            if recompute.size < min(n, _MIN_RECOMPUTE_ROWS):
                # Pad tiny suspect sets onto the row-stable GEMM path; the
                # recomputed argmin is authoritative, so extra rows are safe.
                recompute = np.unique(
                    np.concatenate([suspects, np.arange(min(n, _MIN_RECOMPUTE_ROWS))])
                )
            r_best, r_second, r_assignment = _nearest_two(points[recompute], centers)
            assignment[recompute] = r_assignment
            lower[recompute] = np.sqrt(r_second) * (1.0 - _BOUND_SAFETY)
            # Per-point kernel rows are bit-stable under subsetting, so only
            # the re-assigned rows of the cost basis need refreshing.
            squared[recompute] = assigned_squared_distances(
                points[recompute], centers, assignment[recompute]
            )
            recomputed += recompute.size
        cost = float(np.dot(weights, squared))
        if _converged(previous_cost, cost, tolerance):
            converged = True
            break
        previous_cost = cost
    fraction = recomputed / float(n * iterations) if iterations else 0.0
    return KMeansResult(
        centers=centers,
        assignment=assignment,
        cost=cost,
        iterations=iterations,
        converged=converged,
        recompute_fraction=fraction,
    )


_ENGINES = {"pruned": _run_pruned, "naive": _run_naive}


def kmeans(
    points: np.ndarray,
    k: int,
    *,
    weights: Optional[np.ndarray] = None,
    max_iterations: int = 50,
    tolerance: float = 1e-4,
    initial_centers: Optional[np.ndarray] = None,
    algorithm: str = "pruned",
    seed: SeedLike = None,
) -> KMeansResult:
    """Weighted k-means via k-means++ seeding followed by Lloyd iterations.

    Parameters
    ----------
    points:
        Array of shape ``(n, d)`` — typically a coreset when used as the
        paper's downstream task.
    k:
        Number of clusters.
    weights:
        Optional non-negative point weights (coreset weights).
    max_iterations:
        Cap on Lloyd iterations.
    tolerance:
        Relative cost-improvement threshold below which the run is declared
        converged.
    initial_centers:
        Explicit starting centers; when given, seeding is skipped.  Table 8
        of the paper compares samplers under *identical* initialisations,
        which this parameter makes possible.
    algorithm:
        ``"pruned"`` (default) for the Hamerly-bounded engine, ``"naive"``
        for the full-recompute loop.  Both produce bit-identical results
        (see the module docstring); the naive engine is kept for the
        equivalence tests and the perf harness.
    seed:
        Randomness for seeding and empty-cluster repair.
    """
    points = check_points(points)
    n = points.shape[0]
    k = check_integer(k, name="k")
    weights = check_weights(weights, n)
    generator = as_generator(seed)
    if algorithm not in _ENGINES:
        raise ValueError(
            f"algorithm must be one of {sorted(_ENGINES)}, got {algorithm!r}"
        )

    if initial_centers is not None:
        centers = np.asarray(initial_centers, dtype=np.float64).copy()
        if centers.ndim != 2 or centers.shape[1] != points.shape[1]:
            raise ValueError("initial_centers must be a (k, d) array matching the data dimension")
    else:
        centers = kmeans_plus_plus(points, min(k, n), weights=weights, z=2, seed=generator).centers

    return _ENGINES[algorithm](
        points, weights, centers, max_iterations, tolerance, generator
    )

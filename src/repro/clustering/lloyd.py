"""Weighted Lloyd's algorithm for k-means, with a bounds-pruned engine.

Lloyd's algorithm [49] alternates between assigning every point to its
nearest center and moving every center to the (weighted) mean of its
assigned points.  The paper uses it as the *downstream* clustering task: the
quality of a compression is judged by running k-means++ seeding followed by
Lloyd iterations on the coreset and evaluating the resulting centers on the
full dataset (Table 8).

Pruned refinement
-----------------
The default engine maintains Hamerly-style center-movement bounds instead of
recomputing the full ``(n, k)`` distance block every iteration: each point
carries an exact distance to its assigned center (``upper``) and a lower
bound on the distance to every *other* center (``lower``).  Points with
``upper < lower`` provably keep their assignment and skip the distance
block entirely; only the small suspect set is re-examined.  Because the
E-step is warm-started from the previous assignment, the per-iteration cost
drops from ``O(nkd)`` to ``O(nd)`` plus the suspect block, which is what
makes the Table-8-style evaluation runs cheap (see
``benchmarks/bench_perf_hotpaths.py``, ``lloyd_*`` / ``lloyd_fused_*``
rows).

Two refinements tighten the classic bound (each is a strict improvement,
never a relaxation, so the pruning stays provably safe):

* **Epoch-anchored drifts.**  Instead of deflating one running ``lower`` by
  the *largest* per-iteration drift — whose sum over iterations charges
  every point with a mix of different centers' movements — the engine
  records the cumulative drift vector of every iteration and bounds each
  point against ``max_j (C_now[j] - C_epoch[j])``, the largest *single
  center's* total movement since that point's bounds were last measured
  (its epoch).  A maximum of sums is at most the sum of maxima, and on
  converging runs — where the identity of the biggest mover changes every
  iteration — it is far smaller, so warm points stay pruned for many
  iterations instead of being eroded a little every step.
* **Elkan-style runner-up tracking.**  The suspect kernel
  (:func:`_nearest_three`) extracts the nearest, second and third center
  distances plus the *identity* of the runner-up in one sweep of each
  ``(block, k)`` distance tile (the seed's kernel scanned the tile twice
  for two values).  The lower bound then splits: the runner-up center is
  bounded by its own cumulative drift, every other center by the *third*
  distance deflated by the largest drift outside the assigned/runner-up
  pair — so one fast-moving runner-up cannot spoil the much larger margin
  the third distance usually provides, and vice versa.

Exact equivalence
-----------------
Pruning only ever *skips* work whose outcome is provably unchanged, so the
pruned engine produces bit-identical assignments, centers, costs, iteration
counts, and random streams to the naive full-recompute loop (available as
``algorithm="naive"`` and frozen in :mod:`repro.reference.naive_lloyd`).
Three implementation rules make the equivalence exact rather than merely
mathematical:

* cost and re-seed mass are computed by :func:`assigned_squared_distances`,
  a per-point kernel whose output depends only on ``(points, centers,
  assignment)`` — never on which points were pruned;
* suspect points are re-examined with the same norm-expansion block kernel
  (and chunk policy) as the naive E-step; multi-row GEMM blocks are
  row-stable, and suspect sets are padded to a minimum row count because a
  single-row product routes to a different BLAS kernel;
* the bounds carry a tiny relative safety factor so that ulp-level
  discrepancies between the per-point and blocked kernels can never flip a
  pruning decision.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro import observability as _obs
from repro.clustering.cost import ClusteringSolution
from repro.clustering.kmeans_pp import kmeans_plus_plus
from repro.geometry.distances import (
    DEFAULT_CHUNK_ELEMENTS,
    _chunk_rows,
    squared_point_to_set_distances,
)
from repro.native import get_kernel
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_integer, check_points, check_weights

#: Relative inflation applied to the Hamerly bounds.  The bounds are valid in
#: exact arithmetic; the safety factor absorbs ulp-level differences between
#: the blocked and per-point distance kernels so a pruning decision can never
#: disagree with the naive argmin.
_BOUND_SAFETY = 1e-12

#: Minimum number of rows handed to the blocked distance kernel.  BLAS routes
#: single-row products through a different (matrix-vector) kernel whose
#: results are not bit-identical to the blocked GEMM; padding tiny suspect
#: sets keeps every recompute on the row-stable path.
_MIN_RECOMPUTE_ROWS = 8

#: Relative margin of the prove-stay filter (phase three).  A suspect keeps
#: its assignment without any k-scan when every candidate center's exact
#: distance exceeds the assigned distance by this relative margin — wide
#: enough to absorb any ulp-level discrepancy between the per-pair and the
#: blocked GEMM kernels (~1e-15 relative), so the decision can never
#: disagree with the authoritative blocked argmin; anything closer falls
#: through to the blocked kernel.
_PROVE_STAY_MARGIN = 1e-9

#: Phase three is skipped when more suspects than this fraction survive
#: phase two (mass phase: most of them genuinely reassign, so per-pair
#: proofs would be wasted work).
_PROVE_STAY_FRACTION = 8

#: Suspect blocks larger than this skip the third-distance extraction in
#: :func:`_nearest_three` (their "others" base falls back to the runner-up
#: distance — a sound relaxation).  Early mass-recompute iterations, where
#: the extra select sweep is most expensive and the bounds are torn down
#: again next iteration anyway, get the seed kernel's exact cost; the third
#: distance is harvested by the warm-phase recomputes where its tighter
#: bound actually pays.  Tuned on the tracked bench workloads: lower limits
#: leak weak bounds into the warm phase and cost more than they save.
_THIRD_DISTANCE_ROW_LIMIT = 16384


@dataclass
class KMeansResult:
    """Outcome of running Lloyd's algorithm.

    Attributes
    ----------
    centers:
        Final centers of shape ``(k, d)``.
    assignment:
        Nearest-center index for every input point.
    cost:
        Weighted k-means cost of the final solution.
    iterations:
        Number of Lloyd iterations actually performed.
    converged:
        ``True`` when the relative cost improvement dropped below the
        tolerance before the iteration cap was reached.
    recompute_fraction:
        Fraction of point-iterations for which the pruned engine had to fall
        back to the full distance block (1.0 for the naive engine; the first
        assignment is always a full block and is not counted).
    """

    centers: np.ndarray
    assignment: np.ndarray
    cost: float
    iterations: int
    converged: bool
    recompute_fraction: float = 1.0

    def as_solution(self) -> ClusteringSolution:
        """View the result as a generic :class:`ClusteringSolution`."""
        return ClusteringSolution(
            centers=self.centers, assignment=self.assignment, cost=self.cost, z=2
        )


# --------------------------------------------------------------- primitives
def assigned_squared_distances(
    points: np.ndarray, centers: np.ndarray, assignment: np.ndarray
) -> np.ndarray:
    """Exact squared distance from every point to its *assigned* center.

    Computed point-wise (no matrix-matrix product), so the result depends
    only on ``(points, centers, assignment)`` and not on which points a
    caller chose to recompute — the property the naive and pruned engines
    rely on to report bit-identical costs and re-seed masses.
    """
    delta = points - centers[assignment]
    return np.einsum("ij,ij->i", delta, delta)


def _nearest_three(
    points: np.ndarray, centers: np.ndarray, third_limit: Optional[int] = None
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Three nearest squared center distances, runner-up ids, and the argmin.

    One sweep over each ``(block, k)`` distance tile extracts everything the
    pruned engine needs: the exact nearest distance and its index (the
    assignment), the runner-up distance *and identity* (the Elkan-style
    bound anchor), and the third-nearest distance (the bound for every
    center outside the assigned/runner-up pair).  Uses the same norm
    expansion, clamping, and chunk policy as
    :func:`~repro.geometry.distances.squared_point_to_set_distances`, so
    the assignments it produces are bit-identical to the naive E-step's for
    any (multi-row) subset of the points.
    """
    n = points.shape[0]
    k = centers.shape[0]
    center_norms = np.einsum("ij,ij->i", centers, centers)
    best = np.empty(n, dtype=np.float64)
    second = np.empty(n, dtype=np.float64)
    third = np.empty(n, dtype=np.float64)
    assignment = np.empty(n, dtype=np.int64)
    # Blocks beyond the detail limit (mass recomputes, whose bounds are torn
    # down again one iteration later) skip the runner-up identification and
    # the third distance: the runner-up *distance* still comes from one
    # masked min — the seed kernel's exact cost — while the sentinel id
    # ``k`` tells the bound logic to charge the runner-up with the largest
    # drift of any center (the padded column of the drift table).
    want_detail = third_limit is None or n <= third_limit
    want_third = k >= 3 and want_detail
    if not want_third:
        third.fill(np.inf)
    if k >= 2 and want_detail:
        second_ids = np.empty(n, dtype=np.int64)
    else:
        second_ids = np.full(n, k, dtype=np.int64)
    # Shared with squared_point_to_set_distances: the bit-identity contract
    # requires the two E-steps to partition rows into the same GEMM blocks.
    rows = _chunk_rows(k, DEFAULT_CHUNK_ELEMENTS)
    for start in range(0, n, rows):
        stop = min(start + rows, n)
        block = points[start:stop]
        block_norms = np.einsum("ij,ij->i", block, block)
        squared = block_norms[:, None] + center_norms[None, :] - 2.0 * (block @ centers.T)
        np.maximum(squared, 0.0, out=squared)
        local = np.argmin(squared, axis=1)
        local_rows = np.arange(stop - start)
        assignment[start:stop] = local
        best[start:stop] = squared[local_rows, local]
        if k >= 2:
            squared[local_rows, local] = np.inf
            if want_detail:
                runner = np.argmin(squared, axis=1)
                second_ids[start:stop] = runner
                second[start:stop] = squared[local_rows, runner]
                if want_third:
                    squared[local_rows, runner] = np.inf
                    third[start:stop] = squared.min(axis=1)
            else:
                second[start:stop] = squared.min(axis=1)
        else:
            second[start:stop] = np.inf
    return best, second, second_ids, third, assignment


def _reseed_empty_clusters(
    new_centers: np.ndarray,
    empty: np.ndarray,
    points: np.ndarray,
    weights: np.ndarray,
    squared: np.ndarray,
    generator: np.random.Generator,
) -> None:
    """Re-seed empty clusters at far-away points (weighted by current cost).

    With several empty clusters the replacements are drawn *without*
    replacement: drawing the same far point twice would re-seed two centers
    at the same location and immediately re-empty one of them on the next
    assignment (the duplicate loses every argmin tie).
    """
    n = points.shape[0]
    mass = weights * squared
    total = float(mass.sum())
    if total <= 0 or not np.isfinite(total):
        replacement = generator.choice(n, size=empty.size, replace=empty.size > n)
    else:
        distinct = empty.size > 1 and int(np.count_nonzero(mass > 0)) >= empty.size
        if distinct:
            replacement = generator.choice(
                n, size=empty.size, replace=False, p=mass / total
            )
        else:
            replacement = generator.choice(
                n, size=empty.size, replace=True, p=mass / total
            )
    new_centers[empty] = points[replacement]


def update_centers(
    points: np.ndarray,
    weights: np.ndarray,
    assignment: np.ndarray,
    squared: np.ndarray,
    centers: np.ndarray,
    generator: np.random.Generator,
    weighted: Optional[np.ndarray] = None,
    codes: Optional[np.ndarray] = None,
) -> np.ndarray:
    """One M-step: weighted means per cluster, empty clusters re-seeded.

    ``squared`` must be the per-point squared distance to the assigned
    center (the re-seed sampling mass).  Shared by the naive and pruned
    engines so their center sequences — and their consumption of
    ``generator`` — are identical.  ``weighted`` may carry a precomputed
    ``weights[:, None] * points`` (constant across a refinement) and
    ``codes`` the flattened ``assignment * d + coordinate`` bin codes the
    pruned engine maintains incrementally; both only change how the
    identical per-cluster sums are accumulated.
    """
    k = centers.shape[0]
    d = points.shape[1]
    new_centers = centers.copy()
    if weighted is None:
        weighted = weights[:, None] * points
    sums_kernel = get_kernel("lloyd_update_sums")
    if sums_kernel is not None:
        # One fused native pass: per-cluster weight totals and weighted
        # coordinate sums accumulated in ascending point order — the exact
        # accumulation order of every bincount below, so the results are
        # bit-identical (pinned by the registry's resolution verifier).
        counts, sums = sums_kernel(weighted, weights, assignment, k)
    elif codes is not None:
        counts = np.bincount(assignment, weights=weights, minlength=k)
        # One flat bincount over (cluster, coordinate) codes.  Bins are
        # visited in ascending point order exactly like the per-coordinate
        # bincounts, so the per-cluster partial sums are bit-identical.
        sums = np.bincount(codes.ravel(), weights=weighted.ravel(), minlength=k * d).reshape(
            k, d
        )
    else:
        counts = np.bincount(assignment, weights=weights, minlength=k)
        sums = np.empty_like(centers)
        for coordinate in range(d):
            sums[:, coordinate] = np.bincount(
                assignment, weights=weighted[:, coordinate], minlength=k
            )
    occupied = counts > 0
    new_centers[occupied] = sums[occupied] / counts[occupied, None]
    empty = np.flatnonzero(~occupied)
    if empty.size:
        _reseed_empty_clusters(new_centers, empty, points, weights, squared, generator)
    return new_centers


def lloyd_iteration(
    points: np.ndarray,
    centers: np.ndarray,
    weights: np.ndarray,
    generator: np.random.Generator,
) -> np.ndarray:
    """One Lloyd step: assign to nearest centers, then recompute weighted means.

    Empty clusters are re-seeded at points far from their assigned center
    (see :func:`update_centers`), the standard practical fix that keeps
    exactly ``k`` centers alive.
    """
    squared, assignment = squared_point_to_set_distances(points, centers)
    return update_centers(points, weights, assignment, squared, centers, generator)


# ------------------------------------------------------------------ engines
def _converged(previous_cost: float, cost: float, tolerance: float) -> bool:
    return previous_cost < np.inf and previous_cost - cost <= tolerance * max(
        previous_cost, 1e-12
    )


def _run_naive(
    points: np.ndarray,
    weights: np.ndarray,
    centers: np.ndarray,
    max_iterations: int,
    tolerance: float,
    generator: np.random.Generator,
) -> KMeansResult:
    """Full-recompute Lloyd loop (one ``(n, k)`` distance block per iteration)."""
    _, assignment = squared_point_to_set_distances(points, centers)
    squared = assigned_squared_distances(points, centers, assignment)
    previous_cost = np.inf
    cost = np.inf
    converged = False
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        with _obs.span("lloyd.iteration", iteration=iterations):
            centers = update_centers(points, weights, assignment, squared, centers, generator)
            _, assignment = squared_point_to_set_distances(points, centers)
            squared = assigned_squared_distances(points, centers, assignment)
            cost = float(np.dot(weights, squared))
            if _converged(previous_cost, cost, tolerance):
                converged = True
                break
            previous_cost = cost
    _obs.counter_add("lloyd.iterations", float(iterations))
    return KMeansResult(
        centers=centers,
        assignment=assignment,
        cost=cost,
        iterations=iterations,
        converged=converged,
        recompute_fraction=1.0,
    )


def _run_pruned(
    points: np.ndarray,
    weights: np.ndarray,
    centers: np.ndarray,
    max_iterations: int,
    tolerance: float,
    generator: np.random.Generator,
) -> KMeansResult:
    """Bounds-pruned Lloyd loop: skip points whose assignment cannot change.

    Invariants maintained for every point ``i`` (in exact arithmetic, with
    the :data:`_BOUND_SAFETY` margin absorbing floating-point slack):

    * ``assignment[i]`` is the current nearest center;
    * ``base_second[i]`` / ``base_third[i]`` are at most the distances to
      the runner-up center ``second_ids[i]`` and to every other non-assigned
      center, measured against the centers of iteration ``epoch[i]``;
    * every center ``j`` has moved at most ``cumulative[t][j] -
      cumulative[epoch[i]][j]`` since then (triangle inequality along its
      trajectory).

    The per-iteration lower bound is therefore ``min(base_second - drift of
    the runner-up itself, base_third - largest drift outside the
    assigned/runner-up pair)``; whenever the exact assigned distance (which
    the cost needs anyway) stays strictly below it, no other center can
    have overtaken the assignment and the ``(n, k)`` block is skipped.
    Working against *cumulative per-center* drifts anchored at each point's
    last recompute — instead of eroding one running bound by the global
    maximum drift every iteration — keeps warm points pruned indefinitely
    once the run starts converging.
    """
    n = points.shape[0]
    k = centers.shape[0]
    best_sq, second_sq, second_ids, third_sq, assignment = _nearest_three(
        points, centers, third_limit=_THIRD_DISTANCE_ROW_LIMIT
    )
    base_second = np.sqrt(second_sq) * (1.0 - _BOUND_SAFETY)
    # Where the third distance was not extracted (oversized block), the
    # runner-up distance still lower-bounds every non-assigned center, so
    # it substitutes as the "others" base; +inf would wrongly leave those
    # centers bounded by the runner-up branch alone.
    base_third = np.where(np.isfinite(third_sq), np.sqrt(third_sq) * (1.0 - _BOUND_SAFETY), base_second)
    epoch = np.zeros(n, dtype=np.int64)
    eroded = base_second.copy()
    cumulative = [np.zeros(k, dtype=np.float64)]
    squared = assigned_squared_distances(points, centers, assignment)
    # Reusable work arrays: suspect gathers, the center gather / delta of
    # the per-point cost kernel, and the constant weighted point matrix.
    gather = np.empty_like(points)
    delta_buffer = np.empty_like(points)
    weighted = weights[:, None] * points
    coordinate_offsets = np.arange(points.shape[1], dtype=np.int64)
    codes = assignment[:, None] * points.shape[1] + coordinate_offsets

    def _refresh_squared(target: np.ndarray) -> np.ndarray:
        """``assigned_squared_distances`` into preallocated buffers."""
        np.take(centers, assignment, axis=0, out=delta_buffer)
        np.subtract(points, delta_buffer, out=delta_buffer)
        return np.einsum("ij,ij->i", delta_buffer, delta_buffer, out=target)

    # Compiled-tier kernels (None in fallback mode — the inline numpy
    # passes below then run unchanged).  Every kernel is pinned
    # bit-identical to its numpy counterpart at registry resolution, so the
    # centers/assignment/cost/iteration trajectory is the same in both
    # modes; only the internal bound bookkeeping of directly reassigned
    # points (and with it ``recompute_fraction``) may differ.
    refresh_kernel = get_kernel("lloyd_refresh_bounds")
    candidate_kernel = get_kernel("lloyd_candidate_eval")

    previous_cost = np.inf
    cost = np.inf
    converged = False
    iterations = 0
    recomputed = 0
    for iterations in range(1, max_iterations + 1):
        with _obs.span("lloyd.iteration", iteration=iterations) as iteration_span:
            new_centers = update_centers(
                points,
                weights,
                assignment,
                squared,
                centers,
                generator,
                weighted=weighted,
                codes=codes,
            )
            movement = new_centers - centers
            drift = np.sqrt(np.einsum("ij,ij->i", movement, movement))
            centers = new_centers
            cumulative.append(cumulative[-1] + drift)
            current = cumulative[-1]

            # Phase one: the seed engine's O(n) in-place erosion by the largest
            # per-iteration drift — a sound relaxation of the epoch bound below
            # (a sum of per-iteration maxima dominates every center's own
            # cumulative drift).  Survivors are re-examined against the exact
            # epoch-anchored bound, which is also written back here, re-arming
            # the eroded bound so cleared points do not fail phase one forever.
            decrement = float(drift.max()) * (1.0 + _BOUND_SAFETY) if drift.size else 0.0
            center_norms = None  # lazily materialised for the candidate kernel
            if refresh_kernel is not None:
                # Fused native pass: refresh the assigned distances (einsum
                # accumulation order and all), rebuild the upper bounds, erode,
                # and emit the phase-one survivors in one sweep over the points.
                upper, maybe = refresh_kernel(
                    points, centers, assignment, decrement, 1.0 + _BOUND_SAFETY, squared, eroded
                )
            else:
                squared = _refresh_squared(squared)
                upper = np.sqrt(squared) * (1.0 + _BOUND_SAFETY)
                if drift.size:
                    eroded -= decrement
                maybe = np.flatnonzero(upper >= eroded)
            suspects = maybe
            _obs.counter_add("lloyd.phase1_survivors", float(maybe.size))
            if maybe.size and k >= 2:
                # Per-epoch drift tables, materialised only for epochs a phase
                # one survivor still carries (at most one per past iteration).
                epoch_m = epoch[maybe]
                epoch_counts = np.bincount(epoch_m, minlength=len(cumulative))
                present = np.flatnonzero(epoch_counts)
                deltas = (current[None, :] - np.stack([cumulative[e] for e in present])) * (
                    1.0 + _BOUND_SAFETY
                )
                # Column ``k`` holds each epoch's largest drift: the sentinel
                # runner-up id of mass-recomputed points lands here, charging
                # their unknown runner-up with the worst case.
                deltas = np.concatenate([deltas, deltas[:, :k].max(axis=1, keepdims=True)], axis=1)
                position = np.empty(len(cumulative), dtype=np.int64)
                position[present] = np.arange(present.size)
                rows_m = position[epoch_m]
                lower = base_second[maybe] - deltas[rows_m, second_ids[maybe]]
                if k >= 3:
                    # Largest cumulative drift outside the assigned/runner-up
                    # pair: take the per-epoch top mover unless it is one of
                    # the excluded centers, falling through to the second and
                    # third movers.
                    real = deltas[:, :k]
                    candidates = np.argpartition(real, k - 3, axis=1)[:, -3:]
                    values = np.take_along_axis(real, candidates, axis=1)
                    rank = np.argsort(values, axis=1)  # ascending within the top 3
                    ordered = np.take_along_axis(candidates, rank, axis=1)
                    sorted_values = np.take_along_axis(values, rank, axis=1)
                    j1, j2 = ordered[:, 2], ordered[:, 1]
                    v1, v2, v3 = sorted_values[:, 2], sorted_values[:, 1], sorted_values[:, 0]
                    m_j1, m_j2 = j1[rows_m], j2[rows_m]
                    m_assignment = assignment[maybe]
                    m_second = second_ids[maybe]
                    excluded1 = (m_j1 == m_assignment) | (m_j1 == m_second)
                    excluded2 = (m_j2 == m_assignment) | (m_j2 == m_second)
                    other_drift = np.where(
                        excluded1,
                        np.where(excluded2, v3[rows_m], v2[rows_m]),
                        v1[rows_m],
                    )
                    np.minimum(lower, base_third[maybe] - other_drift, out=lower)
                eroded[maybe] = lower
                suspects = maybe[upper[maybe] >= lower]
                if 0 < suspects.size <= max(_MIN_RECOMPUTE_ROWS, n // _PROVE_STAY_FRACTION):
                    # Phase three: prove most survivors keep their assignment by
                    # checking the exact distance to their (usually one or two)
                    # candidate centers — the only centers whose per-center
                    # bound dips below the assigned distance.  Points that
                    # might actually change (or sit within the floating-point
                    # margin) still go through the authoritative blocked
                    # kernel, so bit-identity is untouched.
                    rows_s = position[epoch[suspects]]
                    bounds = base_third[suspects][:, None] - deltas[rows_s, :k]
                    s_ids = second_ids[suspects]
                    surv_rows = np.arange(suspects.size)
                    real_s = s_ids < k
                    if np.any(real_s):
                        tightened = base_second[suspects] - deltas[rows_s, s_ids]
                        bounds[surv_rows[real_s], s_ids[real_s]] = tightened[real_s]
                    if candidate_kernel is not None:
                        # Native pass: evaluates every (suspect, candidate)
                        # pair with the engine's exact einsum accumulation and
                        # classifies each suspect — cleared (the numpy pass's
                        # "stays" set, bit for bit), directly reassigned (the
                        # runner-up gap clears an absolute-scale guard so the
                        # blocked argmin must agree), or ambiguous.  ``None``
                        # is the same too-many-pairs bail as below: every
                        # suspect falls through to the blocked kernel.
                        if center_norms is None:
                            center_norms = np.einsum("ij,ij->i", centers, centers)
                        outcome = candidate_kernel(
                            points,
                            centers,
                            center_norms,
                            suspects,
                            np.ascontiguousarray(bounds),
                            upper[suspects],
                            squared,
                            assignment,
                            _PROVE_STAY_MARGIN,
                        )
                        if outcome is not None:
                            result, runner_sq = outcome
                            ambiguous = result == -1
                            moved = result != assignment[suspects]
                            moved &= ~ambiguous
                            if np.any(moved):
                                # Direct reassignment without the blocked
                                # k-scan.  The evaluated runner-up distance
                                # lower-bounds every non-assigned center (the
                                # unevaluated ones sit above ``upper``), so it
                                # rebuilds a sound — if slightly loose — bound
                                # state; the sentinel runner-up id charges the
                                # worst per-epoch drift, exactly like a mass
                                # recompute.
                                rows = suspects[moved]
                                targets = result[moved]
                                assignment[rows] = targets
                                codes[rows] = (
                                    targets[:, None] * points.shape[1] + coordinate_offsets
                                )
                                second_ids[rows] = k
                                floor = np.sqrt(runner_sq[moved]) * (1.0 - _BOUND_SAFETY)
                                base_second[rows] = floor
                                base_third[rows] = floor
                                eroded[rows] = floor
                                epoch[rows] = iterations
                                squared[rows] = assigned_squared_distances(
                                    points[rows], centers, targets
                                )
                                recomputed += rows.size
                            suspects = suspects[ambiguous]
                    else:
                        candidate = bounds <= upper[suspects][:, None]
                        candidate[surv_rows, assignment[suspects]] = False
                        pair_row, pair_center = np.nonzero(candidate)
                        if pair_row.size > 4 * suspects.size:
                            # Bounds too weak to localise the threat (many
                            # candidate centers per suspect): the blocked kernel
                            # is cheaper than evaluating every pair.
                            pass
                        elif pair_row.size:
                            pair_points = points[suspects[pair_row]]
                            pair_delta = pair_points - centers[pair_center]
                            pair_squared = np.einsum("ij,ij->i", pair_delta, pair_delta)
                            beaten = pair_squared <= squared[suspects[pair_row]] * (
                                1.0 + _PROVE_STAY_MARGIN
                            )
                            stays = np.ones(suspects.size, dtype=bool)
                            stays[pair_row[beaten]] = False
                            suspects = suspects[~stays]
                        else:
                            suspects = suspects[:0]
            iteration_span.annotate(suspects=int(suspects.size))
            if suspects.size:
                recompute = suspects
                if recompute.size < min(n, _MIN_RECOMPUTE_ROWS):
                    # Pad tiny suspect sets onto the row-stable GEMM path; the
                    # recomputed argmin is authoritative, so extra rows are safe.
                    recompute = np.unique(
                        np.concatenate([suspects, np.arange(min(n, _MIN_RECOMPUTE_ROWS))])
                    )
                if recompute.size > n // 2:
                    # Mass recompute: widening to every point costs less than
                    # gathering most of them (and the extra rows are safe — the
                    # recomputed argmin is authoritative either way).
                    recompute = np.arange(n)
                    block = points
                else:
                    block = np.take(points, recompute, axis=0, out=gather[: recompute.size])
                r_best, r_second, r_sids, r_third, r_assignment = _nearest_three(
                    block, centers, third_limit=_THIRD_DISTANCE_ROW_LIMIT
                )
                assignment[recompute] = r_assignment
                codes[recompute] = r_assignment[:, None] * points.shape[1] + coordinate_offsets
                second_ids[recompute] = r_sids
                new_second = np.sqrt(r_second) * (1.0 - _BOUND_SAFETY)
                base_second[recompute] = new_second
                eroded[recompute] = new_second
                base_third[recompute] = np.where(
                    np.isfinite(r_third), np.sqrt(r_third) * (1.0 - _BOUND_SAFETY), new_second
                )
                epoch[recompute] = iterations
                # Per-point kernel rows are bit-stable under subsetting, so only
                # the re-assigned rows of the cost basis need refreshing.
                squared[recompute] = assigned_squared_distances(
                    block, centers, assignment[recompute]
                )
                recomputed += recompute.size
            cost = float(np.dot(weights, squared))
            if _converged(previous_cost, cost, tolerance):
                converged = True
                break
            previous_cost = cost
    _obs.counter_add("lloyd.iterations", float(iterations))
    _obs.counter_add("lloyd.recomputed_rows", float(recomputed))
    fraction = recomputed / float(n * iterations) if iterations else 0.0
    return KMeansResult(
        centers=centers,
        assignment=assignment,
        cost=cost,
        iterations=iterations,
        converged=converged,
        recompute_fraction=fraction,
    )


_ENGINES = {"pruned": _run_pruned, "naive": _run_naive}


def kmeans(
    points: np.ndarray,
    k: int,
    *,
    weights: Optional[np.ndarray] = None,
    max_iterations: int = 50,
    tolerance: float = 1e-4,
    initial_centers: Optional[np.ndarray] = None,
    algorithm: str = "pruned",
    seed: SeedLike = None,
) -> KMeansResult:
    """Weighted k-means via k-means++ seeding followed by Lloyd iterations.

    Parameters
    ----------
    points:
        Array of shape ``(n, d)`` — typically a coreset when used as the
        paper's downstream task.
    k:
        Number of clusters.
    weights:
        Optional non-negative point weights (coreset weights).
    max_iterations:
        Cap on Lloyd iterations.
    tolerance:
        Relative cost-improvement threshold below which the run is declared
        converged.
    initial_centers:
        Explicit starting centers; when given, seeding is skipped.  Table 8
        of the paper compares samplers under *identical* initialisations,
        which this parameter makes possible.
    algorithm:
        ``"pruned"`` (default) for the Hamerly-bounded engine, ``"naive"``
        for the full-recompute loop.  Both produce bit-identical results
        (see the module docstring); the naive engine is kept for the
        equivalence tests and the perf harness.
    seed:
        Randomness for seeding and empty-cluster repair.
    """
    points = check_points(points)
    n = points.shape[0]
    k = check_integer(k, name="k")
    weights = check_weights(weights, n)
    generator = as_generator(seed)
    if algorithm not in _ENGINES:
        raise ValueError(
            f"algorithm must be one of {sorted(_ENGINES)}, got {algorithm!r}"
        )

    if initial_centers is not None:
        centers = np.asarray(initial_centers, dtype=np.float64).copy()
        if centers.ndim != 2 or centers.shape[1] != points.shape[1]:
            raise ValueError("initial_centers must be a (k, d) array matching the data dimension")
    else:
        centers = kmeans_plus_plus(points, min(k, n), weights=weights, z=2, seed=generator).centers

    with _obs.span("lloyd.run", algorithm=algorithm, n=n, k=int(k)) as run_span:
        result = _ENGINES[algorithm](
            points, weights, centers, max_iterations, tolerance, generator
        )
        run_span.annotate(
            iterations=result.iterations,
            converged=bool(result.converged),
            recompute_fraction=float(result.recompute_fraction),
        )
    return result

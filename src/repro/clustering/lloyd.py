"""Weighted Lloyd's algorithm for k-means.

Lloyd's algorithm [49] alternates between assigning every point to its
nearest center and moving every center to the (weighted) mean of its
assigned points.  The paper uses it as the *downstream* clustering task: the
quality of a compression is judged by running k-means++ seeding followed by
Lloyd iterations on the coreset and evaluating the resulting centers on the
full dataset (Table 8).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.clustering.cost import ClusteringSolution
from repro.clustering.kmeans_pp import kmeans_plus_plus
from repro.geometry.distances import squared_point_to_set_distances
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_integer, check_points, check_weights


@dataclass
class KMeansResult:
    """Outcome of running Lloyd's algorithm.

    Attributes
    ----------
    centers:
        Final centers of shape ``(k, d)``.
    assignment:
        Nearest-center index for every input point.
    cost:
        Weighted k-means cost of the final solution.
    iterations:
        Number of Lloyd iterations actually performed.
    converged:
        ``True`` when the relative cost improvement dropped below the
        tolerance before the iteration cap was reached.
    """

    centers: np.ndarray
    assignment: np.ndarray
    cost: float
    iterations: int
    converged: bool

    def as_solution(self) -> ClusteringSolution:
        """View the result as a generic :class:`ClusteringSolution`."""
        return ClusteringSolution(
            centers=self.centers, assignment=self.assignment, cost=self.cost, z=2
        )


def lloyd_iteration(
    points: np.ndarray,
    centers: np.ndarray,
    weights: np.ndarray,
    generator: np.random.Generator,
) -> np.ndarray:
    """One Lloyd step: assign to nearest centers, then recompute weighted means.

    Empty clusters are re-seeded at the point currently farthest from its
    assigned center, the standard practical fix that keeps exactly ``k``
    centers alive.
    """
    squared, assignment = squared_point_to_set_distances(points, centers)
    k = centers.shape[0]
    new_centers = centers.copy()
    counts = np.bincount(assignment, weights=weights, minlength=k)
    sums = np.zeros_like(centers)
    np.add.at(sums, assignment, weights[:, None] * points)
    occupied = counts > 0
    new_centers[occupied] = sums[occupied] / counts[occupied, None]
    empty = np.flatnonzero(~occupied)
    if empty.size:
        # Re-seed each empty cluster at a far-away point (weighted by cost).
        mass = weights * squared
        total = mass.sum()
        if total <= 0:
            replacement = generator.choice(points.shape[0], size=empty.size, replace=True)
        else:
            replacement = generator.choice(
                points.shape[0], size=empty.size, replace=True, p=mass / total
            )
        new_centers[empty] = points[replacement]
    return new_centers


def kmeans(
    points: np.ndarray,
    k: int,
    *,
    weights: Optional[np.ndarray] = None,
    max_iterations: int = 50,
    tolerance: float = 1e-4,
    initial_centers: Optional[np.ndarray] = None,
    seed: SeedLike = None,
) -> KMeansResult:
    """Weighted k-means via k-means++ seeding followed by Lloyd iterations.

    Parameters
    ----------
    points:
        Array of shape ``(n, d)`` — typically a coreset when used as the
        paper's downstream task.
    k:
        Number of clusters.
    weights:
        Optional non-negative point weights (coreset weights).
    max_iterations:
        Cap on Lloyd iterations.
    tolerance:
        Relative cost-improvement threshold below which the run is declared
        converged.
    initial_centers:
        Explicit starting centers; when given, seeding is skipped.  Table 8
        of the paper compares samplers under *identical* initialisations,
        which this parameter makes possible.
    seed:
        Randomness for seeding and empty-cluster repair.
    """
    points = check_points(points)
    n = points.shape[0]
    k = check_integer(k, name="k")
    weights = check_weights(weights, n)
    generator = as_generator(seed)

    if initial_centers is not None:
        centers = np.asarray(initial_centers, dtype=np.float64).copy()
        if centers.ndim != 2 or centers.shape[1] != points.shape[1]:
            raise ValueError("initial_centers must be a (k, d) array matching the data dimension")
    else:
        centers = kmeans_plus_plus(points, min(k, n), weights=weights, z=2, seed=generator).centers

    previous_cost = np.inf
    cost = np.inf
    assignment = np.zeros(n, dtype=np.int64)
    converged = False
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        centers = lloyd_iteration(points, centers, weights, generator)
        squared, assignment = squared_point_to_set_distances(points, centers)
        cost = float(np.dot(weights, squared))
        if previous_cost < np.inf and previous_cost - cost <= tolerance * max(previous_cost, 1e-12):
            converged = True
            break
        previous_cost = cost

    return KMeansResult(
        centers=centers,
        assignment=assignment,
        cost=cost,
        iterations=iterations,
        converged=converged,
    )

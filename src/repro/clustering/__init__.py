"""Clustering substrates: cost functions, seeding, and Lloyd-style solvers.

These are the building blocks the coreset constructions in :mod:`repro.core`
rely on: the weighted k-means / k-median cost (``cost_z``), D²-sampling
(k-means++) seeding, the quadtree-based ``Fast-kmeans++`` bicriteria solver,
Lloyd's algorithm and a Weiszfeld-based k-median refinement.
"""

from repro.clustering.cost import (
    ClusteringSolution,
    assign_points,
    clustering_cost,
    cost_to_assigned_centers,
)
from repro.clustering.fast_kmeans_pp import FastKMeansPlusPlus, fast_kmeans_plus_plus
from repro.clustering.kmeans_pp import bicriteria_kmeans_pp, kmeans_plus_plus
from repro.clustering.kmedian import geometric_median, kmedian
from repro.clustering.lloyd import KMeansResult, kmeans, lloyd_iteration

__all__ = [
    "ClusteringSolution",
    "assign_points",
    "clustering_cost",
    "cost_to_assigned_centers",
    "FastKMeansPlusPlus",
    "fast_kmeans_plus_plus",
    "bicriteria_kmeans_pp",
    "kmeans_plus_plus",
    "geometric_median",
    "kmedian",
    "KMeansResult",
    "kmeans",
    "lloyd_iteration",
]

"""Quadtree-based ``Fast-kmeans++`` seeding.

The bottleneck of classical k-means++ is that after every newly selected
center the distance of all ``n`` points to that center must be computed,
giving ``Theta(ndk)`` total work.  Cohen-Addad et al. [23] avoid this by
performing the seeding in a quadtree (hierarchically separated tree) metric:
the distance between two points is determined solely by the deepest tree
level at which they share a cell, so the per-center update only has to touch
the points lying in the new center's cells — and each point's best distance
can only ever shrink, which bounds the total update work.

This module implements that practical variant (see DESIGN.md for the
substitution note).  Following [23], *several* independently shifted trees
are used and a point's distance to a center is the minimum over the trees:
a single random shift frequently separates close points at a shallow level
(the classic failure mode of quadtree metrics in higher dimensions), while
the minimum over a few independent shifts is sharply concentrated.  Seeding
probabilities and point-to-center assignments are maintained in this
multi-tree metric, yielding an ``O(d^z log k)``-approximate assignment
(Lemma 3.1 of [23]) whose runtime is governed by ``n log Delta`` rather than
``n k``.  That assignment is exactly what Algorithm 1 (the Fast-Coreset
construction) consumes.

Execution notes
---------------
The hot loop is vectorized around the quadtree's CSR cell storage
(:mod:`repro.geometry.quadtree`): every ``register_center`` update reads one
contiguous member slice per level and applies a masked minimum, and the
per-tree level-to-distance mapping is a precomputed table lookup.  When the
compiled tier is enabled the whole per-level sweep dispatches to the fused
``fkpp_level_score`` kernel (:mod:`repro.native`), which performs the same
gather/compare/scatter in one pass — bit-identical stores, so draws,
assignments, and downstream coresets are unchanged between dispatch modes
(``REPRO_NATIVE=0`` keeps the inline numpy sweep).  The
spread estimate is computed once per fit and shared by every tree (or passed
in by the caller, e.g. :class:`repro.core.fast_coreset.FastCoreset` reusing
its spread-reduction diagnostic).

The D²-sampling mass is maintained *incrementally*: after each center the
invariant ``mass[i] == weights[i] * best_distance[i] ** z`` is restored by
rewriting only the entries whose best distance shrank, and each draw is a
cumulative sum plus one ``searchsorted`` binary search instead of
``generator.choice`` over a freshly normalised length-``n`` probability
vector.  The draw mechanism consumes the generator differently from the
seed implementation, so fixed-seed outputs differ from the seed revision —
but the selection law is unchanged (``Pr[i] = mass[i] / total``), which the
distributional tests in ``tests/test_rng.py`` and
``tests/test_perf_scaling.py`` cover.  Same-seed runs of *this*
implementation remain exactly reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro import observability as _obs
from repro.clustering.cost import ClusteringSolution, cost_to_assigned_centers
from repro.geometry.quadtree import QuadtreeEmbedding, compute_spread
from repro.native import get_kernel
from repro.utils.rng import SeedLike, as_generator, weighted_index_draw
from repro.utils.validation import check_integer, check_points, check_power, check_weights

@dataclass
class FastKMeansPlusPlus:
    """Tree-metric D²-sampling with incremental level-wise assignment updates.

    Parameters
    ----------
    k:
        Number of centers to select.
    z:
        Cost exponent: 1 for k-median, 2 for k-means.
    n_trees:
        Number of independently shifted quadtrees; the point-to-center
        distance is the minimum over the trees.  More trees give a sharper
        (less over-estimating) metric at a proportional construction cost.
    max_levels:
        Depth cap forwarded to each quadtree embedding.
    spread:
        Optional precomputed spread estimate shared by all trees; ``None``
        computes it once per :meth:`fit` (never once per tree).
    seed:
        Randomness for the quadtree shifts and the sampling.

    Attributes
    ----------
    trees_:
        The fitted :class:`~repro.geometry.quadtree.QuadtreeEmbedding` objects.
    center_indices_:
        Indices (into the input) of the selected centers.
    tree_distances_:
        For every point, the multi-tree distance to its assigned center at
        the end of the seeding.
    """

    k: int
    z: int = 2
    n_trees: int = 3
    max_levels: int = 32
    spread: Optional[float] = None
    seed: SeedLike = None
    trees_: List[QuadtreeEmbedding] = field(default_factory=list, init=False, repr=False)
    center_indices_: Optional[np.ndarray] = field(default=None, init=False, repr=False)
    tree_distances_: Optional[np.ndarray] = field(default=None, init=False, repr=False)

    def fit(
        self,
        points: np.ndarray,
        *,
        weights: Optional[np.ndarray] = None,
    ) -> ClusteringSolution:
        """Run the seeding and return centers plus the tree-metric assignment.

        The returned :class:`ClusteringSolution` carries the assignment the
        seeding maintained in the (multi-)tree metric — not the Euclidean
        nearest-center assignment — together with the Euclidean cost of that
        assignment; this is the ``O(polylog k)``-approximate assignment that
        Fact 3.1 of the paper requires.
        """
        points = check_points(points)
        n = points.shape[0]
        self.k = check_integer(self.k, name="k")
        self.z = check_power(self.z)
        self.n_trees = check_integer(self.n_trees, name="n_trees")
        self.max_levels = check_integer(self.max_levels, name="max_levels")
        weights = check_weights(weights, n)
        generator = as_generator(self.seed)

        if self.k >= n:
            centers = points.copy()
            assignment = np.arange(n, dtype=np.int64)
            self.center_indices_ = assignment.copy()
            return ClusteringSolution(centers=centers, assignment=assignment, cost=0.0, z=self.z)

        spread = float(self.spread) if self.spread is not None else compute_spread(points, seed=generator)
        with _obs.span("fastkpp.tree_fits", trees=self.n_trees, n=n):
            self.trees_ = [
                QuadtreeEmbedding(max_levels=self.max_levels, seed=generator, spread=spread).fit(points)
                for _ in range(self.n_trees)
            ]
        # Per-tree lookup: tree distance as a function of the deepest shared
        # level (index ``level + 1`` so level -1 maps to slot 0), precomputed
        # by the embedding at fit time.
        level_distances = [tree.level_distance_table_ for tree in self.trees_]
        level_cell_ids = [tree.level_cell_ids_ for tree in self.trees_]

        best_distance = np.full(n, np.inf, dtype=np.float64)
        assignment = np.full(n, -1, dtype=np.int64)
        center_indices = np.empty(self.k, dtype=np.int64)
        # D²-sampling mass, kept in lockstep with ``best_distance`` (the
        # invariant mass[i] == weights[i] * best_distance[i] ** z holds after
        # every ``register_center`` once the first center is placed).  The
        # backing store is preallocated so the bound kernel sweeps below can
        # capture its pointer before the first center exists; ``mass`` stays
        # ``None`` until then and the kernel never reads the store while
        # ``has_mass`` is false.
        mass: Optional[np.ndarray] = None
        mass_values = np.empty(n, dtype=np.float64)
        z = self.z
        # Compiled-tier sweep closures: one fused kernel call per
        # (tree, center) replaces the per-level numpy sweeps.  The
        # provider's ``bind`` wraps the tree's own per-level CSR arrays
        # (no concatenated copies) and the kernel resolves the center's
        # cell at every level itself, so the per-center Python cost is a
        # single four-scalar call.  The per-level ``candidate ** z`` table
        # is raised element by element on the same np.float64 scalars the
        # numpy sweep raises, so the kernel's mass stores are the
        # identical doubles in either dispatch mode.
        level_kernel = get_kernel("fkpp_level_score")
        sweeps = {"native": 0, "numpy": 0}
        tree_sweeps = []
        binder = getattr(level_kernel, "bind", None) if level_kernel is not None else None
        if binder is not None:
            kernel_weights = np.ascontiguousarray(weights)
            for tree, distances in zip(self.trees_, level_distances):
                table = np.ascontiguousarray(distances, dtype=np.float64)
                czs = np.array(
                    [np.float64(v) ** self.z for v in distances],
                    dtype=np.float64,
                )
                tree_sweeps.append(
                    binder(
                        [np.ascontiguousarray(a, dtype=np.int64) for a in tree.level_order_],
                        [np.ascontiguousarray(a, dtype=np.int64) for a in tree.level_offsets_],
                        [np.ascontiguousarray(a, dtype=np.int64) for a in tree.level_cell_ids_],
                        n, table, czs, best_distance, assignment,
                        mass_values, kernel_weights,
                    )
                )
        # Compiled-tier D²-sampling draw over the preallocated mass store:
        # the kernel replays the numpy path's two observable steps — the
        # sequential cumsum total, then (only once the total proves finite
        # and positive, so the RNG stream advances exactly like the
        # fallback's) the first-prefix-above-u scan, which equals
        # ``searchsorted(cumsum, u, side="right")`` because D² mass is
        # non-negative.  Every partial sum is the same IEEE add chain, so
        # the drawn index is bit-identical in either dispatch mode.
        draw_total = draw_scan = None
        draw_kernel = get_kernel("fkpp_weighted_draw")
        draw_binder = getattr(draw_kernel, "bind", None) if draw_kernel is not None else None
        if draw_binder is not None:
            draw_total, draw_scan = draw_binder(mass_values)
        draws = {"native": 0, "numpy": 0}

        def draw_mass_index() -> int:
            """One D² draw from ``mass`` (== ``weighted_index_draw``)."""
            if draw_total is not None:
                draws["native"] += 1
                total = draw_total()
                if not np.isfinite(total) or total <= 0.0:
                    return -1
                return min(draw_scan(generator.random() * total), n - 1)
            draws["numpy"] += 1
            return weighted_index_draw(generator, mass)

        def register_center(center_slot: int, center_point: int) -> None:
            """Shrink per-point distances given the newly selected center.

            For every tree the levels are scanned from deepest to shallowest;
            the scan stops as soon as the level's implied distance can no
            longer improve any point (it only grows toward the root), which
            is what keeps the total update work bounded.  Improved entries
            have their sampling mass rewritten in place — never the full
            array — so the per-center cost is proportional to the number of
            points that actually moved, not to ``n``.  With the compiled
            tier enabled the whole per-tree sweep — level loop, ceiling
            break, gather/compare/scatter — runs as one fused kernel call
            on the precomputed sweep plan.
            """
            ceiling = float(best_distance.max())
            if tree_sweeps:
                has_mass = mass is not None
                for sweep in tree_sweeps:
                    sweeps["native"] += 1
                    sweep(ceiling, center_slot, center_point, has_mass)
            else:
                for tree, distances, cell_ids in zip(self.trees_, level_distances, level_cell_ids):
                    for level in range(tree.depth - 1, -1, -1):
                        candidate = distances[level + 1]
                        if candidate >= ceiling and np.isfinite(ceiling):
                            break
                        members = tree.points_in_cell(level, cell_ids[level][center_point])
                        if members.size == 0:
                            continue
                        sweeps["numpy"] += 1
                        improved = members[best_distance[members] > candidate]
                        if improved.size == 0:
                            continue
                        best_distance[improved] = candidate
                        assignment[improved] = center_slot
                        if mass is not None:
                            mass[improved] = weights[improved] * candidate**z
            # Points beyond every center's cells at every level fall back to
            # the root distance of the first tree (covers the first center).
            unassigned = assignment < 0
            if np.any(unassigned):
                fallback = level_distances[0][0]
                best_distance[unassigned] = np.minimum(best_distance[unassigned], fallback)
                assignment[unassigned] = center_slot
                if mass is not None:
                    mass[unassigned] = weights[unassigned] * best_distance[unassigned] ** z

        with _obs.span("fastkpp.seeding", k=self.k, n=n):
            first = weighted_index_draw(generator, weights)
            if first < 0:
                first = int(generator.integers(0, n))
            center_indices[0] = first
            with _obs.span("fastkpp.round", slot=0):
                register_center(0, first)
            np.multiply(weights, best_distance**z, out=mass_values)
            mass = mass_values

            for slot in range(1, self.k):
                chosen = draw_mass_index()
                if chosen < 0:
                    chosen = int(generator.integers(0, n))
                center_indices[slot] = chosen
                with _obs.span("fastkpp.round", slot=slot):
                    register_center(slot, chosen)
            _obs.counter_add("fastkpp.rounds", float(self.k))
            # Per-kernel dispatch attribution for --trace/--metrics: how
            # many level sweeps the compiled kernel absorbed this fit.
            if sweeps["native"]:
                _obs.counter_add("fastkpp.level_score.native", float(sweeps["native"]))
            if sweeps["numpy"]:
                _obs.counter_add("fastkpp.level_score.numpy", float(sweeps["numpy"]))
            if draws["native"]:
                _obs.counter_add("fastkpp.draw.native", float(draws["native"]))
            if draws["numpy"]:
                _obs.counter_add("fastkpp.draw.numpy", float(draws["numpy"]))

        self.center_indices_ = center_indices
        self.tree_distances_ = best_distance
        centers = points[center_indices]
        euclidean_cost = cost_to_assigned_centers(points, centers, assignment, weights=weights, z=self.z)
        return ClusteringSolution(centers=centers, assignment=assignment, cost=euclidean_cost, z=self.z)


def fast_kmeans_plus_plus(
    points: np.ndarray,
    k: int,
    *,
    z: int = 2,
    weights: Optional[np.ndarray] = None,
    n_trees: int = 3,
    max_levels: int = 32,
    spread: Optional[float] = None,
    seed: SeedLike = None,
) -> ClusteringSolution:
    """Functional wrapper around :class:`FastKMeansPlusPlus`.

    Parameters
    ----------
    points:
        Array of shape ``(n, d)``.  For high-dimensional data the caller is
        expected to apply Johnson–Lindenstrauss reduction first, as
        Algorithm 1 of the paper does.
    k:
        Number of centers.
    z:
        1 for k-median, 2 for k-means.
    weights:
        Optional non-negative point weights.
    n_trees:
        Number of independently shifted quadtrees (minimum distance is used).
    max_levels:
        Quadtree depth cap.
    spread:
        Optional precomputed spread estimate shared by all trees (see
        :class:`FastKMeansPlusPlus`).
    seed:
        Randomness source.
    """
    solver = FastKMeansPlusPlus(
        k=k, z=z, n_trees=n_trees, max_levels=max_levels, spread=spread, seed=seed
    )
    return solver.fit(points, weights=weights)

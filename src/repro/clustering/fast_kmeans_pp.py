"""Quadtree-based ``Fast-kmeans++`` seeding.

The bottleneck of classical k-means++ is that after every newly selected
center the distance of all ``n`` points to that center must be computed,
giving ``Theta(ndk)`` total work.  Cohen-Addad et al. [23] avoid this by
performing the seeding in a quadtree (hierarchically separated tree) metric:
the distance between two points is determined solely by the deepest tree
level at which they share a cell, so the per-center update only has to touch
the points lying in the new center's cells — and each point's best distance
can only ever shrink, which bounds the total update work.

This module implements that practical variant (see DESIGN.md for the
substitution note).  Following [23], *several* independently shifted trees
are used and a point's distance to a center is the minimum over the trees:
a single random shift frequently separates close points at a shallow level
(the classic failure mode of quadtree metrics in higher dimensions), while
the minimum over a few independent shifts is sharply concentrated.  Seeding
probabilities and point-to-center assignments are maintained in this
multi-tree metric, yielding an ``O(d^z log k)``-approximate assignment
(Lemma 3.1 of [23]) whose runtime is governed by ``n log Delta`` rather than
``n k``.  That assignment is exactly what Algorithm 1 (the Fast-Coreset
construction) consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.clustering.cost import ClusteringSolution, cost_to_assigned_centers
from repro.geometry.quadtree import QuadtreeEmbedding
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_integer, check_points, check_power, check_weights


@dataclass
class FastKMeansPlusPlus:
    """Tree-metric D²-sampling with incremental level-wise assignment updates.

    Parameters
    ----------
    k:
        Number of centers to select.
    z:
        Cost exponent: 1 for k-median, 2 for k-means.
    n_trees:
        Number of independently shifted quadtrees; the point-to-center
        distance is the minimum over the trees.  More trees give a sharper
        (less over-estimating) metric at a proportional construction cost.
    max_levels:
        Depth cap forwarded to each quadtree embedding.
    seed:
        Randomness for the quadtree shifts and the sampling.

    Attributes
    ----------
    trees_:
        The fitted :class:`~repro.geometry.quadtree.QuadtreeEmbedding` objects.
    center_indices_:
        Indices (into the input) of the selected centers.
    tree_distances_:
        For every point, the multi-tree distance to its assigned center at
        the end of the seeding.
    """

    k: int
    z: int = 2
    n_trees: int = 3
    max_levels: int = 32
    seed: SeedLike = None
    trees_: List[QuadtreeEmbedding] = field(default_factory=list, init=False, repr=False)
    center_indices_: Optional[np.ndarray] = field(default=None, init=False, repr=False)
    tree_distances_: Optional[np.ndarray] = field(default=None, init=False, repr=False)

    def fit(
        self,
        points: np.ndarray,
        *,
        weights: Optional[np.ndarray] = None,
    ) -> ClusteringSolution:
        """Run the seeding and return centers plus the tree-metric assignment.

        The returned :class:`ClusteringSolution` carries the assignment the
        seeding maintained in the (multi-)tree metric — not the Euclidean
        nearest-center assignment — together with the Euclidean cost of that
        assignment; this is the ``O(polylog k)``-approximate assignment that
        Fact 3.1 of the paper requires.
        """
        points = check_points(points)
        n = points.shape[0]
        self.k = check_integer(self.k, name="k")
        self.z = check_power(self.z)
        check_integer(self.n_trees, name="n_trees")
        weights = check_weights(weights, n)
        generator = as_generator(self.seed)

        if self.k >= n:
            centers = points.copy()
            assignment = np.arange(n, dtype=np.int64)
            self.center_indices_ = assignment.copy()
            return ClusteringSolution(centers=centers, assignment=assignment, cost=0.0, z=self.z)

        self.trees_ = [
            QuadtreeEmbedding(max_levels=self.max_levels, seed=generator).fit(points)
            for _ in range(self.n_trees)
        ]
        # Per-tree lookup: tree distance as a function of the deepest shared
        # level (index ``level + 1`` so level -1 maps to slot 0).
        level_distances = [
            np.array(
                [tree.distance_from_shared_level(level) for level in range(-1, tree.depth)],
                dtype=np.float64,
            )
            for tree in self.trees_
        ]

        best_distance = np.full(n, np.inf, dtype=np.float64)
        assignment = np.full(n, -1, dtype=np.int64)
        center_indices = np.empty(self.k, dtype=np.int64)

        def register_center(center_slot: int, center_point: int) -> None:
            """Shrink per-point distances given the newly selected center.

            For every tree the levels are scanned from deepest to shallowest;
            the scan stops as soon as the level's implied distance can no
            longer improve any point (it only grows toward the root), which
            is what keeps the total update work bounded.
            """
            ceiling = float(best_distance.max())
            for tree, distances in zip(self.trees_, level_distances):
                for level in range(tree.depth - 1, -1, -1):
                    candidate = distances[level + 1]
                    if candidate >= ceiling and np.isfinite(ceiling):
                        break
                    members = tree.points_in_cell(level, tree.cell_of(center_point, level))
                    if members.size == 0:
                        continue
                    improved = members[best_distance[members] > candidate]
                    if improved.size == 0:
                        continue
                    best_distance[improved] = candidate
                    assignment[improved] = center_slot
            # Points beyond every center's cells at every level fall back to
            # the root distance of the first tree (covers the first center).
            unassigned = assignment < 0
            if np.any(unassigned):
                fallback = level_distances[0][0]
                best_distance[unassigned] = np.minimum(best_distance[unassigned], fallback)
                assignment[unassigned] = center_slot

        total_weight = weights.sum()
        if total_weight > 0:
            first = int(generator.choice(n, p=weights / total_weight))
        else:
            first = int(generator.integers(0, n))
        center_indices[0] = first
        register_center(0, first)

        for slot in range(1, self.k):
            mass = weights * (best_distance**self.z)
            total = mass.sum()
            if total <= 0 or not np.isfinite(total):
                chosen = int(generator.integers(0, n))
            else:
                chosen = int(generator.choice(n, p=mass / total))
            center_indices[slot] = chosen
            register_center(slot, chosen)

        self.center_indices_ = center_indices
        self.tree_distances_ = best_distance
        centers = points[center_indices]
        euclidean_cost = cost_to_assigned_centers(points, centers, assignment, weights=weights, z=self.z)
        return ClusteringSolution(centers=centers, assignment=assignment, cost=euclidean_cost, z=self.z)


def fast_kmeans_plus_plus(
    points: np.ndarray,
    k: int,
    *,
    z: int = 2,
    weights: Optional[np.ndarray] = None,
    n_trees: int = 3,
    max_levels: int = 32,
    seed: SeedLike = None,
) -> ClusteringSolution:
    """Functional wrapper around :class:`FastKMeansPlusPlus`.

    Parameters
    ----------
    points:
        Array of shape ``(n, d)``.  For high-dimensional data the caller is
        expected to apply Johnson–Lindenstrauss reduction first, as
        Algorithm 1 of the paper does.
    k:
        Number of centers.
    z:
        1 for k-median, 2 for k-means.
    weights:
        Optional non-negative point weights.
    n_trees:
        Number of independently shifted quadtrees (minimum distance is used).
    max_levels:
        Quadtree depth cap.
    seed:
        Randomness source.
    """
    solver = FastKMeansPlusPlus(k=k, z=z, n_trees=n_trees, max_levels=max_levels, seed=seed)
    return solver.fit(points, weights=weights)

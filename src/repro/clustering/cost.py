"""Weighted k-means / k-median cost functions.

The paper works with the generalised cost

``cost_z(P, C) = sum_{p in P} w_p * dist(p, C)^z``

where ``z = 1`` yields k-median and ``z = 2`` yields k-means (Section 2.1).
Everything downstream — sensitivity scores, coreset distortion, downstream
solution quality — is phrased in terms of this single function, so it lives
here as the one shared implementation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.geometry.distances import squared_point_to_set_distances
from repro.utils.validation import check_points, check_power, check_weights


@dataclass
class ClusteringSolution:
    """A set of centers together with bookkeeping about how it was obtained.

    Attributes
    ----------
    centers:
        Array of shape ``(k, d)``.
    assignment:
        Optional length-``n`` array mapping each input point to its assigned
        center.  For bicriteria or tree-metric solvers the assignment may
        differ from the true nearest-center assignment; the coreset
        constructions only require it to be an ``O(polylog k)``-approximate
        assignment (Fact 3.1).
    cost:
        The ``cost_z`` value of the assignment on the data it was computed
        for, when known.
    z:
        Cost exponent the solution targets (1 = k-median, 2 = k-means).
    """

    centers: np.ndarray
    assignment: Optional[np.ndarray] = None
    cost: Optional[float] = None
    z: int = 2

    @property
    def k(self) -> int:
        """Number of centers."""
        return int(self.centers.shape[0])


def assign_points(points: np.ndarray, centers: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Assign every point to its nearest center.

    Returns
    -------
    (distances, assignment):
        Plain Euclidean distances to the nearest center and the index of
        that center, both of length ``n``.
    """
    squared, assignment = squared_point_to_set_distances(points, centers)
    return np.sqrt(squared), assignment


def clustering_cost(
    points: np.ndarray,
    centers: np.ndarray,
    *,
    weights: Optional[np.ndarray] = None,
    z: int = 2,
) -> float:
    """Evaluate ``cost_z`` of a center set on a (weighted) point set.

    Parameters
    ----------
    points:
        Array of shape ``(n, d)``.
    centers:
        Array of shape ``(k, d)``.
    weights:
        Optional non-negative point weights (coreset weights); defaults to
        ones.
    z:
        1 for k-median, 2 for k-means.
    """
    points = check_points(points)
    z = check_power(z)
    weights = check_weights(weights, points.shape[0])
    squared, _ = squared_point_to_set_distances(points, centers)
    if z == 2:
        per_point = squared
    else:
        per_point = np.sqrt(squared)
    return float(np.dot(weights, per_point))


def cost_to_assigned_centers(
    points: np.ndarray,
    centers: np.ndarray,
    assignment: np.ndarray,
    *,
    weights: Optional[np.ndarray] = None,
    z: int = 2,
) -> float:
    """Evaluate ``cost_z`` under a *given* assignment (not nearest-center).

    Bicriteria solvers such as ``Fast-kmeans++`` return an assignment that is
    only approximately optimal; the sensitivity scores of Algorithm 1 are
    computed with respect to that assignment, so the cost must be evaluated
    the same way.
    """
    points = check_points(points)
    z = check_power(z)
    weights = check_weights(weights, points.shape[0])
    assignment = np.asarray(assignment, dtype=np.int64)
    if assignment.shape[0] != points.shape[0]:
        raise ValueError("assignment must have one entry per point")
    deltas = points - centers[assignment]
    squared = np.einsum("ij,ij->i", deltas, deltas)
    per_point = squared if z == 2 else np.sqrt(squared)
    return float(np.dot(weights, per_point))


def per_point_costs(
    points: np.ndarray,
    centers: np.ndarray,
    *,
    z: int = 2,
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-point ``dist(p, C)^z`` and the nearest-center assignment.

    This is the quantity that drives sensitivity sampling: the importance of
    a point is proportional to its share of the total cost plus a term
    inversely proportional to its cluster size (equation (1) of the paper).
    """
    z = check_power(z)
    squared, assignment = squared_point_to_set_distances(points, centers)
    costs = squared if z == 2 else np.sqrt(squared)
    return costs, assignment


def cluster_sizes(assignment: np.ndarray, k: int, weights: Optional[np.ndarray] = None) -> np.ndarray:
    """Total (weighted) mass assigned to each of ``k`` clusters."""
    assignment = np.asarray(assignment, dtype=np.int64)
    weights = check_weights(weights, assignment.shape[0])
    return np.bincount(assignment, weights=weights, minlength=k).astype(np.float64)

"""k-means++ seeding (D²-sampling) and its bicriteria variant.

Arthur and Vassilvitskii's k-means++ [2] selects centers one at a time, each
with probability proportional to the current squared distance (or plain
distance for k-median) to the already-selected centers.  It yields an
``O(log k)``-approximation in expectation and is the standard initial
solution for sensitivity sampling; the paper's complexity discussion points
out that its ``Theta(nk)`` assignment cost is exactly what Fast-Coresets
avoid via the quadtree.

The bicriteria variant simply draws ``beta * k`` centers, which sharpens the
approximation factor to a constant in the ``(alpha, beta)`` bicriteria sense
used by Fact 3.1.

Execution notes
---------------
The running minimum squared distance to the selected centers is maintained
across rounds (:func:`~repro.geometry.distances.update_nearest_with_new_center`
touches only the newest center), and each D²-draw goes through
:func:`~repro.utils.rng.weighted_index_draw` — a cumulative sum plus one
binary search — instead of ``generator.choice`` over a freshly normalised
length-``n`` probability vector.  The selection law is unchanged; only the
uniform-stream consumption (and therefore fixed-seed outputs relative to the
seed revision) differs.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.clustering.cost import ClusteringSolution
from repro.geometry.distances import update_nearest_with_new_center
from repro.utils.rng import SeedLike, as_generator, weighted_index_draw, weighted_index_draws
from repro.utils.validation import check_integer, check_points, check_power, check_weights


def _sampling_weights(best_squared: np.ndarray, weights: np.ndarray, z: int) -> np.ndarray:
    """Per-point selection mass for the next D^z-sampling draw."""
    if z == 2:
        mass = best_squared
    else:
        mass = np.sqrt(best_squared)
    return weights * mass


def kmeans_plus_plus(
    points: np.ndarray,
    k: int,
    *,
    weights: Optional[np.ndarray] = None,
    z: int = 2,
    seed: SeedLike = None,
) -> ClusteringSolution:
    """Select ``k`` centers by D²-sampling (D¹ for k-median).

    Parameters
    ----------
    points:
        Array of shape ``(n, d)``.
    k:
        Number of centers to select.  If ``k >= n`` every point becomes a
        center.
    weights:
        Optional point weights; with a weighted input (e.g. when clustering a
        coreset) both the selection probabilities and the reported cost
        respect the weights.
    z:
        1 for k-median, 2 for k-means.
    seed:
        Randomness source.

    Returns
    -------
    ClusteringSolution
        Centers, the nearest-center assignment, and the resulting cost.
    """
    points = check_points(points)
    n = points.shape[0]
    k = check_integer(k, name="k")
    z = check_power(z)
    weights = check_weights(weights, n)
    generator = as_generator(seed)

    if k >= n:
        centers = points.copy()
        assignment = np.arange(n, dtype=np.int64)
        return ClusteringSolution(centers=centers, assignment=assignment, cost=0.0, z=z)

    center_indices = np.empty(k, dtype=np.int64)
    # The first center is drawn proportionally to the input weights, the
    # weighted analogue of k-means++'s uniform first pick.
    first = weighted_index_draw(generator, weights)
    if first < 0:
        first = int(generator.integers(0, n))
    center_indices[0] = first
    best_squared, assignment = update_nearest_with_new_center(points, points[first], None, None, 0)

    for index in range(1, k):
        mass = _sampling_weights(best_squared, weights, z)
        chosen = weighted_index_draw(generator, mass)
        if chosen < 0:
            # All remaining points coincide with existing centers; fall back
            # to uniform selection among the points.
            chosen = int(generator.integers(0, n))
        center_indices[index] = chosen
        best_squared, assignment = update_nearest_with_new_center(
            points, points[chosen], best_squared, assignment, index
        )

    centers = points[center_indices]
    per_point = best_squared if z == 2 else np.sqrt(best_squared)
    cost = float(np.dot(weights, per_point))
    return ClusteringSolution(centers=centers, assignment=assignment, cost=cost, z=z)


def bicriteria_kmeans_pp(
    points: np.ndarray,
    k: int,
    *,
    beta: float = 2.0,
    weights: Optional[np.ndarray] = None,
    z: int = 2,
    seed: SeedLike = None,
) -> ClusteringSolution:
    """D²-sampling with ``ceil(beta * k)`` centers — an ``(O(1), beta)`` bicriteria solution.

    Oversampling by a constant factor converts k-means++'s ``O(log k)``
    expected approximation into a constant-factor one while keeping the
    ``O(n d beta k)`` runtime, which is the classical route to the
    ``~O(nd + nk)`` sensitivity-sampling pipeline the paper uses as its
    baseline.
    """
    if beta < 1.0:
        raise ValueError(f"beta must be at least 1, got {beta}")
    oversampled = int(np.ceil(beta * k))
    return kmeans_plus_plus(points, oversampled, weights=weights, z=z, seed=seed)


def dsquared_sample(
    points: np.ndarray,
    centers: np.ndarray,
    size: int,
    *,
    weights: Optional[np.ndarray] = None,
    z: int = 2,
    seed: SeedLike = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Draw ``size`` points with probability proportional to ``dist(p, centers)^z``.

    Used by the StreamKM++ coreset tree, which repeatedly D²-samples within
    tree nodes.  Returns the selected indices and their (unnormalised)
    selection mass.
    """
    points = check_points(points)
    z = check_power(z)
    size = check_integer(size, name="size")
    weights = check_weights(weights, points.shape[0])
    generator = as_generator(seed)
    from repro.geometry.distances import squared_point_to_set_distances

    squared, _ = squared_point_to_set_distances(points, centers)
    mass = _sampling_weights(squared, weights, z)
    indices = weighted_index_draws(generator, mass, size)
    if indices is None:
        indices = generator.choice(points.shape[0], size=size, replace=True)
    return np.asarray(indices, dtype=np.int64), mass

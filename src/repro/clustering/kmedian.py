"""k-median solvers: Weiszfeld geometric medians and an alternating heuristic.

Algorithm 1 of the paper needs, for every cluster of the bicriteria
solution, the optimal 1-median (the geometric median) or 1-mean of the
cluster (step 4).  The geometric median has no closed form; Weiszfeld's
iteration converges to it and a constant number of iterations already gives
the constant-factor approximation the coreset analysis requires (the paper
notes a 2-approximation obtainable in constant time suffices).

For the downstream k-median task (Figure 4) we provide an alternating
"k-medians" heuristic analogous to Lloyd's algorithm: assign points to the
nearest center, then move every center to the geometric median of its
cluster.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.clustering.cost import ClusteringSolution
from repro.clustering.kmeans_pp import kmeans_plus_plus
from repro.geometry.distances import squared_point_to_set_distances
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_integer, check_points, check_weights


def geometric_median(
    points: np.ndarray,
    *,
    weights: Optional[np.ndarray] = None,
    max_iterations: int = 50,
    tolerance: float = 1e-7,
) -> np.ndarray:
    """Weighted geometric median via Weiszfeld's iteration.

    Parameters
    ----------
    points:
        Array of shape ``(n, d)``.
    weights:
        Optional non-negative weights.
    max_iterations:
        Iteration cap; the default is far beyond what is needed for the
        constant-factor guarantee used in Algorithm 1.
    tolerance:
        Stop once the step size falls below ``tolerance`` times the current
        scale of the estimate.

    Returns
    -------
    numpy.ndarray
        The median estimate of shape ``(d,)``.
    """
    points = check_points(points)
    weights = check_weights(weights, points.shape[0])
    if points.shape[0] == 1:
        return points[0].copy()
    total = weights.sum()
    if total <= 0:
        return points.mean(axis=0)
    estimate = (weights[:, None] * points).sum(axis=0) / total
    for _ in range(max_iterations):
        deltas = points - estimate[None, :]
        distances = np.sqrt(np.einsum("ij,ij->i", deltas, deltas))
        # Points coinciding with the current estimate get zero distance; the
        # standard Weiszfeld fix is to drop them from the update and check
        # optimality separately.  Clipping achieves the same numerically.
        safe = np.maximum(distances, 1e-12)
        inverse = weights / safe
        denominator = inverse.sum()
        if denominator <= 0:
            break
        updated = (inverse[:, None] * points).sum(axis=0) / denominator
        step = float(np.linalg.norm(updated - estimate))
        estimate = updated
        scale = float(np.linalg.norm(estimate)) + 1e-12
        if step <= tolerance * scale:
            break
    return estimate


@dataclass
class KMedianResult:
    """Outcome of the alternating k-median heuristic."""

    centers: np.ndarray
    assignment: np.ndarray
    cost: float
    iterations: int
    converged: bool

    def as_solution(self) -> ClusteringSolution:
        """View the result as a generic :class:`ClusteringSolution`."""
        return ClusteringSolution(
            centers=self.centers, assignment=self.assignment, cost=self.cost, z=1
        )


def kmedian(
    points: np.ndarray,
    k: int,
    *,
    weights: Optional[np.ndarray] = None,
    max_iterations: int = 30,
    tolerance: float = 1e-4,
    initial_centers: Optional[np.ndarray] = None,
    seed: SeedLike = None,
) -> KMedianResult:
    """Alternating k-median: nearest-center assignment + per-cluster Weiszfeld.

    Mirrors :func:`repro.clustering.lloyd.kmeans` but optimises the sum of
    plain (not squared) distances, i.e. ``cost_1``.
    """
    points = check_points(points)
    n = points.shape[0]
    k = check_integer(k, name="k")
    weights = check_weights(weights, n)
    generator = as_generator(seed)

    if initial_centers is not None:
        centers = np.asarray(initial_centers, dtype=np.float64).copy()
    else:
        centers = kmeans_plus_plus(points, min(k, n), weights=weights, z=1, seed=generator).centers

    previous_cost = np.inf
    cost = np.inf
    assignment = np.zeros(n, dtype=np.int64)
    converged = False
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        squared, assignment = squared_point_to_set_distances(points, centers)
        distances = np.sqrt(squared)
        cost = float(np.dot(weights, distances))
        for index in range(centers.shape[0]):
            members = np.flatnonzero(assignment == index)
            if members.size == 0:
                # Re-seed an empty cluster at a high-cost point.
                mass = weights * distances
                total = mass.sum()
                if total > 0:
                    centers[index] = points[int(generator.choice(n, p=mass / total))]
                continue
            centers[index] = geometric_median(points[members], weights=weights[members])
        if previous_cost < np.inf and previous_cost - cost <= tolerance * max(previous_cost, 1e-12):
            converged = True
            break
        previous_cost = cost

    squared, assignment = squared_point_to_set_distances(points, centers)
    cost = float(np.dot(weights, np.sqrt(squared)))
    return KMedianResult(
        centers=centers,
        assignment=assignment,
        cost=cost,
        iterations=iterations,
        converged=converged,
    )


def cluster_representative(
    points: np.ndarray,
    *,
    weights: Optional[np.ndarray] = None,
    z: int = 2,
) -> np.ndarray:
    """Optimal single center of a cluster: mean for z=2, geometric median for z=1.

    This is exactly step 4 of Algorithm 1 ("compute the 1-median (or 1-mean)
    of each cluster").
    """
    points = check_points(points)
    weights = check_weights(weights, points.shape[0])
    if z == 2:
        total = weights.sum()
        if total <= 0:
            return points.mean(axis=0)
        return (weights[:, None] * points).sum(axis=0) / total
    return geometric_median(points, weights=weights)

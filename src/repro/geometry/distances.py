"""Chunked Euclidean distance computations.

The datasets the paper targets have millions of points, so the library never
materialises a full ``n x n`` distance matrix.  Point-to-center-set distances
are computed in row blocks whose size is bounded by
:data:`DEFAULT_CHUNK_ELEMENTS`, keeping peak memory proportional to
``chunk_rows * k`` regardless of ``n``.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

# Upper bound on the number of float64 entries held by one temporary
# ``chunk_rows x k`` block (~64 MB).
DEFAULT_CHUNK_ELEMENTS: int = 8_000_000


def _chunk_rows(n_centers: int, chunk_elements: int) -> int:
    """Number of data rows per block so a block has ~``chunk_elements`` floats."""
    return max(1, int(chunk_elements // max(1, n_centers)))


def pairwise_distances(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Dense Euclidean distance matrix between two small point sets.

    Intended for center-to-center or coreset-to-center computations where
    both inputs are small (at most a few tens of thousands of rows); use
    :func:`point_to_set_distances` for dataset-sized inputs.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    squared = (
        np.einsum("ij,ij->i", a, a)[:, None]
        + np.einsum("ij,ij->i", b, b)[None, :]
        - 2.0 * (a @ b.T)
    )
    np.maximum(squared, 0.0, out=squared)
    return np.sqrt(squared)


def squared_point_to_set_distances(
    points: np.ndarray,
    centers: np.ndarray,
    *,
    chunk_elements: int = DEFAULT_CHUNK_ELEMENTS,
) -> Tuple[np.ndarray, np.ndarray]:
    """Squared distance from every point to its nearest center.

    Parameters
    ----------
    points:
        Array of shape ``(n, d)``.
    centers:
        Array of shape ``(k, d)``.
    chunk_elements:
        Memory budget (in float64 entries) for each temporary block.

    Returns
    -------
    (squared_distances, assignment):
        ``squared_distances[i]`` is ``min_c ||points[i] - c||^2`` and
        ``assignment[i]`` is the index of the nearest center.
    """
    points = np.asarray(points, dtype=np.float64)
    centers = np.asarray(centers, dtype=np.float64)
    if centers.ndim != 2 or centers.shape[0] == 0:
        raise ValueError(f"centers must be a non-empty 2-d array, got shape {centers.shape}")
    n = points.shape[0]
    k = centers.shape[0]
    center_norms = np.einsum("ij,ij->i", centers, centers)
    best_sq = np.empty(n, dtype=np.float64)
    assignment = np.empty(n, dtype=np.int64)
    rows = _chunk_rows(k, chunk_elements)
    for start in range(0, n, rows):
        stop = min(start + rows, n)
        block = points[start:stop]
        block_norms = np.einsum("ij,ij->i", block, block)
        squared = block_norms[:, None] + center_norms[None, :] - 2.0 * (block @ centers.T)
        np.maximum(squared, 0.0, out=squared)
        local_assignment = np.argmin(squared, axis=1)
        assignment[start:stop] = local_assignment
        best_sq[start:stop] = squared[np.arange(stop - start), local_assignment]
    return best_sq, assignment


def point_to_set_distances(
    points: np.ndarray,
    centers: np.ndarray,
    *,
    chunk_elements: int = DEFAULT_CHUNK_ELEMENTS,
) -> Tuple[np.ndarray, np.ndarray]:
    """Euclidean distance from every point to its nearest center.

    Same contract as :func:`squared_point_to_set_distances` but returning
    plain (not squared) distances, which is what the k-median cost uses.
    """
    squared, assignment = squared_point_to_set_distances(
        points, centers, chunk_elements=chunk_elements
    )
    return np.sqrt(squared), assignment


def update_nearest_with_new_center(
    points: np.ndarray,
    new_center: np.ndarray,
    best_squared: Optional[np.ndarray],
    assignment: Optional[np.ndarray],
    new_index: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Incrementally update nearest-center bookkeeping after adding a center.

    Used by D²-sampling (k-means++): after each newly selected center only the
    distances to that single center need to be computed, giving the standard
    ``O(ndk)`` total seeding cost instead of ``O(ndk^2)``.

    Parameters
    ----------
    points:
        Array of shape ``(n, d)``.
    new_center:
        The newly added center of shape ``(d,)``.
    best_squared:
        Current squared distances to the nearest center, or ``None`` when the
        first center is being added.
    assignment:
        Current nearest-center indices, or ``None`` for the first center.
    new_index:
        Index the new center will occupy in the final center array.
    """
    points = np.asarray(points, dtype=np.float64)
    delta = points - np.asarray(new_center, dtype=np.float64)[None, :]
    squared_to_new = np.einsum("ij,ij->i", delta, delta)
    if best_squared is None or assignment is None:
        return squared_to_new, np.full(points.shape[0], new_index, dtype=np.int64)
    improved = squared_to_new < best_squared
    best_squared = np.where(improved, squared_to_new, best_squared)
    assignment = np.where(improved, new_index, assignment)
    return best_squared, assignment


def diameter_upper_bound(points: np.ndarray) -> float:
    """Cheap O(nd) upper bound on the diameter of a point set.

    Translates the set so an arbitrary point sits at the origin and returns
    twice the largest norm — exactly the bounding-box step the quadtree
    embedding of Section 2.4 of the paper uses.
    """
    points = np.asarray(points, dtype=np.float64)
    shifted = points - points[0]
    norms = np.sqrt(np.einsum("ij,ij->i", shifted, shifted))
    return float(2.0 * norms.max()) if norms.size else 0.0

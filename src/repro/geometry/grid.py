"""Randomly shifted grids.

Algorithms 2 and 3 of the paper place an axis-aligned grid with a random
offset over the data and reason about which points land in the same cell.
This module provides that primitive: given a cell side length and a random
shift, every point is mapped to an integer cell identifier, and the
probability that two points are separated by the grid is bounded by
``sqrt(d) * ||p - q|| / side`` (Lemma 4.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_points, check_positive


def random_grid_shift(dimension: int, side: float, seed: SeedLike = None) -> np.ndarray:
    """Draw the random grid offset used by the cell decomposition.

    The paper draws a single scalar uniformly from ``[0, side]`` and uses it
    for every coordinate (Algorithm 2 line 9); an independent shift per
    coordinate satisfies the same separation lemma, and we follow the paper's
    single-scalar convention for fidelity.
    """
    side = check_positive(side, name="side")
    generator = as_generator(seed)
    shift = float(generator.uniform(0.0, side))
    return np.full(dimension, shift, dtype=np.float64)


@dataclass
class GridAssignment:
    """Result of assigning points to the cells of a shifted grid.

    Attributes
    ----------
    side:
        Cell side length.
    shift:
        The per-coordinate offset of the grid origin.
    cell_indices:
        Integer array of shape ``(n, d)``: the lattice coordinates of the
        cell containing each point.
    cell_ids:
        Length-``n`` array of opaque integer identifiers, one per distinct
        occupied cell, suitable for dictionary-style grouping.
    cells:
        Mapping from cell identifier to the indices of the points it
        contains.
    """

    side: float
    shift: np.ndarray
    cell_indices: np.ndarray
    cell_ids: np.ndarray
    cells: Dict[int, np.ndarray]

    @property
    def occupied_cell_count(self) -> int:
        """Number of distinct non-empty cells."""
        return len(self.cells)

    def cell_centers(self) -> Dict[int, np.ndarray]:
        """Return the geometric centre of every occupied cell.

        The centre of the cell with lattice coordinates ``c`` is
        ``(c + 0.5) * side + shift``, matching the ``floor((p - shift)/side)``
        convention used in :func:`assign_to_grid`.
        """
        centers: Dict[int, np.ndarray] = {}
        for cell_id, members in self.cells.items():
            lattice = self.cell_indices[members[0]]
            centers[cell_id] = (lattice + 0.5) * self.side + self.shift
        return centers


#: Cache of per-dimension random multipliers for the row-hashing scheme.
_HASH_MULTIPLIER_CACHE: Dict[int, np.ndarray] = {}


def _hash_multipliers(dimension: int) -> np.ndarray:
    """Deterministic pseudo-random odd 64-bit multipliers, one per coordinate.

    With independent uniform multipliers the multilinear hash below has a
    per-pair collision probability of at most ``2^{-62}``, so collisions are
    practically impossible for any realistic number of cells.
    """
    cached = _HASH_MULTIPLIER_CACHE.get(dimension)
    if cached is None:
        generator = np.random.default_rng(0xC0FFEE)
        cached = generator.integers(1, 2**63 - 1, size=dimension, dtype=np.uint64) * np.uint64(2) + np.uint64(1)
        _HASH_MULTIPLIER_CACHE[dimension] = cached
    return cached


def hash_rows(lattice: np.ndarray) -> np.ndarray:
    """Hash integer lattice rows to a single ``uint64`` key per row.

    This is the vectorised replacement for inserting d-dimensional cell
    coordinates into a dictionary (Algorithm 2): the coordinates are combined
    with independent pseudo-random odd multipliers modulo ``2^64``
    (multilinear hashing).  Collisions are possible in principle but have
    probability about ``n^2 / 2^63`` and at worst merge two grid cells, which
    only perturbs constants in the crude approximation.
    """
    lattice = np.ascontiguousarray(lattice, dtype=np.int64).view(np.uint64)
    multipliers = _hash_multipliers(lattice.shape[1])
    with np.errstate(over="ignore"):
        keys = (lattice * multipliers[None, :]).sum(axis=1, dtype=np.uint64)
    return keys


def _hash_cells(cell_indices: np.ndarray) -> Tuple[np.ndarray, Dict[int, np.ndarray]]:
    """Map integer lattice coordinates to compact cell identifiers.

    Rows are hashed to scalar keys (see :func:`hash_rows`) so the grouping
    costs one 1-D sort instead of a lexicographic row sort.
    """
    _, inverse = np.unique(hash_rows(cell_indices), return_inverse=True)
    inverse = inverse.astype(np.int64).reshape(-1)
    cells: Dict[int, np.ndarray] = {}
    order = np.argsort(inverse, kind="stable")
    sorted_ids = inverse[order]
    boundaries = np.flatnonzero(np.diff(sorted_ids)) + 1
    for group in np.split(order, boundaries):
        cells[int(inverse[group[0]])] = group
    return inverse, cells


def assign_to_grid(
    points: np.ndarray,
    side: float,
    shift: np.ndarray,
) -> GridAssignment:
    """Assign every point to the cell of a shifted grid with the given side.

    Parameters
    ----------
    points:
        Array of shape ``(n, d)``.
    side:
        Cell side length ``r``.
    shift:
        Grid offset of shape ``(d,)`` as produced by
        :func:`random_grid_shift`.
    """
    points = check_points(points)
    side = check_positive(side, name="side")
    shift = np.asarray(shift, dtype=np.float64)
    if shift.shape != (points.shape[1],):
        raise ValueError(
            f"shift must have shape ({points.shape[1]},), got {shift.shape}"
        )
    cell_indices = np.floor((points - shift[None, :]) / side).astype(np.int64)
    cell_ids, cells = _hash_cells(cell_indices)
    return GridAssignment(
        side=float(side),
        shift=shift,
        cell_indices=cell_indices,
        cell_ids=cell_ids,
        cells=cells,
    )


def count_distinct_cells(points: np.ndarray, side: float, shift: np.ndarray) -> int:
    """Number of non-empty grid cells — the counting core of Algorithm 2.

    Equivalent to ``Count-Distinct-Cells`` in the paper but returns the count
    instead of a boolean so the caller can reuse it for diagnostics.
    """
    points = check_points(points)
    side = check_positive(side, name="side")
    shift = np.asarray(shift, dtype=np.float64)
    cell_indices = np.floor((points - shift[None, :]) / side).astype(np.int64)
    return int(np.unique(hash_rows(cell_indices)).shape[0])


def separation_probability_bound(p: np.ndarray, q: np.ndarray, side: float) -> float:
    """Upper bound from Lemma 4.3 on the probability that ``p`` and ``q`` are split.

    ``Pr[p, q in different cells] <= sqrt(d) * ||p - q|| / side`` (capped at
    one).  Exposed for the property-based tests that verify the grid
    assignment empirically satisfies the lemma.
    """
    p = np.asarray(p, dtype=np.float64)
    q = np.asarray(q, dtype=np.float64)
    side = check_positive(side, name="side")
    distance = float(np.linalg.norm(p - q))
    return min(1.0, np.sqrt(p.shape[0]) * distance / side)


def group_points_by_cell(assignment: GridAssignment) -> List[np.ndarray]:
    """Return the point-index groups of the occupied cells in a stable order."""
    return [assignment.cells[cell_id] for cell_id in sorted(assignment.cells)]

"""Johnson–Lindenstrauss dimension reduction.

Step 2 of Algorithm 1 in the paper embeds the input into ``O(log k)``
dimensions before running ``Fast-kmeans++``.  Makarychev, Makarychev and
Razenshteyn [50] show that a random linear projection to
``O(log(k / epsilon) / epsilon^2)`` dimensions preserves the k-means and
k-median costs of every clustering up to ``1 +- epsilon``, so the bicriteria
solution found in the projected space carries back to the original space.

The implementation uses a dense Gaussian projection matrix, which is the
simplest construction satisfying the lemma and costs ``O(n d d')`` to apply —
within the paper's Õ(nd) budget because ``d'`` is polylogarithmic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_integer, check_points, check_positive


def jl_target_dimension(k: int, epsilon: float = 0.5, *, minimum: int = 8) -> int:
    """Target dimension for a clustering-preserving JL projection.

    Following [50], ``O(log(k/eps) / eps^2)`` dimensions suffice for cost
    preservation of k-clusterings.  The constant is chosen so the defaults
    match the practical choices in the paper's experiments (MNIST, the only
    dataset where dimension reduction is applied, is projected to a few tens
    of dimensions for ``k = 100``).
    """
    k = check_integer(k, name="k")
    epsilon = check_positive(epsilon, name="epsilon")
    dimension = int(math.ceil(4.0 * math.log(max(k, 2) / epsilon) / epsilon**2 * 0.25))
    return max(minimum, dimension)


@dataclass
class JohnsonLindenstraussEmbedding:
    """A fitted random linear embedding ``R^d -> R^target_dim``.

    Parameters
    ----------
    target_dim:
        Output dimensionality.  If ``None`` at fit time, it is derived from
        ``k`` via :func:`jl_target_dimension`.
    seed:
        Randomness for the projection matrix.

    Attributes
    ----------
    projection_:
        The ``(d, target_dim)`` projection matrix, populated by :meth:`fit`.

    Examples
    --------
    >>> import numpy as np
    >>> points = np.random.default_rng(0).normal(size=(100, 64))
    >>> embedding = JohnsonLindenstraussEmbedding(target_dim=16, seed=0)
    >>> projected = embedding.fit_transform(points)
    >>> projected.shape
    (100, 16)
    """

    target_dim: Optional[int] = None
    seed: SeedLike = None
    projection_: Optional[np.ndarray] = field(default=None, repr=False)

    def fit(self, points: np.ndarray, *, k: Optional[int] = None) -> "JohnsonLindenstraussEmbedding":
        """Sample the projection matrix for data of dimension ``points.shape[1]``.

        Parameters
        ----------
        points:
            The data whose dimensionality determines the input side of the
            projection; the values themselves are not used.
        k:
            Number of clusters, used to pick ``target_dim`` when it was not
            given explicitly.
        """
        points = check_points(points)
        input_dim = points.shape[1]
        if self.target_dim is None:
            if k is None:
                raise ValueError("either target_dim or k must be provided")
            self.target_dim = jl_target_dimension(k)
        self.target_dim = check_integer(self.target_dim, name="target_dim")
        generator = as_generator(self.seed)
        # Gaussian entries scaled so squared norms are preserved in expectation.
        self.projection_ = generator.normal(
            scale=1.0 / math.sqrt(self.target_dim), size=(input_dim, self.target_dim)
        )
        return self

    def transform(self, points: np.ndarray) -> np.ndarray:
        """Project ``points`` with the fitted matrix."""
        if self.projection_ is None:
            raise RuntimeError("the embedding must be fitted before calling transform")
        points = check_points(points)
        if points.shape[1] != self.projection_.shape[0]:
            raise ValueError(
                f"points have dimension {points.shape[1]} but the embedding was fitted "
                f"for dimension {self.projection_.shape[0]}"
            )
        return points @ self.projection_

    def fit_transform(self, points: np.ndarray, *, k: Optional[int] = None) -> np.ndarray:
        """Fit the projection on ``points`` and return the projected data."""
        return self.fit(points, k=k).transform(points)


def maybe_reduce_dimension(
    points: np.ndarray,
    k: int,
    *,
    threshold: int = 64,
    seed: SeedLike = None,
) -> np.ndarray:
    """Project ``points`` to ``O(log k)`` dimensions when that is a reduction.

    The paper only applies dimension reduction to MNIST because the other
    datasets already have low dimensionality; this helper encodes the same
    rule — data with at most ``threshold`` features is returned unchanged.
    """
    points = check_points(points)
    target = jl_target_dimension(k)
    if points.shape[1] <= max(threshold, target):
        return points
    embedding = JohnsonLindenstraussEmbedding(target_dim=target, seed=seed)
    return embedding.fit_transform(points)

"""Randomly shifted quadtree embeddings (Section 2.4 of the paper).

A quadtree embedding maps Euclidean points into a hierarchically separated
tree metric.  The input is enclosed in a box of side ``2 * Delta`` that is
shifted by a uniformly random offset; level ``i`` of the tree partitions the
box into cells of side ``2^{-i} * 2 * Delta``, and the edge connecting a cell
to its parent has length ``sqrt(d) * 2^{-i} * 2 * Delta``.  Lemma 2.2 states
that tree distances dominate Euclidean distances and exceed them only by an
``O(d log Delta)`` factor in expectation.

The embedding is the workhorse of two components:

* ``Fast-kmeans++`` (:mod:`repro.clustering.fast_kmeans_pp`) performs its
  D²-style seeding and its point-to-center assignment in the tree metric,
  which is what removes the ``O(nk)`` assignment cost.
* The crude cost upper bound of Algorithm 2
  (:mod:`repro.core.spread_reduction`) searches for the first tree level at
  which the input occupies at least ``k + 1`` cells.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.geometry.grid import hash_rows
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_integer, check_points


def compute_spread(points: np.ndarray, *, sample_size: int = 2000, seed: SeedLike = 0) -> float:
    """Estimate the spread ``Delta`` = (max distance) / (min non-zero distance).

    The exact spread needs all pairwise distances, which is quadratic in
    ``n``; for inputs larger than ``sample_size`` the minimum non-zero
    distance is estimated on a uniform subsample while the maximum distance
    is replaced by the (at most 2x larger) bounding-box diameter.  The spread
    only enters the algorithms through its logarithm, so this estimate is
    more than accurate enough.
    """
    points = check_points(points)
    n = points.shape[0]
    if n < 2:
        return 1.0
    generator = as_generator(seed)
    if n > sample_size:
        subset = points[generator.choice(n, size=sample_size, replace=False)]
    else:
        subset = points
    norms = np.einsum("ij,ij->i", subset, subset)
    squared = norms[:, None] + norms[None, :] - 2.0 * (subset @ subset.T)
    np.maximum(squared, 0.0, out=squared)
    positive = squared[squared > 1e-24]
    if positive.size == 0:
        return 1.0
    min_distance = math.sqrt(float(positive.min()))
    span = points.max(axis=0) - points.min(axis=0)
    max_distance = float(np.linalg.norm(span))
    if max_distance <= 0:
        return 1.0
    return max(1.0, max_distance / min_distance)


@dataclass
class QuadtreeEmbedding:
    """A fitted randomly shifted quadtree over a point set.

    Parameters
    ----------
    max_levels:
        Hard cap on the tree depth.  The fitted depth is
        ``min(max_levels, ceil(log2(spread)) + 2)`` and construction stops
        early once every occupied cell contains a single point.
    seed:
        Randomness for the shift.

    Attributes
    ----------
    delta_:
        Half side length of the enclosing box (an upper bound on the largest
        distance from the translated origin).
    level_cell_ids_:
        ``level_cell_ids_[l]`` is a length-``n`` integer array giving the
        compact identifier of the level-``l`` cell containing each point.
    level_cells_:
        ``level_cells_[l]`` maps each occupied level-``l`` cell identifier to
        the indices of the points it contains.
    """

    max_levels: int = 32
    seed: SeedLike = None
    delta_: float = field(default=0.0, init=False)
    shift_: Optional[np.ndarray] = field(default=None, init=False, repr=False)
    origin_: Optional[np.ndarray] = field(default=None, init=False, repr=False)
    dimension_: int = field(default=0, init=False)
    n_points_: int = field(default=0, init=False)
    level_cell_ids_: List[np.ndarray] = field(default_factory=list, init=False, repr=False)
    level_cells_: List[Dict[int, np.ndarray]] = field(default_factory=list, init=False, repr=False)

    # ------------------------------------------------------------------ fit
    def fit(self, points: np.ndarray) -> "QuadtreeEmbedding":
        """Build the level-wise cell decomposition for ``points``."""
        points = check_points(points)
        self.n_points_, self.dimension_ = points.shape
        check_integer(self.max_levels, name="max_levels")
        generator = as_generator(self.seed)

        # Translate so an arbitrary input point is the origin, then bound the
        # data inside a box of side 2 * delta (Section 2.4).
        self.origin_ = points[0].copy()
        shifted_points = points - self.origin_[None, :]
        norms = np.sqrt(np.einsum("ij,ij->i", shifted_points, shifted_points))
        self.delta_ = float(norms.max())
        if self.delta_ <= 0:
            # All points identical: a single-level tree with one cell.
            self.delta_ = 1.0
        shift_scalar = float(generator.uniform(0.0, self.delta_))
        self.shift_ = np.full(self.dimension_, shift_scalar, dtype=np.float64)
        shifted_points = shifted_points + self.shift_[None, :]

        spread = compute_spread(points, seed=generator)
        depth_cap = min(self.max_levels, max(1, int(math.ceil(math.log2(spread))) + 2))

        self.level_cell_ids_ = []
        self.level_cells_ = []
        for level in range(depth_cap + 1):
            side = self.cell_side(level)
            lattice = np.floor(shifted_points / side).astype(np.int64)
            _, inverse = np.unique(hash_rows(lattice), return_inverse=True)
            inverse = inverse.astype(np.int64).reshape(-1)
            self.level_cell_ids_.append(inverse)
            self.level_cells_.append(self._group(inverse))
            if len(self.level_cells_[-1]) >= self.n_points_:
                # Every point isolated in its own cell: deeper levels add
                # nothing to the tree metric.
                break
        return self

    @staticmethod
    def _group(cell_ids: np.ndarray) -> Dict[int, np.ndarray]:
        """Group point indices by their compact cell identifier."""
        order = np.argsort(cell_ids, kind="stable")
        sorted_ids = cell_ids[order]
        boundaries = np.flatnonzero(np.diff(sorted_ids)) + 1
        groups: Dict[int, np.ndarray] = {}
        for group in np.split(order, boundaries):
            groups[int(cell_ids[group[0]])] = group
        return groups

    # ------------------------------------------------------------- geometry
    @property
    def depth(self) -> int:
        """Number of levels actually built (root level included)."""
        return len(self.level_cell_ids_)

    def cell_side(self, level: int) -> float:
        """Side length of the level-``level`` grid cells: ``2^{-level} * 2 * delta``."""
        return (2.0 * self.delta_) * (2.0 ** (-level))

    def edge_length(self, level: int) -> float:
        """Length of the tree edge from a level-``level`` cell to its parent."""
        return math.sqrt(self.dimension_) * self.cell_side(level)

    def distance_from_shared_level(self, level: int) -> float:
        """Tree distance between two points whose deepest common cell is at ``level``.

        The path climbs from the leaves up to the shared cell and back down,
        so the distance is twice the sum of edge lengths below ``level``.
        When the two points share a leaf cell the tree distance is zero.
        """
        if level >= self.depth - 1:
            return 0.0
        total = 0.0
        for below in range(level + 1, self.depth):
            total += self.edge_length(below)
        return 2.0 * total

    def deepest_shared_level(self, first: int, second: int) -> int:
        """Deepest level at which points ``first`` and ``second`` share a cell.

        Level 0 uses cells of side ``2 * delta``; because the shift keeps all
        points within a ``2 * delta`` window the two points may already be
        separated at level 0, in which case ``-1`` is returned and the tree
        distance is the full ``distance_from_shared_level(-1)``.
        """
        shared = -1
        for level in range(self.depth):
            if self.level_cell_ids_[level][first] == self.level_cell_ids_[level][second]:
                shared = level
            else:
                break
        return shared

    def tree_distance(self, first: int, second: int) -> float:
        """Distance between two input points in the embedded tree metric."""
        if first == second:
            return 0.0
        return self.distance_from_shared_level(self.deepest_shared_level(first, second))

    # --------------------------------------------------------------- lookup
    def cell_of(self, point_index: int, level: int) -> int:
        """Compact identifier of the level-``level`` cell containing a point."""
        return int(self.level_cell_ids_[level][point_index])

    def points_in_cell(self, level: int, cell_id: int) -> np.ndarray:
        """Indices of the points contained in a given cell (empty if unused)."""
        return self.level_cells_[level].get(cell_id, np.empty(0, dtype=np.int64))

    def occupied_cells(self, level: int) -> int:
        """Number of distinct non-empty cells at ``level``."""
        return len(self.level_cells_[level])

"""Randomly shifted quadtree embeddings (Section 2.4 of the paper).

A quadtree embedding maps Euclidean points into a hierarchically separated
tree metric.  The input is enclosed in a box of side ``2 * Delta`` that is
shifted by a uniformly random offset; level ``i`` of the tree partitions the
box into cells of side ``2^{-i} * 2 * Delta``, and the edge connecting a cell
to its parent has length ``sqrt(d) * 2^{-i} * 2 * Delta``.  Lemma 2.2 states
that tree distances dominate Euclidean distances and exceed them only by an
``O(d log Delta)`` factor in expectation.

The embedding is the workhorse of two components:

* ``Fast-kmeans++`` (:mod:`repro.clustering.fast_kmeans_pp`) performs its
  D²-style seeding and its point-to-center assignment in the tree metric,
  which is what removes the ``O(nk)`` assignment cost.
* The crude cost upper bound of Algorithm 2
  (:mod:`repro.core.spread_reduction`) searches for the first tree level at
  which the input occupies at least ``k + 1`` cells.

CSR cell storage
----------------
Each level stores its occupied cells in a CSR-style layout instead of a
``Dict[int, np.ndarray]``: ``level_order_[l]`` holds all point indices sorted
by their compact level-``l`` cell identifier and ``level_offsets_[l]`` holds
one offset per cell, so the members of cell ``c`` are the contiguous slice
``level_order_[l][level_offsets_[l][c]:level_offsets_[l][c + 1]]``.  Building
the layout costs a single ``argsort`` per level (the seed implementation paid
a second sort plus a Python loop splitting one array per cell), and
``points_in_cell`` becomes two-slice arithmetic with no hashing.

Tree distances are served from a precomputed cumulative edge-length table,
making ``distance_from_shared_level`` an O(1) lookup.

Incremental compact keys
------------------------
The hash key of a lattice row is linear in the coordinates
(:func:`~repro.geometry.grid.hash_rows` computes ``sum_j lattice[j] *
multiplier[j]`` modulo ``2**64``), and halving the cell side maps the
lattice to ``2 * lattice + bit``; therefore the level-``l + 1`` keys follow
from the level-``l`` keys with one multiply-add per *point* rather than per
coordinate::

    key' = 2 * key + sum_j bit[j] * multiplier[j]      (mod 2**64)

which is exact in (wrapping) integer arithmetic — the derived keys equal
``hash_rows`` of the explicitly doubled lattice bit for bit, so the compact
identifiers (the ranks of the distinct keys) are unchanged.  The per-level
bits themselves are read from a *digit matrix* computed once per fit:
``floor(frac * 2**depth)`` holds, exactly, the first ``depth`` binary digits
of every fractional coordinate (scaling by a power of two and truncating are
both exact in IEEE arithmetic; a fractional part that rounded to exactly 1.0
is clamped to the all-ones digit row, which is the fixed point the iterative
doubling converges to).  Together these replace the seed's per-level floor,
the doubled integer lattice, *and* the per-level row hashing with one
``(n, d)`` shift-and-mask plus one length-``n`` multiply-add per level.
Fits whose depth cap exceeds 62 levels (beyond any realistic spread) fall
back to the equivalent per-level ``frac`` doubling.

Seed-compatibility policy
-------------------------
With ``spread=None`` the fit consumes the random generator in exactly the
seed order (shift draw, then the spread estimate) and reports identical
``depth``, ``cell_of`` labels, cell membership, and tree distances as the
frozen snapshot in :mod:`repro.reference.seed_hotpath`; the golden tests in
``tests/test_quadtree_golden.py`` pin this down.  Passing a precomputed
``spread`` skips the per-tree estimate (so multi-tree users pay for it once)
at the cost of a different — but identically distributed — generator stream.

What ``level_order_`` guarantees: within one cell, point indices appear in
ascending input order (the grouping sort is stable), and cells appear in
ascending compact-identifier order, where identifiers rank the distinct
64-bit hash keys of a level in ascending unsigned order — exactly the
labelling ``np.unique(hash_rows(lattice), return_inverse=True)`` produced in
the seed.  Because the hash re-mixes every level, the *rank* of a cell is
re-drawn at every depth even for cells that can no longer change: a
singleton cell stays a singleton at all deeper levels (its one point has
nobody left to separate from), but its label still moves with the global
key order.  This is why construction keeps ranking all ``n`` keys per level
instead of dropping settled singletons from the sort: any scheme that skips
them (sort the active points only, then merge or binary-search the settled
keys back in) must still place every settled key in the global rank order,
which costs at least as much as the radix argsort it replaces — we measured
``np.searchsorted`` at 1.4-3x the cost of the full stable argsort on this
workload.  The singleton invariant is still exploited where it is free:
construction stops at the first level where every cell is a singleton
(deeper levels cannot refine the partition, the same early exit the seed
performs), and the digit matrix bounds the per-level work for everyone else.

What is cached where (spread and cost-bound hints)
--------------------------------------------------
:func:`compute_spread` estimates are the per-fit fixed cost this module
*consumes*; two sibling subsystems cache them on behalf of repeated fits:

* :class:`~repro.clustering.fast_kmeans_pp.FastKMeansPlusPlus` computes one
  estimate and passes it to all of its trees via the ``spread`` parameter.
* :class:`~repro.streaming.merge_reduce.MergeReduceTree` keeps one cached
  spread *and* one cached crude cost upper bound (Algorithm 2, served to
  :func:`repro.core.spread_reduction.reduce_spread` through the sampler's
  ``cost_bound`` hint) per stream.  Both caches sit behind the same refresh
  signal — a bounding-box diagonal growth past the configured factor, or
  the staleness interval — and a refresh recomputes both together, so a
  stream pays the pairwise subsample and the dyadic binary search once per
  distribution shift instead of once per compression.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, List, Optional

import numpy as np

from repro import observability as _obs
from repro.geometry.grid import _hash_multipliers, hash_rows
from repro.native import get_kernel
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_integer, check_points

_EMPTY_INDICES = np.empty(0, dtype=np.int64)


def _column_extrema(points: np.ndarray) -> tuple:
    """Per-column (min, max) of a row-major array by contiguous fold-halving.

    ``np.min``/``np.max`` along axis 0 walk the array column-strided, which
    defeats vectorisation for small ``d``; repeatedly folding the top half
    of the rows onto the bottom half keeps every operand contiguous and
    does ``2 n d`` SIMD comparisons total.  Extrema are associativity-exact,
    so the result is bit-identical to the axis-0 reductions.
    """
    if points.shape[0] <= 64:
        return points.min(axis=0), points.max(axis=0)
    low = points
    high = points
    first = True
    while low.shape[0] > 64:
        half = low.shape[0] // 2
        odd_low = low[2 * half :]
        odd_high = high[2 * half :]
        if first:
            low = np.minimum(low[:half], low[half : 2 * half])
            high = np.maximum(points[:half], points[half : 2 * half])
            first = False
        else:
            np.minimum(low[:half], low[half : 2 * half], out=low[:half])
            np.maximum(high[:half], high[half : 2 * half], out=high[:half])
            low = low[:half]
            high = high[:half]
        if odd_low.shape[0]:
            np.minimum(low[:1], odd_low, out=low[:1])
            np.maximum(high[:1], odd_high, out=high[:1])
    return low.min(axis=0), high.max(axis=0)


#: Deepest tree for which the one-shot digit matrix ``floor(frac * 2**depth)``
#: fits an ``int64`` exactly; deeper fits (spread beyond ``2**60``, never hit
#: with the default ``max_levels=32``) take the per-level doubling fallback.
_MAX_DIGIT_LEVELS = 62

#: Digit matrices for trees of at most this depth are held as ``uint32``
#: (half the memory traffic of the per-level bit extraction) and their key
#: increments served from the pattern LUTs below.  The default
#: ``max_levels=32`` always fits.
_MAX_UINT32_DIGIT_LEVELS = 32

#: Per-dimension cache of byte-aligned subset-sum tables for the chunked
#: increment lookup.  ``np.packbits`` turns the per-level bit matrix into
#: one byte per 8 coordinates; entry ``p`` of chunk ``b``'s table holds
#: ``sum_{j in p} multiplier[8 b + j]`` modulo ``2**64``, so summing one
#: table lookup per byte equals the full ``bits . multipliers`` multiply-add
#: bit for bit.
_PATTERN_LUT_CACHE: dict = {}


def _pattern_tables(dimension: int) -> list:
    """Per-byte subset-sum tables for the incremental key update."""
    tables = _PATTERN_LUT_CACHE.get(dimension)
    if tables is None:
        multipliers = _hash_multipliers(dimension).view(np.int64)
        tables = []
        for start in range(0, dimension, 8):
            chunk = multipliers[start : start + 8]
            lut = np.zeros(1, dtype=np.int64)
            for multiplier in chunk:
                with np.errstate(over="ignore"):
                    lut = np.concatenate([lut, lut + multiplier])
            if lut.shape[0] < 256:  # partial final byte: high bits are zero
                lut = np.concatenate([lut] * (256 // lut.shape[0]))
            tables.append(lut)
        _PATTERN_LUT_CACHE[dimension] = tables
    return tables


def compute_spread(
    points: np.ndarray,
    *,
    sample_size: int = 2000,
    block_size: int = 128,
    seed: SeedLike = 0,
) -> float:
    """Estimate the spread ``Delta`` = (max distance) / (min non-zero distance).

    The exact spread needs all pairwise distances, which is quadratic in
    ``n``.  The estimate works on a uniform subsample of at most
    ``sample_size`` points and replaces the maximum distance by the (at most
    2x larger) bounding-box diagonal.  The minimum non-zero distance is
    estimated *blockwise*: the subsample is ordered along a random 1-d
    projection (points that are close in space tend to be close in the
    projection) and pairwise distances are evaluated only inside overlapping
    windows of ``2 * block_size`` consecutive points, so the quadratic term
    shrinks from ``sample_size**2`` to ``~4 * sample_size * block_size``
    entries.  Any pair within ``block_size`` positions of each other shares a
    window, so the window minimum is a tight upper bound on the subsample
    minimum — and the spread only enters the algorithms through its
    logarithm, making the estimate more than accurate enough.
    """
    points = check_points(points)
    with _obs.span("quadtree.spread_estimate", n=int(points.shape[0])):
        return _compute_spread_impl(points, sample_size, block_size, seed)


def _compute_spread_impl(
    points: np.ndarray, sample_size: int, block_size: int, seed: SeedLike
) -> float:
    n = points.shape[0]
    if n < 2:
        return 1.0
    generator = as_generator(seed)
    if n > sample_size:
        subset = points[generator.choice(n, size=sample_size, replace=False)]
    else:
        subset = points
    s, d = subset.shape
    if s > 2 * block_size:
        direction = generator.normal(size=d)
        order = np.argsort(subset @ direction, kind="stable")
        subset = subset[order]
    # Overlapping windows of 2 * block_size points with stride block_size
    # examine exactly the within-block and adjacent-block pairs; evaluating
    # those directly (one diagonal tile plus one off-diagonal tile per
    # block) covers the identical pair set at half the arithmetic, because
    # the overlap no longer re-computes every interior block against
    # itself.  Entries at or below the noise floor (self-distances,
    # duplicates) are masked to +inf in place, and min() is order-exact, so
    # the estimate matches the window formulation on the same pairs.
    min_squared = np.inf
    n_blocks = (s + block_size - 1) // block_size
    blocks = [subset[i * block_size : (i + 1) * block_size] for i in range(n_blocks)]
    norms = [np.einsum("ij,ij->i", block, block) for block in blocks]
    tile = np.empty((block_size, block_size), dtype=np.float64)

    def _tile_min(i: int, j: int) -> float:
        rows, columns = blocks[i].shape[0], blocks[j].shape[0]
        squared = np.matmul(blocks[i], blocks[j].T, out=tile[:rows, :columns])
        squared *= -2.0
        squared += norms[i][:, None]
        squared += norms[j][None, :]
        np.maximum(squared, 0.0, out=squared)
        return float(np.min(np.where(squared > 1e-24, squared, np.inf)))

    for i in range(n_blocks):
        min_squared = min(min_squared, _tile_min(i, i))
        if i + 1 < n_blocks:
            min_squared = min(min_squared, _tile_min(i, i + 1))
    if not np.isfinite(min_squared):
        return 1.0
    min_distance = math.sqrt(min_squared)
    # One cache-friendly row-major pass for both column extrema (max and min
    # are associativity-exact, so blocking cannot change the result; the
    # strided axis-0 reductions cost ~2x this on wide inputs).
    low, high = _column_extrema(points)
    span = high - low
    max_distance = float(np.linalg.norm(span))
    if max_distance <= 0:
        return 1.0
    return max(1.0, max_distance / min_distance)


@dataclass
class QuadtreeEmbedding:
    """A fitted randomly shifted quadtree over a point set.

    Parameters
    ----------
    max_levels:
        Hard cap on the tree depth.  The fitted depth is
        ``min(max_levels, ceil(log2(spread)) + 2)`` and construction stops
        early once every occupied cell contains a single point.
    seed:
        Randomness for the shift.
    spread:
        Optional precomputed spread estimate (see :func:`compute_spread`).
        ``None`` estimates it during :meth:`fit`; passing a value lets
        multi-tree consumers such as
        :class:`~repro.clustering.fast_kmeans_pp.FastKMeansPlusPlus` share
        one estimate across all trees instead of recomputing it per fit.

    Attributes
    ----------
    delta_:
        Half side length of the enclosing box (an upper bound on the largest
        distance from the translated origin).
    level_cell_ids_:
        ``level_cell_ids_[l]`` is a length-``n`` integer array giving the
        compact identifier of the level-``l`` cell containing each point.
        Identifiers are consecutive integers ``0 .. occupied_cells(l) - 1``.
    level_order_ / level_offsets_:
        CSR cell storage (see the module docstring): point indices sorted by
        cell identifier plus per-cell offsets into that order.
    level_distance_table_:
        ``level_distance_table_[l + 1]`` is the tree distance between two
        points whose deepest shared cell is at level ``l`` (slot 0 holds the
        level ``-1`` root-separated distance).
    """

    max_levels: int = 32
    seed: SeedLike = None
    spread: Optional[float] = None
    delta_: float = field(default=0.0, init=False)
    shift_: Optional[np.ndarray] = field(default=None, init=False, repr=False)
    origin_: Optional[np.ndarray] = field(default=None, init=False, repr=False)
    dimension_: int = field(default=0, init=False)
    n_points_: int = field(default=0, init=False)
    level_cell_ids_: List[np.ndarray] = field(default_factory=list, init=False, repr=False)
    level_order_: List[np.ndarray] = field(default_factory=list, init=False, repr=False)
    level_offsets_: List[np.ndarray] = field(default_factory=list, init=False, repr=False)
    level_distance_table_: Optional[np.ndarray] = field(default=None, init=False, repr=False)

    # ------------------------------------------------------------------ fit
    def fit(self, points: np.ndarray) -> "QuadtreeEmbedding":
        """Build the level-wise CSR cell decomposition for ``points``."""
        with _obs.span("quadtree.fit") as fit_span:
            self._fit_levels(points, fit_span)
        return self

    def _fit_levels(self, points: np.ndarray, fit_span: Any) -> None:
        points = check_points(points)
        self.n_points_, self.dimension_ = points.shape
        self.max_levels = check_integer(self.max_levels, name="max_levels")
        generator = as_generator(self.seed)

        # Translate so an arbitrary input point is the origin, then bound the
        # data inside a box of side 2 * delta (Section 2.4).
        self.origin_ = points[0].copy()
        shifted_points = points - self.origin_[None, :]
        # sqrt is monotone and exactly rounded, so sqrt(max) == max(sqrt).
        squared_norms = np.einsum("ij,ij->i", shifted_points, shifted_points)
        self.delta_ = float(math.sqrt(squared_norms.max()))
        if self.delta_ <= 0:
            # All points identical: a single-level tree with one cell.
            self.delta_ = 1.0
        shift_scalar = float(generator.uniform(0.0, self.delta_))
        self.shift_ = np.full(self.dimension_, shift_scalar, dtype=np.float64)
        shifted_points += shift_scalar

        if self.spread is not None:
            spread = float(self.spread)
        else:
            spread = compute_spread(points, seed=generator)
        depth_cap = min(self.max_levels, max(1, int(math.ceil(math.log2(spread))) + 2))

        self.level_cell_ids_ = []
        self.level_order_ = []
        self.level_offsets_ = []

        # Level-0 lattice: floor(shifted / side_0).  Deeper levels never
        # materialise a lattice: the hash keys are updated incrementally
        # (``key' = 2 * key + bits . multipliers``, exact modulo 2**64 —
        # see the module docstring) with the per-level bits read from the
        # one-shot digit matrix ``floor(frac * 2**depth_cap)``.
        scaled = shifted_points
        scaled /= self.cell_side(0)
        lattice = np.floor(scaled).astype(np.int64)
        keys = hash_rows(lattice)
        scratch = _csr_scratch(self.n_points_)
        increment = np.empty(self.n_points_, dtype=np.int64)
        frac = scaled
        frac -= lattice
        # frac >= 0, so truncation is floor; a fractional part that rounded
        # up to exactly 1.0 reads as the all-ones digit row — the fixed
        # point of 2f - (f >= 1/2).  Shallow trees left-align the digits in
        # a uint32 residual so each level's bits are one sign-compare away,
        # and resolve the key increment with one byte-table lookup per 8
        # coordinates (``np.packbits`` row patterns).
        residual = None
        digits = None
        bits = None
        tables = None
        if depth_cap <= _MAX_UINT32_DIGIT_LEVELS:
            residual = (frac * (2.0**depth_cap)).astype(np.uint32)
            np.minimum(residual, np.uint32((1 << depth_cap) - 1), out=residual)
            residual <<= np.uint32(32 - depth_cap)  # level-1 bit on top
            tables = _pattern_tables(self.dimension_)
            # Byte-aligned flag rows let packbits run over one flat stream
            # (the per-row path is ~50x slower for narrow inputs); the pad
            # columns stay zero so the final byte patterns are unaffected.
            padded_width = (self.dimension_ + 7) // 8 * 8
            flag_buffer = np.zeros((self.n_points_, padded_width), dtype=bool)
            flag_view = flag_buffer[:, : self.dimension_]
        elif depth_cap <= _MAX_DIGIT_LEVELS:
            digits = (frac * (2.0**depth_cap)).astype(np.int64)
            np.minimum(digits, (np.int64(1) << depth_cap) - 1, out=digits)
            bits = np.empty_like(digits)
            multipliers = _hash_multipliers(self.dimension_).view(np.int64)
        for level in range(depth_cap + 1):
            if level > 0:
                # Signed integers wrap modulo 2**64 exactly like the uint64
                # view hash_rows sums in, so the incremental keys are
                # bit-identical to hashing the doubled lattice.
                if residual is not None:
                    np.greater_equal(residual, np.uint32(0x80000000), out=flag_view)
                    residual <<= np.uint32(1)
                    packed = np.packbits(
                        flag_buffer.reshape(-1), bitorder="little"
                    ).reshape(self.n_points_, padded_width // 8)
                    np.take(tables[0], packed[:, 0], out=increment)
                    for byte, lut in enumerate(tables[1:], start=1):
                        increment += lut[packed[:, byte]]
                else:
                    if digits is not None:
                        np.right_shift(digits, np.int64(depth_cap - level), out=bits)
                        np.bitwise_and(bits, np.int64(1), out=bits)
                    else:
                        flags = frac >= 0.5
                        np.multiply(frac, 2.0, out=frac)
                        frac -= flags
                        bits = flags.astype(np.int64)
                        multipliers = _hash_multipliers(self.dimension_).view(np.int64)
                    np.matmul(bits, multipliers, out=increment)
                np.left_shift(keys, np.uint64(1), out=keys)
                keys += increment.view(np.uint64)
            with _obs.span("quadtree.level", level=level) as level_span:
                cell_ids, order, offsets = _csr_group(keys, scratch)
                level_span.annotate(cells=int(offsets.shape[0] - 1))
            self.level_cell_ids_.append(cell_ids)
            self.level_order_.append(order)
            self.level_offsets_.append(offsets)
            if offsets.shape[0] - 1 >= self.n_points_:
                # Every point isolated in its own cell: singletons stay
                # singletons at all deeper levels, so the partition — and
                # with it the tree metric — can no longer change.
                break

        self._build_distance_table()
        _obs.counter_add("quadtree.fits", 1.0)
        _obs.counter_add("quadtree.levels_built", float(len(self.level_cell_ids_)))
        fit_span.annotate(n=self.n_points_, d=self.dimension_, depth=self.depth)

    def _build_distance_table(self) -> None:
        """Precompute ``distance_from_shared_level`` for every level.

        Slot ``l + 1`` holds the distance for shared level ``l``.  Each entry
        accumulates the per-level edge lengths in the same (shallow-to-deep)
        order as the seed implementation so the table is bit-identical to the
        seed's on-demand Python sums.
        """
        depth = self.depth
        table = np.zeros(depth + 1, dtype=np.float64)
        for level in range(-1, depth - 1):
            total = 0.0
            for below in range(level + 1, depth):
                total += self.edge_length(below)
            table[level + 1] = 2.0 * total
        self.level_distance_table_ = table

    # ------------------------------------------------------------- geometry
    @property
    def depth(self) -> int:
        """Number of levels actually built (root level included)."""
        return len(self.level_cell_ids_)

    def cell_side(self, level: int) -> float:
        """Side length of the level-``level`` grid cells: ``2^{-level} * 2 * delta``."""
        return (2.0 * self.delta_) * (2.0 ** (-level))

    def edge_length(self, level: int) -> float:
        """Length of the tree edge from a level-``level`` cell to its parent."""
        return math.sqrt(self.dimension_) * self.cell_side(level)

    def distance_from_shared_level(self, level: int) -> float:
        """Tree distance between two points whose deepest common cell is at ``level``.

        The path climbs from the leaves up to the shared cell and back down,
        so the distance is twice the sum of edge lengths below ``level`` —
        served as an O(1) lookup into :attr:`level_distance_table_`.  When
        the two points share a leaf cell the tree distance is zero.
        """
        if level >= self.depth - 1:
            return 0.0
        return float(self.level_distance_table_[max(level, -1) + 1])

    def deepest_shared_level(self, first: int, second: int) -> int:
        """Deepest level at which points ``first`` and ``second`` share a cell.

        Level 0 uses cells of side ``2 * delta``; because the shift keeps all
        points within a ``2 * delta`` window the two points may already be
        separated at level 0, in which case ``-1`` is returned and the tree
        distance is the full ``distance_from_shared_level(-1)``.
        """
        shared = -1
        for level in range(self.depth):
            if self.level_cell_ids_[level][first] == self.level_cell_ids_[level][second]:
                shared = level
            else:
                break
        return shared

    def tree_distance(self, first: int, second: int) -> float:
        """Distance between two input points in the embedded tree metric."""
        if first == second:
            return 0.0
        return self.distance_from_shared_level(self.deepest_shared_level(first, second))

    # --------------------------------------------------------------- lookup
    def cell_of(self, point_index: int, level: int) -> int:
        """Compact identifier of the level-``level`` cell containing a point."""
        return int(self.level_cell_ids_[level][point_index])

    def points_in_cell(self, level: int, cell_id: int) -> np.ndarray:
        """Indices of the points contained in a given cell (empty if unused).

        With the CSR layout this is two offset lookups and one slice; the
        returned array is a view into the level's sorted point order.
        """
        offsets = self.level_offsets_[level]
        if cell_id < 0 or cell_id >= offsets.shape[0] - 1:
            return _EMPTY_INDICES
        return self.level_order_[level][offsets[cell_id] : offsets[cell_id + 1]]

    def occupied_cells(self, level: int) -> int:
        """Number of distinct non-empty cells at ``level``."""
        return self.level_offsets_[level].shape[0] - 1


def _csr_scratch(n: int) -> tuple:
    """Reusable per-fit work arrays for :func:`_csr_group`."""
    return (
        np.empty(n, dtype=np.uint64),  # keys in sorted order
        np.empty(n, dtype=bool),  # run starts
        np.empty(n, dtype=np.int64),  # identifiers in sorted order
    )


def _csr_group(keys: np.ndarray, scratch: Optional[tuple] = None) -> tuple:
    """Group points by hash key with one sort: (compact ids, order, offsets).

    ``order`` lists the point indices sorted by compact cell identifier
    (stable, so members stay in ascending input order within a cell) and
    ``offsets[c]:offsets[c + 1]`` delimits the members of cell ``c`` inside
    it.  Identifiers rank the distinct keys in ascending (unsigned) order —
    the same labelling ``np.unique(..., return_inverse=True)`` produced in
    the seed implementation, at half the sorting cost and without the
    per-cell Python splitting loop.  ``scratch`` (see :func:`_csr_scratch`)
    lets a caller grouping many levels of the same point set reuse the
    intermediate work arrays; only the three returned arrays are fresh.

    When the compiled tier serves the ``csr_group`` kernel the whole body —
    sort, boundary detection, rank labelling, offsets — runs as one fused
    native call (pinned bit-identical to this pipeline by the registry's
    resolution-time verifier and the forced-fallback golden tests);
    ``scratch`` is ignored on that path, the kernel keeps per-thread work
    buffers of its own.
    """
    kernel = get_kernel("csr_group")
    if kernel is not None:
        return kernel(np.ascontiguousarray(keys))
    n = keys.shape[0]
    if scratch is None:
        scratch = _csr_scratch(n)
    sorted_keys, starts, ids_in_order = scratch
    order = np.argsort(keys, kind="stable")
    np.take(keys, order, out=sorted_keys)
    starts[0] = True
    np.not_equal(sorted_keys[1:], sorted_keys[:-1], out=starts[1:])
    np.cumsum(starts, dtype=np.int64, out=ids_in_order)
    ids_in_order -= 1
    cell_ids = np.empty(n, dtype=np.int64)
    cell_ids[order] = ids_in_order
    boundaries = np.flatnonzero(starts)
    offsets = np.empty(boundaries.shape[0] + 1, dtype=np.int64)
    offsets[:-1] = boundaries
    offsets[-1] = n
    return cell_ids, order, offsets

"""Randomly shifted quadtree embeddings (Section 2.4 of the paper).

A quadtree embedding maps Euclidean points into a hierarchically separated
tree metric.  The input is enclosed in a box of side ``2 * Delta`` that is
shifted by a uniformly random offset; level ``i`` of the tree partitions the
box into cells of side ``2^{-i} * 2 * Delta``, and the edge connecting a cell
to its parent has length ``sqrt(d) * 2^{-i} * 2 * Delta``.  Lemma 2.2 states
that tree distances dominate Euclidean distances and exceed them only by an
``O(d log Delta)`` factor in expectation.

The embedding is the workhorse of two components:

* ``Fast-kmeans++`` (:mod:`repro.clustering.fast_kmeans_pp`) performs its
  D²-style seeding and its point-to-center assignment in the tree metric,
  which is what removes the ``O(nk)`` assignment cost.
* The crude cost upper bound of Algorithm 2
  (:mod:`repro.core.spread_reduction`) searches for the first tree level at
  which the input occupies at least ``k + 1`` cells.

CSR cell storage
----------------
Each level stores its occupied cells in a CSR-style layout instead of a
``Dict[int, np.ndarray]``: ``level_order_[l]`` holds all point indices sorted
by their compact level-``l`` cell identifier and ``level_offsets_[l]`` holds
one offset per cell, so the members of cell ``c`` are the contiguous slice
``level_order_[l][level_offsets_[l][c]:level_offsets_[l][c + 1]]``.  Building
the layout costs a single ``argsort`` per level (the seed implementation paid
a second sort plus a Python loop splitting one array per cell), and
``points_in_cell`` becomes two-slice arithmetic with no hashing.

Tree distances are served from a precomputed cumulative edge-length table,
making ``distance_from_shared_level`` an O(1) lookup, and the level-``l + 1``
lattice is derived from the level-``l`` lattice with one multiply-add per
coordinate (``lattice * 2 + bit``) instead of re-flooring the full point set
— all three doublings are exact in IEEE arithmetic, so the cells are
bit-identical to the seed's per-level ``floor`` computation.

Seed-compatibility policy
-------------------------
With ``spread=None`` the fit consumes the random generator in exactly the
seed order (shift draw, then the spread estimate) and reports identical
``depth``, ``cell_of`` labels, cell membership, and tree distances as the
frozen snapshot in :mod:`repro.reference.seed_hotpath`; the golden tests in
``tests/test_quadtree_golden.py`` pin this down.  Passing a precomputed
``spread`` skips the per-tree estimate (so multi-tree users pay for it once)
at the cost of a different — but identically distributed — generator stream.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.geometry.grid import hash_rows
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_integer, check_points

_EMPTY_INDICES = np.empty(0, dtype=np.int64)


def compute_spread(
    points: np.ndarray,
    *,
    sample_size: int = 2000,
    block_size: int = 128,
    seed: SeedLike = 0,
) -> float:
    """Estimate the spread ``Delta`` = (max distance) / (min non-zero distance).

    The exact spread needs all pairwise distances, which is quadratic in
    ``n``.  The estimate works on a uniform subsample of at most
    ``sample_size`` points and replaces the maximum distance by the (at most
    2x larger) bounding-box diagonal.  The minimum non-zero distance is
    estimated *blockwise*: the subsample is ordered along a random 1-d
    projection (points that are close in space tend to be close in the
    projection) and pairwise distances are evaluated only inside overlapping
    windows of ``2 * block_size`` consecutive points, so the quadratic term
    shrinks from ``sample_size**2`` to ``~4 * sample_size * block_size``
    entries.  Any pair within ``block_size`` positions of each other shares a
    window, so the window minimum is a tight upper bound on the subsample
    minimum — and the spread only enters the algorithms through its
    logarithm, making the estimate more than accurate enough.
    """
    points = check_points(points)
    n = points.shape[0]
    if n < 2:
        return 1.0
    generator = as_generator(seed)
    if n > sample_size:
        subset = points[generator.choice(n, size=sample_size, replace=False)]
    else:
        subset = points
    s, d = subset.shape
    if s > 2 * block_size:
        direction = generator.normal(size=d)
        order = np.argsort(subset @ direction, kind="stable")
        subset = subset[order]
    min_squared = np.inf
    for start in range(0, s, block_size):
        window = subset[start : start + 2 * block_size]
        if window.shape[0] < 2:
            break
        norms = np.einsum("ij,ij->i", window, window)
        squared = norms[:, None] + norms[None, :] - 2.0 * (window @ window.T)
        np.maximum(squared, 0.0, out=squared)
        positive = squared[squared > 1e-24]
        if positive.size:
            min_squared = min(min_squared, float(positive.min()))
        if start + 2 * block_size >= s:
            break
    if not np.isfinite(min_squared):
        return 1.0
    min_distance = math.sqrt(min_squared)
    span = points.max(axis=0) - points.min(axis=0)
    max_distance = float(np.linalg.norm(span))
    if max_distance <= 0:
        return 1.0
    return max(1.0, max_distance / min_distance)


@dataclass
class QuadtreeEmbedding:
    """A fitted randomly shifted quadtree over a point set.

    Parameters
    ----------
    max_levels:
        Hard cap on the tree depth.  The fitted depth is
        ``min(max_levels, ceil(log2(spread)) + 2)`` and construction stops
        early once every occupied cell contains a single point.
    seed:
        Randomness for the shift.
    spread:
        Optional precomputed spread estimate (see :func:`compute_spread`).
        ``None`` estimates it during :meth:`fit`; passing a value lets
        multi-tree consumers such as
        :class:`~repro.clustering.fast_kmeans_pp.FastKMeansPlusPlus` share
        one estimate across all trees instead of recomputing it per fit.

    Attributes
    ----------
    delta_:
        Half side length of the enclosing box (an upper bound on the largest
        distance from the translated origin).
    level_cell_ids_:
        ``level_cell_ids_[l]`` is a length-``n`` integer array giving the
        compact identifier of the level-``l`` cell containing each point.
        Identifiers are consecutive integers ``0 .. occupied_cells(l) - 1``.
    level_order_ / level_offsets_:
        CSR cell storage (see the module docstring): point indices sorted by
        cell identifier plus per-cell offsets into that order.
    level_distance_table_:
        ``level_distance_table_[l + 1]`` is the tree distance between two
        points whose deepest shared cell is at level ``l`` (slot 0 holds the
        level ``-1`` root-separated distance).
    """

    max_levels: int = 32
    seed: SeedLike = None
    spread: Optional[float] = None
    delta_: float = field(default=0.0, init=False)
    shift_: Optional[np.ndarray] = field(default=None, init=False, repr=False)
    origin_: Optional[np.ndarray] = field(default=None, init=False, repr=False)
    dimension_: int = field(default=0, init=False)
    n_points_: int = field(default=0, init=False)
    level_cell_ids_: List[np.ndarray] = field(default_factory=list, init=False, repr=False)
    level_order_: List[np.ndarray] = field(default_factory=list, init=False, repr=False)
    level_offsets_: List[np.ndarray] = field(default_factory=list, init=False, repr=False)
    level_distance_table_: Optional[np.ndarray] = field(default=None, init=False, repr=False)

    # ------------------------------------------------------------------ fit
    def fit(self, points: np.ndarray) -> "QuadtreeEmbedding":
        """Build the level-wise CSR cell decomposition for ``points``."""
        points = check_points(points)
        self.n_points_, self.dimension_ = points.shape
        self.max_levels = check_integer(self.max_levels, name="max_levels")
        generator = as_generator(self.seed)

        # Translate so an arbitrary input point is the origin, then bound the
        # data inside a box of side 2 * delta (Section 2.4).
        self.origin_ = points[0].copy()
        shifted_points = points - self.origin_[None, :]
        norms = np.sqrt(np.einsum("ij,ij->i", shifted_points, shifted_points))
        self.delta_ = float(norms.max())
        if self.delta_ <= 0:
            # All points identical: a single-level tree with one cell.
            self.delta_ = 1.0
        shift_scalar = float(generator.uniform(0.0, self.delta_))
        self.shift_ = np.full(self.dimension_, shift_scalar, dtype=np.float64)
        shifted_points = shifted_points + self.shift_[None, :]

        if self.spread is not None:
            spread = float(self.spread)
        else:
            spread = compute_spread(points, seed=generator)
        depth_cap = min(self.max_levels, max(1, int(math.ceil(math.log2(spread))) + 2))

        self.level_cell_ids_ = []
        self.level_order_ = []
        self.level_offsets_ = []

        # Level-0 lattice: floor(shifted / side_0).  Deeper lattices follow
        # incrementally: halving the cell side doubles the scaled coordinate,
        # so lattice_{l+1} = 2 * lattice_l + (frac_l >= 1/2) and
        # frac_{l+1} = 2 * frac_l - bit.  Scaling by 2 and subtracting the
        # integer bit are exact in IEEE double precision, so every level's
        # cells match the seed's independent floor computation bit for bit.
        scaled = shifted_points / self.cell_side(0)
        lattice = np.floor(scaled).astype(np.int64)
        frac = scaled - lattice
        for level in range(depth_cap + 1):
            if level > 0:
                bits = frac >= 0.5
                np.multiply(lattice, 2, out=lattice)
                lattice += bits
                np.multiply(frac, 2.0, out=frac)
                frac -= bits
            cell_ids, order, offsets = _csr_group(hash_rows(lattice))
            self.level_cell_ids_.append(cell_ids)
            self.level_order_.append(order)
            self.level_offsets_.append(offsets)
            if offsets.shape[0] - 1 >= self.n_points_:
                # Every point isolated in its own cell: deeper levels add
                # nothing to the tree metric.
                break

        self._build_distance_table()
        return self

    def _build_distance_table(self) -> None:
        """Precompute ``distance_from_shared_level`` for every level.

        Slot ``l + 1`` holds the distance for shared level ``l``.  Each entry
        accumulates the per-level edge lengths in the same (shallow-to-deep)
        order as the seed implementation so the table is bit-identical to the
        seed's on-demand Python sums.
        """
        depth = self.depth
        table = np.zeros(depth + 1, dtype=np.float64)
        for level in range(-1, depth - 1):
            total = 0.0
            for below in range(level + 1, depth):
                total += self.edge_length(below)
            table[level + 1] = 2.0 * total
        self.level_distance_table_ = table

    # ------------------------------------------------------------- geometry
    @property
    def depth(self) -> int:
        """Number of levels actually built (root level included)."""
        return len(self.level_cell_ids_)

    def cell_side(self, level: int) -> float:
        """Side length of the level-``level`` grid cells: ``2^{-level} * 2 * delta``."""
        return (2.0 * self.delta_) * (2.0 ** (-level))

    def edge_length(self, level: int) -> float:
        """Length of the tree edge from a level-``level`` cell to its parent."""
        return math.sqrt(self.dimension_) * self.cell_side(level)

    def distance_from_shared_level(self, level: int) -> float:
        """Tree distance between two points whose deepest common cell is at ``level``.

        The path climbs from the leaves up to the shared cell and back down,
        so the distance is twice the sum of edge lengths below ``level`` —
        served as an O(1) lookup into :attr:`level_distance_table_`.  When
        the two points share a leaf cell the tree distance is zero.
        """
        if level >= self.depth - 1:
            return 0.0
        return float(self.level_distance_table_[max(level, -1) + 1])

    def deepest_shared_level(self, first: int, second: int) -> int:
        """Deepest level at which points ``first`` and ``second`` share a cell.

        Level 0 uses cells of side ``2 * delta``; because the shift keeps all
        points within a ``2 * delta`` window the two points may already be
        separated at level 0, in which case ``-1`` is returned and the tree
        distance is the full ``distance_from_shared_level(-1)``.
        """
        shared = -1
        for level in range(self.depth):
            if self.level_cell_ids_[level][first] == self.level_cell_ids_[level][second]:
                shared = level
            else:
                break
        return shared

    def tree_distance(self, first: int, second: int) -> float:
        """Distance between two input points in the embedded tree metric."""
        if first == second:
            return 0.0
        return self.distance_from_shared_level(self.deepest_shared_level(first, second))

    # --------------------------------------------------------------- lookup
    def cell_of(self, point_index: int, level: int) -> int:
        """Compact identifier of the level-``level`` cell containing a point."""
        return int(self.level_cell_ids_[level][point_index])

    def points_in_cell(self, level: int, cell_id: int) -> np.ndarray:
        """Indices of the points contained in a given cell (empty if unused).

        With the CSR layout this is two offset lookups and one slice; the
        returned array is a view into the level's sorted point order.
        """
        offsets = self.level_offsets_[level]
        if cell_id < 0 or cell_id >= offsets.shape[0] - 1:
            return _EMPTY_INDICES
        return self.level_order_[level][offsets[cell_id] : offsets[cell_id + 1]]

    def occupied_cells(self, level: int) -> int:
        """Number of distinct non-empty cells at ``level``."""
        return self.level_offsets_[level].shape[0] - 1


def _csr_group(keys: np.ndarray) -> tuple:
    """Group points by hash key with one sort: (compact ids, order, offsets).

    ``order`` lists the point indices sorted by compact cell identifier
    (stable, so members stay in ascending input order within a cell) and
    ``offsets[c]:offsets[c + 1]`` delimits the members of cell ``c`` inside
    it.  Identifiers rank the distinct keys in ascending (unsigned) order —
    the same labelling ``np.unique(..., return_inverse=True)`` produced in
    the seed implementation, at half the sorting cost and without the
    per-cell Python splitting loop.
    """
    n = keys.shape[0]
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    starts = np.empty(n, dtype=bool)
    starts[0] = True
    np.not_equal(sorted_keys[1:], sorted_keys[:-1], out=starts[1:])
    ids_in_order = np.cumsum(starts, dtype=np.int64) - 1
    cell_ids = np.empty(n, dtype=np.int64)
    cell_ids[order] = ids_in_order
    offsets = np.flatnonzero(starts)
    offsets = np.concatenate([offsets, [n]]).astype(np.int64)
    return cell_ids, order, offsets

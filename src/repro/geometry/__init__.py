"""Geometric substrates: distances, random projections, grids and quadtrees.

These modules contain no clustering-specific logic; they provide the
Euclidean primitives the algorithms in :mod:`repro.clustering` and
:mod:`repro.core` are built on.
"""

from repro.geometry.distances import (
    pairwise_distances,
    point_to_set_distances,
    squared_point_to_set_distances,
)
from repro.geometry.grid import GridAssignment, assign_to_grid, random_grid_shift
from repro.geometry.johnson_lindenstrauss import (
    JohnsonLindenstraussEmbedding,
    jl_target_dimension,
)
from repro.geometry.quadtree import QuadtreeEmbedding, compute_spread

__all__ = [
    "pairwise_distances",
    "point_to_set_distances",
    "squared_point_to_set_distances",
    "GridAssignment",
    "assign_to_grid",
    "random_grid_shift",
    "JohnsonLindenstraussEmbedding",
    "jl_target_dimension",
    "QuadtreeEmbedding",
    "compute_spread",
]

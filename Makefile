# Developer entry points.  `make test` is the tier-1 gate; `make bench`
# refreshes the hot-path perf trajectory and fails (without overwriting
# BENCH_hotpaths.json) when any tracked workload regressed by more than 20%.

PYTHON ?= python

.PHONY: test test-fast bench

test:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q

test-fast:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q -m "not slow"

bench:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_perf_hotpaths.py --check-regression

# Developer entry points.  `make test` is the tier-1 gate (includes the
# slow-marked bench-check smoke); `make bench` refreshes the hot-path perf
# trajectory and fails (without overwriting BENCH_hotpaths.json) when any
# tracked workload regressed by more than 20%; `make bench-check` replays
# the tracked workloads at reduced repeats and fails on the same >20%
# regression guard without ever rewriting the JSON.

PYTHON ?= python

.PHONY: test test-fast bench bench-check

test:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q

test-fast:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q -m "not slow"

bench:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_perf_hotpaths.py --check-regression

bench-check:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_perf_hotpaths.py --check-only --repeats 1

# Developer entry points.  `make test` is the tier-1 gate (includes the
# slow-marked bench-check smoke); `make test-parallel` runs only the
# process-pool / shared-memory tests (marked `parallel`; deselect them with
# `-m "not parallel"` on runners without working multiprocessing); `make
# bench` refreshes the hot-path perf trajectory and fails (without
# overwriting BENCH_hotpaths.json) when any tracked workload regressed by
# more than 20%; `make bench-check` replays the tracked workloads at the
# same best-of-3 timing used at record time (a best-of-1 replay against a
# best-of-3 recording is systematically slower and flaps the 20% gate on
# noisy hosts) and fails on the same >20% regression guard without ever
# rewriting the JSON; `make bench-check-serial` replays only the
# serial-component workloads (the strict CI gate — pool-backed rows are
# core-count-bound and stay advisory); `make bench-check-overlap` replays
# only the overlapped-reduction streaming rows (advisory for the same
# reason).

# `make trace-smoke` runs a small `compress --trace` end to end and
# validates the exported Chrome trace-event JSON (cheap CI blocking step).

PYTHON ?= python

.PHONY: test test-fast test-parallel bench bench-check bench-check-serial \
	bench-check-overlap trace-smoke

test:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q

test-fast:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q -m "not slow"

test-parallel:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q -m parallel

bench:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_perf_hotpaths.py --check-regression

bench-check:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_perf_hotpaths.py --check-only

bench-check-serial:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_perf_hotpaths.py --check-only --serial-only

bench-check-overlap:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_perf_hotpaths.py --check-only \
		--components overlap_reduce

trace-smoke:
	PYTHONPATH=src $(PYTHON) scripts/trace_smoke.py

"""Tests for the unified tracing & metrics subsystem.

Four contracts are pinned here:

* the **Chrome trace-event export schema** — every event carries the
  required keys, timestamps are monotone, and B/E duration events nest
  and match per (pid, tid) track (the property Perfetto needs to build a
  flame graph rather than a soup of slices);
* the **no-op default**: with tracing disabled nothing records, and an
  instrumentation point costs a bounded sliver of time — the guarantee
  that lets spans live inside hot loops;
* **cross-process aggregation**: worker-side spans and counters ride the
  piggyback protocol back to the host and merge with worker identity
  preserved, while the task results consumers see stay byte-identical —
  tracing observes, never perturbs;
* the **typed diagnostics dataclass** keeps the mapping-style access the
  old ad-hoc dicts offered.
"""

import json
import time

import numpy as np
import pytest

from repro import observability as obs
from repro.core import FastCoreset
from repro.observability import (
    ExecutionDiagnostics,
    NullRecorder,
    TraceRecorder,
    chrome_trace_events,
    trace_payload,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.parallel import (
    ProcessAsyncExecutor,
    SerialAsyncExecutor,
    SerialExecutor,
    ShardedCoresetBuilder,
    ThreadAsyncExecutor,
)
from repro.streaming import DataStream, StreamingCoresetPipeline


@pytest.fixture()
def blobs():
    rng = np.random.default_rng(11)
    return rng.normal(size=(600, 4)) + rng.integers(0, 5, size=(600, 1)) * 8.0


# ---------------------------------------------------------------- recorder
class TestRecorder:
    def test_default_recorder_is_noop(self):
        recorder = obs.get_recorder()
        assert isinstance(recorder, NullRecorder)
        assert not obs.tracing_active()
        # The disabled span is one shared object; nothing records.
        with obs.span("anything", detail=1) as span:
            span.annotate(more=2)
        obs.counter_add("nothing", 5.0)
        obs.gauge_set("nothing", 5.0)
        assert isinstance(obs.get_recorder(), NullRecorder)

    def test_tracing_context_installs_and_restores(self):
        assert not obs.tracing_active()
        with obs.tracing() as recorder:
            assert obs.tracing_active()
            assert obs.get_recorder() is recorder
            with obs.span("outer"):
                with obs.span("inner"):
                    pass
        assert not obs.tracing_active()
        names = [record.name for record in recorder.spans]
        # Spans close inner-first.
        assert names == ["inner", "outer"]
        depths = {record.name: record.depth for record in recorder.spans}
        assert depths == {"outer": 0, "inner": 1}

    def test_counters_accumulate_and_gauges_high_water(self):
        recorder = TraceRecorder()
        recorder.counter_add("c", 2.0)
        recorder.counter_add("c", 3.0)
        recorder.gauge_set("g", 5.0)
        recorder.gauge_set("g", 1.0)
        assert recorder.counters() == {"c": 5.0}
        assert recorder.gauges() == {"g": 1.0}
        assert recorder.gauge_high_water() == {"g": 5.0}

    def test_ring_buffer_bounds_and_counts_drops(self):
        recorder = TraceRecorder(ring_limit=4)
        for index in range(10):
            with recorder.span("s", index=index):
                pass
        assert len(recorder.spans) == 4
        assert recorder.dropped_spans == 6
        # The newest spans survive.
        assert [record.args["index"] for record in recorder.spans] == [6, 7, 8, 9]

    def test_metrics_rollup(self):
        recorder = TraceRecorder()
        for _ in range(3):
            with recorder.span("work"):
                pass
        metrics = recorder.metrics()
        assert metrics["spans"]["work"]["count"] == 3.0
        assert metrics["spans"]["work"]["wall_seconds"] >= 0.0
        assert metrics["dropped_spans"] == 0

    def test_disabled_overhead_is_bounded(self):
        # A hot-loop instrumentation point with tracing off must cost a
        # bounded sliver: generous 10µs/op bound (observed ~0.5µs) so the
        # test never flakes on slow CI, while still catching an accidental
        # always-on recorder (~10-100x slower).
        assert not obs.tracing_active()
        iterations = 20_000
        start = time.perf_counter()
        for _ in range(iterations):
            with obs.span("noop"):
                pass
        per_op = (time.perf_counter() - start) / iterations
        assert per_op < 10e-6

    def test_worker_capture_summary_and_absorb(self):
        with obs.worker_capture() as capture:
            with obs.span("task", index=3):
                obs.counter_add("worker.count", 2.0)
                obs.gauge_set("worker.gauge", 7.0)
        summary = capture.summary
        assert summary is not None and summary["pid"] > 0
        # The capture restored the previous (no-op) recorder.
        assert not obs.tracing_active()

        host = TraceRecorder()
        host.counter_add("worker.count", 1.0)
        host.gauge_set("worker.gauge", 3.0)
        host.absorb(summary)
        assert host.counters()["worker.count"] == 3.0  # summed
        assert host.gauges()["worker.gauge"] == 7.0  # max
        absorbed = [record for record in host.spans if record.name == "task"]
        assert len(absorbed) == 1
        assert absorbed[0].pid == summary["pid"]
        assert absorbed[0].args == {"index": 3}


# ------------------------------------------------------------------ export
class TestChromeTraceExport:
    def _recorder_with_nested_spans(self) -> TraceRecorder:
        recorder = TraceRecorder()
        with recorder.span("root", stage="demo"):
            with recorder.span("child"):
                pass
            with recorder.span("child"):
                with recorder.span("grandchild"):
                    pass
        return recorder

    def test_events_carry_required_keys(self):
        recorder = self._recorder_with_nested_spans()
        events = chrome_trace_events(list(recorder.spans))
        assert events, "no events exported"
        for event in events:
            for key in ("name", "cat", "ph", "ts", "pid", "tid"):
                assert key in event
            assert event["ph"] in ("B", "E")
            assert event["ts"] >= 0.0

    def test_timestamps_monotone_and_pairs_match(self):
        recorder = self._recorder_with_nested_spans()
        payload = trace_payload(recorder)
        count = validate_chrome_trace(payload)
        assert count == len(payload["traceEvents"]) > 0
        timestamps = [event["ts"] for event in payload["traceEvents"]]
        assert timestamps == sorted(timestamps)
        begins = sum(1 for e in payload["traceEvents"] if e["ph"] == "B")
        ends = sum(1 for e in payload["traceEvents"] if e["ph"] == "E")
        assert begins == ends == 4

    def test_nesting_reconstructed_even_with_timestamp_ties(self):
        # Two zero-duration siblings plus a zero-duration child: ordering
        # by timestamp alone cannot recover the nesting — the exporter
        # must use the recorded depths.
        recorder = TraceRecorder()
        t = 100.0
        for name, depth in (("a", 1), ("b", 1), ("parent", 0)):
            recorder._append(
                obs.SpanRecord(
                    name=name,
                    category="repro",
                    start=t,
                    duration=0.0,
                    cpu_duration=0.0,
                    pid=1,
                    tid=1,
                    depth=depth,
                )
            )
        events = chrome_trace_events(list(recorder.spans))
        walk = [(event["ph"], event["name"]) for event in events]
        assert walk == [
            ("B", "parent"),
            ("B", "a"),
            ("E", "a"),
            ("B", "b"),
            ("E", "b"),
            ("E", "parent"),
        ]
        validate_chrome_trace({"traceEvents": events})

    def test_validator_rejects_mismatched_pairs(self):
        events = [
            {"name": "a", "cat": "c", "ph": "B", "ts": 0.0, "pid": 1, "tid": 1},
            {"name": "b", "cat": "c", "ph": "E", "ts": 1.0, "pid": 1, "tid": 1},
        ]
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": events})

    def test_validator_rejects_unbalanced_stack(self):
        events = [
            {"name": "a", "cat": "c", "ph": "B", "ts": 0.0, "pid": 1, "tid": 1},
        ]
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": events})

    def test_write_chrome_trace_round_trips(self, tmp_path):
        recorder = self._recorder_with_nested_spans()
        recorder.counter_add("c", 1.0)
        path = tmp_path / "trace.json"
        write_chrome_trace(path, recorder, metadata={"command": "test"})
        payload = json.loads(path.read_text())
        validate_chrome_trace(payload)
        assert payload["otherData"]["command"] == "test"
        assert payload["otherData"]["metrics"]["counters"] == {"c": 1.0}

    def test_multi_thread_tracks_merge_monotonically(self):
        recorder = TraceRecorder()
        # Fake two threads' records with interleaved start times.
        for tid, offset in ((1, 0.0), (2, 0.05)):
            recorder._append(
                obs.SpanRecord(
                    name=f"t{tid}",
                    category="repro",
                    start=10.0 + offset,
                    duration=0.2,
                    cpu_duration=0.1,
                    pid=7,
                    tid=tid,
                    depth=0,
                )
            )
        payload = trace_payload(recorder)
        validate_chrome_trace(payload)
        timestamps = [event["ts"] for event in payload["traceEvents"]]
        assert timestamps == sorted(timestamps)


# ----------------------------------------------------------- diagnostics
class TestExecutionDiagnostics:
    def test_attribute_and_mapping_access_agree(self):
        diagnostics = ExecutionDiagnostics(reduces_offloaded=1.0, pending_high_water=3.0)
        assert diagnostics.reduces_offloaded == 1.0
        assert diagnostics["reduces_offloaded"] == 1.0
        assert diagnostics.get("pending_high_water") == 3.0
        assert diagnostics.get("missing", -1.0) == -1.0
        assert "reduces_offloaded" in diagnostics
        assert set(diagnostics.keys()) >= {"reductions", "host_reduces", "blocks_seen"}
        assert dict(diagnostics.items()) == diagnostics.as_dict()

    def test_extra_keys_ride_along(self):
        diagnostics = ExecutionDiagnostics.from_mapping(
            {"host_reduces": 2.0, "custom_metric": 9.0}
        )
        assert diagnostics.host_reduces == 2.0
        assert diagnostics["custom_metric"] == 9.0
        assert "custom_metric" in diagnostics.as_dict()


# ------------------------------------------- tracing never changes bytes
class TestTracingInvariance:
    def _sharded_build(self, blobs, executor_factory):
        builder = ShardedCoresetBuilder(
            FastCoreset(k=4, seed=0),
            n_shards=4,
            coreset_size_per_shard=50,
            final_coreset_size=80,
            seed=13,
        )
        executor = executor_factory()
        try:
            return builder.build(blobs, executor=executor)
        finally:
            executor.close()

    @pytest.mark.parametrize(
        "factory",
        [
            pytest.param(lambda: SerialExecutor(), id="sync-serial"),
            pytest.param(lambda: SerialAsyncExecutor(), id="async-serial"),
            pytest.param(lambda: ThreadAsyncExecutor(workers=3), id="async-thread"),
            pytest.param(
                lambda: ProcessAsyncExecutor(workers=2),
                id="async-process",
                marks=pytest.mark.parallel,
            ),
        ],
    )
    def test_sharded_build_bit_identical_with_tracing(self, blobs, factory):
        plain = self._sharded_build(blobs, factory)
        with obs.tracing() as recorder:
            traced = self._sharded_build(blobs, factory)
        assert traced.coreset.points.tobytes() == plain.coreset.points.tobytes()
        assert traced.coreset.weights.tobytes() == plain.coreset.weights.tobytes()
        # Diagnostics are documented as mode-dependent (wall-clock and
        # scheduling), so only the deterministic routing keys are compared.
        assert traced.diagnostics["reduces_offloaded"] == plain.diagnostics["reduces_offloaded"]
        assert traced.diagnostics["host_reduces"] == plain.diagnostics["host_reduces"]
        assert traced.metadata == plain.metadata
        # The traced run recorded the build and the per-shard compressions.
        names = {record.name for record in recorder.spans}
        assert "sharded.build" in names
        assert "compress.shard" in names
        validate_chrome_trace(trace_payload(recorder))

    @pytest.mark.parallel
    def test_worker_spans_carry_worker_identity(self, blobs):
        with obs.tracing() as recorder:
            self._sharded_build(blobs, lambda: ProcessAsyncExecutor(workers=2))
        host_pid = recorder.pid
        shard_spans = [r for r in recorder.spans if r.name == "compress.shard"]
        assert len(shard_spans) == 4
        assert {record.pid for record in shard_spans}.isdisjoint({host_pid})
        # Host-side orchestration spans stay on the host track.
        build_spans = [r for r in recorder.spans if r.name == "sharded.build"]
        assert build_spans and all(r.pid == host_pid for r in build_spans)

    def test_streaming_pipeline_bit_identical_with_tracing(self, blobs):
        def _run():
            executor = SerialAsyncExecutor()
            try:
                pipeline = StreamingCoresetPipeline(
                    sampler=FastCoreset(k=4, seed=0),
                    coreset_size=60,
                    seed=7,
                    executor=executor,
                )
                stream = DataStream(points=blobs, block_size=150)
                coreset, statistics = pipeline.run_with_statistics(stream)
            finally:
                executor.close()
            return coreset, statistics, pipeline.last_diagnostics

        plain, plain_stats, plain_diag = _run()
        with obs.tracing() as recorder:
            traced, traced_stats, traced_diag = _run()
        assert traced.points.tobytes() == plain.points.tobytes()
        assert traced.weights.tobytes() == plain.weights.tobytes()
        assert traced_stats == plain_stats
        for key in ("reductions", "reduces_offloaded", "host_reduces", "blocks_seen"):
            assert traced_diag[key] == plain_diag[key]
        names = {record.name for record in recorder.spans}
        assert "stream.finalize" in names
        assert "compress.leaf" in names


# --------------------------------------------------------------------- CLI
class TestCliIntegration:
    @pytest.fixture()
    def dataset(self, tmp_path, blobs):
        path = tmp_path / "data.npy"
        np.save(path, blobs)
        return path

    def test_compress_trace_writes_valid_json(self, dataset, tmp_path, capsys):
        from repro.cli import main

        trace_path = tmp_path / "out.json"
        exit_code = main(
            [
                "compress",
                str(dataset),
                "--k",
                "4",
                "--m",
                "80",
                "--shards",
                "2",
                "--output",
                str(tmp_path / "coreset.npz"),
                "--trace",
                str(trace_path),
                "--metrics",
            ]
        )
        assert exit_code == 0
        payload = json.loads(trace_path.read_text())
        assert validate_chrome_trace(payload) > 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["trace"] == str(trace_path)
        assert "compress.shard" in summary["metrics"]["spans"]
        # Tracing is torn down after the command.
        assert not obs.tracing_active()

    def test_compress_without_trace_leaves_tracing_off(self, dataset, tmp_path, capsys):
        from repro.cli import main

        exit_code = main(
            [
                "compress",
                str(dataset),
                "--k",
                "4",
                "--m",
                "80",
                "--output",
                str(tmp_path / "coreset.npz"),
            ]
        )
        assert exit_code == 0
        summary = json.loads(capsys.readouterr().out)
        assert "trace" not in summary
        assert "metrics" not in summary
        assert not obs.tracing_active()

    def test_status_subcommand(self, capsys):
        from repro.cli import main

        assert main(["status"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["native"]["tier"] in ("native", "fallback")
        assert payload["pool"]["cpu_count"] >= 1
        assert "serial" in payload["pool"]["backends"]
        assert payload["tracing_active"] is False

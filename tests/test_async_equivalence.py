"""Cross-backend equivalence suite for overlapped (async) execution.

This is the acceptance gate of the async execution layer: the streaming
pipeline and the sharded builder must produce **byte-identical** coresets —
points, weights, method, and statistics — across

* every backend ({serial, thread, process}),
* both scheduling contracts ({sync, async}),
* every worker count ({1, 2, 4}) and prefetch depth ({1, 2, 4}),
* and every *completion order*, exercised by a deliberately jittered
  executor that finishes tasks in adversarially shuffled order.

The invariance holds because every stochastic input (spawn-keyed seed,
spread hint) is fixed in arrival order *before* a task is submitted, and
results are folded in arrival/shard order regardless of completion order.
Process-pool cases carry the ``parallel`` marker so constrained runners can
deselect them.
"""

import random
import time
from concurrent.futures import Future, ThreadPoolExecutor

import numpy as np
import pytest

from repro.core import FastCoreset, SensitivitySampling
from repro.parallel import (
    AsyncExecutor,
    ProcessAsyncExecutor,
    ProcessExecutor,
    SerialAsyncExecutor,
    SerialExecutor,
    ShardedCoresetBuilder,
    ThreadAsyncExecutor,
    ThreadExecutor,
)
from repro.streaming import DataStream, MergeReduceTree, StreamingCoresetPipeline

BLOCK_SIZE = 120
CORESET_SIZE = 60
SEED = 21


class JitteredAsyncExecutor(AsyncExecutor):
    """Adversarial test double: completes tasks in shuffled order.

    Every task runs on a thread pool after a random delay, so futures
    resolve in an order that has nothing to do with submission order — the
    harness that proves consumers fold results order-independently.  Only
    the two backend hooks are implemented; everything else (submit,
    map, windowed map_unordered) is the shared :class:`AsyncExecutor`
    machinery, so the contract itself is exercised too.
    """

    name = "jitter"

    def __init__(self, *, workers: int = 4, seed: int = 0) -> None:
        super().__init__(workers=workers)
        self._delays = random.Random(seed)
        self._pool = ThreadPoolExecutor(max_workers=workers, thread_name_prefix="jitter")

    def _publish(self, payload, references):
        return payload

    def _submit_task(self, fn, task, handle) -> Future:
        delay = self._delays.random() * 0.01
        return self._pool.submit(self._run, fn, handle, task, delay)

    @staticmethod
    def _run(fn, payload, task, delay):
        time.sleep(delay)
        return fn(payload, task)

    def close(self) -> None:
        self._pool.shutdown(wait=True)


def _make_executor(backend: str, mode: str, workers: int):
    if mode == "sync":
        if backend == "serial":
            return SerialExecutor()
        if backend == "thread":
            return ThreadExecutor(workers=workers)
        return ProcessExecutor(workers=workers)
    if backend == "serial":
        return SerialAsyncExecutor()
    if backend == "thread":
        return ThreadAsyncExecutor(workers=workers)
    return ProcessAsyncExecutor(workers=workers)


def _run_pipeline(blobs, executor, *, batch_size=None, prefetch=None):
    pipeline = StreamingCoresetPipeline(
        sampler=SensitivitySampling(k=5, seed=0),
        coreset_size=CORESET_SIZE,
        seed=SEED,
        executor=executor,
        batch_size=batch_size,
        prefetch_batches=prefetch,
    )
    return pipeline.run_with_statistics(DataStream(points=blobs, block_size=BLOCK_SIZE))


def _grid():
    cases = []
    for backend in ("serial", "thread", "process"):
        marks = [pytest.mark.parallel] if backend == "process" else []
        worker_counts = (1,) if backend == "serial" else (1, 2, 4)
        for mode in ("sync", "async"):
            for workers in worker_counts:
                for prefetch in (None,) if mode == "sync" else (1, 2, 4):
                    cases.append(
                        pytest.param(
                            backend,
                            mode,
                            workers,
                            prefetch,
                            id=f"{backend}-{mode}-w{workers}-p{prefetch}",
                            marks=marks,
                        )
                    )
    return cases


class TestStreamingCrossBackend:
    """The full {backend} x {sync, async} x workers x prefetch grid."""

    @pytest.fixture(scope="class")
    def baseline(self, blobs):
        """The synchronous serial (spawn-keyed) reference run."""
        return _run_pipeline(blobs, SerialExecutor(), batch_size=1)

    @pytest.mark.parametrize("backend,mode,workers,prefetch", _grid())
    def test_byte_identical_to_sequential_baseline(
        self, blobs, baseline, backend, mode, workers, prefetch
    ):
        reference, reference_stats = baseline
        executor = _make_executor(backend, mode, workers)
        try:
            coreset, stats = _run_pipeline(blobs, executor, prefetch=prefetch)
        finally:
            executor.close()
        context = (backend, mode, workers, prefetch)
        assert coreset.points.tobytes() == reference.points.tobytes(), context
        assert coreset.weights.tobytes() == reference.weights.tobytes(), context
        assert coreset.method == reference.method, context
        assert stats == reference_stats, context

    @pytest.mark.parametrize("batch_size", (1, 3, 7))
    @pytest.mark.parametrize("prefetch", (1, 2, 4))
    def test_prefetch_and_batching_never_interact(self, blobs, baseline, batch_size, prefetch):
        reference, reference_stats = baseline
        coreset, stats = _run_pipeline(
            blobs, ThreadAsyncExecutor(workers=2), batch_size=batch_size, prefetch=prefetch
        )
        assert coreset.points.tobytes() == reference.points.tobytes()
        assert coreset.weights.tobytes() == reference.weights.tobytes()
        assert stats == reference_stats


class TestShuffledCompletionOrder:
    """The jittered harness: completion order must never reach the bytes."""

    @pytest.mark.parametrize("jitter_seed", range(4))
    def test_streaming_is_completion_order_independent(self, blobs, jitter_seed):
        reference, reference_stats = _run_pipeline(blobs, SerialExecutor(), batch_size=1)
        executor = JitteredAsyncExecutor(workers=4, seed=jitter_seed)
        try:
            coreset, stats = _run_pipeline(blobs, executor, batch_size=4, prefetch=3)
        finally:
            executor.close()
        assert coreset.points.tobytes() == reference.points.tobytes()
        assert coreset.weights.tobytes() == reference.weights.tobytes()
        assert stats == reference_stats

    @pytest.mark.parametrize("jitter_seed", range(4))
    def test_sharded_build_is_completion_order_independent(self, blobs, jitter_seed):
        builder = ShardedCoresetBuilder(
            FastCoreset(k=5, seed=0),
            n_shards=6,
            coreset_size_per_shard=40,
            final_coreset_size=100,
            seed=9,
        )
        reference = builder.build(blobs, executor=SerialExecutor())
        executor = JitteredAsyncExecutor(workers=4, seed=jitter_seed)
        try:
            result = builder.build(blobs, executor=executor)
        finally:
            executor.close()
        assert result.coreset.points.tobytes() == reference.coreset.points.tobytes()
        assert result.coreset.weights.tobytes() == reference.coreset.weights.tobytes()
        assert result.message_sizes == reference.message_sizes
        assert result.communication == reference.communication
        assert result.metadata == reference.metadata
        assert result.backend == "async+jitter"


class TestShardedAsyncBackends:
    def _builds(self, blobs, executor):
        builder = ShardedCoresetBuilder(
            SensitivitySampling(k=5, seed=0),
            n_shards=4,
            coreset_size_per_shard=60,
            seed=5,
        )
        reference = builder.build(blobs, executor=SerialExecutor())
        try:
            result = builder.build(blobs, executor=executor)
        finally:
            executor.close()
        return reference, result

    @pytest.mark.parametrize(
        "factory",
        [
            pytest.param(lambda: SerialAsyncExecutor(), id="serial"),
            pytest.param(lambda: ThreadAsyncExecutor(workers=3), id="thread"),
            pytest.param(
                lambda: ProcessAsyncExecutor(workers=2),
                id="process",
                marks=pytest.mark.parallel,
            ),
        ],
    )
    def test_async_backends_match_serial_accounting(self, blobs, factory):
        reference, result = self._builds(blobs, factory())
        assert result.coreset.points.tobytes() == reference.coreset.points.tobytes()
        assert result.coreset.weights.tobytes() == reference.coreset.weights.tobytes()
        assert result.shard_sizes == reference.shard_sizes
        assert result.message_sizes == reference.message_sizes
        assert result.communication == reference.communication
        assert result.metadata == reference.metadata


class TestTreeFutureInputs:
    """``add_blocks`` accepts future-valued blocks and bounded pending folds."""

    def _blocks(self, blobs):
        return [
            (blobs[start : start + BLOCK_SIZE], None)
            for start in range(0, blobs.shape[0], BLOCK_SIZE)
        ]

    def _finalize(self, blobs, blocks, *, executor=None, pending_limit=None):
        tree = MergeReduceTree(
            sampler=SensitivitySampling(k=5, seed=0),
            coreset_size=CORESET_SIZE,
            seed=SEED,
            spawn_seeds=True,
            pending_limit=pending_limit,
        )
        for start in range(0, len(blocks), 4):
            tree.add_blocks(blocks[start : start + 4], executor=executor)
        return tree.finalize(), tree

    def test_future_blocks_match_plain_blocks(self, blobs):
        blocks = self._blocks(blobs)
        reference, _ = self._finalize(blobs, blocks)
        with ThreadPoolExecutor(max_workers=2) as reader:
            future_blocks = [reader.submit(lambda block=block: block) for block in blocks]
            result, _ = self._finalize(blobs, future_blocks)
        assert result.points.tobytes() == reference.points.tobytes()
        assert result.weights.tobytes() == reference.weights.tobytes()

    @pytest.mark.parametrize("pending_limit", (None, 1, 3, 16))
    def test_pending_limit_changes_nothing(self, blobs, pending_limit):
        blocks = self._blocks(blobs)
        reference, reference_tree = self._finalize(blobs, blocks)
        executor = ThreadAsyncExecutor(workers=2)
        try:
            result, tree = self._finalize(
                blobs, blocks, executor=executor, pending_limit=pending_limit
            )
        finally:
            executor.close()
        assert not tree._pending
        assert result.points.tobytes() == reference.points.tobytes()
        assert result.weights.tobytes() == reference.weights.tobytes()
        assert tree.reductions == reference_tree.reductions
        assert tree.spread_refreshes == reference_tree.spread_refreshes

    def test_pending_futures_respect_limit_between_batches(self, blobs):
        blocks = self._blocks(blobs)
        tree = MergeReduceTree(
            sampler=SensitivitySampling(k=5, seed=0),
            coreset_size=CORESET_SIZE,
            seed=SEED,
            spawn_seeds=True,
            pending_limit=2,
        )
        executor = SerialAsyncExecutor()
        tree.add_blocks(blocks[:6], executor=executor)
        assert len(tree._pending) == 2
        tree.flush()
        assert not tree._pending

"""Cross-backend equivalence suite for overlapped (async) execution.

This is the acceptance gate of the async execution layer: the streaming
pipeline and the sharded builder must produce **byte-identical** coresets —
points, weights, method, and statistics — across

* every backend ({serial, thread, process}),
* both scheduling contracts ({sync, async}),
* every worker count ({1, 2, 4}) and prefetch depth ({1, 2, 4}),
* and every *completion order*, exercised by a deliberately jittered
  executor that finishes tasks in adversarially shuffled order.

The invariance holds because every stochastic input (spawn-keyed seed,
spread hint) is fixed in arrival order *before* a task is submitted, and
results are folded in arrival/shard order regardless of completion order.
Process-pool cases carry the ``parallel`` marker so constrained runners can
deselect them.
"""

import random
import time
from concurrent.futures import Future, ThreadPoolExecutor

import numpy as np
import pytest

from repro.core import FastCoreset, SensitivitySampling
from repro.core.base import CoresetConstruction
from repro.core.coreset import Coreset
from repro.parallel import (
    AsyncExecutor,
    ProcessAsyncExecutor,
    ProcessExecutor,
    SerialAsyncExecutor,
    SerialExecutor,
    ShardedCoresetBuilder,
    ThreadAsyncExecutor,
    ThreadExecutor,
)
from repro.streaming import DataStream, MergeReduceTree, StreamingCoresetPipeline

BLOCK_SIZE = 120
CORESET_SIZE = 60
SEED = 21


class JitteredAsyncExecutor(AsyncExecutor):
    """Adversarial test double: completes tasks in shuffled order.

    Every task runs on a thread pool after a random delay, so futures
    resolve in an order that has nothing to do with submission order — the
    harness that proves consumers fold results order-independently.  Only
    the two backend hooks are implemented; everything else (submit,
    map, windowed map_unordered) is the shared :class:`AsyncExecutor`
    machinery, so the contract itself is exercised too.
    """

    name = "jitter"

    def __init__(self, *, workers: int = 4, seed: int = 0) -> None:
        super().__init__(workers=workers)
        self._delays = random.Random(seed)
        self._pool = ThreadPoolExecutor(max_workers=workers, thread_name_prefix="jitter")

    def _publish(self, payload, references):
        return payload

    def _submit_task(self, fn, task, handle) -> Future:
        delay = self._delays.random() * 0.01
        return self._pool.submit(self._run, fn, handle, task, delay)

    @staticmethod
    def _run(fn, payload, task, delay):
        time.sleep(delay)
        return fn(payload, task)

    def close(self) -> None:
        self._pool.shutdown(wait=True)


def _make_executor(backend: str, mode: str, workers: int):
    if mode == "sync":
        if backend == "serial":
            return SerialExecutor()
        if backend == "thread":
            return ThreadExecutor(workers=workers)
        return ProcessExecutor(workers=workers)
    if backend == "serial":
        return SerialAsyncExecutor()
    if backend == "thread":
        return ThreadAsyncExecutor(workers=workers)
    return ProcessAsyncExecutor(workers=workers)


def _run_pipeline(blobs, executor, *, batch_size=None, prefetch=None, overlap=True):
    pipeline = StreamingCoresetPipeline(
        sampler=SensitivitySampling(k=5, seed=0),
        coreset_size=CORESET_SIZE,
        seed=SEED,
        executor=executor,
        batch_size=batch_size,
        prefetch_batches=prefetch,
        overlap_reduces=overlap,
    )
    return pipeline.run_with_statistics(DataStream(points=blobs, block_size=BLOCK_SIZE))


class _ReduceBomb(CoresetConstruction):
    """Test sampler that compresses leaves fine but explodes on reduces.

    Leaf blocks arrive with unit weights; reduce inputs are merged coreset
    messages whose weights were rescaled by earlier compressions — so a
    non-unit weight identifies a reduce, which is exactly where the bomb
    goes off.  Module-level so the process backend can pickle it.
    """

    name = "reduce_bomb"

    def _sample(self, points, weights, m, seed, spread=None, cost_bound=None):
        if np.any(weights != 1.0):
            raise RuntimeError("reduce bomb")
        scale = weights.sum() / weights[:m].sum()
        return Coreset(points=points[:m], weights=weights[:m] * scale)


def _grid():
    cases = []
    for backend in ("serial", "thread", "process"):
        marks = [pytest.mark.parallel] if backend == "process" else []
        worker_counts = (1,) if backend == "serial" else (1, 2, 4)
        for mode in ("sync", "async"):
            for workers in worker_counts:
                for prefetch in (None,) if mode == "sync" else (1, 2, 4):
                    cases.append(
                        pytest.param(
                            backend,
                            mode,
                            workers,
                            prefetch,
                            id=f"{backend}-{mode}-w{workers}-p{prefetch}",
                            marks=marks,
                        )
                    )
    return cases


class TestStreamingCrossBackend:
    """The full {backend} x {sync, async} x workers x prefetch grid."""

    @pytest.fixture(scope="class")
    def baseline(self, blobs):
        """The synchronous serial (spawn-keyed) reference run."""
        return _run_pipeline(blobs, SerialExecutor(), batch_size=1)

    @pytest.mark.parametrize("backend,mode,workers,prefetch", _grid())
    def test_byte_identical_to_sequential_baseline(
        self, blobs, baseline, backend, mode, workers, prefetch
    ):
        reference, reference_stats = baseline
        executor = _make_executor(backend, mode, workers)
        try:
            coreset, stats = _run_pipeline(blobs, executor, prefetch=prefetch)
        finally:
            executor.close()
        context = (backend, mode, workers, prefetch)
        assert coreset.points.tobytes() == reference.points.tobytes(), context
        assert coreset.weights.tobytes() == reference.weights.tobytes(), context
        assert coreset.method == reference.method, context
        assert stats == reference_stats, context

    @pytest.mark.parametrize("batch_size", (1, 3, 7))
    @pytest.mark.parametrize("prefetch", (1, 2, 4))
    def test_prefetch_and_batching_never_interact(self, blobs, baseline, batch_size, prefetch):
        reference, reference_stats = baseline
        coreset, stats = _run_pipeline(
            blobs, ThreadAsyncExecutor(workers=2), batch_size=batch_size, prefetch=prefetch
        )
        assert coreset.points.tobytes() == reference.points.tobytes()
        assert coreset.weights.tobytes() == reference.weights.tobytes()
        assert stats == reference_stats


class TestShuffledCompletionOrder:
    """The jittered harness: completion order must never reach the bytes."""

    @pytest.mark.parametrize("overlap", (False, True), ids=("leaf-only", "overlap-reduce"))
    @pytest.mark.parametrize("jitter_seed", range(4))
    def test_streaming_is_completion_order_independent(self, blobs, jitter_seed, overlap):
        reference, reference_stats = _run_pipeline(blobs, SerialExecutor(), batch_size=1)
        executor = JitteredAsyncExecutor(workers=4, seed=jitter_seed)
        try:
            coreset, stats = _run_pipeline(
                blobs, executor, batch_size=4, prefetch=3, overlap=overlap
            )
        finally:
            executor.close()
        assert coreset.points.tobytes() == reference.points.tobytes()
        assert coreset.weights.tobytes() == reference.weights.tobytes()
        assert stats == reference_stats

    @pytest.mark.parametrize("jitter_seed", range(4))
    def test_sharded_build_is_completion_order_independent(self, blobs, jitter_seed):
        builder = ShardedCoresetBuilder(
            FastCoreset(k=5, seed=0),
            n_shards=6,
            coreset_size_per_shard=40,
            final_coreset_size=100,
            seed=9,
        )
        reference = builder.build(blobs, executor=SerialExecutor())
        executor = JitteredAsyncExecutor(workers=4, seed=jitter_seed)
        try:
            result = builder.build(blobs, executor=executor)
        finally:
            executor.close()
        assert result.coreset.points.tobytes() == reference.coreset.points.tobytes()
        assert result.coreset.weights.tobytes() == reference.coreset.weights.tobytes()
        assert result.message_sizes == reference.message_sizes
        assert result.communication == reference.communication
        assert result.metadata == reference.metadata
        assert result.backend == "async+jitter"
        # The final re-compression rode the pool; the host ran no reduce.
        assert result.diagnostics["reduces_offloaded"] == 1.0
        assert result.diagnostics["host_reduces"] == 0.0
        assert reference.diagnostics["reduces_offloaded"] == 0.0
        assert reference.diagnostics["host_reduces"] == 1.0


class TestShardedAsyncBackends:
    def _builds(self, blobs, executor):
        builder = ShardedCoresetBuilder(
            SensitivitySampling(k=5, seed=0),
            n_shards=4,
            coreset_size_per_shard=60,
            seed=5,
        )
        reference = builder.build(blobs, executor=SerialExecutor())
        try:
            result = builder.build(blobs, executor=executor)
        finally:
            executor.close()
        return reference, result

    @pytest.mark.parametrize(
        "factory",
        [
            pytest.param(lambda: SerialAsyncExecutor(), id="serial"),
            pytest.param(lambda: ThreadAsyncExecutor(workers=3), id="thread"),
            pytest.param(
                lambda: ProcessAsyncExecutor(workers=2),
                id="process",
                marks=pytest.mark.parallel,
            ),
        ],
    )
    def test_async_backends_match_serial_accounting(self, blobs, factory):
        reference, result = self._builds(blobs, factory())
        assert result.coreset.points.tobytes() == reference.coreset.points.tobytes()
        assert result.coreset.weights.tobytes() == reference.coreset.weights.tobytes()
        assert result.shard_sizes == reference.shard_sizes
        assert result.message_sizes == reference.message_sizes
        assert result.communication == reference.communication
        assert result.metadata == reference.metadata


class TestTreeFutureInputs:
    """``add_blocks`` accepts future-valued blocks and bounded pending folds."""

    def _blocks(self, blobs):
        return [
            (blobs[start : start + BLOCK_SIZE], None)
            for start in range(0, blobs.shape[0], BLOCK_SIZE)
        ]

    def _finalize(self, blobs, blocks, *, executor=None, pending_limit=None):
        tree = MergeReduceTree(
            sampler=SensitivitySampling(k=5, seed=0),
            coreset_size=CORESET_SIZE,
            seed=SEED,
            spawn_seeds=True,
            pending_limit=pending_limit,
        )
        for start in range(0, len(blocks), 4):
            tree.add_blocks(blocks[start : start + 4], executor=executor)
        return tree.finalize(), tree

    def test_future_blocks_match_plain_blocks(self, blobs):
        blocks = self._blocks(blobs)
        reference, _ = self._finalize(blobs, blocks)
        with ThreadPoolExecutor(max_workers=2) as reader:
            future_blocks = [reader.submit(lambda block=block: block) for block in blocks]
            result, _ = self._finalize(blobs, future_blocks)
        assert result.points.tobytes() == reference.points.tobytes()
        assert result.weights.tobytes() == reference.weights.tobytes()

    @pytest.mark.parametrize("pending_limit", (None, 1, 3, 16))
    def test_pending_limit_changes_nothing(self, blobs, pending_limit):
        blocks = self._blocks(blobs)
        reference, reference_tree = self._finalize(blobs, blocks)
        executor = ThreadAsyncExecutor(workers=2)
        try:
            result, tree = self._finalize(
                blobs, blocks, executor=executor, pending_limit=pending_limit
            )
        finally:
            executor.close()
        assert not tree._pending
        assert result.points.tobytes() == reference.points.tobytes()
        assert result.weights.tobytes() == reference.weights.tobytes()
        assert tree.reductions == reference_tree.reductions
        assert tree.spread_refreshes == reference_tree.spread_refreshes

    def test_pending_futures_respect_limit_between_batches(self, blobs):
        blocks = self._blocks(blobs)
        tree = MergeReduceTree(
            sampler=SensitivitySampling(k=5, seed=0),
            coreset_size=CORESET_SIZE,
            seed=SEED,
            spawn_seeds=True,
            pending_limit=2,
        )
        executor = SerialAsyncExecutor()
        tree.add_blocks(blocks[:6], executor=executor)
        assert len(tree._pending) == 2
        tree.flush()
        assert not tree._pending


class TestOverlappedReduceModes:
    """{sync, async-leaf-only, async+overlapped-reduce} x jitter x pending-limit.

    The three scheduling modes must agree byte-for-byte under adversarial
    completion orders and any overlap window; the diagnostics must reflect
    where the reduces actually ran.
    """

    def _blocks(self, blobs):
        return [
            (blobs[start : start + BLOCK_SIZE], None)
            for start in range(0, blobs.shape[0], BLOCK_SIZE)
        ]

    def _run_tree(self, blocks, *, executor=None, overlap=True, pending_limit=None):
        tree = MergeReduceTree(
            sampler=SensitivitySampling(k=5, seed=0),
            coreset_size=CORESET_SIZE,
            seed=SEED,
            spawn_seeds=True,
            pending_limit=pending_limit,
            overlap_reduces=overlap,
        )
        for start in range(0, len(blocks), 4):
            tree.add_blocks(blocks[start : start + 4], executor=executor)
        return tree.finalize(), tree

    @pytest.mark.parametrize("pending_limit", (None, 1, 3))
    @pytest.mark.parametrize("jitter_seed", range(2))
    @pytest.mark.parametrize("mode", ("sync", "async-leaf", "async-overlap"))
    def test_modes_agree_bytewise(self, blobs, mode, jitter_seed, pending_limit):
        blocks = self._blocks(blobs)
        reference, reference_tree = self._run_tree(blocks)
        if mode == "sync":
            executor = ThreadExecutor(workers=2)
        else:
            executor = JitteredAsyncExecutor(workers=4, seed=jitter_seed)
        try:
            result, tree = self._run_tree(
                blocks,
                executor=executor,
                overlap=(mode == "async-overlap"),
                pending_limit=pending_limit,
            )
        finally:
            executor.close()
        context = (mode, jitter_seed, pending_limit)
        assert result.points.tobytes() == reference.points.tobytes(), context
        assert result.weights.tobytes() == reference.weights.tobytes(), context
        assert tree.reductions == reference_tree.reductions, context
        assert tree.spread_refreshes == reference_tree.spread_refreshes, context
        if mode == "async-overlap":
            assert tree.reduces_offloaded == tree.reductions - tree.host_reduces, context
            assert tree.reduces_offloaded > 0, context
            assert tree.host_reduces <= 1, context  # only the final re-compression
        else:
            assert tree.reduces_offloaded == 0, context
            assert tree.host_reduces == tree.reductions, context

    def test_pipeline_flag_reaches_the_tree(self, blobs):
        reference, reference_stats = _run_pipeline(blobs, SerialExecutor(), batch_size=1)
        for overlap in (False, True):
            executor = ThreadAsyncExecutor(workers=2)
            pipeline = StreamingCoresetPipeline(
                sampler=SensitivitySampling(k=5, seed=0),
                coreset_size=CORESET_SIZE,
                seed=SEED,
                executor=executor,
                overlap_reduces=overlap,
            )
            try:
                coreset, stats = pipeline.run_with_statistics(
                    DataStream(points=blobs, block_size=BLOCK_SIZE)
                )
            finally:
                executor.close()
            assert coreset.points.tobytes() == reference.points.tobytes()
            assert stats == reference_stats
            offloaded = pipeline.last_diagnostics["reduces_offloaded"]
            assert (offloaded > 0) == overlap
            assert pipeline.last_diagnostics["pending_high_water"] > 0


class TestReduceFailurePath:
    """A reduce exception must leave no orphaned futures or pinned segments."""

    def _blocks(self, blobs, count):
        return [
            (blobs[start : start + BLOCK_SIZE], None)
            for start in range(0, count * BLOCK_SIZE, BLOCK_SIZE)
        ]

    def _tree(self):
        return MergeReduceTree(
            sampler=_ReduceBomb(),
            coreset_size=CORESET_SIZE,
            seed=SEED,
            spawn_seeds=True,
        )

    def test_thread_backend_settles_every_future(self, blobs):
        executor = ThreadAsyncExecutor(workers=2)
        tree = self._tree()
        try:
            tree.add_blocks(self._blocks(blobs, 4), executor=executor)
            tree.flush()  # must not raise: errors stay in the futures
            assert not tree._pending
            futures = [v for v in tree.levels.values() if isinstance(v, Future)]
            assert futures and all(f.done() for f in futures)
            with pytest.raises(RuntimeError, match="reduce bomb"):
                tree.finalize()
        finally:
            executor.close()

    @pytest.mark.parallel
    def test_process_backend_releases_segments(self, blobs):
        executor = ProcessAsyncExecutor(workers=2)
        tree = self._tree()
        try:
            tree.add_blocks(self._blocks(blobs, 4), executor=executor)
            tree.flush()
            with pytest.raises(RuntimeError, match="reduce bomb"):
                tree.finalize()
            # Every publication lease must be back on the free list: a
            # failed reduce may not pin its payload's shared-memory segment.
            assert len(executor._free) == len(executor._segments)
        finally:
            executor.close()

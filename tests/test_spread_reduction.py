"""Unit tests for repro.core.spread_reduction (Algorithms 2 and 3)."""

import numpy as np
import pytest

from repro.clustering.cost import clustering_cost
from repro.clustering.kmeans_pp import kmeans_plus_plus
from repro.core.spread_reduction import (
    CrudeApproximation,
    crude_cost_upper_bound,
    reduce_spread,
)
from repro.data.synthetic import high_spread_dataset
from repro.native.registry import use_native


@pytest.fixture(autouse=True, params=[True, False], ids=["native", "fallback"])
def _dispatch_mode(request):
    """Run the whole module under both kernel-dispatch modes.

    ``crude_cost_upper_bound`` promises identical bounds whether the
    compiled ``crude_bound_probe`` kernel serves or the numpy occupancy
    probe runs, so every behavioural test must hold in both modes."""
    with use_native(request.param):
        yield request.param


class TestCrudeCostUpperBound:
    def test_upper_bound_dominates_optimum(self, blobs):
        k = 6
        approx = crude_cost_upper_bound(blobs, k, seed=0)
        # The k-median optimum is at most the cost of any k-median solution;
        # use a k-means++ seeding as a stand-in upper estimate of OPT.
        seeding_cost = clustering_cost(blobs, kmeans_plus_plus(blobs, k, z=1, seed=0).centers, z=1)
        assert approx.upper_bound >= seeding_cost * 0.9

    def test_upper_bound_not_absurdly_loose(self, blobs):
        # Lemma 4.2 allows a poly(n, d, log Delta) factor; check that the
        # implementation stays within that (very generous) envelope.
        k = 6
        approx = crude_cost_upper_bound(blobs, k, seed=0)
        seeding_cost = clustering_cost(blobs, kmeans_plus_plus(blobs, k, z=1, seed=0).centers, z=1)
        n, d = blobs.shape
        assert approx.upper_bound <= seeding_cost * n * d * 100

    def test_kmeans_bound_uses_lemma_81(self, blobs):
        approx = crude_cost_upper_bound(blobs, 4, seed=0)
        assert approx.upper_bound_for(2) == pytest.approx(
            approx.n_points * approx.upper_bound**2
        )
        assert approx.upper_bound_for(1) == approx.upper_bound

    def test_few_points_special_case(self):
        points = np.arange(6, dtype=float).reshape(3, 2)
        approx = crude_cost_upper_bound(points, 5, seed=0)
        assert approx.upper_bound > 0

    def test_duplicate_points_special_case(self):
        points = np.ones((50, 2))
        approx = crude_cost_upper_bound(points, 3, seed=0)
        assert approx.upper_bound > 0

    def test_binary_search_call_count_is_logarithmic(self, blobs):
        approx = crude_cost_upper_bound(blobs, 6, seed=0)
        # O(log(#levels)) + the initial probe; far fewer than the number of levels.
        assert approx.calls <= 12

    def test_result_dataclass_fields(self, blobs):
        approx = crude_cost_upper_bound(blobs, 6, seed=0)
        assert isinstance(approx, CrudeApproximation)
        assert approx.cell_side > 0
        assert approx.diameter > 0
        assert approx.n_points == blobs.shape[0]


class TestReduceSpread:
    def test_shape_and_row_order_preserved(self, blobs):
        result = reduce_spread(blobs, 6, seed=0)
        assert result.points.shape == blobs.shape
        assert result.shifts.shape == blobs.shape

    def test_restore_recovers_original_up_to_rounding(self, blobs):
        result = reduce_spread(blobs, 6, seed=0)
        indices = np.arange(blobs.shape[0])
        restored = result.restore(result.points, indices)
        tolerance = max(result.granularity, 1e-9) * 2
        np.testing.assert_allclose(restored, blobs, atol=tolerance)

    def test_spread_does_not_increase(self):
        dataset = high_spread_dataset(n=3000, r=25, seed=0)
        result = reduce_spread(dataset.points, 10, seed=0)
        assert result.reduced_spread <= result.original_spread * 1.01

    def test_cost_preserved_for_reasonable_solutions(self, blobs):
        # Lemma 4.5: any reasonable solution has (almost) the same cost on P
        # and P'.  Centers must be translated consistently, so compare costs
        # of the solution computed on the reduced data against the same
        # cluster structure on the original data.
        result = reduce_spread(blobs, 6, seed=0)
        solution = kmeans_plus_plus(result.points, 6, seed=1)
        reduced_cost = clustering_cost(result.points, solution.centers, z=1)
        # Map the chosen centers back to original coordinates via the stored
        # per-point shifts (centers are input points of P').
        center_indices = [
            int(np.argmin(np.linalg.norm(result.points - center, axis=1)))
            for center in solution.centers
        ]
        original_centers = blobs[center_indices]
        original_cost = clustering_cost(blobs, original_centers, z=1)
        assert reduced_cost == pytest.approx(original_cost, rel=0.05)

    def test_gaussian_data_essentially_untouched(self, blobs):
        # For low-spread data the grid side exceeds the diameter, so the
        # translation step is a no-op and only rounding can perturb points.
        result = reduce_spread(blobs, 6, seed=0)
        np.testing.assert_allclose(result.points, blobs, atol=max(result.granularity, 1e-9) * 2)

    def test_explicit_upper_bound_accepted(self, blobs):
        result = reduce_spread(blobs, 6, upper_bound=1e6, seed=0)
        assert result.upper_bound == pytest.approx(1e6)

    def test_cells_partition_points(self, blobs):
        result = reduce_spread(blobs, 6, seed=0)
        members = np.concatenate(list(result.cells.values()))
        assert sorted(members.tolist()) == list(range(blobs.shape[0]))

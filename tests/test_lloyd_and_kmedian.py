"""Unit tests for repro.clustering.lloyd and repro.clustering.kmedian."""

import numpy as np
import pytest

from repro.clustering.cost import clustering_cost
from repro.clustering.kmeans_pp import kmeans_plus_plus
from repro.clustering.kmedian import cluster_representative, geometric_median, kmedian
from repro.clustering.lloyd import kmeans, lloyd_iteration


class TestLloyd:
    def test_cost_not_worse_than_seeding(self, blobs):
        seeding = kmeans_plus_plus(blobs, 6, seed=0)
        result = kmeans(blobs, 6, initial_centers=seeding.centers, seed=0)
        assert result.cost <= seeding.cost + 1e-6

    def test_monotone_improvement_over_iterations(self, blobs):
        one = kmeans(blobs, 5, max_iterations=1, seed=3)
        many = kmeans(blobs, 5, max_iterations=20, seed=3)
        assert many.cost <= one.cost + 1e-6

    def test_result_fields(self, blobs):
        result = kmeans(blobs, 4, seed=0)
        assert result.centers.shape == (4, blobs.shape[1])
        assert result.assignment.shape == (blobs.shape[0],)
        assert result.iterations >= 1
        assert result.cost == pytest.approx(clustering_cost(blobs, result.centers), rel=1e-6)

    def test_perfectly_separable_data_reaches_zero_cost(self):
        points = np.concatenate([np.zeros((50, 2)), np.ones((50, 2)) * 100])
        result = kmeans(points, 2, seed=0)
        assert result.cost == pytest.approx(0.0, abs=1e-6)

    def test_weighted_clustering_respects_weights(self):
        points = np.array([[0.0], [1.0], [100.0]])
        weights = np.array([1.0, 1.0, 1e-9])
        result = kmeans(points, 1, weights=weights, seed=0)
        # The heavy points dominate: the single center must sit near 0.5.
        assert result.centers[0, 0] == pytest.approx(0.5, abs=0.1)

    def test_converged_flag(self, blobs):
        result = kmeans(blobs, 3, max_iterations=100, tolerance=1e-3, seed=1)
        assert result.converged

    def test_empty_cluster_reseeded(self):
        # Force an initial center far away from all points: after one Lloyd
        # step no point is assigned to it and it must be re-seeded.
        points = np.concatenate([np.zeros((30, 2)), np.ones((30, 2))])
        initial = np.array([[0.0, 0.0], [1.0, 1.0], [1e6, 1e6]])
        result = kmeans(points, 3, initial_centers=initial, max_iterations=3, seed=0)
        assert np.isfinite(result.centers).all()
        assert result.centers[:, 0].max() < 1e6

    def test_lloyd_iteration_moves_to_means(self):
        points = np.array([[0.0, 0.0], [2.0, 0.0], [10.0, 0.0], [12.0, 0.0]])
        centers = np.array([[1.0, 0.0], [11.0, 0.0]])
        updated = lloyd_iteration(points, centers, np.ones(4), np.random.default_rng(0))
        np.testing.assert_allclose(updated, [[1.0, 0.0], [11.0, 0.0]])

    def test_as_solution_view(self, blobs):
        result = kmeans(blobs, 3, seed=0)
        solution = result.as_solution()
        assert solution.k == 3
        assert solution.z == 2


class TestGeometricMedian:
    def test_single_point(self):
        point = np.array([[3.0, 4.0]])
        np.testing.assert_allclose(geometric_median(point), [3.0, 4.0])

    def test_collinear_points_median(self):
        points = np.array([[0.0], [1.0], [10.0]])
        # The geometric median of collinear points is the (1-D) median.
        assert geometric_median(points)[0] == pytest.approx(1.0, abs=1e-3)

    def test_weights_pull_the_median(self):
        points = np.array([[0.0], [10.0]])
        weights = np.array([10.0, 1.0])
        assert geometric_median(points, weights=weights)[0] == pytest.approx(0.0, abs=0.5)

    def test_median_minimises_cost_locally(self, rng):
        points = rng.normal(size=(200, 3))
        median = geometric_median(points)
        cost_at_median = np.linalg.norm(points - median, axis=1).sum()
        for _ in range(5):
            perturbed = median + rng.normal(scale=0.05, size=3)
            cost_perturbed = np.linalg.norm(points - perturbed, axis=1).sum()
            assert cost_at_median <= cost_perturbed + 1e-6

    def test_robust_to_outlier_compared_to_mean(self):
        points = np.concatenate([np.zeros((99, 2)), np.array([[1000.0, 1000.0]])])
        median = geometric_median(points)
        mean = points.mean(axis=0)
        assert np.linalg.norm(median) < np.linalg.norm(mean)


class TestKMedian:
    def test_cost_decreases_from_seeding(self, blobs):
        seeding = kmeans_plus_plus(blobs, 5, z=1, seed=0)
        result = kmedian(blobs, 5, initial_centers=seeding.centers, seed=0)
        assert result.cost <= clustering_cost(blobs, seeding.centers, z=1) + 1e-6

    def test_result_cost_consistent(self, blobs):
        result = kmedian(blobs, 4, seed=1)
        assert result.cost == pytest.approx(clustering_cost(blobs, result.centers, z=1), rel=1e-6)

    def test_separable_data(self):
        points = np.concatenate([np.zeros((40, 2)), np.ones((40, 2)) * 50])
        result = kmedian(points, 2, seed=0)
        assert result.cost == pytest.approx(0.0, abs=1e-3)

    def test_as_solution_has_z_one(self, blobs):
        assert kmedian(blobs, 3, seed=0).as_solution().z == 1


class TestClusterRepresentative:
    def test_z2_is_mean(self, rng):
        points = rng.normal(size=(50, 4))
        np.testing.assert_allclose(cluster_representative(points, z=2), points.mean(axis=0))

    def test_z1_is_geometric_median(self):
        points = np.array([[0.0], [1.0], [100.0]])
        representative = cluster_representative(points, z=1)
        assert representative[0] == pytest.approx(1.0, abs=1e-2)

    def test_weighted_mean(self):
        points = np.array([[0.0], [10.0]])
        weights = np.array([3.0, 1.0])
        assert cluster_representative(points, weights=weights, z=2)[0] == pytest.approx(2.5)

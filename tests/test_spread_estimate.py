"""Blocked partial min-distance spread estimate vs the frozen full-pairwise one.

``compute_spread`` only feeds logarithms (quadtree depth caps, granularity
denominators), so the contract is log-level agreement with the exact
subsample spread — which the projection-sorted blocked estimator must keep
while evaluating an order of magnitude fewer pairs.
"""

import math

import numpy as np
import pytest

from repro.data.synthetic import gaussian_mixture
from repro.geometry.quadtree import compute_spread
from repro.reference.seed_streaming import seed_compute_spread


def _exact_spread(points: np.ndarray) -> float:
    norms = np.einsum("ij,ij->i", points, points)
    squared = norms[:, None] + norms[None, :] - 2.0 * (points @ points.T)
    np.maximum(squared, 0.0, out=squared)
    positive = squared[squared > 1e-24]
    if positive.size == 0:
        return 1.0
    span = points.max(axis=0) - points.min(axis=0)
    return max(1.0, float(np.linalg.norm(span)) / math.sqrt(float(positive.min())))


class TestBlockedSpreadEstimate:
    @pytest.mark.parametrize("seed", range(4))
    def test_log_level_agreement_with_exact(self, seed):
        points = gaussian_mixture(n=1500, d=8, n_clusters=6, gamma=float(seed), seed=seed).points
        exact = _exact_spread(points)
        estimate = compute_spread(points, seed=seed)
        # The blocked window only *restricts* the candidate pairs, so the
        # estimate can exceed the exact subsample spread never undershoot...
        # in log terms both directions must stay within a couple of doublings.
        assert estimate >= 1.0
        assert abs(math.log2(estimate) - math.log2(exact)) <= 2.0

    @pytest.mark.parametrize("seed", range(4))
    def test_log_level_agreement_with_frozen_estimator(self, seed):
        points = gaussian_mixture(n=6000, d=10, n_clusters=8, gamma=1.0, seed=seed).points
        new = compute_spread(points, seed=seed)
        old = seed_compute_spread(points, seed=seed)
        assert abs(math.log2(new) - math.log2(old)) <= 2.0

    def test_min_distance_never_underestimated(self):
        """Restricting pairs can only raise the min, so spread never inflates
        past the exact subsample value."""
        rng = np.random.default_rng(9)
        points = rng.uniform(size=(1000, 4))
        assert compute_spread(points, seed=0) <= _exact_spread(points) * (1 + 1e-9)

    def test_degenerate_inputs(self):
        assert compute_spread(np.zeros((100, 3))) == 1.0
        assert compute_spread(np.ones((1, 2))) == 1.0
        assert compute_spread(np.array([[0.0, 0.0], [3.0, 4.0]])) == pytest.approx(1.0)
        duplicated = np.repeat(np.random.default_rng(0).normal(size=(5, 3)), 100, axis=0)
        assert compute_spread(duplicated, seed=0) > 1.0

    def test_small_inputs_skip_projection_ordering(self):
        """Fewer points than one window: all pairs are examined, matching the
        frozen estimator exactly."""
        points = np.random.default_rng(4).normal(size=(120, 6))
        assert compute_spread(points, seed=0) == seed_compute_spread(points, seed=0)

    def test_subsampled_path_is_deterministic(self):
        points = np.random.default_rng(8).normal(size=(5000, 5))
        assert compute_spread(points, seed=3) == compute_spread(points, seed=3)

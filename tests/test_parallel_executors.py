"""Unit tests for the executor backends and the sharding primitives.

The task functions live at module level so the process backend can pickle
them by reference — the same requirement the library's own task functions
(:func:`repro.parallel.sharding.compress_shard`) satisfy.
"""

import numpy as np
import pytest

from repro.parallel import (
    BACKENDS,
    ArrayPayload,
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    resolve_executor,
    shard_bounds,
)


def _slice_total(payload, task):
    start, stop, scale = task
    return float(payload.points[start:stop].sum() + scale * payload.weights[start:stop].sum())


def _double(payload, task):
    assert payload is None
    return task * 2


@pytest.fixture(scope="module")
def payload():
    rng = np.random.default_rng(0)
    return ArrayPayload(
        points=rng.normal(size=(100, 4)),
        weights=rng.uniform(0.5, 1.5, size=100),
    )


@pytest.fixture(scope="module")
def tasks():
    return [(0, 30, 1.0), (30, 60, 2.0), (60, 100, 0.5), (10, 90, 0.0)]


class TestShardBounds:
    def test_bounds_cover_range_in_order(self):
        bounds = shard_bounds(103, 4)
        assert bounds[0][0] == 0 and bounds[-1][1] == 103
        assert all(a_stop == b_start for (_, a_stop), (b_start, _) in zip(bounds, bounds[1:]))

    def test_sizes_differ_by_at_most_one(self):
        sizes = [stop - start for start, stop in shard_bounds(103, 4)]
        assert max(sizes) - min(sizes) <= 1
        assert max(sizes) == int(np.ceil(103 / 4))

    def test_fewer_points_than_shards_drops_empty_tail(self):
        bounds = shard_bounds(3, 10)
        assert len(bounds) == 3
        assert all(stop - start == 1 for start, stop in bounds)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            shard_bounds(0, 4)
        with pytest.raises(ValueError):
            shard_bounds(10, 0)


class TestSerialAndThread:
    def test_serial_matches_direct_evaluation(self, payload, tasks):
        expected = [_slice_total(payload, task) for task in tasks]
        assert SerialExecutor().map(_slice_total, tasks, payload=payload) == expected

    def test_thread_matches_serial_and_preserves_order(self, payload, tasks):
        expected = SerialExecutor().map(_slice_total, tasks, payload=payload)
        for workers in (1, 2, 3, 8):
            assert (
                ThreadExecutor(workers=workers).map(_slice_total, tasks, payload=payload)
                == expected
            )

    def test_thread_without_payload(self):
        assert ThreadExecutor(workers=2).map(_double, [1, 2, 3]) == [2, 4, 6]

    def test_empty_task_list(self, payload):
        assert SerialExecutor().map(_slice_total, [], payload=payload) == []
        assert ThreadExecutor(workers=2).map(_slice_total, [], payload=payload) == []

    def test_worker_count_validation(self):
        with pytest.raises(ValueError):
            ThreadExecutor(workers=0)
        with pytest.raises(TypeError):
            ThreadExecutor(workers=2.5)


@pytest.mark.parallel
class TestProcessExecutor:
    def test_matches_serial_via_shared_memory(self, payload, tasks):
        expected = SerialExecutor().map(_slice_total, tasks, payload=payload)
        for workers in (1, 2, 4):
            result = ProcessExecutor(workers=workers).map(_slice_total, tasks, payload=payload)
            assert result == expected

    def test_without_payload(self):
        assert ProcessExecutor(workers=2).map(_double, [1, 2, 3, 4]) == [2, 4, 6, 8]

    def test_empty_task_list(self, payload):
        assert ProcessExecutor(workers=2).map(_slice_total, [], payload=payload) == []

    def test_no_shared_memory_segments_leak(self, payload, tasks):
        from pathlib import Path

        shm_dir = Path("/dev/shm")
        if not shm_dir.is_dir():
            pytest.skip("platform exposes no /dev/shm to inspect")
        before = {entry.name for entry in shm_dir.iterdir()}
        ProcessExecutor(workers=2).map(_slice_total, tasks, payload=payload)
        leaked = {
            entry.name for entry in shm_dir.iterdir() if entry.name.startswith("psm_")
        } - before
        assert leaked == set()


class TestResolveExecutor:
    def test_none_and_serial_give_serial(self):
        assert isinstance(resolve_executor(None), SerialExecutor)
        assert isinstance(resolve_executor("serial"), SerialExecutor)

    def test_names_build_backends_with_workers(self):
        thread = resolve_executor("thread", workers=3)
        assert isinstance(thread, ThreadExecutor) and thread.workers == 3
        process = resolve_executor("process", workers=2)
        assert isinstance(process, ProcessExecutor) and process.workers == 2

    def test_instance_passes_through(self):
        executor = ThreadExecutor(workers=5)
        assert resolve_executor(executor, workers=1) is executor

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown executor backend"):
            resolve_executor("gpu")

    def test_backend_names_are_resolvable(self):
        for name in BACKENDS:
            assert isinstance(resolve_executor(name, workers=2), Executor)

"""Unit tests for the executor backends and the sharding primitives.

The task functions live at module level so the process backend can pickle
them by reference — the same requirement the library's own task functions
(:func:`repro.parallel.sharding.compress_shard`) satisfy.
"""

import os
from pathlib import Path

import numpy as np
import pytest

from repro.parallel import (
    BACKENDS,
    ArrayPayload,
    AsyncExecutor,
    Executor,
    ProcessAsyncExecutor,
    ProcessExecutor,
    SerialAsyncExecutor,
    SerialExecutor,
    ThreadAsyncExecutor,
    ThreadExecutor,
    resolve_async_executor,
    resolve_executor,
    shard_bounds,
)


def _slice_total(payload, task):
    start, stop, scale = task
    return float(payload.points[start:stop].sum() + scale * payload.weights[start:stop].sum())


def _double(payload, task):
    assert payload is None
    return task * 2


def _worker_pid(payload, task):
    return os.getpid()


def _fail_on_first(payload, task):
    if task == 0:
        raise RuntimeError("task 0 failed")
    return task


def _shared_segment_names():
    """The resource-tracker-visible shared-memory names on this host.

    ``multiprocessing.shared_memory`` registers every created segment with
    the resource tracker under its ``psm_``-prefixed name, which on Linux is
    exactly the file that appears in ``/dev/shm`` — so the directory listing
    is the observable the leak assertions compare.
    """
    shm_dir = Path("/dev/shm")
    if not shm_dir.is_dir():
        pytest.skip("platform exposes no /dev/shm to inspect")
    return {entry.name for entry in shm_dir.iterdir() if entry.name.startswith("psm_")}


@pytest.fixture(scope="module")
def payload():
    rng = np.random.default_rng(0)
    return ArrayPayload(
        points=rng.normal(size=(100, 4)),
        weights=rng.uniform(0.5, 1.5, size=100),
    )


@pytest.fixture(scope="module")
def tasks():
    return [(0, 30, 1.0), (30, 60, 2.0), (60, 100, 0.5), (10, 90, 0.0)]


class TestShardBounds:
    def test_bounds_cover_range_in_order(self):
        bounds = shard_bounds(103, 4)
        assert bounds[0][0] == 0 and bounds[-1][1] == 103
        assert all(a_stop == b_start for (_, a_stop), (b_start, _) in zip(bounds, bounds[1:]))

    def test_sizes_differ_by_at_most_one(self):
        sizes = [stop - start for start, stop in shard_bounds(103, 4)]
        assert max(sizes) - min(sizes) <= 1
        assert max(sizes) == int(np.ceil(103 / 4))

    def test_fewer_points_than_shards_drops_empty_tail(self):
        bounds = shard_bounds(3, 10)
        assert len(bounds) == 3
        assert all(stop - start == 1 for start, stop in bounds)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            shard_bounds(0, 4)
        with pytest.raises(ValueError):
            shard_bounds(10, 0)


class TestSerialAndThread:
    def test_serial_matches_direct_evaluation(self, payload, tasks):
        expected = [_slice_total(payload, task) for task in tasks]
        assert SerialExecutor().map(_slice_total, tasks, payload=payload) == expected

    def test_thread_matches_serial_and_preserves_order(self, payload, tasks):
        expected = SerialExecutor().map(_slice_total, tasks, payload=payload)
        for workers in (1, 2, 3, 8):
            assert (
                ThreadExecutor(workers=workers).map(_slice_total, tasks, payload=payload)
                == expected
            )

    def test_thread_without_payload(self):
        assert ThreadExecutor(workers=2).map(_double, [1, 2, 3]) == [2, 4, 6]

    def test_empty_task_list(self, payload):
        assert SerialExecutor().map(_slice_total, [], payload=payload) == []
        assert ThreadExecutor(workers=2).map(_slice_total, [], payload=payload) == []

    def test_worker_count_validation(self):
        with pytest.raises(ValueError):
            ThreadExecutor(workers=0)
        with pytest.raises(TypeError):
            ThreadExecutor(workers=2.5)


@pytest.mark.parallel
class TestProcessExecutor:
    def test_matches_serial_via_shared_memory(self, payload, tasks):
        expected = SerialExecutor().map(_slice_total, tasks, payload=payload)
        for workers in (1, 2, 4):
            with ProcessExecutor(workers=workers) as executor:
                assert executor.map(_slice_total, tasks, payload=payload) == expected

    def test_without_payload(self):
        with ProcessExecutor(workers=2) as executor:
            assert executor.map(_double, [1, 2, 3, 4]) == [2, 4, 6, 8]

    def test_empty_task_list(self, payload):
        with ProcessExecutor(workers=2) as executor:
            assert executor.map(_slice_total, [], payload=payload) == []

    def test_closed_executor_rejects_map(self, payload, tasks):
        executor = ProcessExecutor(workers=2)
        executor.close()
        with pytest.raises(RuntimeError, match="closed"):
            executor.map(_slice_total, tasks, payload=payload)

    def test_fresh_pool_escape_hatch_matches(self, payload, tasks):
        expected = SerialExecutor().map(_slice_total, tasks, payload=payload)
        executor = ProcessExecutor(workers=2, fresh_pool=True)
        assert executor.map(_slice_total, tasks, payload=payload) == expected
        # Nothing persists on this path: no pool, no pooled segments.
        assert executor._persistent is None

    def test_no_shared_memory_segments_leak_after_close(self, payload, tasks):
        before = _shared_segment_names()
        with ProcessExecutor(workers=2) as executor:
            executor.map(_slice_total, tasks, payload=payload)
        assert _shared_segment_names() - before == set()

    def test_fresh_pool_leaks_nothing_per_call(self, payload, tasks):
        before = _shared_segment_names()
        ProcessExecutor(workers=2, fresh_pool=True).map(_slice_total, tasks, payload=payload)
        assert _shared_segment_names() - before == set()


@pytest.mark.parallel
class TestPersistentPoolReuse:
    """The pool-reuse contract: one pool, a constant set of segments."""

    def test_many_small_maps_do_not_grow_segments_or_leak(self):
        rng = np.random.default_rng(3)
        payload = ArrayPayload(
            points=rng.normal(size=(64, 3)), weights=rng.uniform(0.5, 1.5, size=64)
        )
        tasks = [(0, 32, 1.0), (32, 64, 0.5)]
        expected = SerialExecutor().map(_slice_total, tasks, payload=payload)
        before = _shared_segment_names()
        with ProcessExecutor(workers=2) as executor:
            assert executor.map(_slice_total, tasks, payload=payload) == expected
            # After the first call the segment pool is warm: two segments
            # (points + weights) that every later call leases and rewrites.
            warm = _shared_segment_names()
            assert len(warm - before) <= 2
            for _ in range(199):
                assert executor.map(_slice_total, tasks, payload=payload) == expected
            assert _shared_segment_names() == warm
        # close() unlinks the pooled segments: nothing tracker-visible left.
        assert _shared_segment_names() - before == set()

    def test_map_calls_reuse_the_same_worker_processes(self):
        with ProcessExecutor(workers=2) as executor:
            pids = set()
            for _ in range(10):
                pids.update(executor.map(_worker_pid, [0, 1]))
            assert len(pids) <= 2

    def test_windowed_early_exit_releases_the_publication(self):
        # A task exception aborts map_unordered with part of its backlog
        # never submitted; the unsubmitted references must be forfeited or
        # the leased segments stay pinned and every later call allocates
        # fresh ones.
        rng = np.random.default_rng(5)
        payload = ArrayPayload(points=rng.normal(size=(32, 2)), weights=np.ones(32))
        tasks = list(range(8))
        with ProcessAsyncExecutor(workers=2) as executor:
            with pytest.raises(RuntimeError, match="task 0 failed"):
                list(
                    executor.map_unordered(
                        _fail_on_first, tasks, payload=payload, window=2
                    )
                )
            warm = _shared_segment_names()
            for _ in range(3):
                results = executor.map(_double, [1, 2])
                assert results == [2, 4]
                executor.map(
                    _slice_total, [(0, 16, 1.0)], payload=payload
                )
            # The aborted publication's segments were reclaimed, so the
            # later calls lease them instead of growing the pool.
            assert _shared_segment_names() == warm

    def test_async_executor_segments_stable_across_calls(self):
        rng = np.random.default_rng(4)
        payload = ArrayPayload(
            points=rng.normal(size=(50, 4)), weights=np.ones(50)
        )
        tasks = [(0, 25, 2.0), (25, 50, 1.0)]
        expected = SerialExecutor().map(_slice_total, tasks, payload=payload)
        before = _shared_segment_names()
        with ProcessAsyncExecutor(workers=2) as executor:
            assert executor.map(_slice_total, tasks, payload=payload) == expected
            warm = _shared_segment_names()
            for _ in range(50):
                results = sorted(
                    executor.map_unordered(_slice_total, tasks, payload=payload, window=1)
                )
                assert [value for _, value in results] == expected
            assert _shared_segment_names() == warm
        assert _shared_segment_names() - before == set()


class TestAsyncExecutors:
    def test_serial_async_futures_resolve_inline(self, payload, tasks):
        executor = SerialAsyncExecutor()
        future = executor.submit(_slice_total, tasks[0], payload=payload)
        assert future.done()
        assert future.result() == _slice_total(payload, tasks[0])

    def test_submit_many_and_map_match_serial(self, payload, tasks):
        expected = SerialExecutor().map(_slice_total, tasks, payload=payload)
        with ThreadAsyncExecutor(workers=3) as executor:
            futures = executor.submit_many(_slice_total, tasks, payload=payload)
            assert [future.result() for future in futures] == expected
            assert executor.map(_slice_total, tasks, payload=payload) == expected

    @pytest.mark.parametrize("window", (1, 2, None))
    def test_map_unordered_yields_every_index_once(self, payload, tasks, window):
        expected = SerialExecutor().map(_slice_total, tasks, payload=payload)
        with ThreadAsyncExecutor(workers=4) as executor:
            pairs = list(
                executor.map_unordered(_slice_total, tasks, payload=payload, window=window)
            )
        assert sorted(index for index, _ in pairs) == list(range(len(tasks)))
        assert [value for _, value in sorted(pairs)] == expected

    def test_task_errors_propagate_through_futures(self):
        def boom(payload, task):
            raise RuntimeError("task failed")

        with pytest.raises(RuntimeError, match="task failed"):
            SerialAsyncExecutor().submit(boom, 1).result()

    def test_closed_thread_executor_rejects_submission(self):
        executor = ThreadAsyncExecutor(workers=2)
        executor.map(_double, [1])
        executor.close()
        with pytest.raises(RuntimeError, match="closed"):
            executor.submit(_double, 2)

    def test_empty_task_list(self, payload):
        assert SerialAsyncExecutor().map(_slice_total, [], payload=payload) == []
        assert list(SerialAsyncExecutor().map_unordered(_slice_total, [], payload=payload)) == []


class TestResolveAsyncExecutor:
    def test_none_and_serial_give_serial(self):
        assert isinstance(resolve_async_executor(None), SerialAsyncExecutor)
        assert isinstance(resolve_async_executor("serial"), SerialAsyncExecutor)

    def test_names_build_backends_with_workers(self):
        thread = resolve_async_executor("thread", workers=3)
        assert isinstance(thread, ThreadAsyncExecutor) and thread.workers == 3
        process = resolve_async_executor("process", workers=2)
        assert isinstance(process, ProcessAsyncExecutor) and process.workers == 2

    def test_instance_passes_through(self):
        executor = ThreadAsyncExecutor(workers=5)
        assert resolve_async_executor(executor, workers=1) is executor

    def test_sync_instances_promote_to_async_siblings(self):
        promoted = resolve_async_executor(ThreadExecutor(workers=4))
        assert isinstance(promoted, ThreadAsyncExecutor) and promoted.workers == 4
        promoted = resolve_async_executor(ProcessExecutor(workers=3))
        assert isinstance(promoted, ProcessAsyncExecutor) and promoted.workers == 3
        assert isinstance(resolve_async_executor(SerialExecutor()), SerialAsyncExecutor)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown executor backend"):
            resolve_async_executor("gpu")

    def test_backend_names_are_resolvable(self):
        for name in BACKENDS:
            assert isinstance(resolve_async_executor(name, workers=2), AsyncExecutor)


class TestResolveExecutor:
    def test_none_and_serial_give_serial(self):
        assert isinstance(resolve_executor(None), SerialExecutor)
        assert isinstance(resolve_executor("serial"), SerialExecutor)

    def test_names_build_backends_with_workers(self):
        thread = resolve_executor("thread", workers=3)
        assert isinstance(thread, ThreadExecutor) and thread.workers == 3
        process = resolve_executor("process", workers=2)
        assert isinstance(process, ProcessExecutor) and process.workers == 2

    def test_instance_passes_through(self):
        executor = ThreadExecutor(workers=5)
        assert resolve_executor(executor, workers=1) is executor

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown executor backend"):
            resolve_executor("gpu")

    def test_backend_names_are_resolvable(self):
        for name in BACKENDS:
            assert isinstance(resolve_executor(name, workers=2), Executor)

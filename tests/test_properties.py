"""Property-based tests (hypothesis) for core invariants of the library.

The strategies generate small random point clouds and weight vectors; the
properties checked are the paper-level invariants that must hold for *every*
input, not just the fixtures: unbiased weight totals, cost-estimator
consistency, quadtree metric domination, grid-separation bounds, and the
coreset composition property.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.clustering.cost import clustering_cost
from repro.clustering.kmeans_pp import kmeans_plus_plus
from repro.core import (
    FastCoreset,
    LightweightCoreset,
    SensitivitySampling,
    UniformSampling,
    merge_coresets,
)
from repro.core.sensitivity import sensitivity_scores
from repro.geometry.grid import assign_to_grid, hash_rows, random_grid_shift
from repro.geometry.quadtree import QuadtreeEmbedding
from repro.parallel import shard_bounds
from repro.utils.rng import as_seed_sequence, keyed_seed_sequence
from repro.utils.weights import weighted_mean, weighted_variance

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

points_strategy = arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(20, 120), st.integers(2, 6)),
    elements=st.floats(-100.0, 100.0, allow_nan=False, allow_infinity=False, width=64),
)


def _deduplicate(points: np.ndarray) -> np.ndarray:
    """Add a deterministic jitter so degenerate all-equal inputs stay valid."""
    jitter = np.linspace(0.0, 1e-3, points.size).reshape(points.shape)
    return points + jitter


class TestSamplerProperties:
    @SETTINGS
    @given(points=points_strategy, seed=st.integers(0, 10_000))
    def test_uniform_sampling_weight_total_is_exact(self, points, seed):
        points = _deduplicate(points)
        m = max(1, points.shape[0] // 3)
        coreset = UniformSampling(seed=seed).sample(points, m)
        assert coreset.total_weight == pytest.approx(points.shape[0], rel=1e-9)
        assert (coreset.weights > 0).all()

    @SETTINGS
    @given(points=points_strategy, seed=st.integers(0, 10_000))
    def test_lightweight_coreset_weights_positive_and_bounded(self, points, seed):
        points = _deduplicate(points)
        m = max(1, points.shape[0] // 3)
        coreset = LightweightCoreset(seed=seed).sample(points, m)
        assert (coreset.weights > 0).all()
        # No single point may represent more than the whole dataset by a huge
        # factor: the +1/n term in the scores lower-bounds every probability.
        assert coreset.total_weight <= points.shape[0] * 10

    @SETTINGS
    @given(points=points_strategy, seed=st.integers(0, 10_000))
    def test_sensitivity_coreset_points_are_input_rows(self, points, seed):
        points = _deduplicate(points)
        k = min(5, points.shape[0] - 1)
        m = max(1, points.shape[0] // 3)
        coreset = SensitivitySampling(k=max(1, k), seed=seed).sample(points, m)
        assert coreset.indices is not None
        np.testing.assert_allclose(coreset.points, points[coreset.indices])

    @SETTINGS
    @given(points=points_strategy, seed=st.integers(0, 1_000))
    def test_fast_coreset_weights_non_negative(self, points, seed):
        points = _deduplicate(points)
        k = min(4, max(1, points.shape[0] // 10))
        m = max(2, points.shape[0] // 4)
        coreset = FastCoreset(k=k, seed=seed).sample(points, m)
        assert (coreset.weights >= 0).all()
        assert coreset.size >= m  # sampling with replacement keeps exactly m (or more with correction)

    @SETTINGS
    @given(points=points_strategy, seed=st.integers(0, 10_000))
    def test_sensitivity_scores_per_cluster_normalisation(self, points, seed):
        points = _deduplicate(points)
        k = min(4, max(1, points.shape[0] // 8))
        solution = kmeans_plus_plus(points, k, seed=seed)
        scores = sensitivity_scores(points, solution)
        assert (scores >= 0).all()
        total = scores.sum()
        occupied = np.unique(solution.assignment).shape[0]
        # Each occupied cluster contributes exactly 1 from the 1/|C| terms and
        # at most 1 from the cost-share terms (exactly 1 unless the cluster
        # has zero cost, e.g. it only contains its own center).
        assert occupied - 1e-6 <= total <= 2.0 * occupied + 1e-6


class TestIncrementalQuadtreeKeys:
    """The fit's incremental compact keys (``key' = 2 key + bits .
    multipliers`` off the one-shot digit matrix) must equal re-hashing an
    independently re-floored lattice at every level, for arbitrary shapes,
    depth caps, and degenerate coincident-point inputs."""

    @SETTINGS
    @given(
        points=points_strategy,
        seed=st.integers(0, 10_000),
        max_levels=st.integers(2, 40),
        scale=st.sampled_from([1e-6, 1.0, 1e6]),
        duplicate=st.booleans(),
    )
    def test_incremental_keys_match_recomputed_lattice_hashes(
        self, points, seed, max_levels, scale, duplicate
    ):
        points = points * scale
        if duplicate:
            # Coincident points: repeated rows plus an exactly-zero block.
            points = np.concatenate(
                [points, points[: points.shape[0] // 2], np.zeros((7, points.shape[1]))]
            )
        tree = QuadtreeEmbedding(seed=seed, max_levels=max_levels).fit(points)
        shifted = points - tree.origin_[None, :] + tree.shift_[None, :]
        for level in range(tree.depth):
            lattice = np.floor(shifted / tree.cell_side(level)).astype(np.int64)
            _, inverse = np.unique(hash_rows(lattice), return_inverse=True)
            np.testing.assert_array_equal(
                tree.level_cell_ids_[level], inverse.reshape(-1).astype(np.int64)
            )

    @SETTINGS
    @given(points=points_strategy, seed=st.integers(0, 10_000), exponent=st.integers(6, 13))
    def test_deep_trees_match_seed_reference(self, points, seed, exponent):
        """High-spread inputs (deep caps, including the int64-digit path
        beyond the uint32 range) still reproduce the seed's cells.  The cap
        stays below 62 levels — past that the *seed's* own float-to-int64
        lattice cast overflows, so no implementation is defined there.
        """
        from repro.reference.seed_hotpath import SeedQuadtreeEmbedding

        far = points[: max(2, points.shape[0] // 4)] * 1e-4 + 10.0**exponent
        points = np.concatenate([points, far])
        live = QuadtreeEmbedding(seed=seed, max_levels=60).fit(points)
        reference = SeedQuadtreeEmbedding(seed=seed, max_levels=60).fit(points)
        assert live.depth == reference.depth
        for level in range(live.depth):
            np.testing.assert_array_equal(
                live.level_cell_ids_[level], reference.level_cell_ids_[level]
            )


class TestCompositionProperties:
    @SETTINGS
    @given(points=points_strategy, seed=st.integers(0, 10_000))
    def test_merge_preserves_total_weight(self, points, seed):
        points = _deduplicate(points)
        half = points.shape[0] // 2
        first = UniformSampling(seed=seed).sample(points[:half], max(1, half // 2))
        second = UniformSampling(seed=seed + 1).sample(points[half:], max(1, (points.shape[0] - half) // 2))
        merged = merge_coresets([first, second])
        assert merged.total_weight == pytest.approx(first.total_weight + second.total_weight)

    @SETTINGS
    @given(points=points_strategy, seed=st.integers(0, 10_000))
    def test_merge_cost_estimate_is_sum_of_parts(self, points, seed):
        points = _deduplicate(points)
        half = points.shape[0] // 2
        rng = np.random.default_rng(seed)
        centers = points[rng.choice(points.shape[0], size=min(3, points.shape[0]), replace=False)]
        first = UniformSampling(seed=seed).sample(points[:half], max(1, half // 2))
        second = UniformSampling(seed=seed + 1).sample(points[half:], max(1, (points.shape[0] - half) // 2))
        merged = merge_coresets([first, second])
        assert merged.cost(centers) == pytest.approx(first.cost(centers) + second.cost(centers), rel=1e-9)


class TestGeometryProperties:
    @SETTINGS
    @given(points=points_strategy, seed=st.integers(0, 10_000))
    def test_quadtree_distances_dominate_euclidean(self, points, seed):
        points = _deduplicate(points)
        tree = QuadtreeEmbedding(seed=seed).fit(points)
        rng = np.random.default_rng(seed)
        for _ in range(10):
            i, j = rng.integers(0, points.shape[0], size=2)
            if i == j:
                continue
            euclidean = float(np.linalg.norm(points[i] - points[j]))
            assert tree.tree_distance(int(i), int(j)) >= euclidean - 1e-6

    @SETTINGS
    @given(points=points_strategy, seed=st.integers(0, 10_000), side=st.floats(0.5, 50.0))
    def test_grid_cells_partition_points(self, points, seed, side):
        points = _deduplicate(points)
        shift = random_grid_shift(points.shape[1], side, seed=seed)
        assignment = assign_to_grid(points, side, shift)
        members = np.concatenate(list(assignment.cells.values()))
        assert sorted(members.tolist()) == list(range(points.shape[0]))

    @SETTINGS
    @given(
        lattice=arrays(
            dtype=np.int64,
            shape=st.tuples(st.integers(1, 200), st.integers(1, 6)),
            elements=st.integers(-10**6, 10**6),
        )
    )
    def test_hash_rows_consistent_with_row_equality(self, lattice):
        keys = hash_rows(lattice)
        # Equal rows always hash equally (collisions of distinct rows are
        # possible in principle but never the other way around).
        _, inverse = np.unique(lattice, axis=0, return_inverse=True)
        inverse = inverse.reshape(-1)
        for group in range(inverse.max() + 1):
            group_keys = keys[inverse == group]
            assert np.unique(group_keys).shape[0] == 1


class TestWeightedStatisticsProperties:
    @SETTINGS
    @given(points=points_strategy)
    def test_weighted_mean_matches_numpy_for_unit_weights(self, points):
        np.testing.assert_allclose(weighted_mean(points), points.mean(axis=0), atol=1e-8)

    @SETTINGS
    @given(points=points_strategy)
    def test_weighted_variance_is_one_means_cost(self, points):
        mean = points.mean(axis=0)
        expected = clustering_cost(points, mean[None, :], z=2)
        assert weighted_variance(points) == pytest.approx(expected, rel=1e-6, abs=1e-6)


class TestShardBoundsProperties:
    """Hypothesis pins the sharding invariants the seed protocol rests on."""

    @SETTINGS
    @given(n=st.integers(1, 5000), n_shards=st.integers(1, 64))
    def test_bounds_partition_range_exactly(self, n, n_shards):
        bounds = shard_bounds(n, n_shards)
        # Exact, contiguous cover of [0, n): starts at 0, ends at n, each
        # shard begins where the previous one stopped.
        assert bounds[0][0] == 0 and bounds[-1][1] == n
        assert all(
            previous_stop == start
            for (_, previous_stop), (start, _) in zip(bounds, bounds[1:])
        )
        sizes = [stop - start for start, stop in bounds]
        assert sum(sizes) == n

    @SETTINGS
    @given(n=st.integers(1, 5000), n_shards=st.integers(1, 64))
    def test_bounds_are_nonempty_and_balanced_within_one(self, n, n_shards):
        sizes = [stop - start for start, stop in shard_bounds(n, n_shards)]
        assert len(sizes) == min(n, n_shards)
        assert min(sizes) >= 1
        assert max(sizes) - min(sizes) <= 1
        assert max(sizes) == int(np.ceil(n / min(n, n_shards)))
        # array_split semantics: the extra rows go to the leading shards.
        assert sizes == sorted(sizes, reverse=True)


class TestKeyedSeedProperties:
    """The spawn-keyed derivation is injective and stateless."""

    @SETTINGS
    @given(
        entropy=st.integers(0, 2**63 - 1),
        keys=st.lists(
            st.tuples(st.integers(0, 7), st.integers(0, 10_000)),
            min_size=2,
            max_size=12,
            unique=True,
        ),
    )
    def test_keyed_seeds_injective_across_key_shard_pairs(self, entropy, keys):
        root = as_seed_sequence(entropy)
        states = [
            tuple(int(word) for word in keyed_seed_sequence(root, namespace, index).generate_state(4))
            for namespace, index in keys
        ]
        # Distinct (namespace, shard) pairs must receive distinct streams —
        # and none of them may collide with the root's own stream.
        states.append(tuple(int(word) for word in root.generate_state(4)))
        assert len(set(states)) == len(states)

    @SETTINGS
    @given(
        entropy=st.integers(0, 2**63 - 1),
        namespace=st.integers(0, 7),
        index=st.integers(0, 10_000),
        unrelated_spawns=st.integers(0, 5),
    )
    def test_keyed_seeds_are_stateless(self, entropy, namespace, index, unrelated_spawns):
        root = as_seed_sequence(entropy)
        first = keyed_seed_sequence(root, namespace, index).generate_state(4)
        # Unlike SeedSequence.spawn, the derivation must not depend on how
        # many children were spawned before (that is what makes shard i's
        # randomness independent of scheduling).
        root.spawn(unrelated_spawns)
        second = keyed_seed_sequence(root, namespace, index).generate_state(4)
        np.testing.assert_array_equal(first, second)

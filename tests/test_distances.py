"""Unit tests for repro.geometry.distances."""

import numpy as np
import pytest

from repro.geometry.distances import (
    diameter_upper_bound,
    pairwise_distances,
    point_to_set_distances,
    squared_point_to_set_distances,
    update_nearest_with_new_center,
)


class TestPairwiseDistances:
    def test_matches_bruteforce(self, rng):
        a = rng.normal(size=(20, 5))
        b = rng.normal(size=(15, 5))
        expected = np.linalg.norm(a[:, None, :] - b[None, :, :], axis=2)
        np.testing.assert_allclose(pairwise_distances(a, b), expected, atol=1e-8)

    def test_self_distances_are_zero_on_diagonal(self, rng):
        a = rng.normal(size=(10, 3))
        distances = pairwise_distances(a, a)
        np.testing.assert_allclose(np.diag(distances), 0.0, atol=1e-6)

    def test_no_negative_values_from_rounding(self, rng):
        a = rng.normal(size=(30, 4)) * 1e-8
        assert (pairwise_distances(a, a) >= 0).all()


class TestPointToSetDistances:
    def test_matches_bruteforce(self, rng):
        points = rng.normal(size=(50, 6))
        centers = rng.normal(size=(7, 6))
        expected_full = np.linalg.norm(points[:, None, :] - centers[None, :, :], axis=2)
        expected_distance = expected_full.min(axis=1)
        expected_assignment = expected_full.argmin(axis=1)
        distances, assignment = point_to_set_distances(points, centers)
        np.testing.assert_allclose(distances, expected_distance, atol=1e-8)
        np.testing.assert_array_equal(assignment, expected_assignment)

    def test_chunked_computation_matches_unchunked(self, rng):
        points = rng.normal(size=(100, 4))
        centers = rng.normal(size=(5, 4))
        full, a_full = squared_point_to_set_distances(points, centers)
        chunked, a_chunked = squared_point_to_set_distances(points, centers, chunk_elements=16)
        np.testing.assert_allclose(full, chunked)
        np.testing.assert_array_equal(a_full, a_chunked)

    def test_single_center(self, rng):
        points = rng.normal(size=(10, 3))
        center = np.zeros((1, 3))
        squared, assignment = squared_point_to_set_distances(points, center)
        np.testing.assert_allclose(squared, np.einsum("ij,ij->i", points, points))
        assert (assignment == 0).all()

    def test_empty_centers_raise(self, rng):
        with pytest.raises(ValueError):
            squared_point_to_set_distances(rng.normal(size=(5, 2)), np.empty((0, 2)))


class TestIncrementalUpdate:
    def test_first_center_initialises(self, rng):
        points = rng.normal(size=(20, 3))
        squared, assignment = update_nearest_with_new_center(points, points[0], None, None, 0)
        assert squared[0] == pytest.approx(0.0)
        assert (assignment == 0).all()

    def test_incremental_matches_batch(self, rng):
        points = rng.normal(size=(40, 4))
        centers = rng.normal(size=(6, 4))
        squared, assignment = None, None
        for index in range(centers.shape[0]):
            squared, assignment = update_nearest_with_new_center(
                points, centers[index], squared, assignment, index
            )
        expected_sq, expected_assignment = squared_point_to_set_distances(points, centers)
        np.testing.assert_allclose(squared, expected_sq, atol=1e-8)
        np.testing.assert_array_equal(assignment, expected_assignment)


class TestDiameterUpperBound:
    def test_upper_bounds_true_diameter(self, rng):
        points = rng.normal(size=(100, 5))
        true_diameter = pairwise_distances(points, points).max()
        bound = diameter_upper_bound(points)
        assert bound >= true_diameter - 1e-9
        assert bound <= 2 * true_diameter + 1e-9

    def test_identical_points_give_zero(self):
        points = np.ones((10, 3))
        assert diameter_upper_bound(points) == pytest.approx(0.0)

"""Smoke test for the ``make bench-check`` regression replay.

Replays one small tracked workload at a single repeat in ``--check-only``
mode: the recorded ``BENCH_hotpaths.json`` must not be rewritten, and the
tracked ratio must stay within the regression tolerance.  Marked slow — it
re-times real workloads — and kept to the cheapest tracked entry so the
full suite stays fast.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH = REPO_ROOT / "benchmarks" / "bench_perf_hotpaths.py"
TRAJECTORY = REPO_ROOT / "BENCH_hotpaths.json"


@pytest.mark.slow
def test_bench_check_only_passes_and_preserves_json():
    before = TRAJECTORY.read_text()
    result = subprocess.run(
        [
            sys.executable,
            str(BENCH),
            "--check-only",
            "--repeats",
            "1",
            "--workloads",
            "quadtree_fit_n20k_d20",
        ],
        cwd=REPO_ROOT,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stdout + result.stderr
    assert "check-only" in result.stdout
    assert TRAJECTORY.read_text() == before


@pytest.mark.slow
def test_bench_rejects_unknown_workload():
    result = subprocess.run(
        [sys.executable, str(BENCH), "--check-only", "--workloads", "nope"],
        cwd=REPO_ROOT,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert result.returncode != 0
    assert "unknown workloads" in result.stderr


def test_trajectory_tracks_new_hot_paths():
    """The recorded trajectory must carry the Lloyd and merge-reduce rows
    with the speedups the optimization claims."""
    payload = json.loads(TRAJECTORY.read_text())
    by_component = {}
    for workload in payload["workloads"]:
        by_component.setdefault(workload["component"], []).append(workload)
    assert "lloyd" in by_component
    assert "merge_reduce" in by_component
    assert any(w["speedup"] >= 2.0 for w in by_component["lloyd"])
    assert any(w["speedup"] >= 2.0 for w in by_component["merge_reduce"])
    # The parallel engine rows track process-backend scaling at 1/2/4
    # workers.  Only presence is pinned, not a speedup: the achievable
    # ratio is a property of the recording machine's core count (a
    # single-core CI box records ~1x), and the regression guard compares
    # future runs against whatever this machine honestly measured.
    assert "parallel_shard" in by_component
    assert sorted(w["k"] for w in by_component["parallel_shard"]) == [1, 2, 4]
    # Constant-factor sweep rows (incremental quadtree keys, fused Lloyd
    # kernel, cached crude-cost bound): measured against the frozen
    # previously-optimized implementations, extending the workload list.
    # The recording machine measured 1.56-1.71x; the floor asserted here is
    # looser so a legitimate re-record on different hardware (the bench's
    # own 20% guard allows it) cannot wedge the tier-1 suite.
    assert all(w["speedup"] >= 1.2 for w in by_component["quadtree_fit_incr"])
    assert all(w["speedup"] >= 1.2 for w in by_component["lloyd_fused"])
    assert "merge_reduce_cached_bound" in by_component
    # Overlapped-reduction rows: both sides run the same async pipeline, so
    # only presence and the host-reduce-seconds extras are pinned — the
    # ratio is a property of the recording machine's core count.
    assert sorted(w["k"] for w in by_component["overlap_reduce"]) == [1, 2, 4]
    for workload in by_component["overlap_reduce"]:
        assert "host_reduce_seconds" in workload
        assert "host_reduce_seconds_baseline" in workload
        assert workload["reduces_offloaded"] > 0


def test_trajectory_rows_stamp_cores_and_informational_flags():
    """Every row records the cores it was measured on; multi-worker rows
    recorded with fewer cores than workers must be marked informational
    (excluded from the regression guard) instead of hiding behind a widened
    tolerance."""
    payload = json.loads(TRAJECTORY.read_text())
    for workload in payload["workloads"]:
        assert workload["cores"] >= 1
        if workload["component"] in ("parallel_shard", "async_stream", "overlap_reduce"):
            if workload["k"] > workload["cores"]:
                assert workload.get("informational") is True
            else:
                assert not workload.get("informational")


def test_informational_rows_bypass_regression_guard():
    """A catastrophic ratio on an informational row must not trip the guard."""
    import importlib.util

    spec = importlib.util.spec_from_file_location("bench_hotpaths", BENCH)
    bench = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(bench)
    old = {
        "workloads": [
            {"name": "w2", "component": "parallel_shard", "informational": True,
             "seed_seconds": 1.0, "optimized_seconds": 1.0},
            {"name": "serial", "component": "quadtree_fit",
             "seed_seconds": 1.0, "optimized_seconds": 0.5},
        ]
    }
    new = [
        {"name": "w2", "component": "parallel_shard", "informational": True,
         "seed_seconds": 1.0, "optimized_seconds": 10.0},
        {"name": "serial", "component": "quadtree_fit",
         "seed_seconds": 1.0, "optimized_seconds": 0.9},
    ]
    messages = bench.check_regression(old, new)
    assert len(messages) == 1 and "serial" in messages[0]

"""Tests for the compiled kernel tier (:mod:`repro.native`).

Three layers of coverage:

* **Kernel contracts** — every native kernel is compared bit-for-bit against
  a live numpy oracle (the same expressions the engine's fallback path
  evaluates), including Hypothesis-generated adversarial inputs for the
  radix argsort and the CSR grouping kernel.
* **Tier control** — ``native_status()`` introspection, the ``use_native``
  override, and the behaviour of :func:`repro.native.get_kernel` in
  fallback mode.
* **Cross-mode bit-identity** — full k-means runs and quadtree fits must
  produce identical observable outputs with the tier enabled and disabled.
  ``recompute_fraction`` is deliberately *excluded* from the comparison:
  the native candidate-evaluation kernel may resolve suspects the numpy
  path recomputes, so the internal work counter is allowed to differ while
  every observable output stays pinned.

When no provider is available (no numba, no C compiler) the kernel-contract
tests skip; the tier-control and cross-mode tests still run, because the
fallback path must behave identically either way.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.clustering.fast_kmeans_pp import fast_kmeans_plus_plus
from repro.clustering.lloyd import kmeans
from repro.core.spread_reduction import crude_cost_upper_bound
from repro.data.synthetic import gaussian_mixture
from repro.geometry.quadtree import QuadtreeEmbedding
from repro.native import (
    get_kernel,
    kernel_provider,
    native_status,
    radix_argsort,
    reference_candidate_eval,
    reference_crude_bound_probe,
    reference_fkpp_draw_scan,
    reference_fkpp_level_score,
    reference_fkpp_weighted_draw,
    use_native,
)
from repro.native.kernels import _reference_csr_group

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

requires_native = pytest.mark.skipif(
    native_status()["tier"] != "native",
    reason="no native kernel provider available (numba/cc)",
)

uint64_keys = arrays(
    dtype=np.uint64,
    shape=st.integers(0, 300),
    elements=st.integers(0, np.iinfo(np.uint64).max),
)
int64_keys = arrays(
    dtype=np.int64,
    shape=st.integers(0, 300),
    elements=st.integers(np.iinfo(np.int64).min, np.iinfo(np.int64).max),
)
# Small alphabets force long duplicate runs — the hash fast path of the
# grouping kernel and the trivial-pass skip of the radix sort.
clustered_keys = arrays(
    dtype=np.uint64,
    shape=st.integers(1, 300),
    elements=st.integers(0, 9),
)


class TestRadixArgsort:
    """The public argsort must match ``np.argsort(kind='stable')`` exactly
    (same permutation, not merely a valid sort) in both tier modes."""

    @SETTINGS
    @given(keys=uint64_keys)
    def test_matches_stable_argsort_uint64(self, keys):
        np.testing.assert_array_equal(radix_argsort(keys), np.argsort(keys, kind="stable"))

    @SETTINGS
    @given(keys=int64_keys)
    def test_matches_stable_argsort_int64(self, keys):
        np.testing.assert_array_equal(radix_argsort(keys), np.argsort(keys, kind="stable"))

    @SETTINGS
    @given(keys=clustered_keys)
    def test_duplicate_heavy_keys_keep_stability(self, keys):
        np.testing.assert_array_equal(radix_argsort(keys), np.argsort(keys, kind="stable"))

    @pytest.mark.parametrize(
        "keys",
        [
            np.zeros(129, dtype=np.uint64),
            np.arange(200, dtype=np.uint64),
            np.arange(200, dtype=np.uint64)[::-1].copy(),
            np.array([], dtype=np.uint64),
            np.array([np.iinfo(np.uint64).max], dtype=np.uint64),
            np.repeat(np.arange(7, dtype=np.uint64), 31),
        ],
        ids=["all-dup", "sorted", "reversed", "empty", "single", "runs"],
    )
    def test_edge_cases(self, keys):
        np.testing.assert_array_equal(radix_argsort(keys), np.argsort(keys, kind="stable"))

    def test_fallback_mode_agrees_with_native(self):
        keys = np.random.default_rng(0).integers(
            0, np.iinfo(np.uint64).max, size=500, dtype=np.uint64
        )
        native = radix_argsort(keys)
        with use_native(False):
            fallback = radix_argsort(keys)
        np.testing.assert_array_equal(native, fallback)


@requires_native
class TestCsrGroupKernel:
    """The fused grouping kernel vs the numpy pipeline it replaces."""

    def _check(self, keys):
        kernel = get_kernel("csr_group")
        assert kernel is not None
        produced = kernel(np.ascontiguousarray(keys))
        expected = _reference_csr_group(keys)
        for name, have, want in zip(("cell_ids", "order", "offsets"), produced, expected):
            np.testing.assert_array_equal(have, want, err_msg=name)

    @SETTINGS
    @given(keys=clustered_keys)
    def test_duplicate_heavy_hash_path(self, keys):
        self._check(keys)

    @SETTINGS
    @given(keys=uint64_keys.filter(lambda a: a.size >= 2))
    def test_scattered_keys_radix_path(self, keys):
        self._check(keys)

    def test_distinct_count_around_hash_abort_threshold(self):
        # The hash path aborts to the radix path once the distinct count
        # crosses n >> 3; straddle the threshold on both sides.
        rng = np.random.default_rng(1)
        for alphabet in (30, 32, 34, 64, 256):
            self._check(rng.integers(0, alphabet, size=256, dtype=np.uint64))

    def test_grouping_matches_quadtree_usage(self):
        from repro.geometry.quadtree import _csr_group

        keys = np.random.default_rng(2).integers(0, 40, size=400, dtype=np.uint64)
        native = _csr_group(keys)
        with use_native(False):
            fallback = _csr_group(keys)
        for have, want in zip(native, fallback):
            np.testing.assert_array_equal(have, want)


@requires_native
class TestLloydKernels:
    """The three Lloyd warm-phase kernels vs their live numpy oracles."""

    def _problem(self, seed, n, d, k):
        rng = np.random.default_rng(seed)
        points = rng.normal(size=(n, d)) * rng.uniform(0.1, 10.0)
        centers = rng.normal(size=(k, d)) * rng.uniform(0.1, 10.0)
        delta = points[:, None, :] - centers[None, :, :]
        squared = np.einsum("ijk,ijk->ij", delta, delta)
        assignment = np.argmin(squared, axis=1).astype(np.int64)
        return points, centers, squared, assignment

    @pytest.mark.parametrize("d", [1, 2, 7, 8, 9, 16, 33])
    def test_refresh_bounds_matches_einsum_path(self, d):
        kernel = get_kernel("lloyd_refresh_bounds")
        assert kernel is not None
        points, centers, _, assignment = self._problem(d, 128, d, 6)
        rng = np.random.default_rng(100 + d)
        eroded = rng.normal(size=128)
        decrement = float(abs(rng.normal())) * 1e-3
        scale = 1.0 + 1e-12

        delta = points - centers[assignment]
        expected_sq = np.einsum("ij,ij->i", delta, delta)
        expected_upper = np.sqrt(expected_sq) * scale
        expected_eroded = eroded - decrement
        expected_maybe = np.flatnonzero(expected_upper >= expected_eroded)

        squared = np.empty(128, dtype=np.float64)
        mutated = eroded.copy()
        upper, maybe = kernel(
            np.ascontiguousarray(points),
            np.ascontiguousarray(centers),
            assignment,
            decrement,
            scale,
            squared,
            mutated,
        )
        np.testing.assert_array_equal(squared, expected_sq)
        np.testing.assert_array_equal(upper, expected_upper)
        np.testing.assert_array_equal(mutated, expected_eroded)
        np.testing.assert_array_equal(maybe, expected_maybe)

    @pytest.mark.parametrize("n,d,k", [(1, 1, 1), (64, 4, 9), (400, 12, 25)])
    def test_update_sums_matches_bincount(self, n, d, k):
        kernel = get_kernel("lloyd_update_sums")
        assert kernel is not None
        rng = np.random.default_rng(n * 31 + d)
        points = rng.normal(size=(n, d))
        weights = rng.uniform(0.1, 3.0, size=n)
        # Leave the top clusters empty: their slots must come back zero.
        assignment = rng.integers(0, max(1, k - 2), size=n).astype(np.int64)
        weighted = weights[:, None] * points
        expected_counts = np.bincount(assignment, weights=weights, minlength=k)
        codes = assignment[:, None] * d + np.arange(d, dtype=np.int64)
        expected_sums = np.bincount(
            codes.ravel(), weights=weighted.ravel(), minlength=k * d
        ).reshape(k, d)
        counts, sums = kernel(np.ascontiguousarray(weighted), weights, assignment, k)
        np.testing.assert_array_equal(counts, expected_counts)
        np.testing.assert_array_equal(sums, expected_sums)

    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("d", [1, 3, 10])
    def test_candidate_eval_matches_oracle(self, seed, d):
        kernel = get_kernel("lloyd_candidate_eval")
        assert kernel is not None
        n, k = 64, 7
        points, centers, squared, assignment = self._problem(seed * 13 + d, n, d, k)
        rng = np.random.default_rng(seed * 7 + d)
        # Stale some assignments so genuine reassignments occur.
        stale = rng.random(n) < 0.4
        assignment[stale] = rng.integers(0, k, size=int(stale.sum()))
        moved = points - centers[assignment]
        assigned_sq = np.einsum("ij,ij->i", moved, moved)
        center_norms = np.einsum("ij,ij->i", centers, centers)
        suspects = np.flatnonzero(rng.random(n) < 0.8).astype(np.int64)
        s = suspects.size
        upper = np.sqrt(assigned_sq[suspects]) * rng.uniform(1.0, 1.5, size=s)
        # Sound lower bounds only (factor <= 1): the engine never produces
        # over-estimates, and unsound bounds can exclude the true nearest
        # centre from the candidate set, making any comparison meaningless.
        bounds = np.sqrt(np.maximum(squared[suspects], 0.0)) * rng.uniform(
            0.4, 1.0, size=(s, k)
        )
        arguments = (
            np.ascontiguousarray(points),
            np.ascontiguousarray(centers),
            np.ascontiguousarray(center_norms),
            suspects,
            np.ascontiguousarray(bounds),
            np.ascontiguousarray(upper),
            np.ascontiguousarray(assigned_sq),
            assignment,
            1e-9,
        )
        expected = reference_candidate_eval(*arguments)
        produced = kernel(*arguments)
        if expected is None:
            assert produced is None
            return
        assert produced is not None
        np.testing.assert_array_equal(produced[0], expected[0])
        np.testing.assert_array_equal(produced[1], expected[1])

    def test_candidate_eval_bails_on_saturated_bounds(self):
        kernel = get_kernel("lloyd_candidate_eval")
        assert kernel is not None
        rng = np.random.default_rng(9)
        n, d, k = 20, 5, 8
        points = rng.normal(size=(n, d))
        centers = rng.normal(size=(k, d))
        assignment = np.zeros(n, dtype=np.int64)
        moved = points - centers[assignment]
        assigned_sq = np.einsum("ij,ij->i", moved, moved)
        center_norms = np.einsum("ij,ij->i", centers, centers)
        # Zero bounds with a huge upper: all k-1 candidates survive on every
        # suspect, blowing the 4*s pair budget — the kernel must hand the
        # batch back to the blocked numpy path instead of grinding serially.
        produced = kernel(
            np.ascontiguousarray(points),
            np.ascontiguousarray(centers),
            np.ascontiguousarray(center_norms),
            np.arange(n, dtype=np.int64),
            np.zeros((n, k), dtype=np.float64),
            np.full(n, 1e6, dtype=np.float64),
            np.ascontiguousarray(assigned_sq),
            assignment,
            1e-9,
        )
        assert produced is None


def _synthetic_tree(rng, n, depth):
    """Random per-level CSR partitions shaped like a quadtree's arrays."""
    level_orders, level_offsets, level_cells = [], [], []
    for level in range(depth):
        n_cells = int(rng.integers(1, max(2, n // (level + 2)) + 1))
        cids = rng.integers(0, n_cells, size=n).astype(np.int64)
        order = np.ascontiguousarray(np.argsort(cids, kind="stable").astype(np.int64))
        offsets = np.zeros(n_cells + 1, dtype=np.int64)
        np.cumsum(np.bincount(cids, minlength=n_cells), out=offsets[1:])
        level_orders.append(order)
        level_offsets.append(offsets)
        level_cells.append(np.ascontiguousarray(cids))
    return level_orders, level_offsets, level_cells


@requires_native
class TestFkppLevelScoreKernel:
    @pytest.mark.parametrize("n,depth", [(80, 1), (150, 5), (301, 9)])
    def test_bound_sweep_matches_numpy_oracle(self, n, depth):
        rng = np.random.default_rng(depth)
        level_orders, level_offsets, level_cells = _synthetic_tree(rng, n, depth)
        order_flat = np.concatenate(level_orders)
        distances = np.sort(rng.uniform(0.05, 2.0, size=depth + 1))
        czs = np.array([np.float64(v) ** 2 for v in distances])
        best = rng.uniform(0.0, 2.0, size=n)
        best[rng.random(n) < 0.25] = np.inf
        assignment = rng.integers(-1, 4, size=n).astype(np.int64)
        mass = rng.uniform(0.0, 4.0, size=n)
        weights = rng.uniform(0.1, 3.0, size=n)
        kernel = get_kernel("fkpp_level_score")
        sweep = kernel.bind(
            level_orders, level_offsets, level_cells, n, distances, czs,
            best, assignment, mass, weights,
        )
        starts = np.empty(depth, dtype=np.int64)
        ends = np.empty(depth, dtype=np.int64)
        for slot in range(4):
            center_point = int(rng.integers(0, n))
            ceiling = (np.inf, float(distances[depth // 2 + 1]), 0.0, np.inf)[slot]
            has_mass = slot > 0
            for level in range(depth):
                cid = int(level_cells[level][center_point])
                starts[level] = level_offsets[level][cid]
                ends[level] = level_offsets[level][cid + 1]
            expected_best = best.copy()
            expected_assignment = assignment.copy()
            expected_mass = mass.copy()
            expected = reference_fkpp_level_score(
                order_flat, n, starts, ends, distances, czs, ceiling, slot,
                expected_best, expected_assignment, expected_mass, weights,
                has_mass,
            )
            assert sweep(ceiling, slot, center_point, has_mass) == expected
            np.testing.assert_array_equal(best, expected_best)
            np.testing.assert_array_equal(assignment, expected_assignment)
            np.testing.assert_array_equal(mass, expected_mass)

    def test_escape_hatch_forces_numpy_sweep(self):
        with use_native(False):
            assert get_kernel("fkpp_level_score") is None


@requires_native
class TestFkppWeightedDrawKernel:
    @pytest.mark.parametrize("n", [1, 40, 513])
    def test_total_and_scan_match_cumsum_searchsorted(self, n):
        rng = np.random.default_rng(n)
        mass = rng.uniform(0.0, 5.0, size=n)
        mass[rng.random(n) < 0.3] = 0.0
        kernel = get_kernel("fkpp_weighted_draw")
        cumulative = np.cumsum(mass)
        total = float(kernel(mass))
        assert total == reference_fkpp_weighted_draw(mass)
        bound_total, bound_scan = kernel.bind(mass)
        assert float(bound_total()) == total
        us = [0.0, total * 0.4, total, total * 2.0]
        us.extend(float(cumulative[i]) for i in (0, n // 2, n - 1))
        for u in us:
            expected = reference_fkpp_draw_scan(mass, u)
            assert int(kernel.scan(mass, u)) == expected
            assert int(bound_scan(u)) == expected

    def test_scan_reflects_in_place_mass_updates(self):
        # The production closure is bound once per fit and must observe
        # every in-place rewrite of the mass store.
        mass = np.ones(10)
        kernel = get_kernel("fkpp_weighted_draw")
        bound_total, bound_scan = kernel.bind(mass)
        assert float(bound_total()) == 10.0
        mass[:5] = 0.0
        assert float(bound_total()) == float(np.cumsum(mass)[-1])
        assert int(bound_scan(0.5)) == int(
            np.searchsorted(np.cumsum(mass), 0.5, side="right")
        )

    def test_escape_hatch_forces_numpy_draw(self):
        with use_native(False):
            assert get_kernel("fkpp_weighted_draw") is None


@requires_native
class TestCrudeBoundProbeKernel:
    @pytest.mark.parametrize("d", [1, 3, 8])
    def test_probe_sequence_matches_numpy_oracle(self, d):
        rng = np.random.default_rng(d)
        n = 200
        scaled = rng.uniform(-1.5, 1.5, size=(n, d))
        scaled[::6] = scaled[2]  # duplicates share cells at every level
        multipliers = (
            rng.integers(1, 2**62, size=d, dtype=np.uint64) * np.uint64(2)
            + np.uint64(1)
        )
        kernel = get_kernel("crude_bound_probe")
        lattice = np.empty((n, d), dtype=np.int64)
        frac = np.empty((n, d), dtype=np.float64)
        expected_lattice = np.empty((n, d), dtype=np.int64)
        expected_frac = np.empty((n, d), dtype=np.float64)
        # A bisection-shaped level walk: fresh jumps then doubling runs.
        for level, fresh in ((2, True), (3, False), (4, False), (8, True), (9, False)):
            expected = reference_crude_bound_probe(
                scaled, level, fresh, expected_lattice, expected_frac, multipliers
            )
            produced = kernel(scaled, level, fresh, lattice, frac, multipliers)
            assert produced == expected
            np.testing.assert_array_equal(lattice, expected_lattice)
            np.testing.assert_array_equal(frac, expected_frac)

    def test_escape_hatch_forces_numpy_probe(self):
        with use_native(False):
            assert get_kernel("crude_bound_probe") is None


class TestTierControl:
    def test_native_status_shape(self):
        status = native_status()
        assert status["tier"] in ("native", "fallback")
        assert set(status["kernels"]) >= {
            "radix_argsort",
            "csr_group",
            "lloyd_refresh_bounds",
            "lloyd_candidate_eval",
            "lloyd_update_sums",
            "fkpp_level_score",
            "fkpp_weighted_draw",
            "crude_bound_probe",
        }
        assert "providers" in status

    def test_native_status_kernels_sorted(self):
        # The status dict feeds `repro status` and the bench attribution
        # columns; stable ordering keeps diffs and logs deterministic.
        names = list(native_status()["kernels"])
        assert names == sorted(names)

    def test_use_native_false_forces_fallback(self):
        with use_native(False):
            status = native_status()
            assert status["tier"] == "fallback"
            # Kernels without a numpy fallback disappear entirely; the
            # engine's own numpy path takes over.
            assert get_kernel("csr_group") is None
            assert get_kernel("lloyd_candidate_eval") is None
            assert kernel_provider("radix_argsort") == "fallback"

    def test_use_native_restores_previous_mode(self):
        before = native_status()["tier"]
        with use_native(False):
            assert native_status()["tier"] == "fallback"
        assert native_status()["tier"] == before

    @requires_native
    def test_native_mode_routes_all_kernels(self):
        status = native_status()
        for name, entry in status["kernels"].items():
            assert entry["provider"] in ("numba", "cc"), (name, entry)


class TestCrossModeBitIdentity:
    """The observable outputs of the engines must not depend on the tier.

    ``recompute_fraction`` is intentionally not compared: the native
    candidate kernel resolves some suspects the numpy path recomputes, so
    the internal work counter legitimately differs between modes.
    """

    @pytest.mark.parametrize(
        "n,d,k,seed", [(3000, 7, 15, 0), (1500, 13, 9, 2), (2000, 3, 5, 1)]
    )
    def test_kmeans_outputs_identical(self, n, d, k, seed):
        points = gaussian_mixture(
            n=n, d=d, n_clusters=max(2, k // 2), gamma=1.0, seed=seed
        ).points
        native = kmeans(points, k, seed=seed, max_iterations=40)
        with use_native(False):
            fallback = kmeans(points, k, seed=seed, max_iterations=40)
        np.testing.assert_array_equal(native.assignment, fallback.assignment)
        np.testing.assert_array_equal(native.centers, fallback.centers)
        assert native.cost == fallback.cost
        assert native.iterations == fallback.iterations
        assert native.converged == fallback.converged

    def test_weighted_kmeans_outputs_identical(self):
        points = gaussian_mixture(n=1200, d=6, n_clusters=5, gamma=1.0, seed=4).points
        weights = np.random.default_rng(4).uniform(0.05, 4.0, points.shape[0])
        native = kmeans(points, 11, weights=weights, seed=4, max_iterations=40)
        with use_native(False):
            fallback = kmeans(points, 11, weights=weights, seed=4, max_iterations=40)
        np.testing.assert_array_equal(native.assignment, fallback.assignment)
        np.testing.assert_array_equal(native.centers, fallback.centers)
        assert native.cost == fallback.cost
        assert native.iterations == fallback.iterations

    @pytest.mark.parametrize("n,d,seed", [(3000, 2, 0), (2000, 16, 1)])
    def test_quadtree_fit_identical(self, n, d, seed):
        points = np.random.default_rng(seed).normal(size=(n, d)) * 10.0
        native = QuadtreeEmbedding(seed=seed).fit(points)
        with use_native(False):
            fallback = QuadtreeEmbedding(seed=seed).fit(points)
        assert native.depth == fallback.depth
        assert native.delta_ == fallback.delta_
        for level in range(native.depth):
            np.testing.assert_array_equal(
                native.level_cell_ids_[level], fallback.level_cell_ids_[level]
            )

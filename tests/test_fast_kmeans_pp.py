"""Unit tests for repro.clustering.fast_kmeans_pp."""

import numpy as np
import pytest

from repro.clustering.cost import clustering_cost, cost_to_assigned_centers
from repro.clustering.fast_kmeans_pp import FastKMeansPlusPlus, fast_kmeans_plus_plus
from repro.clustering.kmeans_pp import kmeans_plus_plus
from repro.native.registry import use_native


@pytest.fixture(autouse=True, params=[True, False], ids=["native", "fallback"])
def _dispatch_mode(request):
    """Run the whole module under both kernel-dispatch modes.

    The seeding promises bit-identical draws, labels, and costs whether the
    compiled ``fkpp_level_score``/``fkpp_weighted_draw`` kernels serve or
    the numpy sweep runs, so every behavioural test must hold in both
    modes (on boxes without a compiler or numba both params exercise the
    fallback).
    """
    with use_native(request.param):
        yield request.param


class TestFastKMeansPlusPlus:
    def test_returns_k_centers_from_input(self, blobs):
        solution = fast_kmeans_plus_plus(blobs, 6, seed=0)
        assert solution.centers.shape == (6, blobs.shape[1])
        for center in solution.centers:
            assert np.any(np.all(np.isclose(blobs, center), axis=1))

    def test_assignment_is_complete_and_valid(self, blobs):
        solution = fast_kmeans_plus_plus(blobs, 5, seed=0)
        assert solution.assignment.shape == (blobs.shape[0],)
        assert solution.assignment.min() >= 0
        assert solution.assignment.max() < 5

    def test_cost_matches_assignment(self, blobs):
        solution = fast_kmeans_plus_plus(blobs, 5, seed=1)
        recomputed = cost_to_assigned_centers(blobs, solution.centers, solution.assignment)
        assert solution.cost == pytest.approx(recomputed, rel=1e-9)

    def test_assignment_within_approximation_of_exact_seeding(self, blobs):
        # The tree-metric assignment is an O(d^z log k) approximation; on this
        # easy fixture it should stay within a generous constant of the exact
        # k-means++ solution cost.
        fast = fast_kmeans_plus_plus(blobs, 6, seed=2)
        exact = kmeans_plus_plus(blobs, 6, seed=2)
        d = blobs.shape[1]
        bound = max(50.0, (d ** 2) * np.log2(6 + 1) * 4)
        assert fast.cost <= bound * max(exact.cost, 1e-12)

    def test_spreads_centers_over_separated_clusters(self):
        rng = np.random.default_rng(0)
        centers = np.array([[0.0, 0.0], [100.0, 0.0], [0.0, 100.0], [100.0, 100.0]])
        points = np.concatenate([c + rng.normal(scale=0.5, size=(100, 2)) for c in centers])
        solution = fast_kmeans_plus_plus(points, 4, seed=1)
        # Each true cluster should receive at least one center.
        assigned_clusters = set()
        for center in solution.centers:
            assigned_clusters.add(int(np.argmin(np.linalg.norm(centers - center, axis=1))))
        assert len(assigned_clusters) == 4

    def test_k_at_least_n(self):
        points = np.arange(8, dtype=float).reshape(4, 2)
        solution = fast_kmeans_plus_plus(points, 10, seed=0)
        assert solution.centers.shape == (4, 2)
        assert solution.cost == pytest.approx(0.0)

    def test_reproducible_with_same_seed(self, blobs):
        a = fast_kmeans_plus_plus(blobs, 5, seed=7)
        b = fast_kmeans_plus_plus(blobs, 5, seed=7)
        np.testing.assert_allclose(a.centers, b.centers)
        np.testing.assert_array_equal(a.assignment, b.assignment)

    def test_weighted_points_respected(self):
        points = np.concatenate([np.zeros((100, 2)), np.ones((100, 2)) * 50])
        weights = np.concatenate([np.full(100, 1e-9), np.full(100, 1.0)])
        solution = fast_kmeans_plus_plus(points, 1, weights=weights, seed=0)
        assert solution.centers[0, 0] == pytest.approx(50.0, abs=1.0)

    def test_kmedian_mode(self, blobs):
        solution = fast_kmeans_plus_plus(blobs, 4, z=1, seed=0)
        assert solution.z == 1
        assert solution.cost >= 0

    def test_solver_records_internal_state(self, blobs):
        solver = FastKMeansPlusPlus(k=4, n_trees=2, seed=0)
        solver.fit(blobs)
        assert len(solver.trees_) == 2
        assert solver.center_indices_.shape == (4,)
        assert solver.tree_distances_.shape == (blobs.shape[0],)
        assert np.isfinite(solver.tree_distances_).all()

    def test_duplicate_points(self):
        points = np.zeros((50, 3))
        solution = fast_kmeans_plus_plus(points, 3, seed=0)
        assert solution.cost == pytest.approx(0.0)

    def test_identical_cost_scale_with_weights_none_vs_ones(self, blobs):
        base = fast_kmeans_plus_plus(blobs, 4, seed=5)
        weighted = fast_kmeans_plus_plus(blobs, 4, weights=np.ones(blobs.shape[0]), seed=5)
        np.testing.assert_allclose(base.centers, weighted.centers)

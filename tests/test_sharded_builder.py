"""Backend-equivalence suite for the parallel execution engine.

The contract pinned here is the subsystem's design center: for a fixed seed
and shard count, every executor backend at every worker count produces
**bit-identical** coresets (points, weights, and metadata), for every
sampler.  Thread-backend cases run in the default suite; process-pool cases
carry the ``parallel`` marker so constrained runners can deselect them.
"""

import numpy as np
import pytest

from repro.core import FastCoreset, SensitivitySampling, UniformSampling
from repro.parallel import (
    ProcessExecutor,
    SerialExecutor,
    ShardedCoresetBuilder,
    ThreadExecutor,
)
from repro.streaming import DataStream, StreamingCoresetPipeline


def _make_sampler(name):
    if name == "uniform":
        return UniformSampling(seed=0)
    if name == "sensitivity":
        return SensitivitySampling(k=5, seed=0)
    return FastCoreset(k=5, seed=0)


SAMPLER_NAMES = ("uniform", "sensitivity", "fast_coreset")


def _assert_identical(reference, other, context):
    assert np.array_equal(reference.coreset.points, other.coreset.points), context
    assert np.array_equal(reference.coreset.weights, other.coreset.weights), context
    assert reference.coreset.method == other.coreset.method, context
    assert reference.shard_sizes == other.shard_sizes, context
    assert reference.message_sizes == other.message_sizes, context
    assert reference.communication == other.communication, context
    assert reference.metadata == other.metadata, context


class TestShardedBuilderEquivalence:
    @pytest.mark.parametrize("sampler_name", SAMPLER_NAMES)
    @pytest.mark.parametrize("seed", (0, 17))
    def test_thread_matches_serial_across_worker_counts(self, blobs, sampler_name, seed):
        builder = ShardedCoresetBuilder(
            _make_sampler(sampler_name),
            n_shards=4,
            coreset_size_per_shard=60,
            seed=seed,
        )
        reference = builder.build(blobs, executor=SerialExecutor())
        for workers in (1, 2, 3):
            result = builder.build(blobs, executor=ThreadExecutor(workers=workers))
            _assert_identical(reference, result, (sampler_name, seed, workers))

    @pytest.mark.parallel
    @pytest.mark.parametrize("sampler_name", SAMPLER_NAMES)
    def test_process_matches_serial_across_worker_counts(self, blobs, sampler_name):
        builder = ShardedCoresetBuilder(
            _make_sampler(sampler_name),
            n_shards=4,
            coreset_size_per_shard=60,
            seed=5,
        )
        reference = builder.build(blobs, executor=SerialExecutor())
        for workers in (1, 2, 4):
            result = builder.build(blobs, executor=ProcessExecutor(workers=workers))
            _assert_identical(reference, result, (sampler_name, workers))

    def test_same_seed_reproduces_and_seeds_differ(self, blobs):
        builder = ShardedCoresetBuilder(
            UniformSampling(seed=0), n_shards=3, coreset_size_per_shard=50, seed=1
        )
        first = builder.build(blobs)
        second = builder.build(blobs)
        assert np.array_equal(first.coreset.points, second.coreset.points)
        other_seed = ShardedCoresetBuilder(
            UniformSampling(seed=0), n_shards=3, coreset_size_per_shard=50, seed=2
        ).build(blobs)
        assert not np.array_equal(first.coreset.points, other_seed.coreset.points)


class TestShardedBuilderBehaviour:
    def test_round_accounting(self, blobs):
        builder = ShardedCoresetBuilder(
            SensitivitySampling(k=5, seed=0), n_shards=4, coreset_size_per_shard=40, seed=0
        )
        result = builder.build(blobs)
        assert sum(result.shard_sizes) == blobs.shape[0]
        assert result.message_sizes == [40, 40, 40, 40]
        assert result.coreset.size == 160
        assert result.communication == 160 * (blobs.shape[1] + 1)
        assert result.metadata["sampler"] == "sensitivity"
        assert result.metadata["n_shards"] == 4.0
        assert result.backend == "serial" and result.workers == 1

    def test_final_recompression_bounds_size(self, blobs):
        builder = ShardedCoresetBuilder(
            UniformSampling(seed=0),
            n_shards=4,
            coreset_size_per_shard=80,
            final_coreset_size=100,
            seed=0,
        )
        result = builder.build(blobs)
        assert result.coreset.size == 100
        assert result.message_sizes == [80, 80, 80, 80]

    def test_total_weight_approximately_preserved(self, blobs, rng):
        weights = rng.uniform(0.5, 1.5, size=blobs.shape[0])
        builder = ShardedCoresetBuilder(
            UniformSampling(seed=0), n_shards=3, coreset_size_per_shard=60, seed=0
        )
        result = builder.build(blobs, weights=weights)
        assert result.coreset.total_weight == pytest.approx(weights.sum(), rel=0.2)

    def test_shuffle_false_keeps_input_order_shards(self, blobs):
        builder = ShardedCoresetBuilder(
            UniformSampling(seed=0),
            n_shards=2,
            coreset_size_per_shard=30,
            shuffle=False,
            seed=0,
        )
        result = builder.build(blobs)
        half = blobs.shape[0] // 2
        first_shard_rows = {tuple(row) for row in blobs[:half]}
        shard_coreset_rows = {tuple(row) for row in result.shard_coresets[0].points}
        assert shard_coreset_rows <= first_shard_rows

    def test_more_shards_than_points(self):
        points = np.random.default_rng(0).normal(size=(6, 3))
        builder = ShardedCoresetBuilder(
            UniformSampling(seed=0), n_shards=10, coreset_size_per_shard=2, seed=0
        )
        result = builder.build(points)
        assert len(result.shard_sizes) == 6
        assert result.coreset.size == 6

    def test_worker_count_never_keys_the_result(self, blobs):
        # The documented contract: n_shards keys the coreset, workers do not.
        builder = ShardedCoresetBuilder(
            FastCoreset(k=5, seed=0), n_shards=5, coreset_size_per_shard=40, seed=9
        )
        one = builder.build(blobs, executor=ThreadExecutor(workers=1))
        many = builder.build(blobs, executor=ThreadExecutor(workers=5))
        _assert_identical(one, many, "workers=1 vs workers=5")


class TestStreamingExecutorEquivalence:
    def _run(self, blobs, sampler, executor, batch_size=None, seed=13):
        pipeline = StreamingCoresetPipeline(
            sampler=sampler,
            coreset_size=50,
            seed=seed,
            executor=executor,
            batch_size=batch_size,
        )
        stream = DataStream(points=blobs, block_size=150)
        return pipeline.run_with_statistics(stream)

    @pytest.mark.parametrize("sampler_name", SAMPLER_NAMES)
    def test_batching_and_threads_never_change_the_coreset(self, blobs, sampler_name):
        sampler = _make_sampler(sampler_name)
        reference, reference_stats = self._run(blobs, sampler, SerialExecutor(), batch_size=1)
        for executor, batch_size in (
            (SerialExecutor(), 4),
            (ThreadExecutor(workers=2), None),
            (ThreadExecutor(workers=3), 5),
        ):
            coreset, stats = self._run(blobs, sampler, executor, batch_size)
            assert np.array_equal(reference.points, coreset.points), sampler_name
            assert np.array_equal(reference.weights, coreset.weights), sampler_name
            assert stats == reference_stats, sampler_name

    @pytest.mark.parallel
    def test_process_backend_matches_serial(self, blobs):
        sampler = FastCoreset(k=5, seed=0)
        reference, reference_stats = self._run(blobs, sampler, SerialExecutor(), batch_size=1)
        coreset, stats = self._run(blobs, sampler, ProcessExecutor(workers=2))
        assert np.array_equal(reference.points, coreset.points)
        assert np.array_equal(reference.weights, coreset.weights)
        assert stats == reference_stats

    def test_legacy_sequential_path_untouched_by_new_fields(self, blobs):
        # executor=None must keep the historical draw-order seed stream:
        # the result matches a pipeline constructed without the new fields.
        sampler = UniformSampling(seed=0)
        stream = DataStream(points=blobs, block_size=150)
        legacy = StreamingCoresetPipeline(sampler=sampler, coreset_size=50, seed=3).run(stream)
        explicit = StreamingCoresetPipeline(
            sampler=sampler, coreset_size=50, seed=3, executor=None, batch_size=None
        ).run(DataStream(points=blobs, block_size=150))
        assert np.array_equal(legacy.points, explicit.points)
        assert np.array_equal(legacy.weights, explicit.weights)

    def test_add_blocks_requires_spawn_seeds(self, blobs):
        from repro.streaming import MergeReduceTree

        tree = MergeReduceTree(sampler=UniformSampling(seed=0), coreset_size=40, seed=0)
        with pytest.raises(ValueError, match="spawn_seeds"):
            tree.add_blocks([(blobs[:100], None)])

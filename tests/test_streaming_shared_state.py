"""Shared per-stream state in merge-&-reduce: caching, refresh, and parity.

The merge-&-reduce tree now caches one spread estimate per stream and passes
it to every compression through the sampler ``spread`` hook.  These tests
pin down (a) the cache/refresh mechanics, (b) that the hook round-trips
through ``CoresetConstruction.sample`` for every sampler, and (c) the
quality contract: coresets built off the cached estimate match the
per-block-estimate baseline's distortion within tolerance.
"""

import numpy as np
import pytest

from repro.core import UniformSampling
from repro.core.fast_coreset import FastCoreset
from repro.data.synthetic import gaussian_mixture
from repro.evaluation import coreset_distortion
from repro.streaming import DataStream, StreamingCoresetPipeline
from repro.streaming.merge_reduce import MergeReduceTree, stream_dataset


@pytest.fixture(scope="module")
def stream_points():
    points = gaussian_mixture(n=4000, d=6, n_clusters=5, gamma=0.0, seed=21).points
    # Shuffle away the generator's cluster-ordered layout so every block is
    # distributionally stationary (the cluster-ordered case is exercised by
    # the bounding-box-growth test below).
    return points[np.random.default_rng(0).permutation(points.shape[0])]


class TestSpreadCache:
    def test_single_refresh_for_stationary_stream(self, stream_points):
        tree = MergeReduceTree(sampler=FastCoreset(k=6, seed=0), coreset_size=200, seed=1)
        for block, weights in DataStream.with_block_count(stream_points, 8):
            tree.add_block(block, weights)
        tree.finalize()
        assert tree.spread_refreshes == 1

    def test_refresh_triggered_by_bounding_box_growth(self):
        rng = np.random.default_rng(3)
        tree = MergeReduceTree(sampler=FastCoreset(k=4, seed=0), coreset_size=100, seed=2)
        for scale in (1.0, 1.0, 10.0, 10.0, 100.0):
            tree.add_block(rng.normal(scale=scale, size=(400, 5)))
        assert tree.spread_refreshes >= 3

    def test_staleness_bounded_when_min_distance_shrinks(self):
        """The bounding box cannot see near-duplicates arriving late in the
        stream (the spread grows through the *minimum* distance), so the
        periodic interval must force a resync and raise the cached value."""
        rng = np.random.default_rng(7)
        tree = MergeReduceTree(
            sampler=FastCoreset(k=4, seed=0),
            coreset_size=100,
            seed=5,
            spread_refresh_interval=8,
        )
        # Coarse integer grid first (small spread, fixed bounding box) ...
        tree.add_block(rng.integers(0, 20, size=(400, 3)).astype(float))
        early_spread = tree._cached_spread
        # ... then blocks riddled with near-duplicate pairs inside that box.
        for _ in range(6):
            base = rng.uniform(0.0, 20.0, size=(200, 3))
            tree.add_block(np.concatenate([base, base + 1e-9]))
        assert tree.spread_refreshes >= 2
        assert tree._cached_spread > early_spread * 100

    def test_share_disabled_never_estimates(self, stream_points):
        tree = MergeReduceTree(
            sampler=FastCoreset(k=6, seed=0),
            coreset_size=200,
            seed=1,
            share_stream_state=False,
        )
        for block, weights in DataStream.with_block_count(stream_points, 8):
            tree.add_block(block, weights)
        tree.finalize()
        assert tree.spread_refreshes == 0

    def test_statistics_report_refreshes(self, stream_points):
        pipeline = StreamingCoresetPipeline(
            sampler=FastCoreset(k=6, seed=0), coreset_size=200, seed=4
        )
        _, statistics = pipeline.run_with_statistics(
            DataStream.with_block_count(stream_points, 8)
        )
        assert statistics["spread_refreshes"] >= 1.0

    def test_spread_hint_accepted_by_every_sampler(self, stream_points):
        """The hook must round-trip through ``sample`` for hint-agnostic samplers too."""
        coreset = UniformSampling(seed=0).sample(stream_points, 50, spread=123.4)
        assert coreset.size == 50

    def test_cost_bound_hint_accepted_by_every_sampler(self, stream_points):
        """Same round-trip contract for the Algorithm-2 cost-bound hint."""
        for sampler in (UniformSampling(seed=0), FastCoreset(k=4, seed=0)):
            coreset = sampler.sample(stream_points, 50, spread=123.4, cost_bound=55.5)
            assert coreset.size >= 50


class TestCostBoundCache:
    def test_single_bound_refresh_for_stationary_stream(self, stream_points):
        """One Algorithm-2 binary search per stream, not per compression,
        refreshed together with the spread cache."""
        tree = MergeReduceTree(sampler=FastCoreset(k=6, seed=0), coreset_size=200, seed=1)
        for block, weights in DataStream.with_block_count(stream_points, 8):
            tree.add_block(block, weights)
        tree.finalize()
        assert tree.cost_bound_refreshes == 1
        assert tree.spread_refreshes == 1
        assert tree._cached_cost_bound is not None and tree._cached_cost_bound > 0

    def test_refresh_signal_resets_both_caches(self):
        """Bounding-box growth re-estimates the spread AND the cost bound."""
        rng = np.random.default_rng(3)
        tree = MergeReduceTree(sampler=FastCoreset(k=4, seed=0), coreset_size=100, seed=2)
        for scale in (1.0, 1.0, 10.0, 10.0, 100.0):
            tree.add_block(rng.normal(scale=scale, size=(400, 5)))
        assert tree.cost_bound_refreshes == tree.spread_refreshes >= 3

    def test_hint_agnostic_sampler_pays_no_bound(self, stream_points):
        """No Algorithm-2 search is spent on a sampler that ignores the hint."""
        tree = MergeReduceTree(sampler=UniformSampling(seed=0), coreset_size=150, seed=1)
        for block, weights in DataStream.with_block_count(stream_points, 8):
            tree.add_block(block, weights)
        tree.finalize()
        assert tree.cost_bound_refreshes == 0

    def test_cache_disabled_restores_per_compression_search(self, stream_points):
        tree = MergeReduceTree(
            sampler=FastCoreset(k=6, seed=0),
            coreset_size=200,
            seed=1,
            cache_cost_bound=False,
        )
        for block, weights in DataStream.with_block_count(stream_points, 8):
            tree.add_block(block, weights)
        tree.finalize()
        assert tree.cost_bound_refreshes == 0
        assert tree.spread_refreshes >= 1  # the spread cache is unaffected

    def test_statistics_report_bound_refreshes(self, stream_points):
        pipeline = StreamingCoresetPipeline(
            sampler=FastCoreset(k=6, seed=0), coreset_size=200, seed=4
        )
        _, statistics = pipeline.run_with_statistics(
            DataStream.with_block_count(stream_points, 8)
        )
        assert statistics["cost_bound_refreshes"] >= 1.0

    def test_cached_bound_distortion_matches_uncached_baseline(self, stream_points):
        """The cached bound only steers grid granularities: distortion parity
        with the per-compression-search baseline, averaged over seeds."""
        sampler = FastCoreset(k=8, seed=0)
        cached, baseline = [], []
        for seed in range(5):
            for collector, cache in ((cached, True), (baseline, False)):
                coreset = StreamingCoresetPipeline(
                    sampler=sampler, coreset_size=300, seed=seed, cache_cost_bound=cache
                ).run(DataStream.with_block_count(stream_points, 8))
                collector.append(
                    coreset_distortion(stream_points, coreset, 8, seed=100 + seed)
                )
        assert float(np.mean(cached)) == pytest.approx(float(np.mean(baseline)), abs=0.15)
        assert float(np.mean(cached)) < 1.5


class TestCachedSpreadQuality:
    def test_distortion_matches_per_block_baseline(self, stream_points):
        """Coresets off the cached estimate are as faithful as the baseline's.

        The cached value differs from any single block's own estimate, but
        only its logarithm is consumed (quadtree depth caps), so the
        resulting compressions must have statistically indistinguishable
        distortion.  Averaged over seeds to damp sampling noise.
        """
        sampler = FastCoreset(k=8, seed=0)
        shared, baseline = [], []
        for seed in range(3):
            for collector, share in ((shared, True), (baseline, False)):
                coreset = stream_dataset(
                    stream_points,
                    sampler,
                    300,
                    n_blocks=8,
                    seed=seed,
                    share_stream_state=share,
                )
                collector.append(
                    coreset_distortion(stream_points, coreset, 8, seed=100 + seed)
                )
        shared_mean = float(np.mean(shared))
        baseline_mean = float(np.mean(baseline))
        assert shared_mean == pytest.approx(baseline_mean, abs=0.1)
        assert shared_mean < 1.5

    def test_identical_when_sampler_ignores_hint(self, stream_points):
        """For hint-agnostic samplers sharing only skips estimates: same RNG path,
        same coreset."""
        with_share = stream_dataset(
            stream_points, UniformSampling(seed=0), 150, n_blocks=8, seed=9
        )
        without_share = stream_dataset(
            stream_points,
            UniformSampling(seed=0),
            150,
            n_blocks=8,
            seed=9,
            share_stream_state=False,
        )
        assert np.array_equal(with_share.points, without_share.points)
        assert np.array_equal(with_share.weights, without_share.weights)

"""Unit tests for repro.clustering.cost."""

import numpy as np
import pytest

from repro.clustering.cost import (
    ClusteringSolution,
    assign_points,
    cluster_sizes,
    clustering_cost,
    cost_to_assigned_centers,
    per_point_costs,
)


class TestClusteringCost:
    def test_kmeans_cost_by_hand(self):
        points = np.array([[0.0], [2.0], [10.0]])
        centers = np.array([[0.0], [10.0]])
        # Nearest assignments: 0 -> 0 (cost 0), 2 -> 0 (cost 4), 10 -> 1 (cost 0).
        assert clustering_cost(points, centers, z=2) == pytest.approx(4.0)

    def test_kmedian_cost_by_hand(self):
        points = np.array([[0.0], [2.0], [10.0]])
        centers = np.array([[0.0], [10.0]])
        assert clustering_cost(points, centers, z=1) == pytest.approx(2.0)

    def test_weights_scale_cost(self):
        points = np.array([[1.0], [3.0]])
        centers = np.array([[0.0]])
        unweighted = clustering_cost(points, centers, z=2)
        weighted = clustering_cost(points, centers, weights=np.array([2.0, 2.0]), z=2)
        assert weighted == pytest.approx(2 * unweighted)

    def test_zero_cost_when_centers_cover_points(self):
        points = np.array([[1.0, 2.0], [3.0, 4.0]])
        assert clustering_cost(points, points, z=2) == pytest.approx(0.0)

    def test_invalid_power_raises(self):
        with pytest.raises(ValueError):
            clustering_cost(np.ones((2, 2)), np.ones((1, 2)), z=3)


class TestAssignedCost:
    def test_assigned_cost_at_least_nearest_cost(self, rng):
        points = rng.normal(size=(50, 3))
        centers = rng.normal(size=(4, 3))
        _, nearest = assign_points(points, centers)
        worst = np.zeros_like(nearest)  # assign everything to center 0
        nearest_cost = cost_to_assigned_centers(points, centers, nearest)
        forced_cost = cost_to_assigned_centers(points, centers, worst)
        assert forced_cost >= nearest_cost - 1e-9

    def test_nearest_assignment_matches_clustering_cost(self, rng):
        points = rng.normal(size=(30, 4))
        centers = rng.normal(size=(3, 4))
        _, nearest = assign_points(points, centers)
        assert cost_to_assigned_centers(points, centers, nearest) == pytest.approx(
            clustering_cost(points, centers)
        )

    def test_wrong_assignment_length_raises(self, rng):
        with pytest.raises(ValueError):
            cost_to_assigned_centers(
                rng.normal(size=(5, 2)), rng.normal(size=(2, 2)), np.zeros(4, dtype=int)
            )


class TestPerPointCosts:
    def test_kmeans_squares_distances(self):
        points = np.array([[3.0, 4.0]])
        centers = np.array([[0.0, 0.0]])
        costs, assignment = per_point_costs(points, centers, z=2)
        assert costs[0] == pytest.approx(25.0)
        assert assignment[0] == 0

    def test_kmedian_uses_plain_distances(self):
        points = np.array([[3.0, 4.0]])
        centers = np.array([[0.0, 0.0]])
        costs, _ = per_point_costs(points, centers, z=1)
        assert costs[0] == pytest.approx(5.0)


class TestClusterSizes:
    def test_counts_unweighted(self):
        assignment = np.array([0, 0, 1, 2, 2, 2])
        np.testing.assert_allclose(cluster_sizes(assignment, 3), [2, 1, 3])

    def test_counts_weighted(self):
        assignment = np.array([0, 1, 1])
        weights = np.array([2.0, 0.5, 0.5])
        np.testing.assert_allclose(cluster_sizes(assignment, 2, weights), [2.0, 1.0])

    def test_minlength_padding(self):
        assignment = np.array([0, 0])
        np.testing.assert_allclose(cluster_sizes(assignment, 4), [2, 0, 0, 0])


class TestClusteringSolution:
    def test_k_property(self):
        solution = ClusteringSolution(centers=np.zeros((7, 2)))
        assert solution.k == 7
